/**
 * @file
 * The generic EQueue simulation engine (Section IV).
 *
 * The Simulator interprets a module containing any mix of dialects:
 *  - fully lowered EQueue programs execute with per-component contention,
 *    event queues, and bandwidth-limited connections;
 *  - Affine-level programs execute loop-by-loop on scalar cores;
 *  - Linalg-level ops execute with analytic cost models.
 * This realises the multi-level simulation spectrum of Fig. 1.
 *
 * Execution is a deterministic single-threaded discrete-event simulation:
 * a time-ordered heap drives processor issue, operation completion, and
 * event dependency resolution. Per the paper's semantics (§III-D), every
 * processor owns a FIFO event queue; a launch enqueues an event; the
 * queue head issues once its dependencies complete; each processor
 * executes one event at a time; blocks run sequentially but spawn
 * concurrent events on other processors.
 */

#ifndef EQ_SIM_ENGINE_HH
#define EQ_SIM_ENGINE_HH

#include <memory>

#include "ir/operation.hh"
#include "sim/component.hh"
#include "sim/opfunctions.hh"
#include "sim/report.hh"
#include "sim/trace.hh"

namespace eq {
namespace sim {

/**
 * Execution backend of the engine's hot loop.
 *
 * Both backends share the event core, elaboration, cost model, and
 * report generation; cycle counts, reports, and traces are identical.
 *  - Interp: tree-walks ir::Operation nodes through the OpId handler
 *    table (the reference implementation).
 *  - Compiled: lowers each region once into a dense micro-op stream
 *    (pre-resolved slots, pre-folded costs, pre-computed branch
 *    targets; see sim/compile.hh) and dispatches over that stream.
 *    Compilation is cached per region, so BatchSession re-runs and
 *    sweeps pay it once per structural config.
 *  - Auto (default): resolved from the EQ_SIM_BACKEND environment
 *    variable ("interp" | "compiled"), falling back to Interp.
 */
enum class Backend : uint8_t { Auto, Interp, Compiled };

/**
 * Superinstruction fusion over the compiled backend's micro-op streams
 * (sim/fuse.cc): recurring record sequences — Read→Mac→Write PE
 * bodies, Read→Write copies, StreamRead→compute→StreamWrite chains —
 * collapse into single superinstruction records, so one dispatch
 * executes the whole group. Observable behavior (cycles, reports,
 * traces, opsExecuted) is byte-identical; only wall time and the
 * dispatch count change. Auto resolves EQ_SIM_FUSE ("0"/"off" or
 * "1"/"on") at Simulator construction, defaulting to on. Ignored by
 * the interpreter backend.
 */
enum class Fusion : uint8_t { Auto, On, Off };

/** Engine configuration. */
struct EngineOptions {
    /** Record operation-level trace slices (costs memory). */
    bool enableTrace = false;
    /** Run the IR verifier before simulating. */
    bool verifyModule = true;
    /** Runaway-program guard: abort after this many interpreted ops. */
    uint64_t maxOps = 500'000'000;
    /** Execution backend; Auto resolves EQ_SIM_BACKEND at Simulator
     *  construction. */
    Backend backend = Backend::Auto;
    /** Superinstruction fusion (compiled backend only); Auto resolves
     *  EQ_SIM_FUSE at Simulator construction (default on). */
    Fusion fuse = Fusion::Auto;
};

/**
 * The generic simulator. One instance can run many modules; custom
 * operation functions and component kinds registered on it persist
 * across runs (per §IV-D extensibility).
 */
class Simulator {
  public:
    explicit Simulator(EngineOptions opts = {});
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Simulate @p module to completion.
     * @return profiling summary (§IV-B)
     */
    SimReport simulate(ir::Operation *module);

    /** Trace of the most recent run (enable via options). */
    Trace &trace();

    /** The resolved execution backend (never Backend::Auto). */
    Backend backend() const;

    /** The resolved superinstruction-fusion switch (never
     *  Fusion::Auto). Only affects the compiled backend. */
    bool fusionEnabled() const;

    /** The resolved launch-env pooling switch (EQ_SIM_ENV_POOL,
     *  default on). Pure allocation optimization — identical reports
     *  and traces either way; the seam exists for bisection. */
    bool envPoolEnabled() const;

    /**
     * Lower every region of @p module to micro-op streams now, from
     * scratch (drops all cached numbering and programs first, so
     * repeated calls measure full compilation cost — this is the
     * BM_CompileModule hook, quantifying exactly the setup a
     * BatchSession's first run pays and its re-runs amortize). Note a
     * subsequent run still recompiles: per-run setup legitimately
     * rebuilds caches unless a BatchSession pins the module.
     * @return total number of micro-ops emitted
     */
    size_t precompile(ir::Operation *module);

    /** Custom `equeue.op` signatures (§III-E). */
    OpFunctionRegistry &opFunctions();

    /** Custom component kinds, e.g. a Cache memory (§IV-D). */
    ComponentFactory &componentFactory();

    /** Engine internals (public so the interpreter in engine.cc can
     *  collaborate with it; not part of the user-facing API). */
    struct Impl;

  private:
    friend class BatchSession;
    std::unique_ptr<Impl> _impl;
};

/**
 * Batched runs of one unchanged module (ROADMAP "Batched runs").
 *
 * A session pins a module and amortizes per-run setup across repeated
 * simulations: the module is verified once, the OpId dispatch table and
 * (CostClass, OpId) cost table are rebuilt only when the module's
 * context interns new op names, and the value-numbering scopes
 * (ValueImpl slot assignments) — plus, on the compiled backend, the
 * lowered micro-op programs — survive between runs. Per-run state —
 * components, buffers, events, the heap — still resets fully, so a
 * batched run's report is cycle-identical to a fresh Simulator's.
 *
 * The pinned module must stay alive and structurally unchanged for the
 * session's lifetime; when a sweep point changes structural parameters,
 * build a new module and open a new session (the Simulator, with its
 * registered op functions and component kinds, is reusable across
 * sessions).
 */
class BatchSession {
  public:
    /** Pin @p module (kept alive by the caller) to @p sim. */
    BatchSession(Simulator &sim, ir::Operation *module);

    /** Simulate the pinned module once more. */
    SimReport run();

    ir::Operation *module() const { return _module; }
    uint64_t runsCompleted() const { return _runs; }

  private:
    Simulator &_sim;
    ir::Operation *_module;
    uint64_t _runs = 0;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_ENGINE_HH
