#include "sim/session.hh"

#include <cassert>
#include <chrono>

namespace eq {
namespace sim {

Session::Session(EngineOptions opts) : _sim(opts)
{
    ir::registerAllDialects(_ctx);
}

void
Session::rebuild(const BuildFn &build)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    _session.reset(); // the session pins the module; drop it first
    _module = ir::OwningOpRef();
    _lastBuildSeconds = 0.0;
    try {
        _module = build(_ctx);
    } catch (...) {
        // A failed build must leave the session coherently "not
        // ready" — no stale module, no session pinning it — so a
        // caller (e.g. the serving layer's ProgramCache) can catch,
        // report a structured error, and retry the build later.
        _module = ir::OwningOpRef();
        throw;
    }
    assert(_module.get() && "Session build function returned no module");
    _session.emplace(_sim, _module.get());
    _lastBuildSeconds =
        std::chrono::duration<double>(clock::now() - t0).count();
}

SimReport
Session::run()
{
    assert(ready() && "Session::run before rebuild()");
    return _session->run();
}

} // namespace sim
} // namespace eq
