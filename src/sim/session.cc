#include "sim/session.hh"

#include <cassert>
#include <chrono>

namespace eq {
namespace sim {

Session::Session(EngineOptions opts) : _sim(opts)
{
    ir::registerAllDialects(_ctx);
}

void
Session::rebuild(const BuildFn &build)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    _session.reset(); // the session pins the module; drop it first
    _module = build(_ctx);
    assert(_module.get() && "Session build function returned no module");
    _session.emplace(_sim, _module.get());
    _lastBuildSeconds =
        std::chrono::duration<double>(clock::now() - t0).count();
}

SimReport
Session::run()
{
    assert(ready() && "Session::run before rebuild()");
    return _session->run();
}

} // namespace sim
} // namespace eq
