/**
 * @file
 * Operation-level tracing in Chrome Trace Event Format (§IV-B).
 *
 * Records have the same schema as the paper's Fig. 7 example and load in
 * any catapult-compatible viewer (chrome://tracing, Perfetto).
 */

#ifndef EQ_SIM_TRACE_HH
#define EQ_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eq {
namespace sim {

/** One complete ("ph":"X") trace slice. */
struct TraceEvent {
    std::string name; ///< op name, e.g. "equeue.read" or "mac4"
    std::string cat;  ///< category, "operation"
    std::string pid;  ///< component group (parent path)
    std::string tid;  ///< processor name
    uint64_t ts;      ///< start cycle (reported as microseconds)
    uint64_t dur;     ///< duration in cycles
};

/** Accumulates trace events and serialises them to JSON. */
class Trace {
  public:
    void setEnabled(bool e) { _enabled = e; }
    bool enabled() const { return _enabled; }

    void
    record(TraceEvent ev)
    {
        if (_enabled)
            _events.push_back(std::move(ev));
    }

    const std::vector<TraceEvent> &events() const { return _events; }
    void clear() { _events.clear(); }

    /** Serialise to Trace Event Format JSON. */
    std::string toJson() const;
    /** Write JSON to @p file_path (fatal on I/O error). */
    void writeFile(const std::string &file_path) const;

  private:
    bool _enabled = false;
    std::vector<TraceEvent> _events;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_TRACE_HH
