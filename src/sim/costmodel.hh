/**
 * @file
 * Per-processor-kind operation cost tables and analytic costs for
 * high-level (Linalg) ops.
 *
 * Processor kinds model the paper's component library tags:
 *  - "ARMr5"/"ARMr6"/"Generic": scalar control cores; every interpreted
 *    compute/data op costs one cycle (loads, stores, arithmetic, loop
 *    back-edges), bookkeeping (event ops, allocation) is free.
 *  - "MAC": a systolic processing element; data movement is part of the
 *    datapath (free), fused multiply-accumulate (equeue.op "mac") and
 *    scalar arithmetic cost one cycle.
 *  - "AIEngine": a VLIW SIMD core; vector intrinsics via equeue.op cost
 *    one cycle, stream/register moves are issued by dedicated units
 *    (free to the core).
 *  - "DMA": only executes memcpy; its timing is bandwidth-derived.
 */

#ifndef EQ_SIM_COSTMODEL_HH
#define EQ_SIM_COSTMODEL_HH

#include <string>

#include "ir/operation.hh"
#include "sim/component.hh"

namespace eq {
namespace sim {

/** Static cost model resolving (processor kind, op) -> cycles. */
class CostModel {
  public:
    /** Processor occupancy in cycles for interpreting @p op. */
    static Cycles opCycles(const std::string &proc_kind,
                           ir::Operation *op);

    /** Analytic cost of a linalg op on a scalar core (naive schedule,
     *  every operand element fetched from backing memory). */
    static Cycles linalgCycles(ir::Operation *op);

    /** True if the kind is a scalar control core. */
    static bool isScalarCore(const std::string &proc_kind);
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_COSTMODEL_HH
