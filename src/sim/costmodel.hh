/**
 * @file
 * Per-processor-kind operation cost tables and analytic costs for
 * high-level (Linalg) ops.
 *
 * Processor kinds model the paper's component library tags:
 *  - "ARMr5"/"ARMr6"/"Generic": scalar control cores; every interpreted
 *    compute/data op costs one cycle (loads, stores, arithmetic, loop
 *    back-edges), bookkeeping (event ops, allocation) is free.
 *  - "MAC": a systolic processing element; data movement is part of the
 *    datapath (free), fused multiply-accumulate (equeue.op "mac") and
 *    scalar arithmetic cost one cycle.
 *  - "AIEngine": a VLIW SIMD core; vector intrinsics via equeue.op cost
 *    one cycle, stream/register moves are issued by dedicated units
 *    (free to the core).
 *  - "DMA": only executes memcpy; its timing is bandwidth-derived.
 *
 * Kind strings are resolved once into a CostClass; the engine then
 * precomputes a dense (CostClass, OpId) -> cycles table per run, so the
 * per-event hot path never compares strings (only dynamically shaped
 * Linalg costs fall back to linalgCycles).
 */

#ifndef EQ_SIM_COSTMODEL_HH
#define EQ_SIM_COSTMODEL_HH

#include <string>

#include "ir/operation.hh"
#include "sim/component.hh"

namespace eq {
namespace sim {

/** Resolved processor cost class (see file comment). Forward-declared
 *  in component.hh so Processor can cache its class. */
enum class CostClass : uint8_t {
    Root = 0, ///< the host orchestration processor: everything is free
    Scalar,   ///< ARMr5 / ARMr6 / Generic scalar cores
    MAC,      ///< systolic processing element
    AIEngine, ///< VLIW SIMD core
    DMA,      ///< data-movement engine
    Other,    ///< unknown kinds: behave like scalar cores
};
constexpr unsigned kNumCostClasses = 6;

/** Static cost model resolving (processor kind, op) -> cycles. */
class CostModel {
  public:
    /** Sentinel for ops whose cost depends on operand shapes; resolve
     *  via linalgCycles(op) at execution time. */
    static constexpr Cycles kDynamic = ~Cycles(0);

    /** Resolve a processor kind string to its cost class. */
    static CostClass classify(const std::string &proc_kind);

    /** Cycles for @p op_name on @p cls, or kDynamic when the cost is
     *  shape-dependent. String-based: call at table-build time only. */
    static Cycles staticOpCycles(CostClass cls, const std::string &op_name);

    /** Processor occupancy in cycles for interpreting @p op.
     *  Convenience wrapper over classify + staticOpCycles +
     *  linalgCycles; the engine uses its precomputed table instead. */
    static Cycles opCycles(const std::string &proc_kind,
                           ir::Operation *op);

    /** Analytic cost of a linalg op on a scalar core (naive schedule,
     *  every operand element fetched from backing memory). */
    static Cycles linalgCycles(ir::Operation *op);

    /** True if the kind is a scalar control core. */
    static bool isScalarCore(const std::string &proc_kind);
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_COSTMODEL_HH
