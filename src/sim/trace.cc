#include "sim/trace.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/stringutil.hh"

namespace eq {
namespace sim {

std::string
Trace::toJson() const
{
    std::ostringstream os;
    os << "[\n";
    for (size_t i = 0; i < _events.size(); ++i) {
        const TraceEvent &e = _events[i];
        os << "  {\"name\": \"" << jsonEscape(e.name) << "\", "
           << "\"cat\": \"" << jsonEscape(e.cat) << "\", "
           << "\"ph\": \"X\", "
           << "\"ts\": " << e.ts << ", "
           << "\"dur\": " << (e.dur == 0 ? 1 : e.dur) << ", "
           << "\"pid\": \"" << jsonEscape(e.pid) << "\", "
           << "\"tid\": \"" << jsonEscape(e.tid) << "\"}";
        if (i + 1 < _events.size())
            os << ',';
        os << '\n';
    }
    os << "]\n";
    return os.str();
}

void
Trace::writeFile(const std::string &file_path) const
{
    std::ofstream out(file_path);
    if (!out)
        eq_fatal("cannot open trace file '", file_path, "' for writing");
    out << toJson();
}

} // namespace sim
} // namespace eq
