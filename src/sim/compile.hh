/**
 * @file
 * The compiled execution backend's program representation (the
 * paper's thesis applied to the simulator itself: *compile* the
 * simulation instead of interpreting it, cf. CVC's pre-resolved
 * flow-graph programs, arXiv:1603.08059).
 *
 * A ModuleCompiler (compile.cc) lowers each verified interpretation
 * scope — the module top level or a launch body — once into a dense
 * micro-op stream: one contiguous MicroOp record per interpreter
 * dispatch, with
 *
 *  - the op *kind* pre-lowered from its interned OpId to a dense
 *    MOp opcode (no handler-table lookup at run time),
 *  - operand references pre-resolved to (env-chain hops, slot) pairs
 *    (no scope-id walk per eval), result slots pre-resolved to local
 *    slot indices,
 *  - the (CostClass, OpId) cost-table row pre-folded into the record
 *    (one indexed load per executing processor class),
 *  - loop bounds, constants, stream element counts, and resolved
 *    component names pre-folded out of the attribute dictionaries,
 *  - branch and region targets pre-computed as absolute pc indices
 *    into the stream (the stream is relocatable: it contains no
 *    pointers into itself).
 *
 * CompiledExec (compiled_exec.cc) then runs the stream with a dense
 * jump-table dispatch over the opcode — a computed jump straight to
 * the micro-op's code — instead of walking ir::Operation nodes.
 *
 * Lifetime: a CompiledBlock borrows the IR (records keep the
 * originating ir::Operation* for attributes, trace labels, and cold
 * paths) and embeds the scope's value numbering, so it is cached and
 * invalidated exactly like the numbering itself (Simulator::Impl::
 * programs, cleared on any non-batched reset).
 */

#ifndef EQ_SIM_COMPILE_HH
#define EQ_SIM_COMPILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/operation.hh"
#include "sim/costmodel.hh"
#include "sim/opfunctions.hh"
#include "sim/simvalue.hh"

namespace eq {
namespace sim {

/** Compiled micro-op opcodes. One opcode per interpreter handler
 *  (specialized where the handler branches on the op kind, e.g.
 *  load vs store), plus the loop/terminator control records that
 *  replace the interpreter's frame bookkeeping. */
enum class MOp : uint8_t {
    Bad = 0,    ///< uninterpretable op: fatal when (and only when) executed
    // Structure / elaboration (free; shared cores in elaborate.cc).
    CreateProc,
    CreateDma,
    CreateMem,
    CreateStream,
    CreateConnection,
    CreateComp, ///< create_comp / add_comp (kFlagIsAddComp)
    GetComp,    ///< get_comp / extract_comp; child name pre-resolved
    Alloc,      ///< equeue.alloc / memref.alloc (kFlagEqueueAlloc)
    Dealloc,
    // Control flow (pre-computed pc targets).
    ForBegin,   ///< aux -> ForLoopInfo; target = pc past ForEnd
    ForEnd,     ///< aux -> ForLoopInfo; target = loop body pc
    ParBegin,   ///< aux -> ParLoopInfo; target = pc past ParEnd
    ParEnd,     ///< aux -> ParLoopInfo; target = loop body pc
    Yield,      ///< loop back-edge: charges the yield cost
    NestedModule, ///< counts the builtin.module dispatch, falls through
    Halt,       ///< end of scope (block tree ran off its end)
    // Scalar compute.
    Constant,   ///< aux -> consts (value attribute pre-folded)
    AddI,
    SubI,
    MulI,
    DivSI,
    RemSI,
    AddF,
    MulF,
    ArithBad,   ///< unsupported arith op: fatal when executed
    // Memory and high-level compute.
    Load,       ///< affine.load: args = [memref, indices...]
    Store,      ///< affine.store: args = [value, memref, indices...]
    LinalgConv,
    LinalgFill,
    LinalgMatmul,
    LinalgOther, ///< analytic cost only
    Read,       ///< args = [buffer, (conn), indices...]
    Write,      ///< args = [value, buffer, (conn), indices...]
    StreamRead, ///< args = [stream, (conn)]; imm = elems
    StreamWrite, ///< args = [value, stream, (conn)]
    // Events.
    ControlStart,
    ControlAnd,
    ControlOr,
    Launch,     ///< args = [deps..., proc]
    Memcpy,     ///< args = [dep, src, dst, dma, (conn)]
    Await,      ///< args = [events...] (none = all spawned)
    Return,
    Extern,     ///< aux -> resultPool (extra result slots)
    // Superinstruction (sim/fuse.cc): one dispatch for a fused run of
    // simple records. aux -> fusedGroups.
    Fused,
    kCount
};

/** Pre-resolved value reference: follow @ref hops parent links in the
 *  runtime environment chain, then index @ref slot. Replaces the
 *  interpreter's per-eval scope-id walk. */
struct SlotRef {
    uint32_t slot = 0;
    uint32_t hops = 0;
};

constexpr uint32_t kNoSlot = 0xffffffffu;

/** Deepest operand env-chain a fused group may reference; runs needing
 *  more (absurdly deep launch nesting) are simply left unfused. */
constexpr uint32_t kMaxFusedHops = 8;

/** MicroOp::flags bits (shared by MicroOp and FusedElem). */
enum : uint8_t {
    kFlagCounts = 1 << 0,      ///< counts toward opsExecuted (one per
                               ///< interpreter dispatch, for parity)
    kFlagHasConn = 1 << 1,     ///< data-motion op carries a connection
    kFlagIsAddComp = 1 << 2,   ///< CreateComp record is an add_comp
    kFlagEqueueAlloc = 1 << 3, ///< Alloc record is an equeue.alloc
    kFlagImmIdx = 1 << 4,      ///< index operands folded to immediates
                               ///< (aux/immBegin -> immIdx pool)
    kFlagScalarize = 1 << 5,   ///< whole-cell read may bind a scalar
                               ///< instead of materializing a tensor
                               ///< (all uses proven scalar-compatible
                               ///< and inside the fused group)
};

/**
 * One instruction record of the micro-op stream. Fixed-size and
 * contiguous; all cross-references are indices (operand pool, aux
 * pools, branch targets), never pointers into the stream.
 */
struct MicroOp {
    MOp code = MOp::Bad;
    uint8_t flags = 0;
    uint16_t nargs = 0;     ///< operand count in CompiledBlock::args
    uint32_t argsBegin = 0; ///< first operand index in the args pool
    uint32_t result = kNoSlot; ///< local result slot (results are
                               ///< always scope-local: hops == 0)
    uint32_t target = 0;    ///< branch target pc (loops)
    uint32_t aux = 0;       ///< index into the per-opcode aux pool
    int64_t imm = 0;        ///< pre-folded immediate (stream elems, ...)
    ir::Operation *op = nullptr; ///< originating IR op (attributes,
                                 ///< trace labels, cold paths)
    /** Pre-folded cost-table row: occupancy cycles per executing
     *  processor cost class (CostModel::kDynamic defers to
     *  linalgCycles at execution time, exactly like the interpreter's
     *  table). */
    std::array<Cycles, kNumCostClasses> cost{};

    bool counts() const { return flags & kFlagCounts; }
    bool hasConn() const { return flags & kFlagHasConn; }
};

/**
 * One constituent of a fused superinstruction (MOp::Fused). Carries the
 * same pre-resolved fields as the MicroOp it replaces plus the
 * fusion-time specializations: the pre-combined cost row, an optional
 * cached op-function pointer (Extern), a pre-built trace label, and
 * immediate index offsets (kFlagImmIdx). Executing one FusedElem is
 * observationally identical to executing the original record —
 * per-element costs, memory/connection acquisition order, opsExecuted
 * accounting, and trace lines are all preserved; only the per-record
 * dispatch (and, with kFlagScalarize, dead tensor materialization) is
 * gone.
 */
struct FusedElem {
    MOp code = MOp::Bad;
    uint8_t flags = 0;
    uint16_t nargs = 0;
    uint32_t argsBegin = 0;     ///< into CompiledBlock::args
    uint32_t result = kNoSlot;
    uint32_t aux = 0;           ///< per-opcode aux pool (consts, ...)
    uint32_t immBegin = 0;      ///< into immIdx when kFlagImmIdx
    uint32_t resultBegin = 0;   ///< Extern: into resultPool
    uint32_t nresults = 0;      ///< Extern: result count
    int64_t imm = 0;            ///< stream elems
    ir::Operation *op = nullptr;
    /** Extern: op function resolved at fuse time (registry entries are
     *  node-stable, so the pointer survives later re-registrations);
     *  null falls back to the by-signature lookup. */
    const OpFunction *fn = nullptr;
    /** Pre-built trace label (op name / extern signature). */
    std::string label;
    /** Pre-folded cost row, copied from the replaced record. */
    std::array<Cycles, kNumCostClasses> cost{};

    bool hasConn() const { return flags & kFlagHasConn; }
    bool immIdx() const { return flags & kFlagImmIdx; }
    bool scalarize() const { return flags & kFlagScalarize; }
};

/** A fused run of records, dispatched as one MOp::Fused record. */
struct FusedGroup {
    std::vector<FusedElem> elems;
    /** Deepest env-chain hop count over all operand refs; the executor
     *  resolves each chain level once per group entry instead of
     *  walking parent links per operand ("SlotRef chain coalescing"). */
    uint32_t maxHops = 0;
};

/** A compiled interpretation scope: the relocatable micro-op stream
 *  plus its pooled operands and pre-folded auxiliary data. */
struct CompiledBlock {
    std::vector<MicroOp> code;
    std::vector<SlotRef> args; ///< operand pool (MicroOp::argsBegin)

    /** Pre-folded attribute constants (MOp::Constant). */
    std::vector<SimValue> consts;
    /** Extra result slots for multi-result ops (MOp::Extern). */
    std::vector<uint32_t> resultPool;
    /** Pre-resolved component child names (MOp::GetComp). */
    std::vector<std::string> strings;

    struct ForLoopInfo {
        int64_t lb, ub, step;
        uint32_t ivSlot;
    };
    std::vector<ForLoopInfo> forLoops;

    struct ParLoopInfo {
        std::vector<int64_t> lbs, ubs, steps;
        std::vector<uint32_t> ivSlots;
    };
    std::vector<ParLoopInfo> parLoops;

    /** Launch bodies compiled eagerly with their parent; a Launch
     *  record's aux indexes this, and the pointer rides on the Event
     *  so issue skips the program-cache lookup. Owned by the engine's
     *  program cache (same lifetime as this block). */
    std::vector<const CompiledBlock *> childProgs;

    /** Pre-resolved captured-value mapping for a launch body: at issue
     *  time, src (relative to the *creator* environment) is copied
     *  into the body-local block-argument slot. Replaces the
     *  interpreter's per-issue captured() walk and scope-chain finds. */
    struct Capture {
        SlotRef src;      ///< creator-relative (hops from creatorEnv)
        uint32_t argSlot; ///< body-local block-argument slot
    };
    std::vector<Capture> captures;

    /** Superinstruction groups (MOp::Fused records; sim/fuse.cc). Only
     *  populated in optimized programs. */
    std::vector<FusedGroup> fusedGroups;
    /** Immediate index operands folded from same-scope constants
     *  (records/elems with kFlagImmIdx). */
    std::vector<int64_t> immIdx;

    /** Root block this program was compiled from (keys the program
     *  caches; lets the fusion pass map child programs). */
    ir::Block *root = nullptr;
    /** Scope this program was compiled against (must match the
     *  executing environment's scopeId). */
    uint32_t scopeId = 0;
    uint32_t numSlots = 0;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_COMPILE_HH
