/**
 * @file
 * Profiling summary produced by a simulation run (§IV-B): simulated
 * runtime, wall-clock execution time, per-connection read/write bandwidth
 * with max-bandwidth portion, per-memory byte totals, and per-processor
 * utilization.
 */

#ifndef EQ_SIM_REPORT_HH
#define EQ_SIM_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace eq {
namespace sim {

/** Per-connection bandwidth statistics. */
struct ConnReport {
    std::string name;
    std::string kind;          ///< Streaming / Window
    int64_t bandwidthLimit;    ///< bytes/cycle, 0 = unlimited
    int64_t readBytes = 0;
    int64_t writeBytes = 0;
    double avgReadBw = 0.0;    ///< bytes/cycle over the whole run
    double avgWriteBw = 0.0;
    double maxBw = 0.0;        ///< peak observed bytes/cycle
    /** Fraction of simulated time spent at the channel's peak
     *  bandwidth (the paper's "max bandwidth portion"). */
    double maxBwPortionRead = 0.0;
    double maxBwPortionWrite = 0.0;
};

/** Per-memory byte totals and average bandwidth. */
struct MemReport {
    std::string name;
    std::string kind;
    int64_t bytesRead = 0;
    int64_t bytesWritten = 0;
    double avgReadBw = 0.0;
    double avgWriteBw = 0.0;
};

/** Per-processor utilization. */
struct ProcReport {
    std::string name;
    std::string kind;
    uint64_t busyCycles = 0;
    uint64_t opsExecuted = 0;
    double utilization = 0.0;
};

/** The full profiling summary for one simulation. */
struct SimReport {
    uint64_t cycles = 0;        ///< simulated runtime in cycles
    double wallSeconds = 0.0;   ///< simulator execution time
    uint64_t eventsExecuted = 0;
    uint64_t opsExecuted = 0;
    /** Counted dispatches of the execution loop. Equals opsExecuted on
     *  the interpreter and the unfused compiled backend; drops below it
     *  when superinstruction fusion collapses several ops into one
     *  dispatch (print() shows it only in that case). Backend-dependent
     *  by design — every other field is backend-invariant. */
    uint64_t dispatchCount = 0;
    std::vector<ConnReport> connections;
    std::vector<MemReport> memories;
    std::vector<ProcReport> processors;

    const MemReport *findMem(const std::string &name) const;
    const ConnReport *findConn(const std::string &name) const;

    /** Pretty-print the summary table. */
    void print(std::ostream &os) const;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_REPORT_HH
