#include "sim/component.hh"

#include "base/logging.hh"

namespace eq {
namespace sim {

std::string
Component::path() const
{
    if (!_parent)
        return _name;
    return _parent->path() + "." + _name;
}

namespace {

/** SRAM: 1 cycle per word of bank occupancy; slower warm-up than
 *  registers (modeled via per-word cost), banked. */
class Sram : public Memory {
  public:
    Sram(std::string name, std::vector<int64_t> shape, unsigned data_bits,
         unsigned banks)
        : Memory(std::move(name), "SRAM", std::move(shape), data_bits,
                 banks, /*cycles_per_word=*/1)
    {}
};

/** Register file: zero-occupancy accesses (combinational datapath). */
class RegisterFile : public Memory {
  public:
    RegisterFile(std::string name, std::vector<int64_t> shape,
                 unsigned data_bits, unsigned banks)
        : Memory(std::move(name), "Register", std::move(shape), data_bits,
                 banks, /*cycles_per_word=*/0)
    {}
};

/** DRAM: slow bulk memory, 4 cycles/word occupancy. */
class DramMem : public Memory {
  public:
    DramMem(std::string name, std::vector<int64_t> shape,
            unsigned data_bits, unsigned banks)
        : Memory(std::move(name), "DRAM", std::move(shape), data_bits,
                 banks, /*cycles_per_word=*/4)
    {}
};

} // namespace

ComponentFactory::ComponentFactory()
{
    registerMemoryKind(
        "SRAM", [](const std::string &name, std::vector<int64_t> shape,
                   unsigned bits, unsigned banks) {
            return std::make_unique<Sram>(name, std::move(shape), bits,
                                          banks);
        });
    registerMemoryKind(
        "Register", [](const std::string &name, std::vector<int64_t> shape,
                       unsigned bits, unsigned banks) {
            return std::make_unique<RegisterFile>(name, std::move(shape),
                                                  bits, banks);
        });
    registerMemoryKind(
        "DRAM", [](const std::string &name, std::vector<int64_t> shape,
                   unsigned bits, unsigned banks) {
            return std::make_unique<DramMem>(name, std::move(shape), bits,
                                             banks);
        });
}

void
ComponentFactory::registerMemoryKind(const std::string &kind,
                                     MemoryMaker maker)
{
    _memoryKinds[kind] = std::move(maker);
}

bool
ComponentFactory::hasMemoryKind(const std::string &kind) const
{
    return _memoryKinds.count(kind) > 0;
}

std::unique_ptr<Memory>
ComponentFactory::makeMemory(const std::string &kind,
                             const std::string &name,
                             std::vector<int64_t> shape, unsigned data_bits,
                             unsigned banks) const
{
    auto it = _memoryKinds.find(kind);
    if (it == _memoryKinds.end())
        eq_fatal("unknown memory kind '", kind,
                 "'; register it with ComponentFactory::registerMemoryKind");
    return it->second(name, std::move(shape), data_bits, banks);
}

} // namespace sim
} // namespace eq
