/**
 * @file
 * Internal engine declarations shared by the engine's translation
 * units. Not part of the user-facing API (include sim/engine.hh for
 * that). The engine is split into cohesive units:
 *
 *  - event_core.cc: the discrete-event heap, event lifecycle,
 *    dependency subscription, and processor issue queues (§III-D).
 *  - elaborate.cc:  shared elaboration cores for structure ops that
 *    build the modeled hardware (create_proc/dma/mem/comp/..., alloc),
 *    plus the interpreter's thin handler wrappers.
 *  - interp.cc:     block interpretation — dense value-numbered SSA
 *    environments, control flow, and the OpId dispatch table.
 *  - handlers.cc:   per-op handlers for compute, data movement, and
 *    event ops, plus the data-motion cores both backends share.
 *  - compile.cc:    ModuleCompiler — lowers a scope once into a dense
 *    micro-op stream (sim/compile.hh) for the compiled backend.
 *  - compiled_exec.cc: the compiled backend's dispatch loop.
 *  - engine.cc:     the Simulator facade and report generation.
 *
 * Dispatch is table-driven: the interpreter finds every op kind's
 * handler by indexing a per-run table with the op's interned OpId (see
 * ir/opid.hh); the compiled backend goes further and pre-lowers the
 * OpId to a dense opcode at compile time. Neither hot path performs
 * string comparisons.
 */

#ifndef EQ_SIM_ENGINE_IMPL_HH
#define EQ_SIM_ENGINE_IMPL_HH

#include <algorithm>
#include <array>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/inline_function.hh"
#include "base/logging.hh"
#include "sim/compile.hh"
#include "sim/costmodel.hh"
#include "sim/engine.hh"

namespace eq {
namespace sim {

class BlockExec;

/** Scheduled-work callback. Small-buffer-optimized: the engine's
 *  callbacks capture at most a this-pointer and a few counters, so
 *  scheduling a suspended op never allocates (ROADMAP "Event-core
 *  allocation pressure"). */
using SchedFn = InlineFunction<void()>;
/** Event-completion callback (receives the completion time). */
using DoneFn = InlineFunction<void(Cycles)>;

/**
 * Dense value environment for one numbering scope (an interpreted
 * block tree: the module top level or a launch body). Values resolve
 * to slots assigned at region entry (Simulator::Impl::scopeFor);
 * launch bodies chain to their creator's environment so lazily
 * captured and published values resolve across launches.
 */
struct Env {
    uint32_t scopeId = 0;
    std::vector<SimValue> slots;
    std::shared_ptr<Env> parent;

    /** Resolve @p v along the scope chain; null when unbound. */
    const SimValue *
    find(const ir::ValueImpl *v) const
    {
        for (const Env *e = this; e; e = e->parent.get()) {
            if (e->scopeId == v->interpScope) {
                const SimValue &s = e->slots[v->interpSlot];
                return s.isNone() ? nullptr : &s;
            }
        }
        return nullptr;
    }

    /** Bind @p v in whichever chained scope owns it. */
    void
    bind(const ir::ValueImpl *v, SimValue s)
    {
        for (Env *e = this; e; e = e->parent.get()) {
            if (e->scopeId == v->interpScope) {
                e->slots[v->interpSlot] = std::move(s);
                return;
            }
        }
        eq_panic("binding a value outside every active scope");
    }
};

using EnvPtr = std::shared_ptr<Env>;

/**
 * A suspended/executing block program, owned by the engine for the
 * duration of a run. Both backends implement this: BlockExec walks the
 * IR, CompiledExec runs a pre-lowered micro-op stream. The event core
 * only ever needs to (re)enter execution at a simulation time.
 */
class ExecBase {
  public:
    virtual ~ExecBase() = default;

    /** (Re-)enter execution at simulation time @p t. */
    virtual void resume(Cycles t) = 0;

    void
    start(Cycles t)
    {
        resume(t);
    }
};

/** A scheduled/executing event (§III-D): launch, memcpy, or control. */
struct Event {
    enum class Kind { Start, And, Or, Launch, Memcpy };

    EventId id = 0;
    Kind kind = Kind::Start;
    std::vector<EventId> deps;

    // Launch / memcpy payload.
    ir::Operation *op = nullptr;
    Processor *proc = nullptr;
    EnvPtr creatorEnv;
    /** Compiled backend: the launch body's pre-lowered program, set by
     *  the Launch micro-op so issue needs no cache lookup. */
    const CompiledBlock *bodyProg = nullptr;
    // Memcpy payload (resolved at creation).
    BufferObj *src = nullptr;
    BufferObj *dst = nullptr;
    Connection *conn = nullptr;

    bool done = false;
    bool issueSubscribed = false;
    Cycles createdAt = 0;
    Cycles startTime = 0;
    Cycles doneTime = 0;
    std::vector<SimValue> results;
    std::vector<DoneFn> onDone;
};

/**
 * Interprets one block (the module top level or a launch body) on a
 * processor. Executes ops in order; 0-cost ops run inline, timed ops
 * suspend via the engine heap; blocking ops (await, stream reads, queue
 * stalls) subscribe to wakeups. Per-op behavior lives in handler member
 * functions dispatched through the engine's OpId-indexed table.
 */
class BlockExec : public ExecBase {
  public:
    BlockExec(Simulator::Impl &eng, Event *ev, Processor *proc,
              ir::Block *block, EnvPtr env)
        : _eng(eng), _event(ev), _proc(proc), _env(std::move(env))
    {
        _frames.push_back(Frame{block, block->begin(), nullptr, 0, {}});
    }

    /** Re-enter interpretation at simulation time @p t. */
    void resume(Cycles t) override;

    enum class Step { Continue, Suspend, Finished };
    /** Handler for one op kind; the dispatch table stores these. */
    using Handler = Step (BlockExec::*)(ir::Operation *, Cycles &);

    /// @name Op handlers (elaborate.cc)
    /// @{
    Step execCreateProc(ir::Operation *op, Cycles &now);
    Step execCreateDma(ir::Operation *op, Cycles &now);
    Step execCreateMem(ir::Operation *op, Cycles &now);
    Step execCreateStream(ir::Operation *op, Cycles &now);
    Step execCreateConnection(ir::Operation *op, Cycles &now);
    Step execCreateOrAddComp(ir::Operation *op, Cycles &now);
    Step execGetComp(ir::Operation *op, Cycles &now);
    Step execAlloc(ir::Operation *op, Cycles &now);
    Step execDealloc(ir::Operation *op, Cycles &now);
    /// @}

    /// @name Op handlers (interp.cc: control flow)
    /// @{
    Step execAffineFor(ir::Operation *op, Cycles &now);
    Step execAffineParallel(ir::Operation *op, Cycles &now);
    Step execAffineYield(ir::Operation *op, Cycles &now);
    Step execNestedModule(ir::Operation *op, Cycles &now);
    /// @}

    /// @name Op handlers (handlers.cc: compute, data motion, events)
    /// @{
    Step execArithConstant(ir::Operation *op, Cycles &now);
    Step execAddI(ir::Operation *op, Cycles &now);
    Step execSubI(ir::Operation *op, Cycles &now);
    Step execMulI(ir::Operation *op, Cycles &now);
    Step execDivSI(ir::Operation *op, Cycles &now);
    Step execRemSI(ir::Operation *op, Cycles &now);
    Step execAddF(ir::Operation *op, Cycles &now);
    Step execMulF(ir::Operation *op, Cycles &now);
    Step execArithUnsupported(ir::Operation *op, Cycles &now);
    Step execAffineLoadStore(ir::Operation *op, Cycles &now);
    Step execLinalg(ir::Operation *op, Cycles &now);
    Step execRead(ir::Operation *op, Cycles &now);
    Step execWrite(ir::Operation *op, Cycles &now);
    Step execStreamRead(ir::Operation *op, Cycles &now);
    Step execStreamWrite(ir::Operation *op, Cycles &now);
    Step execControlStart(ir::Operation *op, Cycles &now);
    Step execControlAndOr(ir::Operation *op, Cycles &now);
    Step execLaunch(ir::Operation *op, Cycles &now);
    Step execMemcpy(ir::Operation *op, Cycles &now);
    Step execAwait(ir::Operation *op, Cycles &now);
    Step execReturn(ir::Operation *op, Cycles &now);
    Step execExtern(ir::Operation *op, Cycles &now);
    /// @}

  private:
    friend struct Simulator::Impl;

    struct Frame {
        ir::Block *block;
        ir::Block::iterator it;
        ir::Operation *loop; ///< owning affine.for/parallel, if any
        int64_t iv;          ///< affine.for induction value
        std::vector<int64_t> ivs; ///< affine.parallel induction values
    };

    Step dispatch(ir::Operation *op, Cycles &now);
    Step handleLoopEnd(Cycles &now);
    void finish(Cycles t);

    // Inline hot helpers (defined below, after Simulator::Impl).
    SimValue eval(ir::Value v) const;
    void bind(ir::Value v, SimValue s);
    Step advanceAfter(ir::Operation *op, Cycles &now, Cycles start,
                      Cycles cycles);
    Cycles opCost(ir::Operation *op) const;
    std::string traceLabel(ir::Operation *op) const;

    /** Advance the instruction pointer past a 0-cost op. */
    Step
    advanceFree()
    {
        ++_frames.back().it;
        return Step::Continue;
    }

    Simulator::Impl &_eng;
    Event *_event;    ///< null for the module top level
    Processor *_proc; ///< executing processor (root proc at top level)
    EnvPtr _env;
    std::vector<Frame> _frames;
    std::vector<EventId> _spawned;
    bool _finished = false;
};

struct Simulator::Impl {
    EngineOptions opts;
    /** Resolved execution backend (never Backend::Auto). */
    Backend backend = Backend::Interp;
    /** Resolved superinstruction-fusion switch (never Fusion::Auto);
     *  only consulted on the compiled backend. */
    bool fuse = true;
    Trace traceData;
    OpFunctionRegistry opFns;
    ComponentFactory factory;

    // --- environment pool ---------------------------------------------
    /** Resolved EQ_SIM_ENV_POOL escape hatch (default: on). */
    bool envPool = true;
    /** Recycled interpretation environments, free-listed by slot count
     *  so a reacquired env's slot vector needs no reallocation. Every
     *  launch issue draws from here instead of allocating (the hottest
     *  allocation site in launch-dense workloads); envs return via
     *  their shared_ptr deleter as soon as the last reference drops —
     *  typically when the launch completes, not at end of run. The
     *  pool deliberately survives reset() so batched re-runs of a
     *  pinned module reach steady state with zero env allocation.
     *  Declared before the per-run state below: member destruction
     *  runs in reverse order, so env deleters fired while events/execs
     *  tear down always find the pool alive (pooled envs hold no
     *  parent refs, so draining the pool itself never re-enters it). */
    std::unordered_map<uint32_t, std::vector<std::unique_ptr<Env>>>
        envFreeList;
    /** Pooled replacement for make_shared<Env>: an env of @p num_slots
     *  cleared slots, chained onto @p parent, returned to the free
     *  list when released. */
    EnvPtr acquireEnv(uint32_t scope_id, uint32_t num_slots,
                      EnvPtr parent);
    /** Deleter target of pooled envs (interp.cc). */
    void recycleEnv(Env *e);

    // --- per-run dispatch state ---------------------------------------
    /** Handler table indexed by OpId::raw(); null = uninterpretable. */
    std::vector<BlockExec::Handler> handlers;
    /** OpId::raw() -> dense compiled opcode (MOp::Bad when the op has
     *  no handler); built alongside @ref handlers, consumed by the
     *  ModuleCompiler. */
    std::vector<MOp> opcodes;
    /** (CostClass, OpId) -> processor occupancy cycles;
     *  CostModel::kDynamic defers to linalgCycles at execution time. */
    std::array<std::vector<Cycles>, kNumCostClasses> costTable;
    /** Ids the interpreter compares against (resolved per run). */
    ir::OpId idAffineFor, idAffineParallel, idAffineStore, idControlAnd,
        idAddComp, idExtractComp, idEqueueAlloc, idExtern, idLaunch,
        idConv, idFill, idMatmul;

    /** Build the dispatch/cost tables for @p ctx (interp.cc). */
    void buildDispatchTable(ir::Context &ctx);

    // --- value numbering ----------------------------------------------
    struct ValueScope {
        uint32_t scopeId;
        uint32_t numSlots;
    };
    /** Numbered interpretation scopes, keyed by root block. */
    std::unordered_map<ir::Block *, ValueScope> valueScopes;
    /** Scope id source; never reset so stale ValueImpl numbering from
     *  earlier runs can never alias a live scope. 0 = "unnumbered". */
    uint32_t nextScopeId = 1;
    /** Context the dispatch/cost tables were built against; batched
     *  runs reuse the tables while this matches the module's context
     *  and no new op names were interned since. */
    ir::Context *dispatchCtx = nullptr;

    /** Slot-number @p root (cached); assigns ValueImpl::interpScope and
     *  interpSlot across the whole inline-interpreted block tree. */
    const ValueScope &scopeFor(ir::Block *root);
    /** Fresh environment for @p root chained onto @p parent. */
    EnvPtr makeEnv(ir::Block *root, EnvPtr parent);

    // --- compiled backend ---------------------------------------------
    /** Compiled micro-op programs, keyed by scope root block. Cached
     *  and invalidated exactly like @ref valueScopes (the program
     *  embeds the scope's slot assignment): batched re-runs of a
     *  pinned module reuse them, a full reset clears them. */
    std::unordered_map<ir::Block *, std::unique_ptr<CompiledBlock>>
        programs;
    /** Lower @p root once (cached); see compile.cc. */
    const CompiledBlock &programFor(ir::Block *root);

    /** Fusion-optimized programs (sim/fuse.cc), cached and invalidated
     *  exactly like @ref programs; launch-body children are optimized
     *  first so parents pin the optimized child on Launch records. */
    std::unordered_map<ir::Block *, std::unique_ptr<CompiledBlock>>
        fusedPrograms;
    /** Optimize @p root's program once (cached); see fuse.cc. */
    const CompiledBlock &fusedProgramFor(ir::Block *root);

    /** The program the compiled backend should execute for @p root:
     *  the fusion-optimized stream when fusion is on, the plain
     *  lowered stream otherwise. */
    const CompiledBlock &
    execProgramFor(ir::Block *root)
    {
        return fuse ? fusedProgramFor(root) : programFor(root);
    }

    // --- per-run simulation state -------------------------------------
    std::vector<std::unique_ptr<Component>> components;
    std::vector<std::unique_ptr<BufferObj>> buffers;
    /** Owned by value in a deque: addresses are push-stable and a new
     *  event costs no separate allocation (events are created per
     *  launch/memcpy/control op — the hottest allocation site in
     *  event-dense workloads). */
    std::deque<Event> events;
    std::vector<std::unique_ptr<ExecBase>> execs;
    std::unordered_map<StreamFifo *, std::vector<SchedFn>> streamWaiters;
    std::unique_ptr<Processor> rootProc;

    /** One pending heap entry. The callback is an SBO functor, and the
     *  heap is a hand-rolled binary heap over a plain vector (rather
     *  than std::priority_queue, whose const top() would force a copy
     *  of the move-only callback on every pop). */
    struct HeapItem {
        Cycles t;
        uint64_t seq;
        SchedFn fn;
    };
    /** Min-ordering on (time, sequence) for push_heap/pop_heap. */
    struct HeapAfter {
        bool
        operator()(const HeapItem &a, const HeapItem &b) const
        {
            return std::tie(a.t, a.seq) > std::tie(b.t, b.seq);
        }
    };
    std::vector<HeapItem> heap;
    /** Same-time FIFO: work scheduled for the current cycle. Launch
     *  issue, launch completion re-issue, and stream notification all
     *  schedule at `now`, so the common launch-issue round-trip was a
     *  heap push + pop at an unchanged time; routing those items here
     *  makes them O(1) deque traffic instead. Items are appended with
     *  t == now and `now` is monotone, so the deque is always sorted
     *  by (t, seq) and runHeap() can merge it against the heap by the
     *  exact same ordering — the total execution order (and therefore
     *  every trace byte) is identical to the single-heap schedule. */
    std::deque<HeapItem> nowQ;
    uint64_t seqCounter = 0;
    Cycles now = 0;
    Cycles endTime = 0;
    uint64_t eventsExecuted = 0;
    uint64_t opsExecuted = 0;
    /** Counted dispatches: how many times the execution loop entered a
     *  counted unit of work. One per interpreted op (interp), one per
     *  counted micro-op record (compiled) — so it equals opsExecuted on
     *  both — and one per superinstruction group with fusion on, where
     *  it drops strictly below opsExecuted (the fusion win, surfaced in
     *  SimReport::dispatchCount). */
    uint64_t dispatchCount = 0;
    std::unordered_map<std::string, int> nameCounters;

    // --- event core (event_core.cc) -----------------------------------
    /** Clear per-run simulation state. Value numbering survives when
     *  @p keep_numbering is set (batched re-runs of a pinned, unchanged
     *  module); a full reset must clear it because destroyed blocks
     *  from an earlier module could alias new block addresses. */
    void reset(bool keep_numbering = false);
    std::string freshName(const std::string &base);

    void
    scheduleAt(Cycles t, SchedFn fn)
    {
        if (t == now) {
            nowQ.push_back({t, seqCounter++, std::move(fn)});
            return;
        }
        heap.push_back({t, seqCounter++, std::move(fn)});
        std::push_heap(heap.begin(), heap.end(), HeapAfter{});
    }

    /** True when no scheduled work exists at or before @p end: the
     *  gate for every time-advance fast path. A non-empty nowQ always
     *  blocks (its items fire at a time <= now <= end). */
    bool
    nothingPendingBefore(Cycles end) const
    {
        return nowQ.empty() && (heap.empty() || heap.front().t > end);
    }

    void
    noteActivity(Cycles t)
    {
        endTime = std::max(endTime, t);
    }

    Event *newEvent(Event::Kind kind, Cycles t);

    Event *
    event(EventId id)
    {
        eq_assert(id < events.size(), "bad event id");
        return &events[id];
    }

    void completeEvent(Event *ev, Cycles t);

    /** Invoke @p fn(max completion time) once all of @p ids are done. */
    void whenAllDone(const std::vector<EventId> &ids, DoneFn fn);
    /** Invoke @p fn(first completion time) once any of @p ids is done. */
    void whenAnyDone(const std::vector<EventId> &ids, DoneFn fn);

    void enqueueOnProcessor(Event *ev, Cycles t);
    void tryIssue(Processor *proc, Cycles t);
    void issueLaunch(Event *ev, Cycles t);
    void issueMemcpy(Event *ev, Cycles t);
    void notifyStream(StreamFifo *fifo);
    void runHeap();

    /** Launch-body completion shared by both backends: publish the
     *  body's return values into the creator environment, complete the
     *  launch event, free the processor, and poke its issue queue. */
    void finishLaunch(Event *ev, Processor *proc, Cycles t);

    // --- elaboration cores (elaborate.cc) -----------------------------
    // Structure-op semantics shared by both backends; the executors
    // evaluate operands their own way, bind the returned value, and
    // advance for free (§III-A: structure ops describe hardware, they
    // do not execute on it).
    SimValue elabCreateProc(ir::Operation *op);
    SimValue elabCreateDma();
    SimValue elabCreateMem(ir::Operation *op);
    SimValue elabCreateStream(ir::Operation *op);
    SimValue elabCreateConnection(ir::Operation *op);
    /** create_comp / add_comp; @p args are the evaluated operands (for
     *  add_comp, args[0] is the existing composite). Returns the new
     *  composite for create_comp, None for add_comp. */
    SimValue elabCreateOrAddComp(ir::Operation *op, const SimValue *args,
                                 size_t nargs, bool is_add);
    SimValue elabGetComp(Component *comp, const std::string &child_name);
    /** @p mem is null for memref.alloc (host allocation). */
    SimValue elabAlloc(ir::Operation *op, Memory *mem);

    // --- data-motion cores (handlers.cc) ------------------------------
    /** The mem-acquire + connection-acquire sequence shared by
     *  equeue.read/write and affine.load/store: reserves a memory bank
     *  and (optionally) a link channel, records traffic, and returns
     *  the cycle the access starts issuing. */
    Cycles bufferAccessStart(BufferObj *buf, Connection *conn,
                             bool is_write, int64_t words, int64_t bytes,
                             Cycles now);
    /** Push @p elems into @p fifo through optional @p conn; elements
     *  become visible at the connection-shaped arrival time. */
    void streamPush(StreamFifo *fifo, Connection *conn,
                    const std::vector<int64_t> &elems, Cycles now);

    // --- linalg functional semantics (handlers.cc) --------------------
    void linalgConvCompute(ir::Operation *op, BufferObj *ib,
                           BufferObj *wb, BufferObj *ob);
    void linalgFillCompute(ir::Operation *op, BufferObj *b);
    void linalgMatmulCompute(BufferObj *a, BufferObj *bm, BufferObj *c);

    // --- cost & trace -------------------------------------------------
    /** Table-driven per-op cost; no strings on this path. */
    Cycles
    opCost(Processor *proc, ir::Operation *op) const
    {
        unsigned cls = proc ? static_cast<unsigned>(proc->costClass())
                            : static_cast<unsigned>(CostClass::Root);
        Cycles c = costTable[cls][op->opId().raw()];
        if (c == CostModel::kDynamic)
            c = CostModel::linalgCycles(op);
        return c;
    }

    void
    recordTrace(const std::string &op_name, Processor *proc, Cycles start,
                Cycles dur, const char *cat = "operation")
    {
        if (!traceData.enabled())
            return;
        TraceEvent e;
        e.name = op_name;
        e.cat = cat;
        e.pid = proc->parent() ? proc->parent()->path() : "top";
        e.tid = proc->name();
        e.ts = start;
        e.dur = dur;
        traceData.record(e);
    }

    /** Bulk-transfer occupancy of a memory: words striped over banks. */
    static Cycles
    bulkMemCycles(Memory *mem, int64_t words, bool is_write)
    {
        Cycles per = mem->getReadOrWriteCycles(is_write, words);
        unsigned banks = std::max(1u, mem->numQueues());
        return (per + banks - 1) / banks;
    }

    SimReport buildReport(double wall_seconds) const;

    /** One simulation of @p module (engine.cc). With @p reuse_compiled
     *  the dispatch/cost tables survive when still valid (same context,
     *  no new interned names) and the value numbering survives too —
     *  only safe when the previous run interpreted this same,
     *  still-alive, unmodified module: a fresh module's blocks (or a
     *  fresh context) could alias destroyed ones, so first runs must
     *  pass false and rebuild everything. */
    SimReport runModule(ir::Operation *module, bool reuse_compiled);
};

// ---------------------------------------------------------------------------
// BlockExec inline hot helpers (need the complete Impl)

inline SimValue
BlockExec::eval(ir::Value v) const
{
    const SimValue *s = _env->find(v.impl());
    eq_assert(s, "use of value with no runtime binding (op '",
              v.definingOp() ? v.definingOp()->name() : "blockarg",
              "'): likely a missing event dependency");
    return *s;
}

inline void
BlockExec::bind(ir::Value v, SimValue s)
{
    _env->bind(v.impl(), std::move(s));
}

inline Cycles
BlockExec::opCost(ir::Operation *op) const
{
    return _eng.opCost(_proc, op);
}

/**
 * Account for an op that occupies the processor from @p start for
 * @p cycles. Advances the instruction pointer; suspends when the op
 * ends later than @p now *and* another event is pending first. When
 * this block's wake-up would be the very next heap pop anyway (every
 * pending item is strictly later, and ties at `end` run older-first),
 * time advances in place and interpretation continues without the
 * scheduler round-trip — the same fast path the compiled backend's
 * chargeAfter takes (ROADMAP "Interpreter time-advance fast path").
 * Relative ordering of all other heap items is untouched, so traces
 * stay byte-identical.
 */
inline BlockExec::Step
BlockExec::advanceAfter(ir::Operation *op, Cycles &now, Cycles start,
                        Cycles cycles)
{
    Cycles end = start + cycles;
    if (_proc) {
        _proc->recordBusy(cycles);
        _proc->recordOp();
        if (_eng.traceData.enabled()) {
            if (start > now)
                _eng.recordTrace("stall", _proc, now, start - now,
                                 "stall");
            if (cycles > 0)
                _eng.recordTrace(traceLabel(op), _proc, start, cycles);
        }
    }
    _eng.noteActivity(end);
    ++_frames.back().it;
    if (end > now) {
        if (_eng.nothingPendingBefore(end)) {
            _eng.now = end;
            now = end;
            return Step::Continue;
        }
        _eng.scheduleAt(end, [this, end] { resume(end); });
        return Step::Suspend;
    }
    return Step::Continue;
}

inline std::string
BlockExec::traceLabel(ir::Operation *op) const
{
    if (op->opId() == _eng.idExtern)
        return op->strAttr("signature");
    return op->name();
}

} // namespace sim
} // namespace eq

#endif // EQ_SIM_ENGINE_IMPL_HH
