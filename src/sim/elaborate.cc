/**
 * @file
 * Handlers for structure ops: elaboration of the modeled hardware
 * hierarchy (processors, memories, DMAs, connections, streams,
 * composite components) and buffer allocation. These run at zero cost —
 * they describe hardware, they do not execute on it (§III-A).
 */

#include "base/stringutil.hh"
#include "dialects/equeue.hh"
#include "dialects/memref.hh"
#include "sim/engine_impl.hh"

namespace eq {
namespace sim {

BlockExec::Step
BlockExec::execCreateProc(ir::Operation *op, Cycles &now)
{
    (void)now;
    auto proc = std::make_unique<Processor>(
        _eng.freshName("proc"), equeue::CreateProcOp(op).kind());
    bind(op->result(0), SimValue::ofComponent(proc.get()));
    _eng.components.push_back(std::move(proc));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateDma(ir::Operation *op, Cycles &now)
{
    (void)now;
    auto dma = std::make_unique<Dma>(_eng.freshName("dma"));
    bind(op->result(0), SimValue::ofComponent(dma.get()));
    _eng.components.push_back(std::move(dma));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateMem(ir::Operation *op, Cycles &now)
{
    (void)now;
    equeue::CreateMemOp mem_op(op);
    auto mem = _eng.factory.makeMemory(
        mem_op.kind(), _eng.freshName("mem"), mem_op.shape(),
        mem_op.dataBits(), mem_op.banks());
    bind(op->result(0), SimValue::ofComponent(mem.get()));
    _eng.components.push_back(std::move(mem));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateStream(ir::Operation *op, Cycles &now)
{
    (void)now;
    auto fifo = std::make_unique<StreamFifo>(
        _eng.freshName("stream"),
        static_cast<unsigned>(op->intAttrOr("data_bits", 32)));
    bind(op->result(0), SimValue::ofStream(fifo.get()));
    _eng.components.push_back(std::move(fifo));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateConnection(ir::Operation *op, Cycles &now)
{
    (void)now;
    equeue::CreateConnectionOp conn_op(op);
    auto conn = std::make_unique<Connection>(
        _eng.freshName("conn"), conn_op.kind(), conn_op.bandwidth());
    bind(op->result(0), SimValue::ofConnection(conn.get()));
    _eng.components.push_back(std::move(conn));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateOrAddComp(ir::Operation *op, Cycles &now)
{
    (void)now;
    bool is_add = op->opId() == _eng.idAddComp;
    Component *comp;
    unsigned first_sub = 0;
    if (is_add) {
        comp = eval(op->operand(0)).asComponent();
        first_sub = 1;
    } else {
        auto owned = std::make_unique<Component>(_eng.freshName("comp"));
        comp = owned.get();
        _eng.components.push_back(std::move(owned));
    }
    std::vector<std::string> names = split(op->strAttr("names"), ' ');
    for (unsigned i = first_sub; i < op->numOperands(); ++i) {
        SimValue sub = eval(op->operand(i));
        Component *child = sub.isStream()
                               ? static_cast<Component *>(sub.asStream())
                               : sub.asComponent();
        comp->addChild(names[i - first_sub], child);
    }
    if (!is_add)
        bind(op->result(0), SimValue::ofComponent(comp));
    return advanceFree();
}

BlockExec::Step
BlockExec::execGetComp(ir::Operation *op, Cycles &now)
{
    (void)now;
    Component *comp = eval(op->operand(0)).asComponent();
    std::string child_name =
        op->opId() == _eng.idExtractComp
            ? equeue::ExtractCompOp(op).resolvedName()
            : op->strAttr("name");
    Component *child = comp->child(child_name);
    if (!child)
        eq_fatal("get_comp: no subcomponent named '", child_name, "' in ",
                 comp->path());
    bind(op->result(0), SimValue::ofComponent(child));
    return advanceFree();
}

BlockExec::Step
BlockExec::execAlloc(ir::Operation *op, Cycles &now)
{
    (void)now;
    ir::Type bt = op->result(0).type();
    auto buf = std::make_unique<BufferObj>();
    buf->data = Tensor::zeros(bt.shape(), bt.elemBits());
    if (op->opId() == _eng.idEqueueAlloc)
        buf->mem =
            static_cast<Memory *>(eval(op->operand(0)).asComponent());
    buf->label = _eng.freshName("buf");
    bind(op->result(0), SimValue::ofBuffer(buf.get()));
    _eng.buffers.push_back(std::move(buf));
    return advanceFree();
}

BlockExec::Step
BlockExec::execDealloc(ir::Operation *op, Cycles &now)
{
    (void)op;
    (void)now;
    return advanceFree();
}

} // namespace sim
} // namespace eq
