/**
 * @file
 * Elaboration of the modeled hardware hierarchy (processors, memories,
 * DMAs, connections, streams, composite components) and buffer
 * allocation. These run at zero cost — they describe hardware, they do
 * not execute on it (§III-A).
 *
 * The op semantics live in Simulator::Impl::elab* cores shared by both
 * execution backends; the BlockExec handlers below are the
 * interpreter's thin wrappers (the compiled backend calls the cores
 * from its own dispatch loop in compiled_exec.cc).
 */

#include "base/stringutil.hh"
#include "dialects/equeue.hh"
#include "dialects/memref.hh"
#include "sim/engine_impl.hh"

namespace eq {
namespace sim {

// ---------------------------------------------------------------------------
// Shared elaboration cores

SimValue
Simulator::Impl::elabCreateProc(ir::Operation *op)
{
    auto proc = std::make_unique<Processor>(
        freshName("proc"), equeue::CreateProcOp(op).kind());
    SimValue v = SimValue::ofComponent(proc.get());
    components.push_back(std::move(proc));
    return v;
}

SimValue
Simulator::Impl::elabCreateDma()
{
    auto dma = std::make_unique<Dma>(freshName("dma"));
    SimValue v = SimValue::ofComponent(dma.get());
    components.push_back(std::move(dma));
    return v;
}

SimValue
Simulator::Impl::elabCreateMem(ir::Operation *op)
{
    equeue::CreateMemOp mem_op(op);
    auto mem =
        factory.makeMemory(mem_op.kind(), freshName("mem"),
                           mem_op.shape(), mem_op.dataBits(),
                           mem_op.banks());
    SimValue v = SimValue::ofComponent(mem.get());
    components.push_back(std::move(mem));
    return v;
}

SimValue
Simulator::Impl::elabCreateStream(ir::Operation *op)
{
    auto fifo = std::make_unique<StreamFifo>(
        freshName("stream"),
        static_cast<unsigned>(op->intAttrOr("data_bits", 32)));
    SimValue v = SimValue::ofStream(fifo.get());
    components.push_back(std::move(fifo));
    return v;
}

SimValue
Simulator::Impl::elabCreateConnection(ir::Operation *op)
{
    equeue::CreateConnectionOp conn_op(op);
    auto conn = std::make_unique<Connection>(
        freshName("conn"), conn_op.kind(), conn_op.bandwidth());
    SimValue v = SimValue::ofConnection(conn.get());
    components.push_back(std::move(conn));
    return v;
}

SimValue
Simulator::Impl::elabCreateOrAddComp(ir::Operation *op,
                                     const SimValue *args, size_t nargs,
                                     bool is_add)
{
    Component *comp;
    size_t first_sub = 0;
    if (is_add) {
        comp = args[0].asComponent();
        first_sub = 1;
    } else {
        auto owned = std::make_unique<Component>(freshName("comp"));
        comp = owned.get();
        components.push_back(std::move(owned));
    }
    std::vector<std::string> names = split(op->strAttr("names"), ' ');
    for (size_t i = first_sub; i < nargs; ++i) {
        const SimValue &sub = args[i];
        Component *child = sub.isStream()
                               ? static_cast<Component *>(sub.asStream())
                               : sub.asComponent();
        comp->addChild(names[i - first_sub], child);
    }
    return is_add ? SimValue() : SimValue::ofComponent(comp);
}

SimValue
Simulator::Impl::elabGetComp(Component *comp,
                             const std::string &child_name)
{
    Component *child = comp->child(child_name);
    if (!child)
        eq_fatal("get_comp: no subcomponent named '", child_name,
                 "' in ", comp->path());
    return SimValue::ofComponent(child);
}

SimValue
Simulator::Impl::elabAlloc(ir::Operation *op, Memory *mem)
{
    ir::Type bt = op->result(0).type();
    auto buf = std::make_unique<BufferObj>();
    buf->data = Tensor::zeros(bt.shape(), bt.elemBits());
    buf->mem = mem;
    buf->label = freshName("buf");
    SimValue v = SimValue::ofBuffer(buf.get());
    buffers.push_back(std::move(buf));
    return v;
}

// ---------------------------------------------------------------------------
// Interpreter wrappers

BlockExec::Step
BlockExec::execCreateProc(ir::Operation *op, Cycles &now)
{
    (void)now;
    bind(op->result(0), _eng.elabCreateProc(op));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateDma(ir::Operation *op, Cycles &now)
{
    (void)now;
    bind(op->result(0), _eng.elabCreateDma());
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateMem(ir::Operation *op, Cycles &now)
{
    (void)now;
    bind(op->result(0), _eng.elabCreateMem(op));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateStream(ir::Operation *op, Cycles &now)
{
    (void)now;
    bind(op->result(0), _eng.elabCreateStream(op));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateConnection(ir::Operation *op, Cycles &now)
{
    (void)now;
    bind(op->result(0), _eng.elabCreateConnection(op));
    return advanceFree();
}

BlockExec::Step
BlockExec::execCreateOrAddComp(ir::Operation *op, Cycles &now)
{
    (void)now;
    bool is_add = op->opId() == _eng.idAddComp;
    std::vector<SimValue> args;
    args.reserve(op->numOperands());
    for (unsigned i = 0; i < op->numOperands(); ++i)
        args.push_back(eval(op->operand(i)));
    SimValue r =
        _eng.elabCreateOrAddComp(op, args.data(), args.size(), is_add);
    if (!is_add)
        bind(op->result(0), r);
    return advanceFree();
}

BlockExec::Step
BlockExec::execGetComp(ir::Operation *op, Cycles &now)
{
    (void)now;
    Component *comp = eval(op->operand(0)).asComponent();
    std::string child_name =
        op->opId() == _eng.idExtractComp
            ? equeue::ExtractCompOp(op).resolvedName()
            : op->strAttr("name");
    bind(op->result(0), _eng.elabGetComp(comp, child_name));
    return advanceFree();
}

BlockExec::Step
BlockExec::execAlloc(ir::Operation *op, Cycles &now)
{
    (void)now;
    Memory *mem =
        op->opId() == _eng.idEqueueAlloc
            ? static_cast<Memory *>(eval(op->operand(0)).asComponent())
            : nullptr;
    bind(op->result(0), _eng.elabAlloc(op, mem));
    return advanceFree();
}

BlockExec::Step
BlockExec::execDealloc(ir::Operation *op, Cycles &now)
{
    (void)op;
    (void)now;
    return advanceFree();
}

} // namespace sim
} // namespace eq
