/**
 * @file
 * Block interpretation: dense value-numbered SSA environments, the
 * resume/suspend execution loop, loop control flow, and construction of
 * the OpId-indexed dispatch and cost tables.
 *
 * Value numbering: each interpreted block tree (the module top level or
 * a launch body) is one *scope*. At first entry the tree is walked once
 * and every op result and block argument is assigned a dense slot
 * (ValueImpl::interpScope/interpSlot); the runtime environment is then
 * a plain vector indexed by slot, replacing per-value map lookups.
 * Launch regions are excluded — they are their own scopes, numbered
 * when first launched — but affine loop bodies and nested modules
 * execute inline and share the enclosing scope (loop iterations reuse
 * the same slots).
 */

#include "base/stringutil.hh"
#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "dialects/linalg.hh"
#include "dialects/memref.hh"
#include "sim/engine_impl.hh"

namespace eq {
namespace sim {

// ---------------------------------------------------------------------------
// Value numbering

namespace {

/** Assign slots to every value in @p block's inline-interpreted tree;
 *  returns the next free slot. */
uint32_t
numberBlock(ir::Block *block, uint32_t scope_id, uint32_t next_slot,
            ir::OpId launch_id)
{
    for (unsigned i = 0; i < block->numArguments(); ++i) {
        ir::ValueImpl *impl = block->argument(i).impl();
        impl->interpScope = scope_id;
        impl->interpSlot = next_slot++;
    }
    for (ir::Operation *op : *block) {
        for (ir::Value r : op->results()) {
            r.impl()->interpScope = scope_id;
            r.impl()->interpSlot = next_slot++;
        }
        if (op->opId() == launch_id)
            continue; // launch bodies are separate scopes
        for (unsigned r = 0; r < op->numRegions(); ++r)
            for (auto &nested : op->region(r))
                next_slot = numberBlock(nested.get(), scope_id, next_slot,
                                        launch_id);
    }
    return next_slot;
}

} // namespace

const Simulator::Impl::ValueScope &
Simulator::Impl::scopeFor(ir::Block *root)
{
    auto it = valueScopes.find(root);
    if (it != valueScopes.end())
        return it->second;
    uint32_t scope_id = nextScopeId++;
    uint32_t slots = numberBlock(root, scope_id, 0, idLaunch);
    return valueScopes.emplace(root, ValueScope{scope_id, slots})
        .first->second;
}

EnvPtr
Simulator::Impl::makeEnv(ir::Block *root, EnvPtr parent)
{
    const ValueScope &vs = scopeFor(root);
    return acquireEnv(vs.scopeId, vs.numSlots, std::move(parent));
}

EnvPtr
Simulator::Impl::acquireEnv(uint32_t scope_id, uint32_t num_slots,
                            EnvPtr parent)
{
    if (!envPool) {
        // Escape hatch (EQ_SIM_ENV_POOL=0): the pre-pooling per-launch
        // allocation, for bisection.
        auto env = std::make_shared<Env>();
        env->scopeId = scope_id;
        env->slots.resize(num_slots);
        env->parent = std::move(parent);
        return env;
    }
    Env *raw;
    auto it = envFreeList.find(num_slots);
    if (it != envFreeList.end() && !it->second.empty()) {
        raw = it->second.back().release();
        it->second.pop_back();
    } else {
        raw = new Env();
    }
    // Free-listed by slot count, so this resize never reallocates on a
    // recycled env (capacity == num_slots) and default-constructs the
    // slots back to the unbound state.
    raw->scopeId = scope_id;
    raw->slots.resize(num_slots);
    raw->parent = std::move(parent);
    return EnvPtr(raw, [this](Env *e) { recycleEnv(e); });
}

void
Simulator::Impl::recycleEnv(Env *e)
{
    // Drop the chain first: releasing our parent reference may recycle
    // the parent reentrantly, and no free-list reference is held yet
    // at that point. Pooled envs therefore never hold parent refs, so
    // draining the free list itself can never cascade back into it.
    e->parent.reset();
    const auto key = static_cast<uint32_t>(e->slots.size());
    // Keep the slot vector's capacity but release held payloads
    // (tensors, buffers) now rather than at the next acquire.
    e->slots.clear();
    envFreeList[key].emplace_back(e);
}

// ---------------------------------------------------------------------------
// Dispatch table

void
Simulator::Impl::buildDispatchTable(ir::Context &ctx)
{
    dispatchCtx = &ctx;
    // Ids the interpreter's handlers compare against. Resolved before
    // the table is sized, so any name these intern is covered by it.
    idAffineFor = affine::ForOp::id(ctx);
    idAffineParallel = affine::ParallelOp::id(ctx);
    idAffineStore = affine::StoreOp::id(ctx);
    idControlAnd = equeue::ControlAndOp::id(ctx);
    idAddComp = equeue::AddCompOp::id(ctx);
    idExtractComp = equeue::ExtractCompOp::id(ctx);
    idEqueueAlloc = equeue::AllocOp::id(ctx);
    idExtern = equeue::ExternOp::id(ctx);
    idLaunch = equeue::LaunchOp::id(ctx);
    idConv = linalg::ConvOp::id(ctx);
    idFill = linalg::FillOp::id(ctx);
    idMatmul = linalg::MatmulOp::id(ctx);

    handlers.assign(ctx.numInternedOpNames(), nullptr);
    // Built alongside the handlers: the compiled backend's dense
    // opcode per interned op kind (the ModuleCompiler pre-lowers each
    // op's OpId through this table exactly once, at compile time).
    opcodes.assign(ctx.numInternedOpNames(), MOp::Bad);
    auto set = [&](const char *name, BlockExec::Handler h, MOp mop) {
        ir::OpId id = ctx.lookupOpId(name);
        if (id.valid()) {
            handlers[id.raw()] = h;
            opcodes[id.raw()] = mop;
        }
    };

    // Structure (elaborate.cc).
    set(equeue::CreateProcOp::opName, &BlockExec::execCreateProc,
        MOp::CreateProc);
    set(equeue::CreateDmaOp::opName, &BlockExec::execCreateDma,
        MOp::CreateDma);
    set(equeue::CreateMemOp::opName, &BlockExec::execCreateMem,
        MOp::CreateMem);
    set(equeue::CreateStreamOp::opName, &BlockExec::execCreateStream,
        MOp::CreateStream);
    set(equeue::CreateConnectionOp::opName,
        &BlockExec::execCreateConnection, MOp::CreateConnection);
    set(equeue::CreateCompOp::opName, &BlockExec::execCreateOrAddComp,
        MOp::CreateComp);
    set(equeue::AddCompOp::opName, &BlockExec::execCreateOrAddComp,
        MOp::CreateComp);
    set(equeue::GetCompOp::opName, &BlockExec::execGetComp,
        MOp::GetComp);
    set(equeue::ExtractCompOp::opName, &BlockExec::execGetComp,
        MOp::GetComp);
    set(equeue::AllocOp::opName, &BlockExec::execAlloc, MOp::Alloc);
    set(memref::AllocOp::opName, &BlockExec::execAlloc, MOp::Alloc);
    set(equeue::DeallocOp::opName, &BlockExec::execDealloc,
        MOp::Dealloc);
    set(memref::DeallocOp::opName, &BlockExec::execDealloc,
        MOp::Dealloc);

    // Control flow (this file).
    set(affine::ForOp::opName, &BlockExec::execAffineFor,
        MOp::ForBegin);
    set(affine::ParallelOp::opName, &BlockExec::execAffineParallel,
        MOp::ParBegin);
    set(affine::YieldOp::opName, &BlockExec::execAffineYield,
        MOp::Yield);
    set("builtin.module", &BlockExec::execNestedModule,
        MOp::NestedModule);

    // Compute, data motion, events (handlers.cc).
    set(arith::ConstantOp::opName, &BlockExec::execArithConstant,
        MOp::Constant);
    set(arith::AddIOp::opName, &BlockExec::execAddI, MOp::AddI);
    set(arith::SubIOp::opName, &BlockExec::execSubI, MOp::SubI);
    set(arith::MulIOp::opName, &BlockExec::execMulI, MOp::MulI);
    set(arith::DivSIOp::opName, &BlockExec::execDivSI, MOp::DivSI);
    set(arith::RemSIOp::opName, &BlockExec::execRemSI, MOp::RemSI);
    set(arith::AddFOp::opName, &BlockExec::execAddF, MOp::AddF);
    set(arith::MulFOp::opName, &BlockExec::execMulF, MOp::MulF);
    set(affine::LoadOp::opName, &BlockExec::execAffineLoadStore,
        MOp::Load);
    set(affine::StoreOp::opName, &BlockExec::execAffineLoadStore,
        MOp::Store);
    set(linalg::ConvOp::opName, &BlockExec::execLinalg,
        MOp::LinalgConv);
    set(linalg::FillOp::opName, &BlockExec::execLinalg,
        MOp::LinalgFill);
    set(linalg::MatmulOp::opName, &BlockExec::execLinalg,
        MOp::LinalgMatmul);
    set(equeue::ReadOp::opName, &BlockExec::execRead, MOp::Read);
    set(equeue::WriteOp::opName, &BlockExec::execWrite, MOp::Write);
    set(equeue::StreamReadOp::opName, &BlockExec::execStreamRead,
        MOp::StreamRead);
    set(equeue::StreamWriteOp::opName, &BlockExec::execStreamWrite,
        MOp::StreamWrite);
    set(equeue::ControlStartOp::opName, &BlockExec::execControlStart,
        MOp::ControlStart);
    set(equeue::ControlAndOp::opName, &BlockExec::execControlAndOr,
        MOp::ControlAnd);
    set(equeue::ControlOrOp::opName, &BlockExec::execControlAndOr,
        MOp::ControlOr);
    set(equeue::LaunchOp::opName, &BlockExec::execLaunch, MOp::Launch);
    set(equeue::MemcpyOp::opName, &BlockExec::execMemcpy, MOp::Memcpy);
    set(equeue::AwaitOp::opName, &BlockExec::execAwait, MOp::Await);
    set(equeue::ReturnOp::opName, &BlockExec::execReturn, MOp::Return);
    set(equeue::ExternOp::opName, &BlockExec::execExtern, MOp::Extern);

    // Dialect-prefix fallbacks for interned names with no specific
    // handler: any other arith op reports a precise diagnostic; any
    // other linalg op executes with its analytic cost only.
    for (uint32_t raw = 0; raw < handlers.size(); ++raw) {
        if (handlers[raw])
            continue;
        const std::string &name = ctx.opName(ir::OpId(raw));
        if (startsWith(name, "arith.")) {
            handlers[raw] = &BlockExec::execArithUnsupported;
            opcodes[raw] = MOp::ArithBad;
        } else if (startsWith(name, "linalg.")) {
            handlers[raw] = &BlockExec::execLinalg;
            opcodes[raw] = MOp::LinalgOther;
        }
    }

    // Per-(class, op) cost table; strings are consulted only here.
    for (unsigned cls = 0; cls < kNumCostClasses; ++cls) {
        auto &row = costTable[cls];
        row.assign(handlers.size(), 0);
        for (uint32_t raw = 0; raw < handlers.size(); ++raw)
            row[raw] = CostModel::staticOpCycles(
                static_cast<CostClass>(cls), ctx.opName(ir::OpId(raw)));
    }
}

// ---------------------------------------------------------------------------
// BlockExec: the interpretation loop

void
BlockExec::resume(Cycles t)
{
    eq_assert(!_finished, "resuming finished block");
    Cycles now = t;
    _eng.now = std::max(_eng.now, t);
    while (true) {
        if (_frames.empty()) {
            finish(now);
            return;
        }
        Frame &f = _frames.back();
        if (f.it == f.block->end()) {
            Step s = handleLoopEnd(now);
            if (s == Step::Finished) {
                finish(now);
                return;
            }
            continue;
        }
        ir::Operation *op = *f.it;
        ++_eng.dispatchCount;
        if (++_eng.opsExecuted > _eng.opts.maxOps)
            eq_fatal("interpreted op budget exceeded (", _eng.opts.maxOps,
                     "); runaway program?");
        Step s = dispatch(op, now);
        if (s == Step::Suspend)
            return;
        if (s == Step::Finished) {
            finish(now);
            return;
        }
    }
}

BlockExec::Step
BlockExec::dispatch(ir::Operation *op, Cycles &now)
{
    const uint32_t raw = op->opId().raw();
    const auto &table = _eng.handlers;
    if (raw < table.size()) {
        if (Handler h = table[raw])
            return (this->*h)(op, now);
    }
    eq_fatal("simulation engine cannot interpret op '", op->name(), "'");
}

/** Loop bookkeeping when the instruction pointer hits the block end. */
BlockExec::Step
BlockExec::handleLoopEnd(Cycles &now)
{
    (void)now;
    Frame &f = _frames.back();
    if (!f.loop) {
        // Top frame of the launch body / module: we are done.
        return Step::Finished;
    }
    if (f.loop->opId() == _eng.idAffineFor) {
        affine::ForOp loop(f.loop);
        f.iv += loop.step();
        if (f.iv < loop.ub()) {
            bind(loop.inductionVar(), SimValue::ofInt(f.iv));
            f.it = f.block->begin();
            return Step::Continue;
        }
    } else if (f.loop->opId() == _eng.idAffineParallel) {
        affine::ParallelOp loop(f.loop);
        auto ubs = loop.ubs();
        auto steps = loop.steps();
        // Lexicographic increment of the induction vector.
        int dim = static_cast<int>(f.ivs.size()) - 1;
        while (dim >= 0) {
            f.ivs[dim] += steps[dim];
            if (f.ivs[dim] < ubs[dim])
                break;
            f.ivs[dim] = loop.lbs()[dim];
            --dim;
        }
        if (dim >= 0) {
            for (size_t i = 0; i < f.ivs.size(); ++i)
                bind(f.block->argument(static_cast<unsigned>(i)),
                     SimValue::ofInt(f.ivs[i]));
            f.it = f.block->begin();
            return Step::Continue;
        }
    }
    // Loop exhausted: pop the frame and advance past the loop op in the
    // parent frame.
    _frames.pop_back();
    eq_assert(!_frames.empty(), "loop frame without parent");
    ++_frames.back().it;
    return Step::Continue;
}

void
BlockExec::finish(Cycles t)
{
    if (_finished)
        return;
    _finished = true;
    _eng.noteActivity(t);
    if (_event)
        _eng.finishLaunch(_event, _proc, t);
    // The exec object lives in Impl::execs until the next reset, but
    // its environment is dead here — release it so the pool can hand
    // it to the next launch.
    _env.reset();
}

// ---------------------------------------------------------------------------
// Control-flow handlers

BlockExec::Step
BlockExec::execAffineFor(ir::Operation *op, Cycles &now)
{
    (void)now;
    affine::ForOp loop(op);
    if (loop.lb() >= loop.ub())
        return advanceFree();
    bind(loop.inductionVar(), SimValue::ofInt(loop.lb()));
    _frames.push_back(
        Frame{&loop.body(), loop.body().begin(), op, loop.lb(), {}});
    return Step::Continue;
}

BlockExec::Step
BlockExec::execAffineParallel(ir::Operation *op, Cycles &now)
{
    (void)now;
    affine::ParallelOp loop(op);
    auto lbs = loop.lbs();
    auto ubs = loop.ubs();
    bool empty = lbs.empty();
    for (size_t i = 0; i < lbs.size(); ++i)
        if (lbs[i] >= ubs[i])
            empty = true;
    if (empty)
        return advanceFree();
    for (size_t i = 0; i < lbs.size(); ++i)
        bind(loop.body().argument(static_cast<unsigned>(i)),
             SimValue::ofInt(lbs[i]));
    _frames.push_back(
        Frame{&loop.body(), loop.body().begin(), op, 0, lbs});
    return Step::Continue;
}

BlockExec::Step
BlockExec::execAffineYield(ir::Operation *op, Cycles &now)
{
    // Loop back-edge: charge the cost, then fall off the block end.
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execNestedModule(ir::Operation *op, Cycles &now)
{
    (void)now;
    // Nested module: execute its body inline (same numbering scope).
    _frames.push_back(Frame{&op->region(0).front(),
                            op->region(0).front().begin(), nullptr, 0,
                            {}});
    return Step::Continue;
}

} // namespace sim
} // namespace eq
