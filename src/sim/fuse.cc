/**
 * @file
 * The superinstruction fusion pass (see fuse.hh for the contract).
 *
 * The pass is a single walk over a lowered CompiledBlock that
 *
 *  1. folds constant index operands (slots defined by arith.constant in
 *     the same scope) into immediate offsets on load/store/read/write
 *     records,
 *  2. collapses maximal runs of adjacent fusible records into one
 *     MOp::Fused record per run, and
 *  3. inside each run, proves which whole-cell reads may bind a scalar
 *     instead of materializing a 1-element tensor: the read's result
 *     must be used only later in the same run, and every consumer must
 *     treat "1-element tensor" and "the scalar it holds" identically
 *     (cell/stream writes do by construction; extern calls only for
 *     whitelisted signatures such as the built-in "mac").
 *
 * The rewritten stream is relocatable like the input: loop Begin/End
 * targets are remapped through an old-pc -> new-pc table. Branch
 * targets always land on run heads because every control record is
 * non-fusible, so a run can never straddle one.
 */

#include "sim/fuse.hh"

#include <algorithm>

#include "sim/engine_impl.hh"

namespace eq {
namespace sim {

namespace {

/** Records a superinstruction may absorb: every position-independent
 *  record — compute, data motion, and event ops whose semantics never
 *  read or manipulate the pc. Control flow (loops, nested modules,
 *  Halt), elaboration (structure ops run once, cold), and linalg
 *  keep their own records. Return is
 *  also absorbable, but only as a run terminator (handled by the run
 *  scanner, not here, since nothing may follow it in a group). */
bool
isFusible(const MicroOp &m)
{
    switch (m.code) {
    case MOp::Constant:
    case MOp::AddI:
    case MOp::SubI:
    case MOp::MulI:
    case MOp::DivSI:
    case MOp::RemSI:
    case MOp::AddF:
    case MOp::MulF:
    case MOp::Load:
    case MOp::Store:
    case MOp::StreamRead:
    case MOp::StreamWrite:
    case MOp::Extern:
    case MOp::ControlStart:
    case MOp::ControlAnd:
    case MOp::ControlOr:
    case MOp::Launch:
    case MOp::Memcpy:
    case MOp::Await:
        return true;
    case MOp::Read:
    case MOp::Write:
        // Connection-carrying variants fuse too: the fused element
        // carries the shifted operand layout (kFlagHasConn) and the
        // executor performs the channel acquire/transfer accounting
        // in-group, suspending mid-group on a stall exactly like any
        // other costed element.
        return true;
    default:
        return false;
    }
}

/** Extern signatures proven to treat a whole-cell read's 1-element
 *  tensor and the scalar it holds identically (see scalarOf in
 *  opfunctions.cc). User-registered signatures are conservatively
 *  excluded — they may distinguish the two. */
bool
scalarOkExtern(ir::Operation *op)
{
    return op && op->strAttr("signature") == "mac";
}

/** One use of a slot inside the program being optimized. */
struct UseSite {
    uint32_t pc;  ///< record index of the user
    uint32_t rel; ///< operand position within that record
};

/** Mark every slot of the scope at @p depth hops that @p prog (a
 *  descendant launch body) or its own descendants reference — such
 *  slots escape the parent program and must keep their materialized
 *  values. */
void
markDescendantUses(const CompiledBlock &prog, uint32_t depth,
                   std::vector<char> &used)
{
    for (const SlotRef &r : prog.args)
        if (r.hops == depth && r.slot < used.size())
            used[r.slot] = 1;
    // Captures are creator-relative (one level shallower).
    for (const auto &cap : prog.captures)
        if (cap.src.hops == depth - 1 && cap.src.slot < used.size())
            used[cap.src.slot] = 1;
    for (const CompiledBlock *c : prog.childProgs)
        markDescendantUses(*c, depth + 1, used);
}

class Fuser {
  public:
    Fuser(const CompiledBlock &in, const OpFunctionRegistry &opFns,
          const std::vector<const CompiledBlock *> &childProgs)
        : _in(in), _opFns(opFns)
    {
        _out = std::make_unique<CompiledBlock>();
        _out->args = in.args;
        _out->consts = in.consts;
        _out->resultPool = in.resultPool;
        _out->strings = in.strings;
        _out->forLoops = in.forLoops;
        _out->parLoops = in.parLoops;
        _out->captures = in.captures;
        _out->childProgs = childProgs;
        _out->root = in.root;
        _out->scopeId = in.scopeId;
        _out->numSlots = in.numSlots;
        analyze();
    }

    std::unique_ptr<CompiledBlock>
    run(FuseStats &stats)
    {
        const size_t n = _in.code.size();
        std::vector<uint32_t> oldToNew(n + 1, 0);
        size_t i = 0;
        while (i < n) {
            size_t j = i;
            while (j < n && isFusible(_in.code[j]))
                ++j;
            // A Return may close a group (it terminates the scope, so
            // nothing can follow it inside one).
            if (j > i && j < n && _in.code[j].code == MOp::Return)
                ++j;
            if (j - i >= 2 && fusibleHops(i, j)) {
                for (size_t p = i; p < j; ++p)
                    oldToNew[p] =
                        static_cast<uint32_t>(_out->code.size());
                emitGroup(i, j, stats);
                i = j;
                continue;
            }
            // Too short (or too deep) to fuse: copy records through,
            // still applying the standalone constant-index fold.
            const size_t copy_end = std::max(j, i + 1);
            for (; i < copy_end; ++i) {
                oldToNew[i] = static_cast<uint32_t>(_out->code.size());
                MicroOp m = _in.code[i];
                foldRecordIndices(m, stats);
                _out->code.push_back(std::move(m));
            }
        }
        oldToNew[n] = static_cast<uint32_t>(_out->code.size());

        // Relocate loop branch targets into the rewritten stream.
        for (MicroOp &m : _out->code) {
            switch (m.code) {
            case MOp::ForBegin:
            case MOp::ForEnd:
            case MOp::ParBegin:
            case MOp::ParEnd:
                m.target = oldToNew[m.target];
                break;
            default:
                break;
            }
        }
        return std::move(_out);
    }

  private:
    /** First index-operand position of a foldable record, or 0. */
    static unsigned
    indexOperandsBegin(const MicroOp &m)
    {
        switch (m.code) {
        case MOp::Load:
            return 1;
        case MOp::Store:
            return 2;
        case MOp::Read:
            return m.hasConn() ? 2 : 1; // conn (if any) precedes indices
        case MOp::Write:
            return m.hasConn() ? 3 : 2;
        default:
            return 0;
        }
    }

    /** Per-slot constant values and use sites of the input program. */
    void
    analyze()
    {
        _constOf.assign(_in.numSlots, -1);
        _escapes.assign(_in.numSlots, 0);
        _uses.assign(_in.numSlots, {});
        for (uint32_t pc = 0; pc < _in.code.size(); ++pc) {
            const MicroOp &m = _in.code[pc];
            if (m.code == MOp::Constant && m.result != kNoSlot)
                _constOf[m.result] = static_cast<int64_t>(m.aux);
            for (uint32_t a = 0; a < m.nargs; ++a) {
                const SlotRef &r = _in.args[m.argsBegin + a];
                if (r.hops == 0 && r.slot < _uses.size())
                    _uses[r.slot].push_back(UseSite{pc, a});
            }
        }
        for (const CompiledBlock *c : _in.childProgs)
            markDescendantUses(*c, 1, _escapes);
    }

    /** Is the operand a same-scope slot holding a known int constant? */
    bool
    constIntOperand(const SlotRef &r, int64_t *value) const
    {
        if (r.hops != 0 || r.slot >= _constOf.size())
            return false;
        int64_t c = _constOf[r.slot];
        if (c < 0)
            return false;
        const SimValue &v = _in.consts[static_cast<size_t>(c)];
        if (!v.isInt())
            return false;
        *value = v.asInt();
        return true;
    }

    /** Fold all-constant index operands of @p m into the immediate
     *  pool (aux becomes the pool offset; a record with kFlagImmIdx
     *  never reads its index slots). */
    void
    foldRecordIndices(MicroOp &m, FuseStats &stats)
    {
        unsigned first = indexOperandsBegin(m);
        if (first == 0 || m.nargs <= first)
            return;
        int64_t vals[16];
        unsigned nidx = m.nargs - first;
        if (nidx > 16)
            return;
        for (unsigned i = 0; i < nidx; ++i)
            if (!constIntOperand(_in.args[m.argsBegin + first + i],
                                 &vals[i]))
                return;
        m.aux = static_cast<uint32_t>(_out->immIdx.size());
        m.flags |= kFlagImmIdx;
        for (unsigned i = 0; i < nidx; ++i)
            _out->immIdx.push_back(vals[i]);
        ++stats.immFolded;
    }

    /** A run is only fused when the group-entry env-level cache can
     *  cover every operand reference. */
    bool
    fusibleHops(size_t i, size_t j) const
    {
        for (size_t p = i; p < j; ++p) {
            const MicroOp &m = _in.code[p];
            for (uint32_t a = 0; a < m.nargs; ++a)
                if (_in.args[m.argsBegin + a].hops > kMaxFusedHops)
                    return false;
        }
        return true;
    }

    /** May the whole-cell read at @p pc (result @p slot) skip tensor
     *  materialization? Every use must come later inside [pc+1, end)
     *  and treat a 1-element tensor and its scalar identically. */
    bool
    mayScalarize(uint32_t pc, uint32_t slot, uint32_t end) const
    {
        if (slot >= _uses.size() || _escapes[slot])
            return false;
        for (const UseSite &u : _uses[slot]) {
            if (u.pc <= pc || u.pc >= end)
                return false;
            const MicroOp &user = _in.code[u.pc];
            switch (user.code) {
            case MOp::Write:
                // Only the value operand of a whole-cell write.
                if (user.hasConn() || user.nargs != 2 || u.rel != 0)
                    return false;
                break;
            case MOp::StreamWrite:
                if (u.rel != 0)
                    return false;
                break;
            case MOp::Extern:
                if (!scalarOkExtern(user.op))
                    return false;
                break;
            default:
                return false;
            }
        }
        return true;
    }

    void
    emitGroup(size_t i, size_t j, FuseStats &stats)
    {
        FusedGroup g;
        g.elems.reserve(j - i);
        for (size_t p = i; p < j; ++p) {
            MicroOp m = _in.code[p];
            foldRecordIndices(m, stats);
            FusedElem e;
            e.code = m.code;
            e.flags = m.flags;
            e.nargs = m.nargs;
            e.argsBegin = m.argsBegin;
            e.result = m.result;
            e.aux = m.aux;
            e.imm = m.imm;
            e.op = m.op;
            e.cost = m.cost;
            if (m.flags & kFlagImmIdx) {
                e.immBegin = m.aux;
                e.aux = 0;
            }
            for (uint32_t a = 0; a < m.nargs; ++a)
                g.maxHops = std::max(
                    g.maxHops, _in.args[m.argsBegin + a].hops);
            if (m.code == MOp::Extern) {
                e.resultBegin = m.aux;
                e.nresults = m.op->numResults();
                e.label = m.op->strAttr("signature");
                e.fn = _opFns.find(e.label);
            } else {
                e.label = m.op ? m.op->name() : "?";
            }
            if (m.code == MOp::Read && !m.hasConn() && m.nargs == 1 &&
                m.result != kNoSlot &&
                mayScalarize(static_cast<uint32_t>(p), m.result,
                             static_cast<uint32_t>(j))) {
                e.flags |= kFlagScalarize;
                ++stats.scalarized;
            }
            g.elems.push_back(std::move(e));
        }

        MicroOp f;
        f.code = MOp::Fused;
        // Elements count themselves (opsExecuted parity), so the
        // group record itself is uncounted.
        f.aux = static_cast<uint32_t>(_out->fusedGroups.size());
        f.op = _in.code[i].op;
        _out->fusedGroups.push_back(std::move(g));
        _out->code.push_back(std::move(f));
        ++stats.groups;
        stats.fusedRecords += static_cast<uint32_t>(j - i);
    }

    const CompiledBlock &_in;
    const OpFunctionRegistry &_opFns;
    std::unique_ptr<CompiledBlock> _out;
    std::vector<int64_t> _constOf;    ///< slot -> consts index (-1)
    std::vector<char> _escapes;       ///< slot referenced by descendants
    std::vector<std::vector<UseSite>> _uses;
};

} // namespace

std::unique_ptr<CompiledBlock>
optimizeProgram(const CompiledBlock &in, const OpFunctionRegistry &opFns,
                const std::vector<const CompiledBlock *> &childProgs,
                FuseStats *stats)
{
    eq_assert(childProgs.size() == in.childProgs.size(),
              "fusion child-program mapping must be index-aligned");
    FuseStats local;
    Fuser fuser(in, opFns, childProgs);
    auto out = fuser.run(local);
    if (stats)
        *stats = local;
    return out;
}

const CompiledBlock &
Simulator::Impl::fusedProgramFor(ir::Block *root)
{
    auto it = fusedPrograms.find(root);
    if (it != fusedPrograms.end())
        return *it->second;
    const CompiledBlock &orig = programFor(root);
    // Optimize launch bodies first so this scope's Launch records pin
    // the optimized child programs on their events.
    std::vector<const CompiledBlock *> children;
    children.reserve(orig.childProgs.size());
    for (const CompiledBlock *c : orig.childProgs)
        children.push_back(&fusedProgramFor(c->root));
    auto opt = optimizeProgram(orig, opFns, children);
    return *fusedPrograms.emplace(root, std::move(opt)).first->second;
}

} // namespace sim
} // namespace eq
