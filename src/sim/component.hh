/**
 * @file
 * The component library (Section IV-D).
 *
 * Class hierarchy mirrors the paper: a generic Device base manages
 * schedule queues (bank/port occupancy) to model contention; Memory
 * subclasses override getReadOrWriteCycles; Processor carries the event
 * queue and a per-kind cost table; Dma is a movement-only processor;
 * Connection models bandwidth-limited links; StreamFifo models AXI-stream
 * style FIFOs. Users extend the library by registering factories with
 * ComponentFactory (the `Cache` example lives in tests/examples).
 */

#ifndef EQ_SIM_COMPONENT_HH
#define EQ_SIM_COMPONENT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"
#include "sim/simvalue.hh"

namespace eq {
namespace sim {

using Cycles = uint64_t;

enum class CostClass : uint8_t; // resolved processor class, costmodel.hh

/** Base of every modeled hardware entity; nodes of the hierarchy tree. */
class Component {
  public:
    explicit Component(std::string name) : _name(std::move(name)) {}
    virtual ~Component() = default;

    const std::string &name() const { return _name; }
    void setName(std::string n) { _name = std::move(n); }

    Component *parent() const { return _parent; }
    /** Attach @p child under @p child_name. Names must be unique within
     *  a parent: re-adding an existing name is rejected loudly instead
     *  of silently overwriting (which would leave the old child with a
     *  dangling _parent and an unreachable entry in the hierarchy). */
    void
    addChild(const std::string &child_name, Component *child)
    {
        auto [it, inserted] = _children.emplace(child_name, child);
        (void)it;
        eq_assert(inserted, "component '", _name,
                  "' already has a child named '", child_name, "'");
        child->_parent = this;
        child->setName(child_name);
    }
    Component *
    child(const std::string &child_name) const
    {
        auto it = _children.find(child_name);
        return it == _children.end() ? nullptr : it->second;
    }
    const std::unordered_map<std::string, Component *> &
    children() const
    {
        return _children;
    }

    /** Dotted path from the root, for trace/report labels. */
    std::string path() const;

  private:
    std::string _name;
    Component *_parent = nullptr;
    /** Hashed: child lookup is on the engine's elaboration path and is
     *  never iterated for output (no ordering requirement). */
    std::unordered_map<std::string, Component *> _children;
};

/**
 * A Device owns one or more schedule queues ("banks"/"ports"); an access
 * reserves the earliest-free queue, modeling stalls under contention.
 */
class Device : public Component {
  public:
    Device(std::string name, unsigned num_queues)
        : Component(std::move(name)), _nextFree(num_queues, 0)
    {}

    /**
     * Reserve a queue for @p cycles starting no earlier than @p now.
     * @return the cycle at which the reservation begins (>= now).
     */
    Cycles
    acquire(Cycles now, Cycles cycles)
    {
        // Zero-occupancy access with every queue free by `now` (the
        // steady state of register files, whose accesses all cost 0):
        // the access starts immediately, and writing `now` into the
        // earliest-free queue would be unobservable — simulation time
        // never decreases (runHeap asserts it), so queue times at or
        // below the current cycle are forever interchangeable. Skip
        // the scan and the store.
        if (cycles == 0 && _maxNextFree <= now)
            return now;
        // Pick the earliest-free queue deterministically.
        size_t best = 0;
        for (size_t i = 1; i < _nextFree.size(); ++i)
            if (_nextFree[i] < _nextFree[best])
                best = i;
        Cycles start = std::max(now, _nextFree[best]);
        _nextFree[best] = start + cycles;
        _maxNextFree = std::max(_maxNextFree, start + cycles);
        return start;
    }

    unsigned numQueues() const
    {
        return static_cast<unsigned>(_nextFree.size());
    }

  private:
    std::vector<Cycles> _nextFree;
    /** Upper bound over _nextFree (monotone; enables the zero-cost
     *  acquire fast path above). */
    Cycles _maxNextFree = 0;
};

/**
 * A memory component. The base class charges `cyclesPerWord` of bank
 * occupancy per word accessed; subclasses override getReadOrWriteCycles
 * to implement richer models (caches, DRAM row policy, ...).
 */
class Memory : public Device {
  public:
    Memory(std::string name, std::string kind, std::vector<int64_t> shape,
           unsigned data_bits, unsigned banks, Cycles cycles_per_word)
        : Device(std::move(name), banks), _kind(std::move(kind)),
          _shape(std::move(shape)), _dataBits(data_bits),
          _cyclesPerWord(cycles_per_word)
    {}

    const std::string &kind() const { return _kind; }
    unsigned dataBits() const { return _dataBits; }
    const std::vector<int64_t> &shape() const { return _shape; }

    /**
     * Bank-occupancy cycles for accessing @p words words (§IV-D: the
     * method users override when extending the library).
     * @param is_write true for writes
     * @param words number of words touched
     */
    virtual Cycles
    getReadOrWriteCycles(bool is_write, int64_t words)
    {
        (void)is_write;
        return _cyclesPerWord * static_cast<Cycles>(words);
    }

    /// @name Bandwidth accounting
    /// @{
    void
    recordAccess(bool is_write, int64_t bytes)
    {
        (is_write ? _bytesWritten : _bytesRead) += bytes;
    }
    int64_t bytesRead() const { return _bytesRead; }
    int64_t bytesWritten() const { return _bytesWritten; }
    /// @}

  private:
    std::string _kind;
    std::vector<int64_t> _shape;
    unsigned _dataBits;
    Cycles _cyclesPerWord;
    int64_t _bytesRead = 0;
    int64_t _bytesWritten = 0;
};

/** An allocation placed on a Memory by equeue.alloc. */
struct BufferObj {
    Memory *mem = nullptr;
    std::shared_ptr<Tensor> data;
    std::string label; ///< printing/tracing aid

    int64_t sizeBytes() const { return data ? data->sizeBytes() : 0; }
};

// Forward declaration; definition lives in engine.cc.
struct Event;

/**
 * A processor executes launched code blocks from its FIFO event queue,
 * one at a time (§III-D). The cost table assigns per-op processor
 * occupancy by op name, resolved by kind (see costmodel.cc).
 */
class Processor : public Device {
  public:
    Processor(std::string name, std::string kind)
        : Device(std::move(name), /*num_queues=*/1), _kind(std::move(kind))
    {}

    const std::string &kind() const { return _kind; }
    /** The kind's resolved cost class; computed once, then cached so
     *  the engine's per-op cost lookup never touches the kind string
     *  (defined in costmodel.cc). */
    CostClass costClass() const;

    /// @name Event queue
    /// @{
    std::deque<Event *> &queue() { return _queue; }
    bool busy() const { return _busy; }
    void setBusy(bool b) { _busy = b; }
    /// @}

    /// @name Utilization stats
    /// @{
    void recordBusy(Cycles cycles) { _busyCycles += cycles; }
    Cycles busyCycles() const { return _busyCycles; }
    void recordOp() { ++_opsExecuted; }
    uint64_t opsExecuted() const { return _opsExecuted; }
    /// @}

  private:
    std::string _kind;
    std::deque<Event *> _queue;
    bool _busy = false;
    Cycles _busyCycles = 0;
    uint64_t _opsExecuted = 0;
    mutable int8_t _costClassCache = -1; ///< lazily resolved CostClass
};

/** A DMA engine: a processor specialised for data movement. */
class Dma : public Processor {
  public:
    explicit Dma(std::string name)
        : Processor(std::move(name), "DMA")
    {}
};

/**
 * A bandwidth-constrained link (§III-A). Streaming connections carry
 * reads and writes on independent channels; Window connections lock the
 * single channel exclusively. Bandwidth 0 means unlimited.
 */
class Connection : public Component {
  public:
    Connection(std::string name, std::string kind, int64_t bytes_per_cycle)
        : Component(std::move(name)), _kind(std::move(kind)),
          _bw(bytes_per_cycle)
    {}

    const std::string &kind() const { return _kind; }
    bool isWindow() const { return _kind == "Window"; }
    int64_t bandwidth() const { return _bw; }
    bool unlimited() const { return _bw <= 0; }

    /** Cycles to move @p bytes across this link (0 when unlimited). */
    Cycles
    transferCycles(int64_t bytes) const
    {
        if (unlimited())
            return 0;
        return static_cast<Cycles>((bytes + _bw - 1) / _bw);
    }

    /**
     * Reserve the link channel. Window connections share one channel
     * between reads and writes; Streaming ones have two.
     * @return transfer start cycle (>= now).
     */
    Cycles
    acquireChannel(bool is_read, Cycles now, Cycles cycles)
    {
        // Zero-occupancy watermark short-circuit (the Connection twin
        // of Device::acquire's _maxNextFree fast path): a zero-cost
        // reservation on a wholly idle link starts at `now` and leaves
        // both channel watermarks untouched — the skipped stores would
        // only write values <= now, indistinguishable forever after
        // because engine time never moves backwards. Checking both
        // directions keeps Window exclusivity exact: any busy channel
        // falls through to the full accounting below.
        if (cycles == 0 && _readFree <= now && _writeFree <= now)
            return now;
        Cycles &free = (isWindow() || is_read) ? _readFree : _writeFree;
        Cycles start = std::max(now, free);
        free = start + cycles;
        if (isWindow()) {
            // Exclusive lock: both directions blocked.
            _writeFree = _readFree;
        }
        return start;
    }

    /** Record a completed transfer for bandwidth statistics. */
    void
    recordTransfer(bool is_read, Cycles start, Cycles end, int64_t bytes)
    {
        _intervals.push_back({is_read, start, end, bytes});
        (is_read ? _readBytes : _writeBytes) += bytes;
    }

    struct Interval {
        bool isRead;
        Cycles start, end;
        int64_t bytes;
    };
    const std::vector<Interval> &intervals() const { return _intervals; }
    int64_t readBytes() const { return _readBytes; }
    int64_t writeBytes() const { return _writeBytes; }

  private:
    std::string _kind;
    int64_t _bw;
    Cycles _readFree = 0;
    Cycles _writeFree = 0;
    int64_t _readBytes = 0;
    int64_t _writeBytes = 0;
    std::vector<Interval> _intervals;
};

/**
 * An AXI-stream style FIFO endpoint. Elements become visible to readers
 * at their arrival cycle; reads block until enough elements arrived.
 */
class StreamFifo : public Component {
  public:
    StreamFifo(std::string name, unsigned data_bits)
        : Component(std::move(name)), _dataBits(data_bits)
    {}

    unsigned dataBits() const { return _dataBits; }

    /** Push one element that becomes visible at @p ready. */
    void
    push(int64_t value, Cycles ready)
    {
        _fifo.push_back({ready, value});
        ++_totalPushed;
    }

    /** How many elements are visible at time @p now. */
    size_t
    available(Cycles now) const
    {
        size_t n = 0;
        for (const auto &e : _fifo) {
            if (e.ready <= now)
                ++n;
            else
                break;
        }
        return n;
    }

    /** Earliest cycle at which @p count elements are visible, or
     *  kNoReadyTime when fewer than @p count elements exist yet. */
    static constexpr Cycles kNoReadyTime = ~0ull;
    Cycles
    readyTime(size_t count) const
    {
        if (_fifo.size() < count)
            return kNoReadyTime;
        return _fifo[count - 1].ready;
    }

    /** Pop @p count elements (caller checked availability). */
    std::vector<int64_t>
    pop(size_t count)
    {
        std::vector<int64_t> out;
        out.reserve(count);
        for (size_t i = 0; i < count; ++i) {
            out.push_back(_fifo.front().value);
            _fifo.pop_front();
        }
        _totalPopped += count;
        return out;
    }

    size_t depth() const { return _fifo.size(); }
    uint64_t totalPushed() const { return _totalPushed; }
    uint64_t totalPopped() const { return _totalPopped; }

  private:
    struct Elem {
        Cycles ready;
        int64_t value;
    };
    unsigned _dataBits;
    std::deque<Elem> _fifo;
    uint64_t _totalPushed = 0;
    uint64_t _totalPopped = 0;
};

/**
 * Factory for memory components, keyed by the `kind` string of
 * equeue.create_mem. Users register custom kinds (e.g. "Cache") to extend
 * the library without touching the engine (§IV-D).
 */
class ComponentFactory {
  public:
    using MemoryMaker = std::function<std::unique_ptr<Memory>(
        const std::string &name, std::vector<int64_t> shape,
        unsigned data_bits, unsigned banks)>;

    ComponentFactory();

    /** Register (or replace) a memory kind. */
    void registerMemoryKind(const std::string &kind, MemoryMaker maker);
    bool hasMemoryKind(const std::string &kind) const;

    std::unique_ptr<Memory> makeMemory(const std::string &kind,
                                       const std::string &name,
                                       std::vector<int64_t> shape,
                                       unsigned data_bits,
                                       unsigned banks) const;

  private:
    std::unordered_map<std::string, MemoryMaker> _memoryKinds;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_COMPONENT_HH
