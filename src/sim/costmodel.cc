#include "sim/costmodel.hh"

#include "base/stringutil.hh"
#include "dialects/linalg.hh"

namespace eq {
namespace sim {

bool
CostModel::isScalarCore(const std::string &proc_kind)
{
    return startsWith(proc_kind, "ARM") || proc_kind == "Generic" ||
           proc_kind == "Root";
}

Cycles
CostModel::opCycles(const std::string &proc_kind, ir::Operation *op)
{
    const std::string &name = op->name();

    // Event/bookkeeping operations never occupy the processor datapath:
    // they are dispatched to event queues / the engine (§III-D).
    if (name == "equeue.launch" || name == "equeue.memcpy" ||
        name == "equeue.control_start" || name == "equeue.control_and" ||
        name == "equeue.control_or" || name == "equeue.await" ||
        name == "equeue.return" || name == "equeue.alloc" ||
        name == "equeue.dealloc" || name == "equeue.get_comp" ||
        name == "memref.alloc" || name == "memref.dealloc" ||
        name == "arith.constant" || startsWith(name, "equeue.create_") ||
        name == "equeue.add_comp" || name == "builtin.module")
        return 0;

    if (proc_kind == "Root")
        return 0;

    if (isScalarCore(proc_kind)) {
        // One issue slot per scalar op; loop back-edge costs a cycle.
        if (startsWith(name, "arith."))
            return 1;
        if (name == "affine.load" || name == "affine.store")
            return 1;
        if (name == "affine.yield")
            return 1;
        if (name == "affine.for" || name == "affine.parallel")
            return 0;
        if (name == "equeue.read" || name == "equeue.write")
            return 1;
        if (name == "equeue.stream_read" || name == "equeue.stream_write")
            return 1;
        if (name == "equeue.op")
            return 1;
        if (startsWith(name, "linalg."))
            return linalgCycles(op);
        return 1;
    }

    if (proc_kind == "MAC") {
        if (startsWith(name, "arith."))
            return 1;
        if (name == "equeue.op")
            return 1;
        // Reads, writes, loop control: part of the systolic datapath.
        return 0;
    }

    if (proc_kind == "AIEngine") {
        if (name == "equeue.op")
            return 1;
        if (startsWith(name, "arith.") && name != "arith.constant")
            return 1;
        return 0;
    }

    if (proc_kind == "DMA")
        return 0;

    // Unknown kinds behave like scalar cores.
    if (startsWith(name, "linalg."))
        return linalgCycles(op);
    return 1;
}

Cycles
CostModel::linalgCycles(ir::Operation *op)
{
    if (op->name() == linalg::ConvOp::opName) {
        // Naive schedule: per MAC, compute addresses (2), fetch
        // ifmap+weight+ofmap (3), multiply, accumulate, write back,
        // plus loop control: 10 issue slots. Explicit affine loops beat
        // this slightly (Fig. 11b's Linalg->Affine runtime drop).
        return static_cast<Cycles>(linalg::convDims(op).macs()) * 10;
    }
    if (op->name() == linalg::MatmulOp::opName) {
        ir::Type a = op->operand(0).type();
        ir::Type b = op->operand(1).type();
        int64_t macs = a.shape()[0] * a.shape()[1] * b.shape()[1];
        return static_cast<Cycles>(macs) * 10;
    }
    if (op->name() == linalg::FillOp::opName)
        return static_cast<Cycles>(op->operand(0).type().numElements());
    return 1;
}

} // namespace sim
} // namespace eq
