#include "sim/costmodel.hh"

#include "base/stringutil.hh"
#include "dialects/linalg.hh"
#include "ir/builder.hh"

namespace eq {
namespace sim {

namespace {

/** Event/bookkeeping operations never occupy the processor datapath:
 *  they are dispatched to event queues / the engine (§III-D). */
bool
isBookkeeping(const std::string &name)
{
    return name == "equeue.launch" || name == "equeue.memcpy" ||
           name == "equeue.control_start" || name == "equeue.control_and" ||
           name == "equeue.control_or" || name == "equeue.await" ||
           name == "equeue.return" || name == "equeue.alloc" ||
           name == "equeue.dealloc" || name == "equeue.get_comp" ||
           name == "memref.alloc" || name == "memref.dealloc" ||
           name == "arith.constant" ||
           startsWith(name, "equeue.create_") ||
           name == "equeue.add_comp" || name == "builtin.module";
}

} // namespace

bool
CostModel::isScalarCore(const std::string &proc_kind)
{
    return startsWith(proc_kind, "ARM") || proc_kind == "Generic" ||
           proc_kind == "Root";
}

CostClass
CostModel::classify(const std::string &proc_kind)
{
    if (proc_kind == "Root")
        return CostClass::Root;
    if (isScalarCore(proc_kind))
        return CostClass::Scalar;
    if (proc_kind == "MAC")
        return CostClass::MAC;
    if (proc_kind == "AIEngine")
        return CostClass::AIEngine;
    if (proc_kind == "DMA")
        return CostClass::DMA;
    return CostClass::Other;
}

Cycles
CostModel::staticOpCycles(CostClass cls, const std::string &name)
{
    if (isBookkeeping(name))
        return 0;

    switch (cls) {
      case CostClass::Root:
        return 0;

      case CostClass::Scalar:
        // One issue slot per scalar op; loop back-edge costs a cycle.
        if (startsWith(name, "arith."))
            return 1;
        if (name == "affine.load" || name == "affine.store")
            return 1;
        if (name == "affine.yield")
            return 1;
        if (name == "affine.for" || name == "affine.parallel")
            return 0;
        if (name == "equeue.read" || name == "equeue.write")
            return 1;
        if (name == "equeue.stream_read" || name == "equeue.stream_write")
            return 1;
        if (name == "equeue.op")
            return 1;
        if (startsWith(name, "linalg."))
            return kDynamic;
        return 1;

      case CostClass::MAC:
        if (startsWith(name, "arith."))
            return 1;
        if (name == "equeue.op")
            return 1;
        // Reads, writes, loop control: part of the systolic datapath.
        return 0;

      case CostClass::AIEngine:
        if (name == "equeue.op")
            return 1;
        if (startsWith(name, "arith."))
            return 1;
        return 0;

      case CostClass::DMA:
        return 0;

      case CostClass::Other:
        // Unknown kinds behave like scalar cores.
        if (startsWith(name, "linalg."))
            return kDynamic;
        return 1;
    }
    return 1;
}

Cycles
CostModel::opCycles(const std::string &proc_kind, ir::Operation *op)
{
    Cycles c = staticOpCycles(classify(proc_kind), op->name());
    return c == kDynamic ? linalgCycles(op) : c;
}

Cycles
CostModel::linalgCycles(ir::Operation *op)
{
    if (ir::isa<linalg::ConvOp>(op)) {
        // Naive schedule: per MAC, compute addresses (2), fetch
        // ifmap+weight+ofmap (3), multiply, accumulate, write back,
        // plus loop control: 10 issue slots. Explicit affine loops beat
        // this slightly (Fig. 11b's Linalg->Affine runtime drop).
        return static_cast<Cycles>(linalg::convDims(op).macs()) * 10;
    }
    if (ir::isa<linalg::MatmulOp>(op)) {
        ir::Type a = op->operand(0).type();
        ir::Type b = op->operand(1).type();
        int64_t macs = a.shape()[0] * a.shape()[1] * b.shape()[1];
        return static_cast<Cycles>(macs) * 10;
    }
    if (ir::isa<linalg::FillOp>(op))
        return static_cast<Cycles>(op->operand(0).type().numElements());
    return 1;
}

// Defined here (not in component.hh) so component.hh need not depend on
// the cost model; the class is resolved once from the kind string and
// cached for the engine's per-op table lookups.
CostClass
Processor::costClass() const
{
    if (_costClassCache < 0)
        _costClassCache = static_cast<int8_t>(CostModel::classify(kind()));
    return static_cast<CostClass>(_costClassCache);
}

} // namespace sim
} // namespace eq
