#include "sim/engine.hh"

#include <algorithm>
#include <chrono>
#include <queue>

#include "base/logging.hh"
#include "base/stringutil.hh"
#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "dialects/linalg.hh"
#include "dialects/memref.hh"
#include "sim/costmodel.hh"

namespace eq {
namespace sim {

namespace {

/** Chained value environment; launch bodies link to their creator's. */
struct Env {
    std::map<ir::ValueImpl *, SimValue> vals;
    std::shared_ptr<Env> parent;

    const SimValue *
    find(ir::ValueImpl *v) const
    {
        auto it = vals.find(v);
        if (it != vals.end())
            return &it->second;
        return parent ? parent->find(v) : nullptr;
    }
};

using EnvPtr = std::shared_ptr<Env>;

} // namespace

/** A scheduled/executing event (§III-D): launch, memcpy, or control. */
struct Event {
    enum class Kind { Start, And, Or, Launch, Memcpy };

    EventId id = 0;
    Kind kind = Kind::Start;
    std::vector<EventId> deps;

    // Launch / memcpy payload.
    ir::Operation *op = nullptr;
    Processor *proc = nullptr;
    EnvPtr creatorEnv;
    // Memcpy payload (resolved at creation).
    BufferObj *src = nullptr;
    BufferObj *dst = nullptr;
    Connection *conn = nullptr;

    bool done = false;
    bool issueSubscribed = false;
    Cycles createdAt = 0;
    Cycles startTime = 0;
    Cycles doneTime = 0;
    std::vector<SimValue> results;
    std::vector<std::function<void(Cycles)>> onDone;
};

class BlockExec;

struct Simulator::Impl {
    EngineOptions opts;
    Trace traceData;
    OpFunctionRegistry opFns;
    ComponentFactory factory;

    // --- per-run state ------------------------------------------------
    std::vector<std::unique_ptr<Component>> components;
    std::vector<std::unique_ptr<BufferObj>> buffers;
    std::vector<std::unique_ptr<Event>> events;
    std::vector<std::unique_ptr<BlockExec>> execs;
    std::map<StreamFifo *, std::vector<std::function<void()>>>
        streamWaiters;
    std::unique_ptr<Processor> rootProc;

    struct HeapItem {
        Cycles t;
        uint64_t seq;
        std::function<void()> fn;
        bool
        operator>(const HeapItem &o) const
        {
            return std::tie(t, seq) > std::tie(o.t, o.seq);
        }
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        heap;
    uint64_t seqCounter = 0;
    Cycles now = 0;
    Cycles endTime = 0;
    uint64_t eventsExecuted = 0;
    uint64_t opsExecuted = 0;
    std::map<std::string, int> nameCounters;

    // --- helpers ------------------------------------------------------

    void
    reset()
    {
        components.clear();
        buffers.clear();
        events.clear();
        execs.clear();
        streamWaiters.clear();
        while (!heap.empty())
            heap.pop();
        seqCounter = 0;
        now = 0;
        endTime = 0;
        eventsExecuted = 0;
        opsExecuted = 0;
        nameCounters.clear();
        traceData.clear();
        rootProc = std::make_unique<Processor>("host", "Root");
    }

    std::string
    freshName(const std::string &base)
    {
        int n = nameCounters[base]++;
        return base + std::to_string(n);
    }

    void
    scheduleAt(Cycles t, std::function<void()> fn)
    {
        heap.push({t, seqCounter++, std::move(fn)});
    }

    void
    noteActivity(Cycles t)
    {
        endTime = std::max(endTime, t);
    }

    Event *
    newEvent(Event::Kind kind, Cycles t)
    {
        auto ev = std::make_unique<Event>();
        ev->id = events.size();
        ev->kind = kind;
        ev->createdAt = t;
        events.push_back(std::move(ev));
        return events.back().get();
    }

    Event *
    event(EventId id)
    {
        eq_assert(id < events.size(), "bad event id");
        return events[id].get();
    }

    void
    completeEvent(Event *ev, Cycles t)
    {
        eq_assert(!ev->done, "event completed twice");
        ev->done = true;
        ev->doneTime = t;
        noteActivity(t);
        ++eventsExecuted;
        auto callbacks = std::move(ev->onDone);
        ev->onDone.clear();
        for (auto &cb : callbacks)
            cb(t);
    }

    /** Invoke @p fn(max completion time) once all of @p ids are done. */
    void
    whenAllDone(const std::vector<EventId> &ids,
                std::function<void(Cycles)> fn)
    {
        auto state = std::make_shared<std::pair<size_t, Cycles>>(0, 0);
        for (EventId id : ids) {
            Event *ev = event(id);
            if (ev->done)
                state->second = std::max(state->second, ev->doneTime);
            else
                ++state->first;
        }
        if (state->first == 0) {
            fn(state->second);
            return;
        }
        auto shared_fn =
            std::make_shared<std::function<void(Cycles)>>(std::move(fn));
        for (EventId id : ids) {
            Event *ev = event(id);
            if (ev->done)
                continue;
            ev->onDone.push_back([state, shared_fn](Cycles t) {
                state->second = std::max(state->second, t);
                if (--state->first == 0)
                    (*shared_fn)(state->second);
            });
        }
    }

    /** Invoke @p fn(first completion time) once any of @p ids is done. */
    void
    whenAnyDone(const std::vector<EventId> &ids,
                std::function<void(Cycles)> fn)
    {
        for (EventId id : ids) {
            if (event(id)->done) {
                fn(event(id)->doneTime);
                return;
            }
        }
        auto fired = std::make_shared<bool>(false);
        auto shared_fn =
            std::make_shared<std::function<void(Cycles)>>(std::move(fn));
        for (EventId id : ids) {
            event(id)->onDone.push_back([fired, shared_fn](Cycles t) {
                if (!*fired) {
                    *fired = true;
                    (*shared_fn)(t);
                }
            });
        }
    }

    void enqueueOnProcessor(Event *ev, Cycles t);
    void tryIssue(Processor *proc, Cycles t);
    void issueLaunch(Event *ev, Cycles t);
    void issueMemcpy(Event *ev, Cycles t);
    void notifyStream(StreamFifo *fifo);

    void
    recordTrace(const std::string &op_name, Processor *proc, Cycles start,
                Cycles dur, const char *cat = "operation")
    {
        if (!traceData.enabled())
            return;
        TraceEvent e;
        e.name = op_name;
        e.cat = cat;
        e.pid = proc->parent() ? proc->parent()->path() : "top";
        e.tid = proc->name();
        e.ts = start;
        e.dur = dur;
        traceData.record(e);
    }

    /** Bulk-transfer occupancy of a memory: words striped over banks. */
    static Cycles
    bulkMemCycles(Memory *mem, int64_t words, bool is_write)
    {
        Cycles per = mem->getReadOrWriteCycles(is_write, words);
        unsigned banks = std::max(1u, mem->numQueues());
        return (per + banks - 1) / banks;
    }

    SimReport buildReport(double wall_seconds) const;
    void runHeap();
};

// ---------------------------------------------------------------------------
// BlockExec: suspended interpretation of one code block

/**
 * Interprets one block (the module top level or a launch body) on a
 * processor. Executes ops in order; 0-cost ops run inline, timed ops
 * suspend via the engine heap; blocking ops (await, stream reads, queue
 * stalls) subscribe to wakeups.
 */
class BlockExec {
  public:
    BlockExec(Simulator::Impl &eng, Event *ev, Processor *proc,
              ir::Block *block, EnvPtr env)
        : _eng(eng), _event(ev), _proc(proc), _env(std::move(env))
    {
        _frames.push_back(Frame{block, block->begin(), nullptr, 0, {}});
    }

    void
    start(Cycles t)
    {
        resume(t);
    }

    /** Re-enter interpretation at simulation time @p t. */
    void resume(Cycles t);

  private:
    struct Frame {
        ir::Block *block;
        ir::Block::iterator it;
        ir::Operation *loop; ///< owning affine.for/parallel, if any
        int64_t iv;          ///< affine.for induction value
        std::vector<int64_t> ivs; ///< affine.parallel induction values
    };

    enum class Step { Continue, Suspend, Finished };

    Step dispatch(ir::Operation *op, Cycles &now);
    Step handleLoopEnd(Cycles &now);
    void finish(Cycles t);

    SimValue
    eval(ir::Value v) const
    {
        const SimValue *s = _env->find(v.impl());
        eq_assert(s, "use of value with no runtime binding (op '",
                  v.definingOp() ? v.definingOp()->name() : "blockarg",
                  "'): likely a missing event dependency");
        return *s;
    }

    void
    bind(ir::Value v, SimValue s)
    {
        _env->vals[v.impl()] = std::move(s);
    }

    /**
     * Account for an op that occupies the processor from @p start for
     * @p cycles. Advances the instruction pointer; suspends when the op
     * ends later than @p now.
     */
    Step
    advanceAfter(ir::Operation *op, Cycles now, Cycles start, Cycles cycles)
    {
        Cycles end = start + cycles;
        if (_proc) {
            _proc->recordBusy(cycles);
            _proc->recordOp();
        }
        if (start > now && _proc)
            _eng.recordTrace("stall", _proc, now, start - now, "stall");
        if (cycles > 0 && _proc)
            _eng.recordTrace(traceLabel(op), _proc, start, cycles);
        _eng.noteActivity(end);
        ++_frames.back().it;
        if (end > now) {
            _eng.scheduleAt(end, [this, end] { resume(end); });
            return Step::Suspend;
        }
        return Step::Continue;
    }

    static std::string
    traceLabel(ir::Operation *op)
    {
        if (op->name() == equeue::ExternOp::opName)
            return op->strAttr("signature");
        return op->name();
    }

    Simulator::Impl &_eng;
    Event *_event;    ///< null for the module top level
    Processor *_proc; ///< executing processor (root proc at top level)
    EnvPtr _env;
    std::vector<Frame> _frames;
    std::vector<EventId> _spawned;
    bool _finished = false;
};

void
BlockExec::resume(Cycles t)
{
    eq_assert(!_finished, "resuming finished block");
    Cycles now = t;
    _eng.now = std::max(_eng.now, t);
    while (true) {
        if (_frames.empty()) {
            finish(now);
            return;
        }
        Frame &f = _frames.back();
        if (f.it == f.block->end()) {
            Step s = handleLoopEnd(now);
            if (s == Step::Finished) {
                finish(now);
                return;
            }
            continue;
        }
        ir::Operation *op = *f.it;
        if (++_eng.opsExecuted > _eng.opts.maxOps)
            eq_fatal("interpreted op budget exceeded (", _eng.opts.maxOps,
                     "); runaway program?");
        Step s = dispatch(op, now);
        if (s == Step::Suspend)
            return;
        if (s == Step::Finished) {
            finish(now);
            return;
        }
    }
}

/** Loop bookkeeping when the instruction pointer hits the block end. */
BlockExec::Step
BlockExec::handleLoopEnd(Cycles &now)
{
    (void)now;
    Frame &f = _frames.back();
    if (!f.loop) {
        // Top frame of the launch body / module: we are done.
        return Step::Finished;
    }
    if (f.loop->name() == affine::ForOp::opName) {
        affine::ForOp loop(f.loop);
        f.iv += loop.step();
        if (f.iv < loop.ub()) {
            bind(loop.inductionVar(), SimValue::ofInt(f.iv));
            f.it = f.block->begin();
            return Step::Continue;
        }
    } else if (f.loop->name() == affine::ParallelOp::opName) {
        affine::ParallelOp loop(f.loop);
        auto ubs = loop.ubs();
        auto steps = loop.steps();
        // Lexicographic increment of the induction vector.
        int dim = static_cast<int>(f.ivs.size()) - 1;
        while (dim >= 0) {
            f.ivs[dim] += steps[dim];
            if (f.ivs[dim] < ubs[dim])
                break;
            f.ivs[dim] = loop.lbs()[dim];
            --dim;
        }
        if (dim >= 0) {
            for (size_t i = 0; i < f.ivs.size(); ++i)
                bind(f.block->argument(static_cast<unsigned>(i)),
                     SimValue::ofInt(f.ivs[i]));
            f.it = f.block->begin();
            return Step::Continue;
        }
    }
    // Loop exhausted: pop the frame and advance past the loop op in the
    // parent frame.
    _frames.pop_back();
    eq_assert(!_frames.empty(), "loop frame without parent");
    ++_frames.back().it;
    return Step::Continue;
}

BlockExec::Step
BlockExec::dispatch(ir::Operation *op, Cycles &now)
{
    const std::string &name = op->name();
    ir::Context &ctx = op->context();
    const std::string &kind = _proc ? _proc->kind() : "Root";
    Cycles cost = CostModel::opCycles(kind, op);

    // ---- structure ops -------------------------------------------------
    if (name == equeue::CreateProcOp::opName) {
        auto proc = std::make_unique<Processor>(
            _eng.freshName("proc"), equeue::CreateProcOp(op).kind());
        bind(op->result(0), SimValue::ofComponent(proc.get()));
        _eng.components.push_back(std::move(proc));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::CreateDmaOp::opName) {
        auto dma = std::make_unique<Dma>(_eng.freshName("dma"));
        bind(op->result(0), SimValue::ofComponent(dma.get()));
        _eng.components.push_back(std::move(dma));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::CreateMemOp::opName) {
        equeue::CreateMemOp mem_op(op);
        auto mem = _eng.factory.makeMemory(
            mem_op.kind(), _eng.freshName("mem"), mem_op.shape(),
            mem_op.dataBits(), mem_op.banks());
        bind(op->result(0), SimValue::ofComponent(mem.get()));
        _eng.components.push_back(std::move(mem));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::CreateStreamOp::opName) {
        auto fifo = std::make_unique<StreamFifo>(
            _eng.freshName("stream"),
            static_cast<unsigned>(op->intAttrOr("data_bits", 32)));
        bind(op->result(0), SimValue::ofStream(fifo.get()));
        _eng.components.push_back(std::move(fifo));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::CreateConnectionOp::opName) {
        equeue::CreateConnectionOp conn_op(op);
        auto conn = std::make_unique<Connection>(
            _eng.freshName("conn"), conn_op.kind(), conn_op.bandwidth());
        bind(op->result(0), SimValue::ofConnection(conn.get()));
        _eng.components.push_back(std::move(conn));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::CreateCompOp::opName ||
        name == equeue::AddCompOp::opName) {
        bool is_add = name == equeue::AddCompOp::opName;
        Component *comp;
        unsigned first_sub = 0;
        if (is_add) {
            comp = eval(op->operand(0)).asComponent();
            first_sub = 1;
        } else {
            auto owned =
                std::make_unique<Component>(_eng.freshName("comp"));
            comp = owned.get();
            _eng.components.push_back(std::move(owned));
        }
        std::vector<std::string> names = split(op->strAttr("names"), ' ');
        for (unsigned i = first_sub; i < op->numOperands(); ++i) {
            SimValue sub = eval(op->operand(i));
            Component *child = sub.isStream()
                                   ? static_cast<Component *>(
                                         sub.asStream())
                                   : sub.asComponent();
            comp->addChild(names[i - first_sub], child);
        }
        if (!is_add)
            bind(op->result(0), SimValue::ofComponent(comp));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::GetCompOp::opName ||
        name == equeue::ExtractCompOp::opName) {
        Component *comp = eval(op->operand(0)).asComponent();
        std::string child_name =
            name == equeue::GetCompOp::opName
                ? op->strAttr("name")
                : equeue::ExtractCompOp(op).resolvedName();
        Component *child = comp->child(child_name);
        if (!child)
            eq_fatal("get_comp: no subcomponent named '", child_name,
                     "' in ", comp->path());
        bind(op->result(0), SimValue::ofComponent(child));
        ++_frames.back().it;
        return Step::Continue;
    }

    // ---- allocation ----------------------------------------------------
    if (name == equeue::AllocOp::opName ||
        name == memref::AllocOp::opName) {
        ir::Type bt = op->result(0).type();
        auto buf = std::make_unique<BufferObj>();
        buf->data = Tensor::zeros(bt.shape(), bt.elemBits());
        if (name == equeue::AllocOp::opName)
            buf->mem = static_cast<Memory *>(
                eval(op->operand(0)).asComponent());
        buf->label = _eng.freshName("buf");
        bind(op->result(0), SimValue::ofBuffer(buf.get()));
        _eng.buffers.push_back(std::move(buf));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::DeallocOp::opName ||
        name == memref::DeallocOp::opName) {
        ++_frames.back().it;
        return Step::Continue;
    }

    // ---- scalar compute ------------------------------------------------
    if (name == arith::ConstantOp::opName) {
        ir::Attribute v = op->attr("value");
        bind(op->result(0), v.kind() == ir::AttrKind::Float
                                ? SimValue::ofFloat(v.asFloat())
                                : SimValue::ofInt(v.asInt()));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (startsWith(name, "arith.")) {
        SimValue lhs = eval(op->operand(0));
        SimValue rhs = eval(op->operand(1));
        SimValue res;
        if (name == "arith.addi")
            res = SimValue::ofInt(lhs.asInt() + rhs.asInt());
        else if (name == "arith.subi")
            res = SimValue::ofInt(lhs.asInt() - rhs.asInt());
        else if (name == "arith.muli")
            res = SimValue::ofInt(lhs.asInt() * rhs.asInt());
        else if (name == "arith.divsi")
            res = SimValue::ofInt(rhs.asInt() == 0
                                      ? 0
                                      : lhs.asInt() / rhs.asInt());
        else if (name == "arith.remsi")
            res = SimValue::ofInt(rhs.asInt() == 0
                                      ? 0
                                      : lhs.asInt() % rhs.asInt());
        else if (name == "arith.addf")
            res = SimValue::ofFloat(lhs.asFloat() + rhs.asFloat());
        else if (name == "arith.mulf")
            res = SimValue::ofFloat(lhs.asFloat() * rhs.asFloat());
        else
            eq_fatal("unsupported arith op '", name, "'");
        bind(op->result(0), res);
        return advanceAfter(op, now, now, cost);
    }

    // ---- affine control flow & memory ops --------------------------------
    if (name == affine::ForOp::opName) {
        affine::ForOp loop(op);
        if (loop.lb() >= loop.ub()) {
            ++_frames.back().it;
            return Step::Continue;
        }
        bind(loop.inductionVar(), SimValue::ofInt(loop.lb()));
        _frames.push_back(
            Frame{&loop.body(), loop.body().begin(), op, loop.lb(), {}});
        return Step::Continue;
    }
    if (name == affine::ParallelOp::opName) {
        affine::ParallelOp loop(op);
        auto lbs = loop.lbs();
        auto ubs = loop.ubs();
        bool empty = lbs.empty();
        for (size_t i = 0; i < lbs.size(); ++i)
            if (lbs[i] >= ubs[i])
                empty = true;
        if (empty) {
            ++_frames.back().it;
            return Step::Continue;
        }
        for (size_t i = 0; i < lbs.size(); ++i)
            bind(loop.body().argument(static_cast<unsigned>(i)),
                 SimValue::ofInt(lbs[i]));
        _frames.push_back(
            Frame{&loop.body(), loop.body().begin(), op, 0, lbs});
        return Step::Continue;
    }
    if (name == affine::YieldOp::opName) {
        // Loop back-edge: charge the cost, then fall off the block end.
        return advanceAfter(op, now, now, cost);
    }
    if (name == affine::LoadOp::opName ||
        name == affine::StoreOp::opName) {
        bool is_store = name == affine::StoreOp::opName;
        affine::LoadOp load(op);
        affine::StoreOp store(op);
        BufferObj *buf =
            eval(is_store ? store.memref() : load.memref()).asBuffer();
        auto idx_vals = is_store ? store.indices() : load.indices();
        std::vector<int64_t> idx;
        for (ir::Value v : idx_vals)
            idx.push_back(eval(v).asInt());
        int64_t off = buf->data->offset(idx);
        Cycles start = now;
        if (buf->mem) {
            Cycles occ = buf->mem->getReadOrWriteCycles(is_store, 1);
            start = buf->mem->acquire(now, occ);
            buf->mem->recordAccess(is_store,
                                   (buf->data->elemBits + 7) / 8);
        }
        if (is_store)
            buf->data->data[off] = eval(store.value()).asInt();
        else
            bind(op->result(0), SimValue::ofInt(buf->data->data[off]));
        return advanceAfter(op, now, start, cost);
    }

    // ---- linalg ops ------------------------------------------------------
    if (startsWith(name, "linalg.")) {
        // Root-level orchestration (e.g. filling test inputs) is free;
        // only modeled processors pay the analytic cost.
        Cycles cycles = cost;
        if (name == linalg::ConvOp::opName) {
            linalg::ConvOp conv(op);
            BufferObj *ib = eval(conv.ifmap()).asBuffer();
            BufferObj *wb = eval(conv.weight()).asBuffer();
            BufferObj *ob = eval(conv.ofmap()).asBuffer();
            auto d = linalg::convDims(op);
            // Functional semantics.
            auto at3 = [](BufferObj *b, int64_t i, int64_t j,
                          int64_t k) -> int64_t & {
                auto &sh = b->data->shape;
                return b->data->data[(i * sh[1] + j) * sh[2] + k];
            };
            for (int64_t n = 0; n < d.N; ++n)
                for (int64_t eh = 0; eh < d.Eh; ++eh)
                    for (int64_t ew = 0; ew < d.Ew; ++ew) {
                        int64_t acc = at3(ob, n, eh, ew);
                        for (int64_t c = 0; c < d.C; ++c)
                            for (int64_t fh = 0; fh < d.Fh; ++fh)
                                for (int64_t fw = 0; fw < d.Fw; ++fw) {
                                    int64_t iv =
                                        at3(ib, c, eh + fh, ew + fw);
                                    auto &wsh = wb->data->shape;
                                    int64_t wv = wb->data->data
                                        [((n * wsh[1] + c) * wsh[2] + fh) *
                                             wsh[3] +
                                         fw];
                                    acc += iv * wv;
                                }
                        at3(ob, n, eh, ew) = acc;
                    }
            // Analytic memory traffic: per MAC, read ifmap+weight+ofmap
            // and write ofmap once per accumulation chain.
            int64_t word = 4;
            if (ib->mem)
                ib->mem->recordAccess(false, d.macs() * word);
            if (wb->mem)
                wb->mem->recordAccess(false, d.macs() * word);
            if (ob->mem) {
                ob->mem->recordAccess(false, d.macs() * word);
                ob->mem->recordAccess(true, d.macs() * word);
            }
        } else if (name == linalg::FillOp::opName) {
            linalg::FillOp fill(op);
            BufferObj *b = eval(op->operand(0)).asBuffer();
            std::fill(b->data->data.begin(), b->data->data.end(),
                      fill.fillValue());
            if (b->mem)
                b->mem->recordAccess(true, b->sizeBytes());
        } else if (name == linalg::MatmulOp::opName) {
            BufferObj *a = eval(op->operand(0)).asBuffer();
            BufferObj *bm = eval(op->operand(1)).asBuffer();
            BufferObj *c = eval(op->operand(2)).asBuffer();
            auto &as = a->data->shape;
            auto &bs = bm->data->shape;
            for (int64_t i = 0; i < as[0]; ++i)
                for (int64_t j = 0; j < bs[1]; ++j) {
                    int64_t acc = c->data->data[i * bs[1] + j];
                    for (int64_t k = 0; k < as[1]; ++k)
                        acc += a->data->data[i * as[1] + k] *
                               bm->data->data[k * bs[1] + j];
                    c->data->data[i * bs[1] + j] = acc;
                }
        }
        return advanceAfter(op, now, now, cycles);
    }

    // ---- EQueue data movement ---------------------------------------------
    if (name == equeue::ReadOp::opName) {
        equeue::ReadOp read(op);
        BufferObj *buf = eval(read.buffer()).asBuffer();
        Connection *conn =
            read.hasConn() ? eval(read.conn()).asConnection() : nullptr;
        auto idx_vals = read.indices();
        Cycles start = now;
        int64_t bytes;
        if (idx_vals.empty()) {
            auto copy = std::make_shared<Tensor>(*buf->data);
            bytes = copy->sizeBytes();
            bind(op->result(0), SimValue::ofTensor(copy));
        } else {
            std::vector<int64_t> idx;
            for (ir::Value v : idx_vals)
                idx.push_back(eval(v).asInt());
            bytes = (buf->data->elemBits + 7) / 8;
            bind(op->result(0),
                 SimValue::ofInt(buf->data->data[buf->data->offset(idx)]));
        }
        int64_t words = idx_vals.empty() ? buf->data->numElements() : 1;
        if (buf->mem) {
            Cycles occ = buf->mem->getReadOrWriteCycles(false, words);
            start = std::max(start, buf->mem->acquire(now, occ));
            buf->mem->recordAccess(false, bytes);
        }
        if (conn) {
            Cycles c = conn->transferCycles(bytes);
            Cycles cstart = conn->acquireChannel(true, start, c);
            conn->recordTransfer(true, cstart, cstart + std::max<Cycles>(c, 1),
                                 bytes);
            _eng.noteActivity(cstart + c); // link busy past proc time
            start = std::max(start, cstart);
        }
        return advanceAfter(op, now, start, cost);
    }
    if (name == equeue::WriteOp::opName) {
        equeue::WriteOp write(op);
        BufferObj *buf = eval(write.buffer()).asBuffer();
        Connection *conn =
            write.hasConn() ? eval(write.conn()).asConnection() : nullptr;
        SimValue val = eval(write.value());
        auto idx_vals = write.indices();
        int64_t bytes;
        if (idx_vals.empty() && val.isTensor()) {
            auto src = val.asTensor();
            int64_t n = std::min(src->numElements(),
                                 buf->data->numElements());
            std::copy_n(src->data.begin(), n, buf->data->data.begin());
            bytes = n * ((buf->data->elemBits + 7) / 8);
        } else if (!idx_vals.empty()) {
            std::vector<int64_t> idx;
            for (ir::Value v : idx_vals)
                idx.push_back(eval(v).asInt());
            buf->data->data[buf->data->offset(idx)] = val.asInt();
            bytes = (buf->data->elemBits + 7) / 8;
        } else {
            // Scalar into rank-0/1 buffer: write element 0.
            buf->data->data[0] = val.asInt();
            bytes = (buf->data->elemBits + 7) / 8;
        }
        Cycles start = now;
        int64_t words = idx_vals.empty() && val.isTensor()
                            ? val.asTensor()->numElements()
                            : 1;
        if (buf->mem) {
            Cycles occ = buf->mem->getReadOrWriteCycles(true, words);
            start = std::max(start, buf->mem->acquire(now, occ));
            buf->mem->recordAccess(true, bytes);
        }
        if (conn) {
            Cycles c = conn->transferCycles(bytes);
            Cycles cstart = conn->acquireChannel(false, start, c);
            conn->recordTransfer(false, cstart,
                                 cstart + std::max<Cycles>(c, 1), bytes);
            _eng.noteActivity(cstart + c); // link busy past proc time
            start = std::max(start, cstart);
        }
        return advanceAfter(op, now, start, cost);
    }
    if (name == equeue::StreamReadOp::opName) {
        StreamFifo *fifo = eval(op->operand(0)).asStream();
        size_t elems = static_cast<size_t>(op->intAttr("elems"));
        Cycles ready = fifo->readyTime(elems);
        if (ready == StreamFifo::kNoReadyTime) {
            // Not enough elements yet: wake when the producer pushes.
            _eng.streamWaiters[fifo].push_back([this] {
                // Re-dispatch the same op at the engine's current time.
                resume(_eng.now);
            });
            return Step::Suspend;
        }
        if (ready > now) {
            _eng.scheduleAt(ready, [this, ready] { resume(ready); });
            return Step::Suspend;
        }
        auto vals = fifo->pop(elems);
        auto tensor = Tensor::zeros({static_cast<int64_t>(elems)},
                                    fifo->dataBits());
        tensor->data = std::move(vals);
        bind(op->result(0), SimValue::ofTensor(tensor));
        // The reader-side connection records bytes for profiling, but the
        // arrival rate was already shaped by the producer (§VII-E).
        if (equeue::StreamReadOp(op).hasConn()) {
            Connection *conn = eval(op->operand(1)).asConnection();
            int64_t bytes = tensor->sizeBytes();
            conn->recordTransfer(
                true, now,
                now + std::max<Cycles>(conn->transferCycles(bytes), 1),
                bytes);
        }
        return advanceAfter(op, now, now, cost);
    }
    if (name == equeue::StreamWriteOp::opName) {
        StreamFifo *fifo = eval(op->operand(1)).asStream();
        SimValue val = eval(op->operand(0));
        std::vector<int64_t> elems;
        if (val.isTensor())
            elems = val.asTensor()->data;
        else
            elems.push_back(val.asInt());
        int64_t bytes =
            static_cast<int64_t>(elems.size()) * ((fifo->dataBits() + 7) / 8);
        Cycles avail = now;
        if (equeue::StreamWriteOp(op).hasConn()) {
            Connection *conn = eval(op->operand(2)).asConnection();
            Cycles c = conn->transferCycles(bytes);
            Cycles cstart = conn->acquireChannel(false, now, c);
            conn->recordTransfer(false, cstart,
                                 cstart + std::max<Cycles>(c, 1), bytes);
            avail = cstart + c;
        }
        for (int64_t v : elems)
            fifo->push(v, avail);
        _eng.noteActivity(avail);
        _eng.notifyStream(fifo);
        return advanceAfter(op, now, now, cost);
    }

    // ---- EQueue events ------------------------------------------------------
    if (name == equeue::ControlStartOp::opName) {
        Event *ev = _eng.newEvent(Event::Kind::Start, now);
        _eng.completeEvent(ev, now);
        bind(op->result(0), SimValue::ofEvent(ev->id));
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::ControlAndOp::opName ||
        name == equeue::ControlOrOp::opName) {
        bool is_and = name == equeue::ControlAndOp::opName;
        Event *ev = _eng.newEvent(is_and ? Event::Kind::And
                                         : Event::Kind::Or,
                                  now);
        std::vector<EventId> deps;
        for (ir::Value v : op->operands())
            deps.push_back(eval(v).asEvent());
        ev->deps = deps;
        bind(op->result(0), SimValue::ofEvent(ev->id));
        Event *evp = ev;
        auto done = [this, evp](Cycles t) {
            _eng.completeEvent(evp, t);
        };
        if (is_and)
            _eng.whenAllDone(deps, done);
        else
            _eng.whenAnyDone(deps, done);
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::LaunchOp::opName) {
        equeue::LaunchOp launch(op);
        Event *ev = _eng.newEvent(Event::Kind::Launch, now);
        for (ir::Value d : launch.deps())
            ev->deps.push_back(eval(d).asEvent());
        ev->op = op;
        ev->proc = static_cast<Processor *>(
            eval(launch.proc()).asComponent());
        ev->creatorEnv = _env;
        bind(op->result(0), SimValue::ofEvent(ev->id));
        _spawned.push_back(ev->id);
        _eng.enqueueOnProcessor(ev, now);
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::MemcpyOp::opName) {
        equeue::MemcpyOp mc(op);
        Event *ev = _eng.newEvent(Event::Kind::Memcpy, now);
        ev->deps.push_back(eval(mc.dep()).asEvent());
        ev->op = op;
        ev->proc = static_cast<Processor *>(
            eval(mc.dma()).asComponent());
        ev->src = eval(mc.src()).asBuffer();
        ev->dst = eval(mc.dst()).asBuffer();
        if (mc.hasConn())
            ev->conn = eval(mc.conn()).asConnection();
        ev->creatorEnv = _env;
        bind(op->result(0), SimValue::ofEvent(ev->id));
        _spawned.push_back(ev->id);
        _eng.enqueueOnProcessor(ev, now);
        ++_frames.back().it;
        return Step::Continue;
    }
    if (name == equeue::AwaitOp::opName) {
        std::vector<EventId> ids;
        if (op->numOperands() == 0) {
            ids = _spawned;
        } else {
            for (ir::Value v : op->operands())
                ids.push_back(eval(v).asEvent());
        }
        bool all_done = true;
        Cycles max_t = now;
        for (EventId id : ids) {
            Event *ev = _eng.event(id);
            if (!ev->done)
                all_done = false;
            else
                max_t = std::max(max_t, ev->doneTime);
        }
        ++_frames.back().it;
        if (all_done) {
            now = std::max(now, max_t);
            return Step::Continue;
        }
        _eng.whenAllDone(ids, [this, now](Cycles t) {
            resume(std::max(now, t));
        });
        return Step::Suspend;
    }
    if (name == equeue::ReturnOp::opName) {
        if (_event) {
            for (ir::Value v : op->operands())
                _event->results.push_back(eval(v));
        }
        return Step::Finished;
    }
    if (name == equeue::ExternOp::opName) {
        OpCall call;
        call.op = op;
        call.proc = _proc;
        for (ir::Value v : op->operands())
            call.args.push_back(eval(v));
        OpFnResult r =
            _eng.opFns.invoke(op->strAttr("signature"), call);
        eq_assert(r.results.size() >= op->numResults(),
                  "op function returned too few results for '",
                  op->strAttr("signature"), "'");
        for (unsigned i = 0; i < op->numResults(); ++i)
            bind(op->result(i), r.results[i]);
        Cycles cycles = std::max(cost, r.cycles);
        return advanceAfter(op, now, now, cycles);
    }
    if (name == "builtin.module") {
        // Nested module: execute its body inline.
        _frames.push_back(Frame{&op->region(0).front(),
                                op->region(0).front().begin(), nullptr, 0,
                                {}});
        (void)ctx;
        return Step::Continue;
    }

    eq_fatal("simulation engine cannot interpret op '", name, "'");
}

void
BlockExec::finish(Cycles t)
{
    if (_finished)
        return;
    _finished = true;
    _eng.noteActivity(t);
    if (!_event)
        return; // module top level
    // Publish launch results into the creator environment so later
    // consumers (e.g. follow-up launches capturing them) can resolve.
    ir::Operation *op = _event->op;
    for (unsigned i = 1; i < op->numResults(); ++i) {
        eq_assert(_event->results.size() >= op->numResults() - 1,
                  "launch body returned too few values");
        _event->creatorEnv->vals[op->result(i).impl()] =
            _event->results[i - 1];
    }
    Processor *proc = _proc;
    _eng.completeEvent(_event, t);
    proc->setBusy(false);
    Simulator::Impl &eng = _eng;
    eng.scheduleAt(t, [&eng, proc, t] { eng.tryIssue(proc, t); });
}

// ---------------------------------------------------------------------------
// Impl: processor issue logic

void
Simulator::Impl::enqueueOnProcessor(Event *ev, Cycles t)
{
    ev->proc->queue().push_back(ev);
    scheduleAt(t, [this, proc = ev->proc, t] { tryIssue(proc, t); });
}

void
Simulator::Impl::tryIssue(Processor *proc, Cycles t)
{
    if (proc->busy() || proc->queue().empty())
        return;
    Event *head = proc->queue().front();
    // All dependencies must be complete before the head may issue
    // (head-of-line blocking, as in Fig. 5).
    std::vector<EventId> undone;
    Cycles dep_time = t;
    for (EventId id : head->deps) {
        Event *dep = event(id);
        if (!dep->done)
            undone.push_back(id);
        else
            dep_time = std::max(dep_time, dep->doneTime);
    }
    if (!undone.empty()) {
        if (!head->issueSubscribed) {
            head->issueSubscribed = true;
            whenAllDone(undone, [this, proc](Cycles done_t) {
                scheduleAt(done_t, [this, proc, done_t] {
                    tryIssue(proc, done_t);
                });
            });
        }
        return;
    }
    proc->queue().pop_front();
    proc->setBusy(true);
    head->issueSubscribed = false;
    head->startTime = dep_time;
    if (head->kind == Event::Kind::Launch)
        issueLaunch(head, dep_time);
    else
        issueMemcpy(head, dep_time);
}

void
Simulator::Impl::issueLaunch(Event *ev, Cycles t)
{
    equeue::LaunchOp launch(ev->op);
    auto env = std::make_shared<Env>();
    env->parent = ev->creatorEnv;
    // Resolve captured values now (lazy capture: results of earlier
    // events are published by the time our dependencies are done).
    auto captured = launch.captured();
    ir::Block &body = launch.body();
    for (size_t i = 0; i < captured.size(); ++i) {
        const SimValue *sv = ev->creatorEnv->find(captured[i].impl());
        eq_assert(sv, "launch captures value that is not yet computed; "
                      "add an event dependency");
        env->vals[body.argument(static_cast<unsigned>(i)).impl()] = *sv;
    }
    auto exec = std::make_unique<BlockExec>(*this, ev, ev->proc, &body,
                                            std::move(env));
    BlockExec *raw = exec.get();
    execs.push_back(std::move(exec));
    raw->start(t);
}

void
Simulator::Impl::issueMemcpy(Event *ev, Cycles t)
{
    BufferObj *src = ev->src;
    BufferObj *dst = ev->dst;
    int64_t words =
        std::min(src->data->numElements(), dst->data->numElements());
    int64_t bytes = words * ((src->data->elemBits + 7) / 8);

    Cycles dur = 1;
    if (src->mem)
        dur = std::max(dur, bulkMemCycles(src->mem, words, false));
    if (dst->mem)
        dur = std::max(dur, bulkMemCycles(dst->mem, words, true));
    Cycles start = t;
    if (ev->conn) {
        Cycles c = ev->conn->transferCycles(bytes);
        dur = std::max(dur, c);
        start = ev->conn->acquireChannel(false, t, dur);
        ev->conn->recordTransfer(false, start, start + dur, bytes);
    }
    // Copy now; data is considered valid once the event completes.
    std::copy_n(src->data->data.begin(), words, dst->data->data.begin());
    if (src->mem)
        src->mem->recordAccess(false, bytes);
    if (dst->mem)
        dst->mem->recordAccess(true, bytes);

    Processor *proc = ev->proc;
    proc->recordBusy(dur);
    proc->recordOp();
    recordTrace("equeue.memcpy", proc, start, dur);
    Cycles end = start + dur;
    scheduleAt(end, [this, ev, proc, end] {
        completeEvent(ev, end);
        proc->setBusy(false);
        tryIssue(proc, end);
    });
}

void
Simulator::Impl::notifyStream(StreamFifo *fifo)
{
    auto it = streamWaiters.find(fifo);
    if (it == streamWaiters.end())
        return;
    auto waiters = std::move(it->second);
    streamWaiters.erase(it);
    for (auto &w : waiters)
        scheduleAt(now, std::move(w));
}

void
Simulator::Impl::runHeap()
{
    while (!heap.empty()) {
        HeapItem item = heap.top();
        heap.pop();
        eq_assert(item.t >= now, "time went backwards in the scheduler");
        now = item.t;
        item.fn();
    }
}

SimReport
Simulator::Impl::buildReport(double wall_seconds) const
{
    SimReport rep;
    rep.cycles = endTime;
    rep.wallSeconds = wall_seconds;
    rep.eventsExecuted = eventsExecuted;
    rep.opsExecuted = opsExecuted;
    double cyc = std::max<double>(1.0, static_cast<double>(endTime));

    for (const auto &comp : components) {
        if (auto *mem = dynamic_cast<Memory *>(comp.get())) {
            MemReport m;
            m.name = mem->name();
            m.kind = mem->kind();
            m.bytesRead = mem->bytesRead();
            m.bytesWritten = mem->bytesWritten();
            m.avgReadBw = m.bytesRead / cyc;
            m.avgWriteBw = m.bytesWritten / cyc;
            rep.memories.push_back(std::move(m));
        } else if (auto *conn = dynamic_cast<Connection *>(comp.get())) {
            ConnReport c;
            c.name = conn->name();
            c.kind = conn->kind();
            c.bandwidthLimit = conn->bandwidth();
            c.readBytes = conn->readBytes();
            c.writeBytes = conn->writeBytes();
            c.avgReadBw = c.readBytes / cyc;
            c.avgWriteBw = c.writeBytes / cyc;
            // Peak bandwidth and the portion of time at peak, from the
            // recorded transfer intervals.
            double max_bw = 0.0;
            for (const auto &iv : conn->intervals()) {
                double rate = iv.bytes /
                              std::max<double>(1.0, double(iv.end - iv.start));
                max_bw = std::max(max_bw, rate);
            }
            c.maxBw = max_bw;
            Cycles read_at_peak = 0, write_at_peak = 0;
            for (const auto &iv : conn->intervals()) {
                double rate = iv.bytes /
                              std::max<double>(1.0, double(iv.end - iv.start));
                if (max_bw > 0 && rate >= max_bw * 0.999) {
                    (iv.isRead ? read_at_peak : write_at_peak) +=
                        iv.end - iv.start;
                }
            }
            c.maxBwPortionRead = read_at_peak / cyc;
            c.maxBwPortionWrite = write_at_peak / cyc;
            rep.connections.push_back(std::move(c));
        } else if (auto *proc = dynamic_cast<Processor *>(comp.get())) {
            ProcReport p;
            p.name = proc->name();
            p.kind = proc->kind();
            p.busyCycles = proc->busyCycles();
            p.opsExecuted = proc->opsExecuted();
            p.utilization = p.busyCycles / cyc;
            rep.processors.push_back(std::move(p));
        }
    }
    return rep;
}

// ---------------------------------------------------------------------------
// Simulator facade

Simulator::Simulator(EngineOptions opts) : _impl(std::make_unique<Impl>())
{
    _impl->opts = opts;
    _impl->traceData.setEnabled(opts.enableTrace);
}

Simulator::~Simulator() = default;

Trace &
Simulator::trace()
{
    return _impl->traceData;
}

OpFunctionRegistry &
Simulator::opFunctions()
{
    return _impl->opFns;
}

ComponentFactory &
Simulator::componentFactory()
{
    return _impl->factory;
}

SimReport
Simulator::simulate(ir::Operation *module)
{
    eq_assert(module->name() == "builtin.module",
              "simulate expects a builtin.module");
    if (_impl->opts.verifyModule) {
        std::string err = module->verify();
        if (!err.empty())
            eq_fatal("module verification failed: ", err);
    }
    auto t0 = std::chrono::steady_clock::now();
    bool trace_on = _impl->traceData.enabled();
    _impl->reset();
    _impl->traceData.setEnabled(trace_on);

    auto env = std::make_shared<Env>();
    auto exec = std::make_unique<BlockExec>(
        *_impl, nullptr, _impl->rootProc.get(),
        &module->region(0).front(), env);
    BlockExec *raw = exec.get();
    _impl->execs.push_back(std::move(exec));
    raw->start(0);
    _impl->runHeap();

    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();
    return _impl->buildReport(wall);
}

} // namespace sim
} // namespace eq
