/**
 * @file
 * The Simulator facade: run setup (reset, dispatch-table build, root
 * environment), the run loop, and report generation. The engine's
 * moving parts live in event_core.cc / elaborate.cc / interp.cc /
 * handlers.cc (see engine_impl.hh for the map).
 */

#include "sim/engine_impl.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "sim/compiled_exec.hh"

namespace eq {
namespace sim {

namespace {

/** Resolve Backend::Auto against EQ_SIM_BACKEND (once per Simulator,
 *  so a sweep's workers all agree for their whole lifetime). */
Backend
resolveBackend(Backend requested)
{
    if (requested != Backend::Auto)
        return requested;
    const char *env = std::getenv("EQ_SIM_BACKEND");
    if (!env || !*env || std::strcmp(env, "interp") == 0)
        return Backend::Interp;
    if (std::strcmp(env, "compiled") == 0)
        return Backend::Compiled;
    eq_fatal("EQ_SIM_BACKEND must be 'interp' or 'compiled', got '",
             env, "'");
}

/** Resolve Fusion::Auto against EQ_SIM_FUSE (default: on). */
bool
resolveFusion(Fusion requested)
{
    if (requested != Fusion::Auto)
        return requested == Fusion::On;
    const char *env = std::getenv("EQ_SIM_FUSE");
    if (!env || !*env || std::strcmp(env, "1") == 0 ||
        std::strcmp(env, "on") == 0)
        return true;
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)
        return false;
    eq_fatal("EQ_SIM_FUSE must be '0'/'off' or '1'/'on', got '", env,
             "'");
}

/** Resolve the launch-env pooling escape hatch against
 *  EQ_SIM_ENV_POOL (default: on). Pooling is a pure allocation
 *  optimization — reports and traces are identical either way — so
 *  the seam exists for bisection, not configuration. */
bool
resolveEnvPool()
{
    const char *env = std::getenv("EQ_SIM_ENV_POOL");
    if (!env || !*env || std::strcmp(env, "1") == 0 ||
        std::strcmp(env, "on") == 0)
        return true;
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)
        return false;
    eq_fatal("EQ_SIM_ENV_POOL must be '0'/'off' or '1'/'on', got '",
             env, "'");
}

} // namespace

SimReport
Simulator::Impl::buildReport(double wall_seconds) const
{
    SimReport rep;
    rep.cycles = endTime;
    rep.wallSeconds = wall_seconds;
    rep.eventsExecuted = eventsExecuted;
    rep.opsExecuted = opsExecuted;
    rep.dispatchCount = dispatchCount;
    double cyc = std::max<double>(1.0, static_cast<double>(endTime));

    for (const auto &comp : components) {
        if (auto *mem = dynamic_cast<Memory *>(comp.get())) {
            MemReport m;
            m.name = mem->name();
            m.kind = mem->kind();
            m.bytesRead = mem->bytesRead();
            m.bytesWritten = mem->bytesWritten();
            m.avgReadBw = m.bytesRead / cyc;
            m.avgWriteBw = m.bytesWritten / cyc;
            rep.memories.push_back(std::move(m));
        } else if (auto *conn = dynamic_cast<Connection *>(comp.get())) {
            ConnReport c;
            c.name = conn->name();
            c.kind = conn->kind();
            c.bandwidthLimit = conn->bandwidth();
            c.readBytes = conn->readBytes();
            c.writeBytes = conn->writeBytes();
            c.avgReadBw = c.readBytes / cyc;
            c.avgWriteBw = c.writeBytes / cyc;
            // Peak bandwidth and the portion of time at peak, from the
            // recorded transfer intervals.
            double max_bw = 0.0;
            for (const auto &iv : conn->intervals()) {
                double rate =
                    iv.bytes /
                    std::max<double>(1.0, double(iv.end - iv.start));
                max_bw = std::max(max_bw, rate);
            }
            c.maxBw = max_bw;
            Cycles read_at_peak = 0, write_at_peak = 0;
            for (const auto &iv : conn->intervals()) {
                double rate =
                    iv.bytes /
                    std::max<double>(1.0, double(iv.end - iv.start));
                if (max_bw > 0 && rate >= max_bw * 0.999) {
                    (iv.isRead ? read_at_peak : write_at_peak) +=
                        iv.end - iv.start;
                }
            }
            c.maxBwPortionRead = read_at_peak / cyc;
            c.maxBwPortionWrite = write_at_peak / cyc;
            rep.connections.push_back(std::move(c));
        } else if (auto *proc = dynamic_cast<Processor *>(comp.get())) {
            ProcReport p;
            p.name = proc->name();
            p.kind = proc->kind();
            p.busyCycles = proc->busyCycles();
            p.opsExecuted = proc->opsExecuted();
            p.utilization = p.busyCycles / cyc;
            rep.processors.push_back(std::move(p));
        }
    }
    return rep;
}

// ---------------------------------------------------------------------------
// Simulator facade

Simulator::Simulator(EngineOptions opts) : _impl(std::make_unique<Impl>())
{
    _impl->opts = opts;
    _impl->backend = resolveBackend(opts.backend);
    _impl->fuse = resolveFusion(opts.fuse);
    _impl->envPool = resolveEnvPool();
    _impl->traceData.setEnabled(opts.enableTrace);
}

Simulator::~Simulator() = default;

Backend
Simulator::backend() const
{
    return _impl->backend;
}

bool
Simulator::fusionEnabled() const
{
    return _impl->fuse;
}

bool
Simulator::envPoolEnabled() const
{
    return _impl->envPool;
}

Trace &
Simulator::trace()
{
    return _impl->traceData;
}

OpFunctionRegistry &
Simulator::opFunctions()
{
    return _impl->opFns;
}

ComponentFactory &
Simulator::componentFactory()
{
    return _impl->factory;
}

SimReport
Simulator::Impl::runModule(ir::Operation *module, bool reuse_compiled)
{
    auto t0 = std::chrono::steady_clock::now();
    bool trace_on = traceData.enabled();
    // A full reset clears value numbering (a fresh module's blocks may
    // alias destroyed ones); batched re-runs of a pinned module keep it.
    reset(/*keep_numbering=*/reuse_compiled);
    traceData.setEnabled(trace_on);
    // Dispatch resolves against the module's context; contexts can
    // differ between runs of one Simulator, so rebuild per run (cheap:
    // one pass over the interned-name pool). Batched re-runs skip the
    // rebuild while the table still covers every interned name of the
    // same context. The pointer compare is sound only because
    // reuse_compiled implies a previous run of this pinned module: its
    // context has been alive continuously since then, so a live-vs-live
    // address match identifies the same Context object (a destroyed
    // context's address can never equal a continuously-live one's).
    ir::Context &ctx = module->context();
    if (!reuse_compiled || dispatchCtx != &ctx ||
        handlers.size() != ctx.numInternedOpNames())
        buildDispatchTable(ctx);

    ir::Block *root = &module->region(0).front();
    EnvPtr env = makeEnv(root, nullptr);
    std::unique_ptr<ExecBase> exec;
    if (backend == Backend::Compiled)
        exec = std::make_unique<CompiledExec>(*this, nullptr,
                                              rootProc.get(),
                                              execProgramFor(root),
                                              std::move(env));
    else
        exec = std::make_unique<BlockExec>(*this, nullptr,
                                           rootProc.get(), root,
                                           std::move(env));
    ExecBase *raw = exec.get();
    execs.push_back(std::move(exec));
    raw->start(0);
    runHeap();

    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();
    return buildReport(wall);
}

SimReport
Simulator::simulate(ir::Operation *module)
{
    eq_assert(module->name() == "builtin.module",
              "simulate expects a builtin.module");
    if (_impl->opts.verifyModule) {
        std::string err = module->verify();
        if (!err.empty())
            eq_fatal("module verification failed: ", err);
    }
    return _impl->runModule(module, /*reuse_compiled=*/false);
}

// ---------------------------------------------------------------------------
// BatchSession

BatchSession::BatchSession(Simulator &sim, ir::Operation *module)
    : _sim(sim), _module(module)
{
    eq_assert(module && module->name() == "builtin.module",
              "BatchSession expects a builtin.module");
}

SimReport
BatchSession::run()
{
    // Verify once: the module is pinned and unchanged across runs.
    if (_runs == 0 && _sim._impl->opts.verifyModule) {
        std::string err = _module->verify();
        if (!err.empty())
            eq_fatal("module verification failed: ", err);
    }
    // The first run must rebuild everything: numbering or dispatch
    // tables left over from another module/context (possibly destroyed,
    // their addresses reusable) cannot be trusted. From the second run
    // on, the previous run interpreted exactly this pinned module, so
    // its numbering and tables are authoritative.
    bool reuse = _runs > 0;
    ++_runs;
    return _sim._impl->runModule(_module, reuse);
}

} // namespace sim
} // namespace eq
