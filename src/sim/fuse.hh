/**
 * @file
 * Superinstruction fusion over the compiled micro-op stream (ROADMAP
 * "Micro-op superinstructions"; cf. the lowered-representation
 * optimizations of compiled simulators like CVC, arXiv:1603.08059, and
 * Manticore, arXiv:2301.09413).
 *
 * After ModuleCompiler lowering (sim/compile.cc), a scope's stream
 * still pays one jump-table dispatch per IR op; in the systolic hot
 * loop that dispatch — plus the tensor materialization every
 * whole-cell read performs and the signature-string lookup every
 * `equeue.op` performs — dominates. optimizeProgram() rewrites a
 * CompiledBlock so that
 *
 *  - maximal runs of adjacent simple records (reads, writes, stream
 *    ops, extern calls, scalar arith, constants) collapse into single
 *    MOp::Fused superinstruction records carrying the constituent
 *    elements with their pre-combined cost rows — one dispatch then
 *    executes the whole group (Read→Mac→Write, Read→Write copies,
 *    StreamRead→compute→StreamWrite, ...);
 *  - whole-cell reads whose every use is inside the group and provably
 *    scalar-compatible are flagged kFlagScalarize, eliminating the
 *    per-read tensor allocation;
 *  - extern elements cache their registered op-function pointer (no
 *    per-call signature lookup);
 *  - operand env-hop chains are coalesced: the executor resolves each
 *    chain level once per group entry instead of walking parent links
 *    per operand;
 *  - index operands that are same-scope constants fold into immediate
 *    offsets (kFlagImmIdx), on fused elements and standalone
 *    load/store/read/write records alike.
 *
 * Observational equivalence is preserved by construction: every
 * element executes with the same per-op cost accounting, memory and
 * connection acquisition order, suspend/resume decisions, opsExecuted
 * accounting, and trace records as the record it replaced (fused
 * groups suspend and resume mid-group exactly where the unfused stream
 * would). Reports, traces, and goldens are byte-identical; only the
 * dispatch count — surfaced as SimReport::dispatchCount — drops.
 */

#ifndef EQ_SIM_FUSE_HH
#define EQ_SIM_FUSE_HH

#include <memory>

#include "sim/compile.hh"

namespace eq {
namespace sim {

class OpFunctionRegistry;

/** Statistics of one optimizeProgram() run (for tests/diagnostics). */
struct FuseStats {
    uint32_t groups = 0;       ///< superinstructions emitted
    uint32_t fusedRecords = 0; ///< original records they absorbed
    uint32_t scalarized = 0;   ///< cell reads flagged kFlagScalarize
    uint32_t immFolded = 0;    ///< records/elems with folded indices
};

/**
 * Rewrite @p in with superinstruction fusion and stream optimizations.
 * @param in        the ModuleCompiler-lowered program
 * @param opFns     registry used to cache extern function pointers
 * @param childProg maps each in.childProgs entry to the program the
 *                  optimized block should pin on its Launch records
 *                  (the optimized child); identity when fusion of
 *                  children is disabled
 * @param stats     optional out-param
 */
std::unique_ptr<CompiledBlock>
optimizeProgram(const CompiledBlock &in, const OpFunctionRegistry &opFns,
                const std::vector<const CompiledBlock *> &childProgs,
                FuseStats *stats = nullptr);

} // namespace sim
} // namespace eq

#endif // EQ_SIM_FUSE_HH
