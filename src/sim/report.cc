#include "sim/report.hh"

#include <iomanip>
#include <ostream>

namespace eq {
namespace sim {

const MemReport *
SimReport::findMem(const std::string &name) const
{
    for (const auto &m : memories)
        if (m.name == name)
            return &m;
    return nullptr;
}

const ConnReport *
SimReport::findConn(const std::string &name) const
{
    for (const auto &c : connections)
        if (c.name == name)
            return &c;
    return nullptr;
}

void
SimReport::print(std::ostream &os) const
{
    os << "=== simulation summary ===\n";
    os << "simulated runtime: " << cycles << " cycles\n";
    os << "execution time:    " << std::fixed << std::setprecision(6)
       << wallSeconds << " s\n";
    os << "events executed:   " << eventsExecuted << "\n";
    os << "ops executed:      " << opsExecuted << "\n";
    // Only interesting when fusion collapsed dispatches; printing it
    // unconditionally would make otherwise-identical backend reports
    // differ.
    if (dispatchCount != 0 && dispatchCount != opsExecuted)
        os << "dispatches:        " << dispatchCount << "\n";
    if (!memories.empty()) {
        os << "--- memories ---\n";
        for (const auto &m : memories) {
            os << "  " << m.name << " (" << m.kind << "): read "
               << m.bytesRead << " B (" << std::setprecision(3)
               << m.avgReadBw << " B/cyc), written " << m.bytesWritten
               << " B (" << m.avgWriteBw << " B/cyc)\n";
        }
    }
    if (!connections.empty()) {
        os << "--- connections ---\n";
        for (const auto &c : connections) {
            os << "  " << c.name << " (" << c.kind << ", "
               << (c.bandwidthLimit > 0
                       ? std::to_string(c.bandwidthLimit) + " B/cyc"
                       : std::string("unlimited"))
               << "): read " << c.readBytes << " B ("
               << std::setprecision(3) << c.avgReadBw
               << " B/cyc), written " << c.writeBytes << " B ("
               << c.avgWriteBw << " B/cyc), max " << c.maxBw
               << " B/cyc, max-portion r/w " << c.maxBwPortionRead << "/"
               << c.maxBwPortionWrite << "\n";
        }
    }
    if (!processors.empty()) {
        os << "--- processors ---\n";
        for (const auto &p : processors) {
            os << "  " << p.name << " (" << p.kind << "): busy "
               << p.busyCycles << " cycles (" << std::setprecision(3)
               << (p.utilization * 100.0) << "%), " << p.opsExecuted
               << " ops\n";
        }
    }
}

} // namespace sim
} // namespace eq
