/**
 * @file
 * CompiledExec: the compiled backend's execution loop. Runs one
 * pre-lowered micro-op stream (sim/compile.hh) for one interpretation
 * scope — the module top level or a launch body — against the same
 * event core, components, and environments as the interpreter.
 *
 * Where BlockExec keeps a frame stack of (block, iterator) pairs and
 * re-derives everything per dispatch (handler-table lookup, scope-id
 * walk per operand, cost-table lookup), CompiledExec's whole state is
 * a program counter: control flow follows pre-computed pc targets,
 * operands are pre-resolved (hops, slot) references, and the
 * executing processor's cost-class row is pre-folded into each
 * record. Suspension (timed ops, awaits, stream stalls) schedules a
 * resume at the saved pc, exactly mirroring the interpreter's
 * suspend/resume protocol so event ordering — and therefore traces
 * and reports — is byte-identical.
 */

#ifndef EQ_SIM_COMPILED_EXEC_HH
#define EQ_SIM_COMPILED_EXEC_HH

#include "sim/engine_impl.hh"

namespace eq {
namespace sim {

class CompiledExec : public ExecBase {
  public:
    CompiledExec(Simulator::Impl &eng, Event *ev, Processor *proc,
                 const CompiledBlock &prog, EnvPtr env)
        : _eng(eng), _event(ev), _proc(proc), _prog(prog),
          _env(std::move(env)),
          _cls(proc ? static_cast<unsigned>(proc->costClass())
                    : static_cast<unsigned>(CostClass::Root))
    {
        eq_assert(_env->scopeId == prog.scopeId,
                  "compiled program bound to a foreign environment");
    }

    /** Re-enter the stream at simulation time @p t (at the saved pc). */
    void resume(Cycles t) override;

  private:
    /** Resolve a pre-compiled value reference along the env chain. */
    SimValue &
    slotAt(const SlotRef &r) const
    {
        Env *e = _env.get();
        for (uint32_t h = r.hops; h; --h)
            e = e->parent.get();
        return e->slots[r.slot];
    }

    /** Operand @p i of record @p m; asserts it has a runtime binding
     *  (mirrors the interpreter's eval diagnostics). */
    const SimValue &
    arg(const MicroOp &m, unsigned i) const
    {
        const SimValue &s = slotAt(_prog.args[m.argsBegin + i]);
        eq_assert(!s.isNone(),
                  "use of value with no runtime binding (op '",
                  m.op ? m.op->name() : "?",
                  "'): likely a missing event dependency");
        return s;
    }

    SimValue &
    local(uint32_t slot) const
    {
        return _env->slots[slot];
    }

    void
    bindLocal(uint32_t slot, SimValue v) const
    {
        _env->slots[slot] = std::move(v);
    }

    /** Index operands land in a stack array (no per-access heap
     *  vector); ranks beyond this are rejected at elaboration by the
     *  type system long before execution. */
    static constexpr unsigned kMaxRank = 8;

    /** Gather the trailing index operands [first, nargs) of @p m. */
    unsigned
    gatherIndices(const MicroOp &m, unsigned first, int64_t *out) const
    {
        const unsigned n = m.nargs - first;
        eq_assert(n <= kMaxRank, "index rank exceeds kMaxRank");
        for (unsigned i = 0; i < n; ++i)
            out[i] = arg(m, first + i).asInt();
        return n;
    }

    /** Index operands of @p m, honoring the fuse pass's constant-index
     *  folding: pre-folded records read straight from the immediate
     *  pool, others gather from slots into @p buf. */
    const int64_t *
    recordIndices(const MicroOp &m, unsigned first, int64_t *buf) const
    {
        if (m.flags & kFlagImmIdx)
            return _prog.immIdx.data() + m.aux;
        gatherIndices(m, first, buf);
        return buf;
    }

    /** Pre-folded cost of @p m on the executing processor class. */
    Cycles
    costOf(const MicroOp &m) const
    {
        Cycles c = m.cost[_cls];
        if (c == CostModel::kDynamic)
            c = CostModel::linalgCycles(m.op);
        return c;
    }

    std::string traceLabel(const MicroOp &m) const;

    /** Account for an op occupying the processor from @p start for
     *  @p cycles; advances the pc. @return true when the stream must
     *  suspend (the op ends later than @p now *and* another event is
     *  pending first). Mirrors BlockExec::advanceAfter cycle-for-cycle,
     *  except that when this stream's wake-up would be the very next
     *  heap pop anyway, time advances in place (@p now is bumped to
     *  the op's end) and execution continues without the scheduler
     *  round-trip — the same pop the interpreter pays per timed op. */
    bool chargeAfter(const MicroOp &m, Cycles &now, Cycles start,
                     Cycles cycles);

    /** Execute the superinstruction @p m (MOp::Fused) from the saved
     *  sub-position. Each constituent element is accounted exactly like
     *  the record it replaced — per-element cost, memory/connection
     *  acquisition, trace lines, opsExecuted, and suspend decisions —
     *  so fused and unfused streams are byte-identical; only the
     *  jump-table dispatch (and dead tensor materialization) is saved.
     *  @return true when the group suspended (resume re-enters it at
     *  @ref _subPc); false when it completed (pc already advanced). */
    bool execFused(const MicroOp &m, Cycles &now);

    /** Per-element chargeAfter twin: same accounting and time-advance
     *  fast path, but suspension saves the element position instead of
     *  advancing the pc. */
    bool chargeFused(const FusedElem &e, Cycles &now, Cycles start,
                     Cycles cycles, uint32_t k);

    /** Pre-folded cost of fused element @p e on the executing class. */
    Cycles
    costOf(const FusedElem &e) const
    {
        Cycles c = e.cost[_cls];
        if (c == CostModel::kDynamic)
            c = CostModel::linalgCycles(e.op);
        return c;
    }

    void finish(Cycles t);

    Simulator::Impl &_eng;
    Event *_event;    ///< null for the module top level
    Processor *_proc; ///< executing processor (root proc at top level)
    const CompiledBlock &_prog;
    EnvPtr _env;
    unsigned _cls;      ///< pre-resolved cost-class row index
    uint32_t _pc = 0;
    /** Resume position inside a suspended MOp::Fused group, 1-based:
     *  0 = enter the group fresh, k+1 = resume at element k. The
     *  bias keeps "fresh entry" distinguishable from "suspended at
     *  element 0" (a group-leading stream read waiting on its
     *  producer), so re-entries never re-count the group dispatch.
     *  Only nonzero while suspended at _pc. */
    uint32_t _subPc = 0;
    /** Scratch equeue.op call frame: cleared per call, so repeated
     *  extern elements reuse the argument vector's capacity. */
    OpCall _scratch;
    std::vector<EventId> _spawned;
    bool _finished = false;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_COMPILED_EXEC_HH
