/**
 * @file
 * The engine's event core: discrete-event heap, event lifecycle and
 * dependency subscription, and the per-processor FIFO issue logic of
 * §III-D (launch enqueues an event; the queue head issues once its
 * dependencies complete; each processor executes one event at a time).
 */

#include <algorithm>

#include "dialects/equeue.hh"
#include "sim/compiled_exec.hh"
#include "sim/engine_impl.hh"

namespace eq {
namespace sim {

void
Simulator::Impl::reset(bool keep_numbering)
{
    components.clear();
    buffers.clear();
    events.clear();
    execs.clear();
    streamWaiters.clear();
    heap.clear();
    nowQ.clear();
    seqCounter = 0;
    now = 0;
    endTime = 0;
    eventsExecuted = 0;
    opsExecuted = 0;
    dispatchCount = 0;
    nameCounters.clear();
    if (!keep_numbering) {
        valueScopes.clear();
        // Compiled programs embed the numbering (slot refs resolved
        // against it), so they — and their fused rewrites — live and
        // die with it.
        programs.clear();
        fusedPrograms.clear();
    }
    traceData.clear();
    rootProc = std::make_unique<Processor>("host", "Root");
}

std::string
Simulator::Impl::freshName(const std::string &base)
{
    int n = nameCounters[base]++;
    return base + std::to_string(n);
}

Event *
Simulator::Impl::newEvent(Event::Kind kind, Cycles t)
{
    Event &ev = events.emplace_back();
    ev.id = events.size() - 1;
    ev.kind = kind;
    ev.createdAt = t;
    return &ev;
}

void
Simulator::Impl::completeEvent(Event *ev, Cycles t)
{
    eq_assert(!ev->done, "event completed twice");
    ev->done = true;
    ev->doneTime = t;
    noteActivity(t);
    ++eventsExecuted;
    auto callbacks = std::move(ev->onDone);
    ev->onDone.clear();
    for (auto &cb : callbacks)
        cb(t);
    // The creator environment is only needed up to completion (issue
    // reads captures from it, finishLaunch publishes results into it,
    // both before this point); dropping the reference now lets pooled
    // envs recycle as soon as their launches retire instead of
    // lingering until the end of the run.
    ev->creatorEnv.reset();
}

void
Simulator::Impl::whenAllDone(const std::vector<EventId> &ids, DoneFn fn)
{
    // Single-dependency fast path (the overwhelmingly common case:
    // chained launches): subscribe the callback directly, no shared
    // join state. Callback position — and therefore completion
    // ordering — is exactly what the general path would produce.
    if (ids.size() == 1) {
        Event *ev = event(ids[0]);
        if (ev->done)
            fn(ev->doneTime);
        else
            ev->onDone.push_back(std::move(fn));
        return;
    }
    auto state = std::make_shared<std::pair<size_t, Cycles>>(0, 0);
    for (EventId id : ids) {
        Event *ev = event(id);
        if (ev->done)
            state->second = std::max(state->second, ev->doneTime);
        else
            ++state->first;
    }
    if (state->first == 0) {
        fn(state->second);
        return;
    }
    auto shared_fn = std::make_shared<DoneFn>(std::move(fn));
    for (EventId id : ids) {
        Event *ev = event(id);
        if (ev->done)
            continue;
        ev->onDone.push_back([state, shared_fn](Cycles t) {
            state->second = std::max(state->second, t);
            if (--state->first == 0)
                (*shared_fn)(state->second);
        });
    }
}

void
Simulator::Impl::whenAnyDone(const std::vector<EventId> &ids, DoneFn fn)
{
    for (EventId id : ids) {
        if (event(id)->done) {
            fn(event(id)->doneTime);
            return;
        }
    }
    auto fired = std::make_shared<bool>(false);
    auto shared_fn = std::make_shared<DoneFn>(std::move(fn));
    for (EventId id : ids) {
        event(id)->onDone.push_back([fired, shared_fn](Cycles t) {
            if (!*fired) {
                *fired = true;
                (*shared_fn)(t);
            }
        });
    }
}

void
Simulator::Impl::enqueueOnProcessor(Event *ev, Cycles t)
{
    ev->proc->queue().push_back(ev);
    scheduleAt(t, [this, proc = ev->proc, t] { tryIssue(proc, t); });
}

void
Simulator::Impl::tryIssue(Processor *proc, Cycles t)
{
    if (proc->busy() || proc->queue().empty())
        return;
    Event *head = proc->queue().front();
    // All dependencies must be complete before the head may issue
    // (head-of-line blocking, as in Fig. 5). First pass counts the
    // pending deps without allocating — issue attempts happen per
    // event and almost always find zero or one pending.
    size_t num_undone = 0;
    EventId undone_id = 0;
    Cycles dep_time = t;
    for (EventId id : head->deps) {
        Event *dep = event(id);
        if (!dep->done) {
            ++num_undone;
            undone_id = id;
        } else {
            dep_time = std::max(dep_time, dep->doneTime);
        }
    }
    if (num_undone) {
        if (!head->issueSubscribed) {
            head->issueSubscribed = true;
            DoneFn wake = [this, proc](Cycles done_t) {
                scheduleAt(done_t, [this, proc, done_t] {
                    tryIssue(proc, done_t);
                });
            };
            if (num_undone == 1) {
                // Same subscription whenAllDone would make, minus the
                // id-vector and join-state allocations.
                event(undone_id)->onDone.push_back(std::move(wake));
            } else {
                std::vector<EventId> undone;
                undone.reserve(num_undone);
                for (EventId id : head->deps)
                    if (!event(id)->done)
                        undone.push_back(id);
                whenAllDone(undone, std::move(wake));
            }
        }
        return;
    }
    proc->queue().pop_front();
    proc->setBusy(true);
    head->issueSubscribed = false;
    head->startTime = dep_time;
    if (head->kind == Event::Kind::Launch)
        issueLaunch(head, dep_time);
    else
        issueMemcpy(head, dep_time);
}

void
Simulator::Impl::issueLaunch(Event *ev, Cycles t)
{
    equeue::LaunchOp launch(ev->op);
    ir::Block &body = launch.body();
    std::unique_ptr<ExecBase> exec;
    if (backend == Backend::Compiled) {
        // Pre-compiled issue: the body program (pinned on the event by
        // the Launch micro-op — already the fused rewrite when fusion
        // is on) knows its scope size and its capture mapping, so no
        // per-issue numbering lookup and no use chain walks — captures
        // are slot-to-slot copies.
        const CompiledBlock &prog =
            ev->bodyProg ? *ev->bodyProg : execProgramFor(&body);
        EnvPtr env = acquireEnv(prog.scopeId, prog.numSlots,
                                ev->creatorEnv);
        for (const auto &cap : prog.captures) {
            Env *e = env->parent.get();
            for (uint32_t h = cap.src.hops; h; --h)
                e = e->parent.get();
            const SimValue &sv = e->slots[cap.src.slot];
            eq_assert(!sv.isNone(),
                      "launch captures value that is not yet computed; "
                      "add an event dependency");
            env->slots[cap.argSlot] = sv;
        }
        exec = std::make_unique<CompiledExec>(*this, ev, ev->proc, prog,
                                              std::move(env));
    } else {
        EnvPtr env = makeEnv(&body, ev->creatorEnv);
        // Resolve captured values now (lazy capture: results of
        // earlier events are published by the time our dependencies
        // are done).
        auto captured = launch.captured();
        for (size_t i = 0; i < captured.size(); ++i) {
            const SimValue *sv =
                ev->creatorEnv->find(captured[i].impl());
            eq_assert(sv,
                      "launch captures value that is not yet computed; "
                      "add an event dependency");
            env->bind(body.argument(static_cast<unsigned>(i)).impl(),
                      *sv);
        }
        exec = std::make_unique<BlockExec>(*this, ev, ev->proc, &body,
                                           std::move(env));
    }
    ExecBase *raw = exec.get();
    execs.push_back(std::move(exec));
    raw->start(t);
}

void
Simulator::Impl::finishLaunch(Event *ev, Processor *proc, Cycles t)
{
    // Publish launch results into the creator environment so later
    // consumers (e.g. follow-up launches capturing them) can resolve.
    ir::Operation *op = ev->op;
    for (unsigned i = 1; i < op->numResults(); ++i) {
        eq_assert(ev->results.size() >= op->numResults() - 1,
                  "launch body returned too few values");
        ev->creatorEnv->bind(op->result(i).impl(), ev->results[i - 1]);
    }
    completeEvent(ev, t);
    proc->setBusy(false);
    scheduleAt(t, [this, proc, t] { tryIssue(proc, t); });
}

void
Simulator::Impl::issueMemcpy(Event *ev, Cycles t)
{
    BufferObj *src = ev->src;
    BufferObj *dst = ev->dst;
    int64_t words =
        std::min(src->data->numElements(), dst->data->numElements());
    int64_t bytes = words * ((src->data->elemBits + 7) / 8);

    Cycles dur = 1;
    if (src->mem)
        dur = std::max(dur, bulkMemCycles(src->mem, words, false));
    if (dst->mem)
        dur = std::max(dur, bulkMemCycles(dst->mem, words, true));
    Cycles start = t;
    if (ev->conn) {
        Cycles c = ev->conn->transferCycles(bytes);
        dur = std::max(dur, c);
        start = ev->conn->acquireChannel(false, t, dur);
        ev->conn->recordTransfer(false, start, start + dur, bytes);
    }
    // Copy now; data is considered valid once the event completes.
    std::copy_n(src->data->data.begin(), words, dst->data->data.begin());
    if (src->mem)
        src->mem->recordAccess(false, bytes);
    if (dst->mem)
        dst->mem->recordAccess(true, bytes);

    Processor *proc = ev->proc;
    proc->recordBusy(dur);
    proc->recordOp();
    recordTrace("equeue.memcpy", proc, start, dur);
    Cycles end = start + dur;
    scheduleAt(end, [this, ev, proc, end] {
        completeEvent(ev, end);
        proc->setBusy(false);
        tryIssue(proc, end);
    });
}

void
Simulator::Impl::notifyStream(StreamFifo *fifo)
{
    auto it = streamWaiters.find(fifo);
    if (it == streamWaiters.end())
        return;
    auto waiters = std::move(it->second);
    streamWaiters.erase(it);
    for (auto &w : waiters)
        scheduleAt(now, std::move(w));
}

void
Simulator::Impl::runHeap()
{
    // Two sorted sources, one total order: nowQ is FIFO-sorted by
    // (t, seq) by construction (items are appended at the monotone
    // current time with globally increasing sequence numbers), so
    // merging against the heap by the same (t, seq) key pops every
    // item in exactly the order the single-heap schedule would.
    while (!heap.empty() || !nowQ.empty()) {
        bool from_nowq;
        if (heap.empty()) {
            from_nowq = true;
        } else if (nowQ.empty()) {
            from_nowq = false;
        } else {
            const HeapItem &a = nowQ.front();
            const HeapItem &b = heap.front();
            from_nowq = std::tie(a.t, a.seq) < std::tie(b.t, b.seq);
        }
        HeapItem item;
        if (from_nowq) {
            item = std::move(nowQ.front());
            nowQ.pop_front();
        } else {
            std::pop_heap(heap.begin(), heap.end(), HeapAfter{});
            item = std::move(heap.back());
            heap.pop_back();
        }
        eq_assert(item.t >= now, "time went backwards in the scheduler");
        now = item.t;
        item.fn();
    }
}

} // namespace sim
} // namespace eq
