/**
 * @file
 * Operation-function registry for `equeue.op` custom signatures
 * (Sections III-E and IV-D).
 *
 * An operation function receives the evaluated arguments (buffers are
 * passed as mutable BufferObj handles) and returns a cycle count plus any
 * result values. The engine consults the registry whenever it interprets
 * an `equeue.op`.
 */

#ifndef EQ_SIM_OPFUNCTIONS_HH
#define EQ_SIM_OPFUNCTIONS_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/operation.hh"
#include "sim/component.hh"
#include "sim/simvalue.hh"

namespace eq {
namespace sim {

/** Evaluated call site of an equeue.op. */
struct OpCall {
    ir::Operation *op = nullptr;
    std::vector<SimValue> args;
    Processor *proc = nullptr;
};

/** What an operation function reports back to the scheduler. */
struct OpFnResult {
    Cycles cycles = 1;
    std::vector<SimValue> results;
};

using OpFunction = std::function<OpFnResult(const OpCall &)>;

/** Registry mapping signature strings to operation functions. */
class OpFunctionRegistry {
  public:
    /** Construct with the built-in library ("mac", "mul4", "mac4"). */
    OpFunctionRegistry();

    void registerOp(const std::string &signature, OpFunction fn);
    bool has(const std::string &signature) const;

    /** Resolve a signature to its registered function, or null. The
     *  returned pointer stays valid (and observes re-registrations of
     *  the same signature) for the registry's lifetime — the map is
     *  node-based and entries are never erased. Used by the fusion
     *  pass to cache the lookup out of the superinstruction hot path. */
    const OpFunction *find(const std::string &signature) const;

    /** Invoke; fatal if the signature is unknown. */
    OpFnResult invoke(const std::string &signature,
                      const OpCall &call) const;

  private:
    std::map<std::string, OpFunction> _fns;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_OPFUNCTIONS_HH
