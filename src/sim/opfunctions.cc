#include "sim/opfunctions.hh"

#include "base/logging.hh"

namespace eq {
namespace sim {

namespace {

/**
 * "mac": scalar fused multiply-accumulate, a*b+acc in one cycle. This is
 * the PE datapath primitive the systolic-array model uses.
 */
/** Scalar view of an argument: ints pass through, 1-element tensors
 *  (whole-buffer reads of register cells) are unwrapped. */
int64_t
scalarOf(const SimValue &v)
{
    if (v.isTensor())
        return v.asTensor()->data.empty() ? 0 : v.asTensor()->data[0];
    return v.asInt();
}

OpFnResult
macFn(const OpCall &call)
{
    eq_assert(call.args.size() == 3, "mac expects (a, b, acc)");
    int64_t a = scalarOf(call.args[0]);
    int64_t b = scalarOf(call.args[1]);
    int64_t acc = scalarOf(call.args[2]);
    OpFnResult r;
    r.cycles = 1;
    r.results.push_back(SimValue::ofInt(a * b + acc));
    return r;
}

/**
 * AI Engine vector intrinsics (§VII-C): mul4/mac4 compute 4 output lanes,
 * each performing 2 multiplies per cycle [39]. Arguments are buffers:
 *   (ofmap[4], ifmap[>=off+5], filter[>=off+2])
 * with the tap offset passed via the op's `offset` attribute:
 *   ofmap[l] (=|+=) ifmap[l+off]*filter[off] + ifmap[l+off+1]*filter[off+1]
 */
OpFnResult
mulMac4Fn(const OpCall &call, bool accumulate)
{
    eq_assert(call.args.size() == 3,
              "mul4/mac4 expect (ofmap, ifmap, filter) buffers");
    BufferObj *ofmap = call.args[0].asBuffer();
    BufferObj *ifmap = call.args[1].asBuffer();
    BufferObj *filter = call.args[2].asBuffer();
    int64_t off = call.op ? call.op->intAttrOr("offset", 0) : 0;

    auto &of = ofmap->data->data;
    auto &in = ifmap->data->data;
    auto &fl = filter->data->data;
    for (int64_t lane = 0; lane < 4; ++lane) {
        int64_t acc = accumulate ? of[lane] : 0;
        for (int64_t k = 0; k < 2; ++k) {
            int64_t ii = lane + off + k;
            int64_t fi = off + k;
            if (ii < static_cast<int64_t>(in.size()) &&
                fi < static_cast<int64_t>(fl.size()))
                acc += in[ii] * fl[fi];
        }
        of[lane] = acc;
    }
    OpFnResult r;
    r.cycles = 1;
    return r;
}

} // namespace

OpFunctionRegistry::OpFunctionRegistry()
{
    registerOp("mac", macFn);
    registerOp("mul4", [](const OpCall &c) { return mulMac4Fn(c, false); });
    registerOp("mac4", [](const OpCall &c) { return mulMac4Fn(c, true); });
}

void
OpFunctionRegistry::registerOp(const std::string &signature, OpFunction fn)
{
    _fns[signature] = std::move(fn);
}

bool
OpFunctionRegistry::has(const std::string &signature) const
{
    return _fns.count(signature) > 0;
}

const OpFunction *
OpFunctionRegistry::find(const std::string &signature) const
{
    auto it = _fns.find(signature);
    return it == _fns.end() ? nullptr : &it->second;
}

OpFnResult
OpFunctionRegistry::invoke(const std::string &signature,
                           const OpCall &call) const
{
    auto it = _fns.find(signature);
    if (it == _fns.end())
        eq_fatal("no operation function registered for signature '",
                 signature, "' (register one via opFunctions())");
    return it->second(call);
}

} // namespace sim
} // namespace eq
