/**
 * @file
 * Runtime values manipulated by the simulation engine's interpreter.
 *
 * The engine executes programs functionally (an `addi` really adds), so
 * values carry data: scalars, tensors, and handles onto simulation
 * objects (components, buffers, connections, streams, events).
 */

#ifndef EQ_SIM_SIMVALUE_HH
#define EQ_SIM_SIMVALUE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "base/logging.hh"

namespace eq {
namespace sim {

class Component;
class Connection;
class StreamFifo;
struct BufferObj;

/** Dense integer tensor (element width tracked for byte accounting). */
struct Tensor {
    std::vector<int64_t> shape;
    std::vector<int64_t> data;
    unsigned elemBits = 32;

    int64_t
    numElements() const
    {
        int64_t n = 1;
        for (int64_t d : shape)
            n *= d;
        return n;
    }
    int64_t
    sizeBytes() const
    {
        return numElements() * ((elemBits + 7) / 8);
    }

    static std::shared_ptr<Tensor>
    zeros(std::vector<int64_t> shape, unsigned elem_bits)
    {
        auto t = std::make_shared<Tensor>();
        t->shape = std::move(shape);
        t->elemBits = elem_bits;
        t->data.assign(t->numElements(), 0);
        return t;
    }

    /** Row-major flattened offset of a multi-dim index. */
    int64_t
    offset(const int64_t *idx, size_t rank) const
    {
        eq_assert(rank == shape.size(), "tensor rank mismatch");
        int64_t off = 0;
        for (size_t i = 0; i < rank; ++i) {
            eq_assert(idx[i] >= 0 && idx[i] < shape[i],
                      "tensor index out of bounds");
            off = off * shape[i] + idx[i];
        }
        return off;
    }
    int64_t
    offset(const std::vector<int64_t> &idx) const
    {
        return offset(idx.data(), idx.size());
    }
};

/** Id of an Event managed by the engine. */
using EventId = uint64_t;
constexpr EventId kNoEvent = ~0ull;

/** A runtime value: scalar, tensor, or simulation-object handle. */
class SimValue {
  public:
    SimValue() = default;

    static SimValue
    ofInt(int64_t v)
    {
        SimValue s;
        s._v = v;
        return s;
    }
    static SimValue
    ofFloat(double v)
    {
        SimValue s;
        s._v = v;
        return s;
    }
    static SimValue
    ofTensor(std::shared_ptr<Tensor> t)
    {
        SimValue s;
        s._v = std::move(t);
        return s;
    }
    static SimValue
    ofEvent(EventId e)
    {
        SimValue s;
        s._v = Ev{e};
        return s;
    }
    static SimValue
    ofComponent(Component *c)
    {
        SimValue s;
        s._v = c;
        return s;
    }
    static SimValue
    ofBuffer(BufferObj *b)
    {
        SimValue s;
        s._v = b;
        return s;
    }
    static SimValue
    ofConnection(Connection *c)
    {
        SimValue s;
        s._v = Conn{c};
        return s;
    }
    static SimValue
    ofStream(StreamFifo *f)
    {
        SimValue s;
        s._v = f;
        return s;
    }

    bool isNone() const
    {
        return std::holds_alternative<std::monostate>(_v);
    }
    bool isInt() const { return std::holds_alternative<int64_t>(_v); }
    bool isFloat() const { return std::holds_alternative<double>(_v); }
    bool
    isTensor() const
    {
        return std::holds_alternative<std::shared_ptr<Tensor>>(_v);
    }
    bool isEvent() const { return std::holds_alternative<Ev>(_v); }
    bool
    isComponent() const
    {
        return std::holds_alternative<Component *>(_v);
    }
    bool isBuffer() const { return std::holds_alternative<BufferObj *>(_v); }
    bool isConnection() const { return std::holds_alternative<Conn>(_v); }
    bool
    isStream() const
    {
        return std::holds_alternative<StreamFifo *>(_v);
    }

    int64_t
    asInt() const
    {
        if (isFloat())
            return static_cast<int64_t>(std::get<double>(_v));
        eq_assert(isInt(), "SimValue is not an int");
        return std::get<int64_t>(_v);
    }
    double
    asFloat() const
    {
        if (isInt())
            return static_cast<double>(std::get<int64_t>(_v));
        eq_assert(isFloat(), "SimValue is not a float");
        return std::get<double>(_v);
    }
    const std::shared_ptr<Tensor> &
    asTensor() const
    {
        eq_assert(isTensor(), "SimValue is not a tensor");
        return std::get<std::shared_ptr<Tensor>>(_v);
    }
    EventId
    asEvent() const
    {
        eq_assert(isEvent(), "SimValue is not an event");
        return std::get<Ev>(_v).id;
    }
    Component *
    asComponent() const
    {
        eq_assert(isComponent(), "SimValue is not a component");
        return std::get<Component *>(_v);
    }
    BufferObj *
    asBuffer() const
    {
        eq_assert(isBuffer(), "SimValue is not a buffer");
        return std::get<BufferObj *>(_v);
    }
    Connection *
    asConnection() const
    {
        eq_assert(isConnection(), "SimValue is not a connection");
        return std::get<Conn>(_v).conn;
    }
    StreamFifo *
    asStream() const
    {
        eq_assert(isStream(), "SimValue is not a stream");
        return std::get<StreamFifo *>(_v);
    }

    /** Byte size of the payload (tensors and scalars). */
    int64_t
    sizeBytes() const
    {
        if (isTensor())
            return asTensor()->sizeBytes();
        if (isInt() || isFloat())
            return 4;
        return 0;
    }

  private:
    struct Ev {
        EventId id;
    };
    struct Conn {
        Connection *conn;
    };
    std::variant<std::monostate, int64_t, double, std::shared_ptr<Tensor>,
                 Ev, Component *, BufferObj *, Conn, StreamFifo *>
        _v;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_SIMVALUE_HH
