/**
 * @file
 * The compiled backend's dispatch loop: a dense jump over the
 * micro-op stream (the switch below lowers to a computed jump through
 * an opcode-indexed table — the function-pointer-table equivalent,
 * but with the loop state kept in registers across micro-ops).
 *
 * Every case mirrors the corresponding interpreter handler exactly —
 * same event creation order, same memory/connection acquisition
 * sequence, same trace records, same opsExecuted accounting — so the
 * two backends are byte-identical on goldens; only the per-op
 * overhead differs. Cold semantics shared with the interpreter live
 * in elaborate.cc (structure ops) and handlers.cc (data-motion cores,
 * linalg functional semantics).
 */

#include "sim/compiled_exec.hh"

#include <algorithm>

namespace eq {
namespace sim {

std::string
CompiledExec::traceLabel(const MicroOp &m) const
{
    if (m.code == MOp::Extern)
        return m.op->strAttr("signature");
    return m.op->name();
}

bool
CompiledExec::chargeAfter(const MicroOp &m, Cycles &now, Cycles start,
                          Cycles cycles)
{
    Cycles end = start + cycles;
    if (_proc) {
        _proc->recordBusy(cycles);
        _proc->recordOp();
        if (_eng.traceData.enabled()) {
            if (start > now)
                _eng.recordTrace("stall", _proc, now, start - now,
                                 "stall");
            if (cycles > 0)
                _eng.recordTrace(traceLabel(m), _proc, start, cycles);
        }
    }
    _eng.noteActivity(end);
    ++_pc;
    if (end > now) {
        // Time-advance fast path: suspending would push a resume that
        // the scheduler pops immediately (every pending item is
        // strictly later, and ties at `end` must run older-first). In
        // that case nothing can interleave, so advance the clock in
        // place and keep executing. Relative ordering of all other
        // heap items is untouched, so traces stay byte-identical.
        if (_eng.nothingPendingBefore(end)) {
            _eng.now = end;
            now = end;
            return false;
        }
        _eng.scheduleAt(end, [this, end] { resume(end); });
        return true;
    }
    return false;
}

void
CompiledExec::finish(Cycles t)
{
    if (_finished)
        return;
    _finished = true;
    _eng.noteActivity(t);
    if (_event)
        _eng.finishLaunch(_event, _proc, t);
    // The exec object lives in Impl::execs until the next reset, but
    // its environment is dead here — release it so the pool can hand
    // it to the next launch.
    _env.reset();
}

void
CompiledExec::resume(Cycles t)
{
    eq_assert(!_finished, "resuming finished block");
    Cycles now = t;
    _eng.now = std::max(_eng.now, t);
    const MicroOp *code = _prog.code.data();
    for (;;) {
        const MicroOp &m = code[_pc];
        if (m.counts()) {
            ++_eng.dispatchCount;
            if (++_eng.opsExecuted > _eng.opts.maxOps)
                eq_fatal("interpreted op budget exceeded (",
                         _eng.opts.maxOps, "); runaway program?");
        }
        switch (m.code) {
        // --- control flow -------------------------------------------
        case MOp::ForBegin: {
            const auto &fl = _prog.forLoops[m.aux];
            if (fl.lb >= fl.ub) {
                _pc = m.target;
                continue;
            }
            local(fl.ivSlot) = SimValue::ofInt(fl.lb);
            ++_pc;
            continue;
        }
        case MOp::ForEnd: {
            const auto &fl = _prog.forLoops[m.aux];
            int64_t iv = local(fl.ivSlot).asInt() + fl.step;
            if (iv < fl.ub) {
                local(fl.ivSlot) = SimValue::ofInt(iv);
                _pc = m.target;
            } else {
                ++_pc;
            }
            continue;
        }
        case MOp::ParBegin: {
            const auto &pl = _prog.parLoops[m.aux];
            bool empty = pl.lbs.empty();
            for (size_t i = 0; i < pl.lbs.size(); ++i)
                if (pl.lbs[i] >= pl.ubs[i])
                    empty = true;
            if (empty) {
                _pc = m.target;
                continue;
            }
            for (size_t i = 0; i < pl.lbs.size(); ++i)
                local(pl.ivSlots[i]) = SimValue::ofInt(pl.lbs[i]);
            ++_pc;
            continue;
        }
        case MOp::ParEnd: {
            const auto &pl = _prog.parLoops[m.aux];
            // Lexicographic increment of the induction vector, kept
            // live in the slots themselves.
            int dim = static_cast<int>(pl.ivSlots.size()) - 1;
            while (dim >= 0) {
                int64_t v = local(pl.ivSlots[dim]).asInt() +
                            pl.steps[dim];
                if (v < pl.ubs[dim]) {
                    local(pl.ivSlots[dim]) = SimValue::ofInt(v);
                    break;
                }
                local(pl.ivSlots[dim]) = SimValue::ofInt(pl.lbs[dim]);
                --dim;
            }
            if (dim >= 0)
                _pc = m.target;
            else
                ++_pc;
            continue;
        }
        case MOp::Yield:
            // Loop back-edge: charge the cost, fall through to the
            // loop-End record.
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        case MOp::NestedModule:
            // Counted like any dispatch; the body is inlined next.
            ++_pc;
            continue;
        case MOp::Halt:
            finish(now);
            return;

        // --- scalar compute -----------------------------------------
        case MOp::Constant:
            bindLocal(m.result, _prog.consts[m.aux]);
            ++_pc;
            continue;
        case MOp::AddI:
            bindLocal(m.result, SimValue::ofInt(arg(m, 0).asInt() +
                                                arg(m, 1).asInt()));
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        case MOp::SubI:
            bindLocal(m.result, SimValue::ofInt(arg(m, 0).asInt() -
                                                arg(m, 1).asInt()));
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        case MOp::MulI:
            bindLocal(m.result, SimValue::ofInt(arg(m, 0).asInt() *
                                                arg(m, 1).asInt()));
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        case MOp::DivSI: {
            int64_t lhs = arg(m, 0).asInt();
            int64_t rhs = arg(m, 1).asInt();
            bindLocal(m.result,
                      SimValue::ofInt(rhs == 0 ? 0 : lhs / rhs));
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        }
        case MOp::RemSI: {
            int64_t lhs = arg(m, 0).asInt();
            int64_t rhs = arg(m, 1).asInt();
            bindLocal(m.result,
                      SimValue::ofInt(rhs == 0 ? 0 : lhs % rhs));
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        }
        case MOp::AddF:
            bindLocal(m.result, SimValue::ofFloat(arg(m, 0).asFloat() +
                                                  arg(m, 1).asFloat()));
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        case MOp::MulF:
            bindLocal(m.result, SimValue::ofFloat(arg(m, 0).asFloat() *
                                                  arg(m, 1).asFloat()));
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        case MOp::ArithBad:
            eq_fatal("unsupported arith op '", m.op->name(), "'");

        // --- affine memory ------------------------------------------
        case MOp::Load: {
            BufferObj *buf = arg(m, 0).asBuffer();
            int64_t idxbuf[kMaxRank];
            const unsigned nidx = m.nargs - 1;
            const int64_t *idx = recordIndices(m, 1, idxbuf);
            int64_t off = buf->data->offset(idx, nidx);
            Cycles start = _eng.bufferAccessStart(
                buf, nullptr, /*is_write=*/false, 1,
                (buf->data->elemBits + 7) / 8, now);
            bindLocal(m.result, SimValue::ofInt(buf->data->data[off]));
            if (chargeAfter(m, now, start, costOf(m)))
                return;
            continue;
        }
        case MOp::Store: {
            BufferObj *buf = arg(m, 1).asBuffer();
            int64_t idxbuf[kMaxRank];
            const unsigned nidx = m.nargs - 2;
            const int64_t *idx = recordIndices(m, 2, idxbuf);
            int64_t off = buf->data->offset(idx, nidx);
            Cycles start = _eng.bufferAccessStart(
                buf, nullptr, /*is_write=*/true, 1,
                (buf->data->elemBits + 7) / 8, now);
            buf->data->data[off] = arg(m, 0).asInt();
            if (chargeAfter(m, now, start, costOf(m)))
                return;
            continue;
        }

        // --- linalg --------------------------------------------------
        case MOp::LinalgConv: {
            Cycles cycles = costOf(m);
            _eng.linalgConvCompute(m.op, arg(m, 0).asBuffer(),
                                   arg(m, 1).asBuffer(),
                                   arg(m, 2).asBuffer());
            if (chargeAfter(m, now, now, cycles))
                return;
            continue;
        }
        case MOp::LinalgFill: {
            Cycles cycles = costOf(m);
            _eng.linalgFillCompute(m.op, arg(m, 0).asBuffer());
            if (chargeAfter(m, now, now, cycles))
                return;
            continue;
        }
        case MOp::LinalgMatmul: {
            Cycles cycles = costOf(m);
            _eng.linalgMatmulCompute(arg(m, 0).asBuffer(),
                                     arg(m, 1).asBuffer(),
                                     arg(m, 2).asBuffer());
            if (chargeAfter(m, now, now, cycles))
                return;
            continue;
        }
        case MOp::LinalgOther:
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;

        // --- EQueue data movement -----------------------------------
        case MOp::Read: {
            BufferObj *buf = arg(m, 0).asBuffer();
            Connection *conn =
                m.hasConn() ? arg(m, 1).asConnection() : nullptr;
            const unsigned idx0 = m.hasConn() ? 2 : 1;
            const unsigned nidx = m.nargs - idx0;
            int64_t bytes;
            int64_t words;
            if (nidx == 0) {
                auto copy = std::make_shared<Tensor>(*buf->data);
                bytes = copy->sizeBytes();
                words = buf->data->numElements();
                bindLocal(m.result, SimValue::ofTensor(copy));
            } else {
                int64_t idxbuf[kMaxRank];
                const int64_t *idx = recordIndices(m, idx0, idxbuf);
                bytes = (buf->data->elemBits + 7) / 8;
                words = 1;
                bindLocal(
                    m.result,
                    SimValue::ofInt(
                        buf->data
                            ->data[buf->data->offset(idx, nidx)]));
            }
            Cycles start = _eng.bufferAccessStart(
                buf, conn, /*is_write=*/false, words, bytes, now);
            if (chargeAfter(m, now, start, costOf(m)))
                return;
            continue;
        }
        case MOp::Write: {
            const SimValue &val = arg(m, 0);
            BufferObj *buf = arg(m, 1).asBuffer();
            Connection *conn =
                m.hasConn() ? arg(m, 2).asConnection() : nullptr;
            const unsigned idx0 = m.hasConn() ? 3 : 2;
            const unsigned nidx = m.nargs - idx0;
            int64_t bytes;
            if (nidx == 0 && val.isTensor()) {
                auto src = val.asTensor();
                int64_t n = std::min(src->numElements(),
                                     buf->data->numElements());
                std::copy_n(src->data.begin(), n,
                            buf->data->data.begin());
                bytes = n * ((buf->data->elemBits + 7) / 8);
            } else if (nidx > 0) {
                int64_t idxbuf[kMaxRank];
                const int64_t *idx = recordIndices(m, idx0, idxbuf);
                buf->data->data[buf->data->offset(idx, nidx)] =
                    val.asInt();
                bytes = (buf->data->elemBits + 7) / 8;
            } else {
                // Scalar into rank-0/1 buffer: write element 0.
                buf->data->data[0] = val.asInt();
                bytes = (buf->data->elemBits + 7) / 8;
            }
            int64_t words = nidx == 0 && val.isTensor()
                                ? val.asTensor()->numElements()
                                : 1;
            Cycles start = _eng.bufferAccessStart(
                buf, conn, /*is_write=*/true, words, bytes, now);
            if (chargeAfter(m, now, start, costOf(m)))
                return;
            continue;
        }
        case MOp::StreamRead: {
            StreamFifo *fifo = arg(m, 0).asStream();
            size_t elems = static_cast<size_t>(m.imm);
            Cycles ready = fifo->readyTime(elems);
            if (ready == StreamFifo::kNoReadyTime) {
                // Not enough elements yet: wake (and re-execute this
                // record) when the producer pushes.
                _eng.streamWaiters[fifo].push_back(
                    [this] { resume(_eng.now); });
                return;
            }
            if (ready > now) {
                // Same fast path as chargeAfter: re-execute this
                // record at `ready` in place when nothing can
                // interleave before it.
                if (_eng.nothingPendingBefore(ready)) {
                    _eng.now = ready;
                    now = ready;
                    continue;
                }
                _eng.scheduleAt(ready, [this, ready] { resume(ready); });
                return;
            }
            auto vals = fifo->pop(elems);
            auto tensor = Tensor::zeros({static_cast<int64_t>(elems)},
                                        fifo->dataBits());
            tensor->data = std::move(vals);
            bindLocal(m.result, SimValue::ofTensor(tensor));
            // Reader-side connection records bytes for profiling; the
            // arrival rate was already shaped by the producer (§VII-E).
            if (m.hasConn()) {
                Connection *conn = arg(m, 1).asConnection();
                int64_t bytes = tensor->sizeBytes();
                conn->recordTransfer(
                    true, now,
                    now + std::max<Cycles>(conn->transferCycles(bytes),
                                           1),
                    bytes);
            }
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        }
        case MOp::StreamWrite: {
            const SimValue &val = arg(m, 0);
            StreamFifo *fifo = arg(m, 1).asStream();
            Connection *conn =
                m.hasConn() ? arg(m, 2).asConnection() : nullptr;
            std::vector<int64_t> elems;
            if (val.isTensor())
                elems = val.asTensor()->data;
            else
                elems.push_back(val.asInt());
            _eng.streamPush(fifo, conn, elems, now);
            if (chargeAfter(m, now, now, costOf(m)))
                return;
            continue;
        }

        // --- events --------------------------------------------------
        case MOp::ControlStart: {
            Event *ev = _eng.newEvent(Event::Kind::Start, now);
            _eng.completeEvent(ev, now);
            bindLocal(m.result, SimValue::ofEvent(ev->id));
            ++_pc;
            continue;
        }
        case MOp::ControlAnd:
        case MOp::ControlOr: {
            bool is_and = m.code == MOp::ControlAnd;
            Event *ev = _eng.newEvent(
                is_and ? Event::Kind::And : Event::Kind::Or, now);
            std::vector<EventId> deps;
            deps.reserve(m.nargs);
            for (unsigned i = 0; i < m.nargs; ++i)
                deps.push_back(arg(m, i).asEvent());
            ev->deps = deps;
            bindLocal(m.result, SimValue::ofEvent(ev->id));
            Event *evp = ev;
            Simulator::Impl *eng = &_eng;
            auto done = [eng, evp](Cycles dt) {
                eng->completeEvent(evp, dt);
            };
            if (is_and)
                _eng.whenAllDone(deps, done);
            else
                _eng.whenAnyDone(deps, done);
            ++_pc;
            continue;
        }
        case MOp::Launch: {
            unsigned ndeps = static_cast<unsigned>(m.imm);
            Event *ev = _eng.newEvent(Event::Kind::Launch, now);
            for (unsigned i = 0; i < ndeps; ++i)
                ev->deps.push_back(arg(m, i).asEvent());
            ev->op = m.op;
            ev->proc =
                static_cast<Processor *>(arg(m, ndeps).asComponent());
            ev->creatorEnv = _env;
            ev->bodyProg = _prog.childProgs[m.aux];
            bindLocal(m.result, SimValue::ofEvent(ev->id));
            _spawned.push_back(ev->id);
            _eng.enqueueOnProcessor(ev, now);
            ++_pc;
            continue;
        }
        case MOp::Memcpy: {
            Event *ev = _eng.newEvent(Event::Kind::Memcpy, now);
            ev->deps.push_back(arg(m, 0).asEvent());
            ev->op = m.op;
            ev->src = arg(m, 1).asBuffer();
            ev->dst = arg(m, 2).asBuffer();
            ev->proc =
                static_cast<Processor *>(arg(m, 3).asComponent());
            if (m.hasConn())
                ev->conn = arg(m, 4).asConnection();
            ev->creatorEnv = _env;
            bindLocal(m.result, SimValue::ofEvent(ev->id));
            _spawned.push_back(ev->id);
            _eng.enqueueOnProcessor(ev, now);
            ++_pc;
            continue;
        }
        case MOp::Await: {
            if (m.nargs == 0) {
                // Await-all fast path (see BlockExec::execAwait):
                // done events are timing-irrelevant (doneTime <= now),
                // so compact the spawned list to the pending tail and
                // subscribe to exactly those in one pass.
                size_t w = 0;
                for (EventId id : _spawned)
                    if (!_eng.event(id)->done)
                        _spawned[w++] = id;
                _spawned.resize(w);
                ++_pc;
                if (w == 0)
                    continue;
                if (w == 1) {
                    _eng.event(_spawned[0])->onDone.push_back(
                        [this, now](Cycles dt) {
                            resume(std::max(now, dt));
                        });
                    return;
                }
                auto state =
                    std::make_shared<std::pair<size_t, Cycles>>(w, 0);
                for (EventId id : _spawned)
                    _eng.event(id)->onDone.push_back(
                        [this, now, state](Cycles dt) {
                            state->second =
                                std::max(state->second, dt);
                            if (--state->first == 0)
                                resume(std::max(now, state->second));
                        });
                return;
            }
            std::vector<EventId> ids;
            ids.reserve(m.nargs);
            for (unsigned i = 0; i < m.nargs; ++i)
                ids.push_back(arg(m, i).asEvent());
            bool all_done = true;
            Cycles max_t = now;
            for (EventId id : ids) {
                Event *ev = _eng.event(id);
                if (!ev->done)
                    all_done = false;
                else
                    max_t = std::max(max_t, ev->doneTime);
            }
            ++_pc;
            if (all_done) {
                now = std::max(now, max_t);
                continue;
            }
            _eng.whenAllDone(ids, [this, now](Cycles dt) {
                resume(std::max(now, dt));
            });
            return;
        }
        case MOp::Return:
            if (_event) {
                for (unsigned i = 0; i < m.nargs; ++i)
                    _event->results.push_back(arg(m, i));
            }
            finish(now);
            return;
        case MOp::Extern: {
            OpCall call;
            call.op = m.op;
            call.proc = _proc;
            call.args.reserve(m.nargs);
            for (unsigned i = 0; i < m.nargs; ++i)
                call.args.push_back(arg(m, i));
            OpFnResult r =
                _eng.opFns.invoke(m.op->strAttr("signature"), call);
            eq_assert(r.results.size() >= m.op->numResults(),
                      "op function returned too few results for '",
                      m.op->strAttr("signature"), "'");
            for (unsigned i = 0; i < m.op->numResults(); ++i) {
                // The dense environment uses None to mean "unbound"; a
                // default-constructed result would read back as a
                // missing binding later, so reject it here where the
                // signature is known.
                eq_assert(!r.results[i].isNone(), "op function for '",
                          m.op->strAttr("signature"),
                          "' returned an empty SimValue for result ", i);
                bindLocal(_prog.resultPool[m.aux + i], r.results[i]);
            }
            Cycles cycles = std::max(costOf(m), r.cycles);
            if (chargeAfter(m, now, now, cycles))
                return;
            continue;
        }

        // --- elaboration (shared cores in elaborate.cc) -------------
        case MOp::CreateProc:
            bindLocal(m.result, _eng.elabCreateProc(m.op));
            ++_pc;
            continue;
        case MOp::CreateDma:
            bindLocal(m.result, _eng.elabCreateDma());
            ++_pc;
            continue;
        case MOp::CreateMem:
            bindLocal(m.result, _eng.elabCreateMem(m.op));
            ++_pc;
            continue;
        case MOp::CreateStream:
            bindLocal(m.result, _eng.elabCreateStream(m.op));
            ++_pc;
            continue;
        case MOp::CreateConnection:
            bindLocal(m.result, _eng.elabCreateConnection(m.op));
            ++_pc;
            continue;
        case MOp::CreateComp: {
            bool is_add = m.flags & kFlagIsAddComp;
            std::vector<SimValue> vals;
            vals.reserve(m.nargs);
            for (unsigned i = 0; i < m.nargs; ++i)
                vals.push_back(arg(m, i));
            SimValue r = _eng.elabCreateOrAddComp(m.op, vals.data(),
                                                  vals.size(), is_add);
            if (!is_add)
                bindLocal(m.result, r);
            ++_pc;
            continue;
        }
        case MOp::GetComp:
            bindLocal(m.result,
                      _eng.elabGetComp(arg(m, 0).asComponent(),
                                       _prog.strings[m.aux]));
            ++_pc;
            continue;
        case MOp::Alloc: {
            Memory *mem =
                m.flags & kFlagEqueueAlloc
                    ? static_cast<Memory *>(arg(m, 0).asComponent())
                    : nullptr;
            bindLocal(m.result, _eng.elabAlloc(m.op, mem));
            ++_pc;
            continue;
        }
        case MOp::Dealloc:
            ++_pc;
            continue;

        // --- superinstructions (sim/fuse.cc) ------------------------
        case MOp::Fused:
            if (execFused(m, now))
                return;
            continue;

        case MOp::Bad:
        default:
            eq_fatal("simulation engine cannot interpret op '",
                     m.op ? m.op->name() : "?", "'");
        }
    }
}

bool
CompiledExec::chargeFused(const FusedElem &e, Cycles &now, Cycles start,
                          Cycles cycles, uint32_t k)
{
    Cycles end = start + cycles;
    if (_proc) {
        _proc->recordBusy(cycles);
        _proc->recordOp();
        if (_eng.traceData.enabled()) {
            if (start > now)
                _eng.recordTrace("stall", _proc, now, start - now,
                                 "stall");
            if (cycles > 0)
                _eng.recordTrace(e.label, _proc, start, cycles);
        }
    }
    _eng.noteActivity(end);
    if (end > now) {
        // Same time-advance fast path as chargeAfter; a mid-group
        // suspension saves the element position so resume re-enters
        // the group exactly where the unfused stream would have
        // resumed its next record.
        if (_eng.nothingPendingBefore(end)) {
            _eng.now = end;
            now = end;
            return false;
        }
        _subPc = k + 2; // 1-based: resume at element k + 1
        _eng.scheduleAt(end, [this, end] { resume(end); });
        return true;
    }
    return false;
}

/*
 * NOTE: each element case below intentionally restates the semantics
 * of the record it replaces (third copy after the interp handler and
 * the main switch) rather than sharing a templated core: the
 * specializations — coalesced arg resolution, scalarized cell reads,
 * cached extern functions, element-position suspension — are the
 * point of fusion, and a shared abstraction would obscure the
 * cycle-for-cycle mirroring that the three-way equivalence matrix
 * (tests/sim/test_backend_equiv.cc) and the fused golden legs pin.
 * When changing any op's semantics, update all three sites; the
 * matrix tests fail on any divergence an op can exhibit in the golden
 * workloads.
 */
bool
CompiledExec::execFused(const MicroOp &m, Cycles &now)
{
    const FusedGroup &g = _prog.fusedGroups[m.aux];
    // One jump-table dispatch for the whole group; re-entries after a
    // mid-group suspension do not re-count it.
    if (_subPc == 0)
        ++_eng.dispatchCount;

    // Coalesced operand chains: resolve each env-chain level once per
    // entry instead of walking parent links per operand.
    Env *levels[kMaxFusedHops + 1];
    {
        Env *e = _env.get();
        levels[0] = e;
        for (uint32_t h = 1; h <= g.maxHops; ++h) {
            e = e->parent.get();
            levels[h] = e;
        }
    }
    auto slot = [&](const SlotRef &r) -> SimValue & {
        return levels[r.hops]->slots[r.slot];
    };
    auto argOf = [&](const FusedElem &e, unsigned i) -> const SimValue & {
        const SimValue &s = slot(_prog.args[e.argsBegin + i]);
        eq_assert(!s.isNone(),
                  "use of value with no runtime binding (op '",
                  e.op ? e.op->name() : "?",
                  "'): likely a missing event dependency");
        return s;
    };
    auto indices = [&](const FusedElem &e, unsigned first,
                       int64_t *buf) -> const int64_t * {
        if (e.immIdx())
            return _prog.immIdx.data() + e.immBegin;
        const unsigned n = e.nargs - first;
        eq_assert(n <= kMaxRank, "index rank exceeds kMaxRank");
        for (unsigned i = 0; i < n; ++i)
            buf[i] = argOf(e, first + i).asInt();
        return buf;
    };

    uint32_t k = _subPc ? _subPc - 1 : 0;
    _subPc = 0;
    const uint32_t n = static_cast<uint32_t>(g.elems.size());
    for (; k < n; ++k) {
        const FusedElem &e = g.elems[k];
        // opsExecuted parity: every element was a counted dispatch in
        // the unfused stream (elements re-executed after a stream wait
        // re-count, exactly like their records would).
        if (++_eng.opsExecuted > _eng.opts.maxOps)
            eq_fatal("interpreted op budget exceeded (", _eng.opts.maxOps,
                     "); runaway program?");
        switch (e.code) {
        case MOp::Constant:
            bindLocal(e.result, _prog.consts[e.aux]);
            continue;
        case MOp::AddI:
            bindLocal(e.result, SimValue::ofInt(argOf(e, 0).asInt() +
                                                argOf(e, 1).asInt()));
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;
        case MOp::SubI:
            bindLocal(e.result, SimValue::ofInt(argOf(e, 0).asInt() -
                                                argOf(e, 1).asInt()));
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;
        case MOp::MulI:
            bindLocal(e.result, SimValue::ofInt(argOf(e, 0).asInt() *
                                                argOf(e, 1).asInt()));
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;
        case MOp::DivSI: {
            int64_t lhs = argOf(e, 0).asInt();
            int64_t rhs = argOf(e, 1).asInt();
            bindLocal(e.result,
                      SimValue::ofInt(rhs == 0 ? 0 : lhs / rhs));
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;
        }
        case MOp::RemSI: {
            int64_t lhs = argOf(e, 0).asInt();
            int64_t rhs = argOf(e, 1).asInt();
            bindLocal(e.result,
                      SimValue::ofInt(rhs == 0 ? 0 : lhs % rhs));
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;
        }
        case MOp::AddF:
            bindLocal(e.result,
                      SimValue::ofFloat(argOf(e, 0).asFloat() +
                                        argOf(e, 1).asFloat()));
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;
        case MOp::MulF:
            bindLocal(e.result,
                      SimValue::ofFloat(argOf(e, 0).asFloat() *
                                        argOf(e, 1).asFloat()));
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;

        case MOp::Load: {
            BufferObj *buf = argOf(e, 0).asBuffer();
            int64_t idxbuf[kMaxRank];
            const unsigned nidx = e.nargs - 1;
            const int64_t *idx = indices(e, 1, idxbuf);
            int64_t off = buf->data->offset(idx, nidx);
            Cycles start = _eng.bufferAccessStart(
                buf, nullptr, /*is_write=*/false, 1,
                (buf->data->elemBits + 7) / 8, now);
            bindLocal(e.result, SimValue::ofInt(buf->data->data[off]));
            if (chargeFused(e, now, start, costOf(e), k))
                return true;
            continue;
        }
        case MOp::Store: {
            BufferObj *buf = argOf(e, 1).asBuffer();
            int64_t idxbuf[kMaxRank];
            const unsigned nidx = e.nargs - 2;
            const int64_t *idx = indices(e, 2, idxbuf);
            int64_t off = buf->data->offset(idx, nidx);
            Cycles start = _eng.bufferAccessStart(
                buf, nullptr, /*is_write=*/true, 1,
                (buf->data->elemBits + 7) / 8, now);
            buf->data->data[off] = argOf(e, 0).asInt();
            if (chargeFused(e, now, start, costOf(e), k))
                return true;
            continue;
        }

        case MOp::Read: {
            BufferObj *buf = argOf(e, 0).asBuffer();
            Connection *conn =
                e.hasConn() ? argOf(e, 1).asConnection() : nullptr;
            const unsigned idx0 = e.hasConn() ? 2 : 1;
            const unsigned nidx = e.nargs - idx0;
            int64_t bytes;
            int64_t words;
            if (nidx == 0) {
                if (e.scalarize() && buf->data->numElements() == 1) {
                    // All uses proven in-group and scalar-compatible:
                    // bind the cell's value directly — byte counts and
                    // consumer behavior match the 1-element tensor the
                    // unfused record would have materialized.
                    bytes = (buf->data->elemBits + 7) / 8;
                    words = 1;
                    bindLocal(e.result,
                              SimValue::ofInt(buf->data->data[0]));
                } else {
                    auto copy = std::make_shared<Tensor>(*buf->data);
                    bytes = copy->sizeBytes();
                    words = buf->data->numElements();
                    bindLocal(e.result, SimValue::ofTensor(copy));
                }
            } else {
                int64_t idxbuf[kMaxRank];
                const int64_t *idx = indices(e, idx0, idxbuf);
                bytes = (buf->data->elemBits + 7) / 8;
                words = 1;
                bindLocal(
                    e.result,
                    SimValue::ofInt(
                        buf->data
                            ->data[buf->data->offset(idx, nidx)]));
            }
            Cycles start = _eng.bufferAccessStart(
                buf, conn, /*is_write=*/false, words, bytes, now);
            if (chargeFused(e, now, start, costOf(e), k))
                return true;
            continue;
        }
        case MOp::Write: {
            const SimValue &val = argOf(e, 0);
            BufferObj *buf = argOf(e, 1).asBuffer();
            Connection *conn =
                e.hasConn() ? argOf(e, 2).asConnection() : nullptr;
            const unsigned idx0 = e.hasConn() ? 3 : 2;
            const unsigned nidx = e.nargs - idx0;
            int64_t bytes;
            if (nidx == 0 && val.isTensor()) {
                auto src = val.asTensor();
                int64_t nn = std::min(src->numElements(),
                                      buf->data->numElements());
                std::copy_n(src->data.begin(), nn,
                            buf->data->data.begin());
                bytes = nn * ((buf->data->elemBits + 7) / 8);
            } else if (nidx > 0) {
                int64_t idxbuf[kMaxRank];
                const int64_t *idx = indices(e, idx0, idxbuf);
                buf->data->data[buf->data->offset(idx, nidx)] =
                    val.asInt();
                bytes = (buf->data->elemBits + 7) / 8;
            } else {
                // Scalar into rank-0/1 buffer: write element 0.
                buf->data->data[0] = val.asInt();
                bytes = (buf->data->elemBits + 7) / 8;
            }
            int64_t words = nidx == 0 && val.isTensor()
                                ? val.asTensor()->numElements()
                                : 1;
            Cycles start = _eng.bufferAccessStart(
                buf, conn, /*is_write=*/true, words, bytes, now);
            if (chargeFused(e, now, start, costOf(e), k))
                return true;
            continue;
        }

        case MOp::StreamRead: {
            StreamFifo *fifo = argOf(e, 0).asStream();
            size_t elems = static_cast<size_t>(e.imm);
            Cycles ready = fifo->readyTime(elems);
            if (ready == StreamFifo::kNoReadyTime) {
                // Re-execute this element when the producer pushes
                // (the unfused record re-executes the same way).
                _subPc = k + 1; // 1-based: resume at element k
                _eng.streamWaiters[fifo].push_back(
                    [this] { resume(_eng.now); });
                return true;
            }
            if (ready > now) {
                if (_eng.nothingPendingBefore(ready)) {
                    _eng.now = ready;
                    now = ready;
                    --k; // re-execute this element at `ready`
                    continue;
                }
                _subPc = k + 1; // 1-based: resume at element k
                _eng.scheduleAt(ready,
                                [this, ready] { resume(ready); });
                return true;
            }
            auto vals = fifo->pop(elems);
            auto tensor = Tensor::zeros({static_cast<int64_t>(elems)},
                                        fifo->dataBits());
            tensor->data = std::move(vals);
            bindLocal(e.result, SimValue::ofTensor(tensor));
            if (e.hasConn()) {
                Connection *conn = argOf(e, 1).asConnection();
                int64_t bytes = tensor->sizeBytes();
                conn->recordTransfer(
                    true, now,
                    now + std::max<Cycles>(conn->transferCycles(bytes),
                                           1),
                    bytes);
            }
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;
        }
        case MOp::StreamWrite: {
            const SimValue &val = argOf(e, 0);
            StreamFifo *fifo = argOf(e, 1).asStream();
            Connection *conn =
                e.hasConn() ? argOf(e, 2).asConnection() : nullptr;
            std::vector<int64_t> elems;
            if (val.isTensor())
                elems = val.asTensor()->data;
            else
                elems.push_back(val.asInt());
            _eng.streamPush(fifo, conn, elems, now);
            if (chargeFused(e, now, now, costOf(e), k))
                return true;
            continue;
        }

        case MOp::Extern: {
            // Scratch call frame + fuse-time-cached function pointer:
            // no per-call signature lookup, no argument-vector churn.
            _scratch.op = e.op;
            _scratch.proc = _proc;
            _scratch.args.clear();
            _scratch.args.reserve(e.nargs);
            for (unsigned i = 0; i < e.nargs; ++i)
                _scratch.args.push_back(argOf(e, i));
            OpFnResult r = e.fn ? (*e.fn)(_scratch)
                                : _eng.opFns.invoke(e.label, _scratch);
            eq_assert(r.results.size() >= e.nresults,
                      "op function returned too few results for '",
                      e.label, "'");
            for (unsigned i = 0; i < e.nresults; ++i) {
                eq_assert(!r.results[i].isNone(), "op function for '",
                          e.label,
                          "' returned an empty SimValue for result ",
                          i);
                bindLocal(_prog.resultPool[e.resultBegin + i],
                          r.results[i]);
            }
            Cycles cycles = std::max(costOf(e), r.cycles);
            if (chargeFused(e, now, now, cycles, k))
                return true;
            continue;
        }

        // --- events (position-independent, so they fuse too) --------
        case MOp::ControlStart: {
            Event *ev = _eng.newEvent(Event::Kind::Start, now);
            _eng.completeEvent(ev, now);
            bindLocal(e.result, SimValue::ofEvent(ev->id));
            continue;
        }
        case MOp::ControlAnd:
        case MOp::ControlOr: {
            bool is_and = e.code == MOp::ControlAnd;
            Event *ev = _eng.newEvent(
                is_and ? Event::Kind::And : Event::Kind::Or, now);
            std::vector<EventId> deps;
            deps.reserve(e.nargs);
            for (unsigned i = 0; i < e.nargs; ++i)
                deps.push_back(argOf(e, i).asEvent());
            ev->deps = deps;
            bindLocal(e.result, SimValue::ofEvent(ev->id));
            Event *evp = ev;
            Simulator::Impl *eng = &_eng;
            auto done = [eng, evp](Cycles dt) {
                eng->completeEvent(evp, dt);
            };
            if (is_and)
                _eng.whenAllDone(deps, done);
            else
                _eng.whenAnyDone(deps, done);
            continue;
        }
        case MOp::Launch: {
            unsigned ndeps = static_cast<unsigned>(e.imm);
            Event *ev = _eng.newEvent(Event::Kind::Launch, now);
            for (unsigned i = 0; i < ndeps; ++i)
                ev->deps.push_back(argOf(e, i).asEvent());
            ev->op = e.op;
            ev->proc = static_cast<Processor *>(
                argOf(e, ndeps).asComponent());
            ev->creatorEnv = _env;
            ev->bodyProg = _prog.childProgs[e.aux];
            bindLocal(e.result, SimValue::ofEvent(ev->id));
            _spawned.push_back(ev->id);
            _eng.enqueueOnProcessor(ev, now);
            continue;
        }
        case MOp::Memcpy: {
            Event *ev = _eng.newEvent(Event::Kind::Memcpy, now);
            ev->deps.push_back(argOf(e, 0).asEvent());
            ev->op = e.op;
            ev->src = argOf(e, 1).asBuffer();
            ev->dst = argOf(e, 2).asBuffer();
            ev->proc =
                static_cast<Processor *>(argOf(e, 3).asComponent());
            if (e.hasConn())
                ev->conn = argOf(e, 4).asConnection();
            ev->creatorEnv = _env;
            bindLocal(e.result, SimValue::ofEvent(ev->id));
            _spawned.push_back(ev->id);
            _eng.enqueueOnProcessor(ev, now);
            continue;
        }
        case MOp::Await: {
            if (e.nargs == 0) {
                // Await-all fast path (see BlockExec::execAwait):
                // done events are timing-irrelevant (doneTime <= now),
                // so compact the spawned list to the pending tail and
                // subscribe to exactly those in one pass.
                size_t w = 0;
                for (EventId id : _spawned)
                    if (!_eng.event(id)->done)
                        _spawned[w++] = id;
                _spawned.resize(w);
                if (w == 0)
                    continue;
                _subPc = k + 2; // 1-based: resume at element k + 1
                if (w == 1) {
                    _eng.event(_spawned[0])->onDone.push_back(
                        [this, now](Cycles dt) {
                            resume(std::max(now, dt));
                        });
                    return true;
                }
                auto state =
                    std::make_shared<std::pair<size_t, Cycles>>(w, 0);
                for (EventId id : _spawned)
                    _eng.event(id)->onDone.push_back(
                        [this, now, state](Cycles dt) {
                            state->second =
                                std::max(state->second, dt);
                            if (--state->first == 0)
                                resume(std::max(now, state->second));
                        });
                return true;
            }
            std::vector<EventId> ids;
            ids.reserve(e.nargs);
            for (unsigned i = 0; i < e.nargs; ++i)
                ids.push_back(argOf(e, i).asEvent());
            bool all_done = true;
            Cycles max_t = now;
            for (EventId id : ids) {
                Event *ev = _eng.event(id);
                if (!ev->done)
                    all_done = false;
                else
                    max_t = std::max(max_t, ev->doneTime);
            }
            if (all_done) {
                now = std::max(now, max_t);
                continue;
            }
            _subPc = k + 2; // 1-based: resume at element k + 1
            _eng.whenAllDone(ids, [this, now](Cycles dt) {
                resume(std::max(now, dt));
            });
            return true;
        }
        case MOp::Return:
            // Only ever the last element of a group.
            if (_event) {
                for (unsigned i = 0; i < e.nargs; ++i)
                    _event->results.push_back(argOf(e, i));
            }
            finish(now);
            return true;

        default:
            eq_panic("unexpected opcode inside a fused group");
        }
    }
    ++_pc;
    return false;
}

} // namespace sim
} // namespace eq
