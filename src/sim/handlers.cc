/**
 * @file
 * Per-op handlers for compute (arith, linalg), data movement (affine
 * load/store, equeue read/write, streams), and event ops (control
 * chains, launch, memcpy, await). Dispatched through the engine's
 * OpId-indexed table; none of these compare op names.
 *
 * The memory/connection acquisition sequences and the linalg
 * functional semantics live in Simulator::Impl cores shared with the
 * compiled backend (compiled_exec.cc), so both backends stay
 * cycle-identical by construction.
 */

#include <algorithm>

#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "dialects/linalg.hh"
#include "sim/engine_impl.hh"

namespace eq {
namespace sim {

// ---------------------------------------------------------------------------
// Shared data-motion cores

Cycles
Simulator::Impl::bufferAccessStart(BufferObj *buf, Connection *conn,
                                   bool is_write, int64_t words,
                                   int64_t bytes, Cycles now)
{
    Cycles start = now;
    if (buf->mem) {
        Cycles occ = buf->mem->getReadOrWriteCycles(is_write, words);
        start = std::max(start, buf->mem->acquire(now, occ));
        buf->mem->recordAccess(is_write, bytes);
    }
    if (conn) {
        Cycles c = conn->transferCycles(bytes);
        Cycles cstart = conn->acquireChannel(!is_write, start, c);
        conn->recordTransfer(!is_write, cstart,
                             cstart + std::max<Cycles>(c, 1), bytes);
        noteActivity(cstart + c); // link busy past proc time
        start = std::max(start, cstart);
    }
    return start;
}

void
Simulator::Impl::streamPush(StreamFifo *fifo, Connection *conn,
                            const std::vector<int64_t> &elems, Cycles now)
{
    int64_t bytes = static_cast<int64_t>(elems.size()) *
                    ((fifo->dataBits() + 7) / 8);
    Cycles avail = now;
    if (conn) {
        Cycles c = conn->transferCycles(bytes);
        Cycles cstart = conn->acquireChannel(false, now, c);
        conn->recordTransfer(false, cstart,
                             cstart + std::max<Cycles>(c, 1), bytes);
        avail = cstart + c;
    }
    for (int64_t v : elems)
        fifo->push(v, avail);
    noteActivity(avail);
    notifyStream(fifo);
}

// ---------------------------------------------------------------------------
// Shared linalg functional semantics

void
Simulator::Impl::linalgConvCompute(ir::Operation *op, BufferObj *ib,
                                   BufferObj *wb, BufferObj *ob)
{
    auto d = linalg::convDims(op);
    auto at3 = [](BufferObj *b, int64_t i, int64_t j,
                  int64_t k) -> int64_t & {
        auto &sh = b->data->shape;
        return b->data->data[(i * sh[1] + j) * sh[2] + k];
    };
    for (int64_t n = 0; n < d.N; ++n)
        for (int64_t eh = 0; eh < d.Eh; ++eh)
            for (int64_t ew = 0; ew < d.Ew; ++ew) {
                int64_t acc = at3(ob, n, eh, ew);
                for (int64_t c = 0; c < d.C; ++c)
                    for (int64_t fh = 0; fh < d.Fh; ++fh)
                        for (int64_t fw = 0; fw < d.Fw; ++fw) {
                            int64_t iv = at3(ib, c, eh + fh, ew + fw);
                            auto &wsh = wb->data->shape;
                            int64_t wv = wb->data->data
                                [((n * wsh[1] + c) * wsh[2] + fh) *
                                     wsh[3] +
                                 fw];
                            acc += iv * wv;
                        }
                at3(ob, n, eh, ew) = acc;
            }
    // Analytic memory traffic: per MAC, read ifmap+weight+ofmap
    // and write ofmap once per accumulation chain.
    int64_t word = 4;
    if (ib->mem)
        ib->mem->recordAccess(false, d.macs() * word);
    if (wb->mem)
        wb->mem->recordAccess(false, d.macs() * word);
    if (ob->mem) {
        ob->mem->recordAccess(false, d.macs() * word);
        ob->mem->recordAccess(true, d.macs() * word);
    }
}

void
Simulator::Impl::linalgFillCompute(ir::Operation *op, BufferObj *b)
{
    linalg::FillOp fill(op);
    std::fill(b->data->data.begin(), b->data->data.end(),
              fill.fillValue());
    if (b->mem)
        b->mem->recordAccess(true, b->sizeBytes());
}

void
Simulator::Impl::linalgMatmulCompute(BufferObj *a, BufferObj *bm,
                                     BufferObj *c)
{
    auto &as = a->data->shape;
    auto &bs = bm->data->shape;
    for (int64_t i = 0; i < as[0]; ++i)
        for (int64_t j = 0; j < bs[1]; ++j) {
            int64_t acc = c->data->data[i * bs[1] + j];
            for (int64_t k = 0; k < as[1]; ++k)
                acc += a->data->data[i * as[1] + k] *
                       bm->data->data[k * bs[1] + j];
            c->data->data[i * bs[1] + j] = acc;
        }
}

// ---------------------------------------------------------------------------
// Scalar compute

BlockExec::Step
BlockExec::execArithConstant(ir::Operation *op, Cycles &now)
{
    (void)now;
    ir::Attribute v = op->attr("value");
    bind(op->result(0), v.kind() == ir::AttrKind::Float
                            ? SimValue::ofFloat(v.asFloat())
                            : SimValue::ofInt(v.asInt()));
    return advanceFree();
}

BlockExec::Step
BlockExec::execAddI(ir::Operation *op, Cycles &now)
{
    bind(op->result(0), SimValue::ofInt(eval(op->operand(0)).asInt() +
                                        eval(op->operand(1)).asInt()));
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execSubI(ir::Operation *op, Cycles &now)
{
    bind(op->result(0), SimValue::ofInt(eval(op->operand(0)).asInt() -
                                        eval(op->operand(1)).asInt()));
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execMulI(ir::Operation *op, Cycles &now)
{
    bind(op->result(0), SimValue::ofInt(eval(op->operand(0)).asInt() *
                                        eval(op->operand(1)).asInt()));
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execDivSI(ir::Operation *op, Cycles &now)
{
    int64_t lhs = eval(op->operand(0)).asInt();
    int64_t rhs = eval(op->operand(1)).asInt();
    bind(op->result(0), SimValue::ofInt(rhs == 0 ? 0 : lhs / rhs));
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execRemSI(ir::Operation *op, Cycles &now)
{
    int64_t lhs = eval(op->operand(0)).asInt();
    int64_t rhs = eval(op->operand(1)).asInt();
    bind(op->result(0), SimValue::ofInt(rhs == 0 ? 0 : lhs % rhs));
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execAddF(ir::Operation *op, Cycles &now)
{
    bind(op->result(0), SimValue::ofFloat(eval(op->operand(0)).asFloat() +
                                          eval(op->operand(1)).asFloat()));
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execMulF(ir::Operation *op, Cycles &now)
{
    bind(op->result(0), SimValue::ofFloat(eval(op->operand(0)).asFloat() *
                                          eval(op->operand(1)).asFloat()));
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execArithUnsupported(ir::Operation *op, Cycles &now)
{
    (void)now;
    eq_fatal("unsupported arith op '", op->name(), "'");
}

// ---------------------------------------------------------------------------
// Affine memory ops

BlockExec::Step
BlockExec::execAffineLoadStore(ir::Operation *op, Cycles &now)
{
    bool is_store = op->opId() == _eng.idAffineStore;
    affine::LoadOp load(op);
    affine::StoreOp store(op);
    BufferObj *buf =
        eval(is_store ? store.memref() : load.memref()).asBuffer();
    auto idx_vals = is_store ? store.indices() : load.indices();
    std::vector<int64_t> idx;
    for (ir::Value v : idx_vals)
        idx.push_back(eval(v).asInt());
    int64_t off = buf->data->offset(idx);
    Cycles start = _eng.bufferAccessStart(
        buf, nullptr, is_store, 1, (buf->data->elemBits + 7) / 8, now);
    if (is_store)
        buf->data->data[off] = eval(store.value()).asInt();
    else
        bind(op->result(0), SimValue::ofInt(buf->data->data[off]));
    return advanceAfter(op, now, start, opCost(op));
}

// ---------------------------------------------------------------------------
// Linalg ops

BlockExec::Step
BlockExec::execLinalg(ir::Operation *op, Cycles &now)
{
    // Root-level orchestration (e.g. filling test inputs) is free;
    // only modeled processors pay the analytic cost.
    Cycles cycles = opCost(op);
    if (op->opId() == _eng.idConv) {
        linalg::ConvOp conv(op);
        _eng.linalgConvCompute(op, eval(conv.ifmap()).asBuffer(),
                               eval(conv.weight()).asBuffer(),
                               eval(conv.ofmap()).asBuffer());
    } else if (op->opId() == _eng.idFill) {
        _eng.linalgFillCompute(op, eval(op->operand(0)).asBuffer());
    } else if (op->opId() == _eng.idMatmul) {
        _eng.linalgMatmulCompute(eval(op->operand(0)).asBuffer(),
                                 eval(op->operand(1)).asBuffer(),
                                 eval(op->operand(2)).asBuffer());
    }
    return advanceAfter(op, now, now, cycles);
}

// ---------------------------------------------------------------------------
// EQueue data movement

BlockExec::Step
BlockExec::execRead(ir::Operation *op, Cycles &now)
{
    equeue::ReadOp read(op);
    BufferObj *buf = eval(read.buffer()).asBuffer();
    Connection *conn =
        read.hasConn() ? eval(read.conn()).asConnection() : nullptr;
    auto idx_vals = read.indices();
    int64_t bytes;
    if (idx_vals.empty()) {
        auto copy = std::make_shared<Tensor>(*buf->data);
        bytes = copy->sizeBytes();
        bind(op->result(0), SimValue::ofTensor(copy));
    } else {
        std::vector<int64_t> idx;
        for (ir::Value v : idx_vals)
            idx.push_back(eval(v).asInt());
        bytes = (buf->data->elemBits + 7) / 8;
        bind(op->result(0),
             SimValue::ofInt(buf->data->data[buf->data->offset(idx)]));
    }
    int64_t words = idx_vals.empty() ? buf->data->numElements() : 1;
    Cycles start = _eng.bufferAccessStart(buf, conn, /*is_write=*/false,
                                          words, bytes, now);
    return advanceAfter(op, now, start, opCost(op));
}

BlockExec::Step
BlockExec::execWrite(ir::Operation *op, Cycles &now)
{
    equeue::WriteOp write(op);
    BufferObj *buf = eval(write.buffer()).asBuffer();
    Connection *conn =
        write.hasConn() ? eval(write.conn()).asConnection() : nullptr;
    SimValue val = eval(write.value());
    auto idx_vals = write.indices();
    int64_t bytes;
    if (idx_vals.empty() && val.isTensor()) {
        auto src = val.asTensor();
        int64_t n =
            std::min(src->numElements(), buf->data->numElements());
        std::copy_n(src->data.begin(), n, buf->data->data.begin());
        bytes = n * ((buf->data->elemBits + 7) / 8);
    } else if (!idx_vals.empty()) {
        std::vector<int64_t> idx;
        for (ir::Value v : idx_vals)
            idx.push_back(eval(v).asInt());
        buf->data->data[buf->data->offset(idx)] = val.asInt();
        bytes = (buf->data->elemBits + 7) / 8;
    } else {
        // Scalar into rank-0/1 buffer: write element 0.
        buf->data->data[0] = val.asInt();
        bytes = (buf->data->elemBits + 7) / 8;
    }
    int64_t words = idx_vals.empty() && val.isTensor()
                        ? val.asTensor()->numElements()
                        : 1;
    Cycles start = _eng.bufferAccessStart(buf, conn, /*is_write=*/true,
                                          words, bytes, now);
    return advanceAfter(op, now, start, opCost(op));
}

BlockExec::Step
BlockExec::execStreamRead(ir::Operation *op, Cycles &now)
{
    StreamFifo *fifo = eval(op->operand(0)).asStream();
    size_t elems = static_cast<size_t>(op->intAttr("elems"));
    Cycles ready = fifo->readyTime(elems);
    if (ready == StreamFifo::kNoReadyTime) {
        // Not enough elements yet: wake when the producer pushes.
        _eng.streamWaiters[fifo].push_back([this] {
            // Re-dispatch the same op at the engine's current time.
            resume(_eng.now);
        });
        return Step::Suspend;
    }
    if (ready > now) {
        _eng.scheduleAt(ready, [this, ready] { resume(ready); });
        return Step::Suspend;
    }
    auto vals = fifo->pop(elems);
    auto tensor = Tensor::zeros({static_cast<int64_t>(elems)},
                                fifo->dataBits());
    tensor->data = std::move(vals);
    bind(op->result(0), SimValue::ofTensor(tensor));
    // The reader-side connection records bytes for profiling, but the
    // arrival rate was already shaped by the producer (§VII-E).
    if (equeue::StreamReadOp(op).hasConn()) {
        Connection *conn = eval(op->operand(1)).asConnection();
        int64_t bytes = tensor->sizeBytes();
        conn->recordTransfer(
            true, now,
            now + std::max<Cycles>(conn->transferCycles(bytes), 1), bytes);
    }
    return advanceAfter(op, now, now, opCost(op));
}

BlockExec::Step
BlockExec::execStreamWrite(ir::Operation *op, Cycles &now)
{
    StreamFifo *fifo = eval(op->operand(1)).asStream();
    SimValue val = eval(op->operand(0));
    std::vector<int64_t> elems;
    if (val.isTensor())
        elems = val.asTensor()->data;
    else
        elems.push_back(val.asInt());
    Connection *conn = equeue::StreamWriteOp(op).hasConn()
                           ? eval(op->operand(2)).asConnection()
                           : nullptr;
    _eng.streamPush(fifo, conn, elems, now);
    return advanceAfter(op, now, now, opCost(op));
}

// ---------------------------------------------------------------------------
// EQueue events

BlockExec::Step
BlockExec::execControlStart(ir::Operation *op, Cycles &now)
{
    Event *ev = _eng.newEvent(Event::Kind::Start, now);
    _eng.completeEvent(ev, now);
    bind(op->result(0), SimValue::ofEvent(ev->id));
    return advanceFree();
}

BlockExec::Step
BlockExec::execControlAndOr(ir::Operation *op, Cycles &now)
{
    bool is_and = op->opId() == _eng.idControlAnd;
    Event *ev = _eng.newEvent(is_and ? Event::Kind::And : Event::Kind::Or,
                              now);
    std::vector<EventId> deps;
    for (ir::Value v : op->operands())
        deps.push_back(eval(v).asEvent());
    ev->deps = deps;
    bind(op->result(0), SimValue::ofEvent(ev->id));
    Event *evp = ev;
    auto done = [this, evp](Cycles t) { _eng.completeEvent(evp, t); };
    if (is_and)
        _eng.whenAllDone(deps, done);
    else
        _eng.whenAnyDone(deps, done);
    return advanceFree();
}

BlockExec::Step
BlockExec::execLaunch(ir::Operation *op, Cycles &now)
{
    equeue::LaunchOp launch(op);
    Event *ev = _eng.newEvent(Event::Kind::Launch, now);
    for (ir::Value d : launch.deps())
        ev->deps.push_back(eval(d).asEvent());
    ev->op = op;
    ev->proc =
        static_cast<Processor *>(eval(launch.proc()).asComponent());
    ev->creatorEnv = _env;
    bind(op->result(0), SimValue::ofEvent(ev->id));
    _spawned.push_back(ev->id);
    _eng.enqueueOnProcessor(ev, now);
    return advanceFree();
}

BlockExec::Step
BlockExec::execMemcpy(ir::Operation *op, Cycles &now)
{
    equeue::MemcpyOp mc(op);
    Event *ev = _eng.newEvent(Event::Kind::Memcpy, now);
    ev->deps.push_back(eval(mc.dep()).asEvent());
    ev->op = op;
    ev->proc = static_cast<Processor *>(eval(mc.dma()).asComponent());
    ev->src = eval(mc.src()).asBuffer();
    ev->dst = eval(mc.dst()).asBuffer();
    if (mc.hasConn())
        ev->conn = eval(mc.conn()).asConnection();
    ev->creatorEnv = _env;
    bind(op->result(0), SimValue::ofEvent(ev->id));
    _spawned.push_back(ev->id);
    _eng.enqueueOnProcessor(ev, now);
    return advanceFree();
}

BlockExec::Step
BlockExec::execAwait(ir::Operation *op, Cycles &now)
{
    if (op->numOperands() == 0) {
        // Await-all fast path. A completed event can never move time
        // here: completion happens at the then-current cycle and time
        // is monotone, so every observed doneTime is <= now and the
        // max over done events folds to `now` itself. That makes done
        // entries dead weight — compact the spawned list down to the
        // still-pending events (steady-state loops that await every
        // round stop rescanning and recopying the whole spawn history)
        // and subscribe to exactly those in one pass.
        size_t w = 0;
        for (EventId id : _spawned)
            if (!_eng.event(id)->done)
                _spawned[w++] = id;
        _spawned.resize(w);
        ++_frames.back().it;
        if (w == 0)
            return Step::Continue;
        if (w == 1) {
            // Same direct subscription whenAllDone's size-1 path makes.
            _eng.event(_spawned[0])->onDone.push_back(
                [this, now](Cycles t) { resume(std::max(now, t)); });
            return Step::Suspend;
        }
        auto state = std::make_shared<std::pair<size_t, Cycles>>(w, 0);
        for (EventId id : _spawned)
            _eng.event(id)->onDone.push_back(
                [this, now, state](Cycles t) {
                    state->second = std::max(state->second, t);
                    if (--state->first == 0)
                        resume(std::max(now, state->second));
                });
        return Step::Suspend;
    }
    std::vector<EventId> ids;
    for (ir::Value v : op->operands())
        ids.push_back(eval(v).asEvent());
    bool all_done = true;
    Cycles max_t = now;
    for (EventId id : ids) {
        Event *ev = _eng.event(id);
        if (!ev->done)
            all_done = false;
        else
            max_t = std::max(max_t, ev->doneTime);
    }
    ++_frames.back().it;
    if (all_done) {
        now = std::max(now, max_t);
        return Step::Continue;
    }
    _eng.whenAllDone(ids,
                     [this, now](Cycles t) { resume(std::max(now, t)); });
    return Step::Suspend;
}

BlockExec::Step
BlockExec::execReturn(ir::Operation *op, Cycles &now)
{
    (void)now;
    if (_event) {
        for (ir::Value v : op->operands())
            _event->results.push_back(eval(v));
    }
    return Step::Finished;
}

BlockExec::Step
BlockExec::execExtern(ir::Operation *op, Cycles &now)
{
    OpCall call;
    call.op = op;
    call.proc = _proc;
    for (ir::Value v : op->operands())
        call.args.push_back(eval(v));
    OpFnResult r = _eng.opFns.invoke(op->strAttr("signature"), call);
    eq_assert(r.results.size() >= op->numResults(),
              "op function returned too few results for '",
              op->strAttr("signature"), "'");
    for (unsigned i = 0; i < op->numResults(); ++i) {
        // The dense environment uses None to mean "unbound"; a
        // default-constructed result would read back as a missing
        // binding later, so reject it here where the signature is known.
        eq_assert(!r.results[i].isNone(),
                  "op function for '", op->strAttr("signature"),
                  "' returned an empty SimValue for result ", i);
        bind(op->result(i), r.results[i]);
    }
    Cycles cycles = std::max(opCost(op), r.cycles);
    return advanceAfter(op, now, now, cycles);
}

} // namespace sim
} // namespace eq
