/**
 * @file
 * sim::Session — the one build-cache-run path shared by every consumer
 * of the engine that re-runs modules (bench harness workers, the sweep
 * runner's per-worker state, and the serving layer's program cache).
 *
 * A Session owns the full per-worker simulation stack: one ir::Context
 * (dialects registered once), one Simulator (backend/fusion options
 * resolved once), and — after rebuild() — a pinned module plus the
 * BatchSession that amortizes verification, dispatch tables, value
 * numbering, and compiled/fused programs across repeated runs.
 *
 * The Session does not decide *when* to rebuild: callers key on their
 * own structural config (value equality in the bench workers, hash +
 * full structural equality in serve::ProgramCache) and call rebuild()
 * exactly when the key changes. This keeps the collision-safety
 * decision where the typed config lives while the build/pin/run
 * mechanics stay in one place.
 */

#ifndef EQ_SIM_SESSION_HH
#define EQ_SIM_SESSION_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "ir/context.hh"
#include "ir/operation.hh"
#include "sim/engine.hh"

namespace eq {
namespace sim {

class Session {
  public:
    /** Build a module inside the session's context. The returned
     *  module is owned (and kept alive) by the session. */
    using BuildFn = std::function<ir::OwningOpRef(ir::Context &)>;

    explicit Session(EngineOptions opts = {});

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** True once rebuild() has pinned a module. */
    bool ready() const { return _session.has_value(); }

    /**
     * Drop the current module (if any) and pin a fresh one built by
     * @p build. The previous BatchSession is destroyed first — it pins
     * the old module — and the build is self-timed (lastBuildSeconds).
     */
    void rebuild(const BuildFn &build);

    /** Simulate the pinned module once more (ready() must hold).
     *  Cycle-identical to a fresh Simulator run of the same module. */
    SimReport run();

    /** Wall seconds the most recent rebuild() spent building; callers
     *  that skipped the rebuild report 0 for "reused". */
    double lastBuildSeconds() const { return _lastBuildSeconds; }

    /** Runs completed on the currently pinned module. */
    uint64_t runsCompleted() const
    {
        return _session ? _session->runsCompleted() : 0;
    }

    ir::Context &context() { return _ctx; }
    Simulator &simulator() { return _sim; }
    ir::Operation *module() const { return _module.get(); }

  private:
    ir::Context _ctx;
    Simulator _sim;
    ir::OwningOpRef _module;
    std::optional<BatchSession> _session;
    double _lastBuildSeconds = 0.0;
};

} // namespace sim
} // namespace eq

#endif // EQ_SIM_SESSION_HH
