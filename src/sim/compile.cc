/**
 * @file
 * ModuleCompiler: lowers one interpretation scope (the module top
 * level or a launch body) into the dense micro-op stream described in
 * sim/compile.hh.
 *
 * The lowering is a single walk over the scope's inline-interpreted
 * block tree — exactly the tree the value-numbering pass walks — that
 * emits one MicroOp per interpreter dispatch:
 *
 *  - every operand is resolved to a (hops, slot) SlotRef against the
 *    static environment chain (this scope, then each enclosing launch
 *    scope), every result to a local slot;
 *  - the per-class cost-table row for the op is folded into the
 *    record;
 *  - attribute-dependent behavior is folded out: loop bounds, constant
 *    values, stream element counts, connection presence, and resolved
 *    component names become record fields or aux-pool entries;
 *  - structured control flow becomes explicit pc targets: affine.for /
 *    affine.parallel lower to Begin/End records that jump, nested
 *    builtin.modules inline (followed by a Halt, matching the
 *    interpreter's end-of-module semantics), and launch bodies are
 *    *not* inlined — they are separate scopes, compiled on first
 *    issue.
 *
 * Counting parity: the interpreter increments opsExecuted once per
 * dispatch; each record that corresponds to a dispatch carries
 * kFlagCounts, loop-End/Halt bookkeeping records do not, so both
 * backends report identical opsExecuted (goldens compare it).
 */

#include "dialects/affine.hh"
#include "dialects/equeue.hh"
#include "sim/engine_impl.hh"

namespace eq {
namespace sim {

namespace {

/** The scope root owning @p b: walk out of inline regions (loop
 *  bodies, nested modules) until hitting a launch body or the
 *  simulated tree's top block. */
ir::Block *
scopeRootOf(ir::Block *b, ir::OpId launch_id)
{
    for (;;) {
        ir::Operation *p = b->parentOp();
        if (!p || !p->block() || p->opId() == launch_id)
            return b;
        b = p->block();
    }
}

class ModuleCompiler {
  public:
    ModuleCompiler(Simulator::Impl &eng, ir::Block *root)
        : _eng(eng), _prog(std::make_unique<CompiledBlock>())
    {
        const auto &vs = eng.scopeFor(root);
        _prog->root = root;
        _prog->scopeId = vs.scopeId;
        _prog->numSlots = vs.numSlots;
        // Static environment chain: this scope, then each enclosing
        // launch's scope (the runtime env chain mirrors it: a launch
        // body's parent env is its creator's).
        ir::Block *b = root;
        for (;;) {
            _chainScopes.push_back(_eng.scopeFor(b).scopeId);
            ir::Operation *owner = b->parentOp();
            if (!owner || !owner->block())
                break; // top of the simulated tree
            b = scopeRootOf(owner->block(), _eng.idLaunch);
        }
        _root = root;
    }

    std::unique_ptr<CompiledBlock>
    compile()
    {
        // If this scope is a launch body, pre-resolve its captured
        // values: creator-relative source slot -> body argument slot
        // (issue then copies slots instead of walking use chains).
        ir::Operation *owner = _root->parentOp();
        if (owner && owner->block() && owner->opId() == _eng.idLaunch) {
            equeue::LaunchOp launch(owner);
            auto captured = launch.captured();
            for (size_t i = 0; i < captured.size(); ++i) {
                SlotRef r = refOf(captured[i]);
                eq_assert(r.hops >= 1,
                          "captured value resolved into the body scope");
                _prog->captures.push_back(CompiledBlock::Capture{
                    SlotRef{r.slot, r.hops - 1},
                    slotOf(_root->argument(static_cast<unsigned>(i)))});
            }
        }
        emitBlock(_root);
        emit(MOp::Halt, nullptr, /*counted=*/false);
        return std::move(_prog);
    }

  private:
    /** Pre-resolve @p v against the static environment chain. */
    SlotRef
    refOf(ir::Value v) const
    {
        const ir::ValueImpl *impl = v.impl();
        for (uint32_t i = 0; i < _chainScopes.size(); ++i)
            if (_chainScopes[i] == impl->interpScope)
                return SlotRef{impl->interpSlot, i};
        eq_fatal("compile: operand defined outside every enclosing "
                 "scope (op '",
                 v.definingOp() ? v.definingOp()->name() : "blockarg",
                 "')");
    }

    /** Local result/induction slot (results are always scope-local). */
    uint32_t
    slotOf(ir::Value v) const
    {
        const ir::ValueImpl *impl = v.impl();
        eq_assert(impl->interpScope == _chainScopes[0],
                  "compile: result numbered outside its own scope");
        return impl->interpSlot;
    }

    /** Append a record; operands/results are filled in by the caller. */
    uint32_t
    emit(MOp code, ir::Operation *op, bool counted)
    {
        MicroOp m;
        m.code = code;
        m.op = op;
        if (counted)
            m.flags |= kFlagCounts;
        if (op) {
            const uint32_t raw = op->opId().raw();
            for (unsigned cls = 0; cls < kNumCostClasses; ++cls) {
                const auto &row = _eng.costTable[cls];
                eq_assert(raw < row.size(),
                          "compile: op interned after cost-table build");
                m.cost[cls] = row[raw];
            }
        }
        _prog->code.push_back(std::move(m));
        return static_cast<uint32_t>(_prog->code.size() - 1);
    }

    /** Copy all of @p op's operands into the pooled args. */
    void
    addArgs(uint32_t pc, ir::Operation *op)
    {
        MicroOp &m = _prog->code[pc];
        m.argsBegin = static_cast<uint32_t>(_prog->args.size());
        m.nargs = static_cast<uint16_t>(op->numOperands());
        for (unsigned i = 0; i < op->numOperands(); ++i)
            _prog->args.push_back(refOf(op->operand(i)));
    }

    void
    setResult(uint32_t pc, ir::Operation *op)
    {
        if (op->numResults() > 0)
            _prog->code[pc].result = slotOf(op->result(0));
    }

    void emitOp(ir::Operation *op, MOp code);
    void emitBlock(ir::Block *block);

    Simulator::Impl &_eng;
    ir::Block *_root = nullptr;
    std::vector<uint32_t> _chainScopes;
    std::unique_ptr<CompiledBlock> _prog;
};

void
ModuleCompiler::emitOp(ir::Operation *op, MOp code)
{
    switch (code) {
    case MOp::ForBegin: {
        affine::ForOp loop(op);
        uint32_t aux = static_cast<uint32_t>(_prog->forLoops.size());
        _prog->forLoops.push_back(CompiledBlock::ForLoopInfo{
            loop.lb(), loop.ub(), loop.step(),
            slotOf(loop.inductionVar())});
        uint32_t begin = emit(MOp::ForBegin, op, true);
        _prog->code[begin].aux = aux;
        emitBlock(&loop.body());
        uint32_t end = emit(MOp::ForEnd, op, false);
        _prog->code[end].aux = aux;
        _prog->code[end].target = begin + 1;
        _prog->code[begin].target = end + 1;
        return;
    }
    case MOp::ParBegin: {
        affine::ParallelOp loop(op);
        uint32_t aux = static_cast<uint32_t>(_prog->parLoops.size());
        CompiledBlock::ParLoopInfo info;
        info.lbs = loop.lbs();
        info.ubs = loop.ubs();
        info.steps = loop.steps();
        for (size_t i = 0; i < info.lbs.size(); ++i)
            info.ivSlots.push_back(slotOf(
                loop.body().argument(static_cast<unsigned>(i))));
        _prog->parLoops.push_back(std::move(info));
        uint32_t begin = emit(MOp::ParBegin, op, true);
        _prog->code[begin].aux = aux;
        emitBlock(&loop.body());
        uint32_t end = emit(MOp::ParEnd, op, false);
        _prog->code[end].aux = aux;
        _prog->code[end].target = begin + 1;
        _prog->code[begin].target = end + 1;
        return;
    }
    case MOp::NestedModule: {
        // Inline the nested body (same numbering scope). Matching the
        // interpreter, running off the nested body's end finishes the
        // whole scope, so a Halt follows; ops after the nested module
        // are emitted but unreachable, exactly as they are
        // uninterpretable today.
        emit(MOp::NestedModule, op, true);
        emitBlock(&op->region(0).front());
        emit(MOp::Halt, op, false);
        return;
    }
    default:
        break;
    }

    uint32_t pc = emit(code, op, true);
    addArgs(pc, op);
    setResult(pc, op);
    MicroOp &m = _prog->code[pc];

    switch (code) {
    case MOp::Constant: {
        ir::Attribute v = op->attr("value");
        m.aux = static_cast<uint32_t>(_prog->consts.size());
        _prog->consts.push_back(v.kind() == ir::AttrKind::Float
                                    ? SimValue::ofFloat(v.asFloat())
                                    : SimValue::ofInt(v.asInt()));
        break;
    }
    case MOp::CreateComp:
        if (op->opId() == _eng.idAddComp)
            m.flags |= kFlagIsAddComp;
        break;
    case MOp::GetComp: {
        m.aux = static_cast<uint32_t>(_prog->strings.size());
        _prog->strings.push_back(
            op->opId() == _eng.idExtractComp
                ? equeue::ExtractCompOp(op).resolvedName()
                : op->strAttr("name"));
        break;
    }
    case MOp::Alloc:
        if (op->opId() == _eng.idEqueueAlloc)
            m.flags |= kFlagEqueueAlloc;
        break;
    case MOp::Read:
        if (equeue::ReadOp(op).hasConn())
            m.flags |= kFlagHasConn;
        break;
    case MOp::Write:
        if (equeue::WriteOp(op).hasConn())
            m.flags |= kFlagHasConn;
        break;
    case MOp::StreamRead:
        if (equeue::StreamReadOp(op).hasConn())
            m.flags |= kFlagHasConn;
        m.imm = op->intAttr("elems");
        break;
    case MOp::StreamWrite:
        if (equeue::StreamWriteOp(op).hasConn())
            m.flags |= kFlagHasConn;
        break;
    case MOp::Launch: {
        m.imm = static_cast<int64_t>(equeue::LaunchOp(op).numDeps());
        // Compile the body now (its ancestors, including this scope,
        // are already numbered) and pin its program on the record so
        // issue skips the cache lookup.
        m.aux = static_cast<uint32_t>(_prog->childProgs.size());
        const CompiledBlock &child =
            _eng.programFor(&equeue::LaunchOp(op).body());
        _prog->childProgs.push_back(&child);
        break;
    }
    case MOp::Memcpy:
        if (equeue::MemcpyOp(op).hasConn())
            m.flags |= kFlagHasConn;
        break;
    case MOp::Extern: {
        m.aux = static_cast<uint32_t>(_prog->resultPool.size());
        for (unsigned i = 0; i < op->numResults(); ++i)
            _prog->resultPool.push_back(slotOf(op->result(i)));
        break;
    }
    default:
        break;
    }
}

void
ModuleCompiler::emitBlock(ir::Block *block)
{
    const auto &opcodes = _eng.opcodes;
    for (ir::Operation *op : *block) {
        const uint32_t raw = op->opId().raw();
        MOp code = raw < opcodes.size() ? opcodes[raw] : MOp::Bad;
        emitOp(op, code);
    }
}

} // namespace

const CompiledBlock &
Simulator::Impl::programFor(ir::Block *root)
{
    auto it = programs.find(root);
    if (it != programs.end())
        return *it->second;
    ModuleCompiler mc(*this, root);
    return *programs.emplace(root, mc.compile()).first->second;
}

size_t
Simulator::precompile(ir::Operation *module)
{
    eq_assert(module && module->name() == "builtin.module",
              "precompile expects a builtin.module");
    Impl &impl = *_impl;
    // From-scratch semantics: drop every cached scope and program so
    // repeated calls measure (and re-do) the full lowering.
    impl.valueScopes.clear();
    impl.programs.clear();
    impl.fusedPrograms.clear();
    impl.buildDispatchTable(module->context());
    size_t ops =
        impl.programFor(&module->region(0).front()).code.size();
    module->walk([&](ir::Operation *op) {
        if (op->opId() == impl.idLaunch)
            ops += impl.programFor(&op->region(0).front()).code.size();
    });
    return ops;
}

} // namespace sim
} // namespace eq
