#include "scalesim/scalesim.hh"

#include <algorithm>

#include "base/logging.hh"

namespace eq {
namespace scalesim {

std::string
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::WS:
        return "WS";
      case Dataflow::IS:
        return "IS";
      case Dataflow::OS:
        return "OS";
    }
    return "?";
}

int64_t
Config::d1() const
{
    switch (dataflow) {
      case Dataflow::WS:
      case Dataflow::IS:
        return int64_t(fh) * fw * c;
      case Dataflow::OS:
        return n;
    }
    return 0;
}

int64_t
Config::d2() const
{
    switch (dataflow) {
      case Dataflow::WS:
        return n;
      case Dataflow::IS:
        return int64_t(eh()) * ew();
      case Dataflow::OS:
        return int64_t(fh) * fw * c;
    }
    return 0;
}

namespace {

uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

uint64_t
Config::hash() const
{
    uint64_t hv = 0xcbf29ce484222325ull;
    hv = fnv1a(hv, uint64_t(ah));
    hv = fnv1a(hv, uint64_t(aw));
    hv = fnv1a(hv, uint64_t(dataflow));
    hv = fnv1a(hv, uint64_t(c));
    hv = fnv1a(hv, uint64_t(h));
    hv = fnv1a(hv, uint64_t(w));
    hv = fnv1a(hv, uint64_t(n));
    hv = fnv1a(hv, uint64_t(fh));
    hv = fnv1a(hv, uint64_t(fw));
    hv = fnv1a(hv, uint64_t(elemBytes));
    return hv;
}

int64_t
Config::streamLength() const
{
    switch (dataflow) {
      case Dataflow::WS:
      case Dataflow::OS:
        return int64_t(eh()) * ew();
      case Dataflow::IS:
        return n;
    }
    return 0;
}

Result
simulate(const Config &cfg)
{
    eq_assert(cfg.ah > 0 && cfg.aw > 0, "array dims must be positive");
    eq_assert(cfg.h >= cfg.fh && cfg.w >= cfg.fw,
              "filter larger than ifmap");

    Result r;
    const int64_t d1 = cfg.d1();
    const int64_t d2 = cfg.d2();
    const int64_t t = cfg.streamLength();
    const int64_t skew = cfg.ah + cfg.aw - 2;
    const int64_t folds_r = (d1 + cfg.ah - 1) / cfg.ah;
    const int64_t folds_c = (d2 + cfg.aw - 1) / cfg.aw;
    const bool preloads = cfg.dataflow != Dataflow::OS;
    const int64_t eb = cfg.elemBytes;

    int64_t peak_write_elems = 0;

    // The fold space is piecewise-uniform: every interior fold is a
    // full Ah x Aw tile; only the tail row-fold and tail column-fold
    // are ragged. Accumulate per distinct (r_eff, c_eff) combination
    // scaled by its multiplicity — at most 4 combinations — instead of
    // walking every fold (large sweeps hit millions of folds).
    const int64_t full_r = d1 / cfg.ah;
    const int64_t tail_r = d1 - full_r * cfg.ah; // 0 when d1 divides
    const int64_t full_c = d2 / cfg.aw;
    const int64_t tail_c = d2 - full_c * cfg.aw;
    struct Span {
        int64_t eff, count;
    };
    const Span rows[2] = {{cfg.ah, full_r}, {tail_r, tail_r > 0 ? 1 : 0}};
    const Span cols[2] = {{cfg.aw, full_c}, {tail_c, tail_c > 0 ? 1 : 0}};

    for (const Span &rs : rows) {
        for (const Span &cs : cols) {
            const int64_t n = rs.count * cs.count;
            if (n == 0)
                continue;
            const int64_t r_eff = rs.eff;
            const int64_t c_eff = cs.eff;
            // Stationary preload streams r_eff x c_eff values through an
            // Aw-wide port.
            int64_t preload =
                preloads ? (r_eff * c_eff + cfg.aw - 1) / cfg.aw : 0;
            r.cycles += static_cast<uint64_t>(n) *
                        static_cast<uint64_t>(preload + t + skew);

            switch (cfg.dataflow) {
              case Dataflow::WS:
                r.sramIfmapReadBytes += n * t * r_eff * eb; // col-0 stream
                r.sramWeightReadBytes += n * r_eff * c_eff * eb; // preload
                r.sramOfmapWriteBytes += n * t * c_eff * eb; // bottom row
                peak_write_elems = std::max(peak_write_elems, c_eff);
                break;
              case Dataflow::IS:
                r.sramWeightReadBytes += n * t * r_eff * eb; // col-0 strm
                r.sramIfmapReadBytes += n * r_eff * c_eff * eb; // preload
                r.sramOfmapWriteBytes += n * t * c_eff * eb; // bottom row
                peak_write_elems = std::max(peak_write_elems, c_eff);
                break;
              case Dataflow::OS:
                r.sramIfmapReadBytes += n * t * r_eff * eb; // col-0 strm
                r.sramWeightReadBytes += n * t * c_eff * eb; // row-0 strm
                r.sramOfmapWriteBytes += n * t * r_eff * eb; // last col
                peak_write_elems = std::max(peak_write_elems, r_eff);
                break;
            }
        }
    }

    r.folds = static_cast<uint64_t>(folds_r * folds_c);
    r.loopIterations = r.folds;

    double cyc = std::max<double>(1.0, double(r.cycles));
    r.avgOfmapWriteBw = r.sramOfmapWriteBytes / cyc;
    r.avgIfmapReadBw = r.sramIfmapReadBytes / cyc;
    // Peak write bandwidth x portion: the array emits peak_write_elems
    // per cycle during the streaming phase of each fold.
    double portion = double(t) * double(r.folds) / cyc;
    r.peakWriteBwTimesPortion = double(peak_write_elems * eb) * portion;
    return r;
}

std::vector<Result>
simulateBatch(const std::vector<Config> &cfgs)
{
    // One fused pass: the per-config closed form is branch-light and
    // touches only the Config POD, so evaluating the whole grid shard
    // back-to-back keeps everything in cache and pays the call/setup
    // overhead once instead of once per sweep point.
    std::vector<Result> out;
    out.reserve(cfgs.size());
    for (const Config &cfg : cfgs)
        out.push_back(simulate(cfg));
    return out;
}

} // namespace scalesim
} // namespace eq
