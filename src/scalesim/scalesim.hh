/**
 * @file
 * A C++ reimplementation of SCALE-Sim's systolic-array cost model
 * (Samajdar et al., arXiv:1811.02883), the baseline of Section VI-C.
 *
 * SCALE-Sim estimates the runtime of a convolution mapped onto an
 * Ah x Aw systolic array under the WS / IS / OS dataflows:
 *
 *  - The stationary tensor is partitioned into folds of at most Ah rows
 *    and Aw columns: folds = ceil(D1/Ah) * ceil(D2/Aw), with D1/D2 as in
 *    the paper's Section VI-E (WS: Fh*Fw*C x N; IS: Fh*Fw*C x Eh*Ew;
 *    OS: N x Fh*Fw*C).
 *  - Each fold preloads the stationary values (Ah cycles, skipped for
 *    OS where accumulation happens in place), then streams T moving
 *    values through the array (WS/OS: T = Eh*Ew, IS: T = N) plus the
 *    fill/drain skew of Ah + Aw - 2 cycles.
 *
 * The model also reports SRAM traffic: every ofmap element leaves the
 * array exactly once (ofmap writes), and the moving operands enter from
 * SRAM on the boundary rows/columns.
 */

#ifndef EQ_SCALESIM_SCALESIM_HH
#define EQ_SCALESIM_SCALESIM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eq {
namespace scalesim {

enum class Dataflow { WS, IS, OS };

std::string dataflowName(Dataflow df);

/** Convolution + array configuration (no padding, unit stride). */
struct Config {
    int ah = 4;       ///< array rows
    int aw = 4;       ///< array cols
    Dataflow dataflow = Dataflow::WS;
    int c = 1;        ///< input channels
    int h = 8;        ///< ifmap height
    int w = 8;        ///< ifmap width
    int n = 1;        ///< filter count
    int fh = 2;       ///< filter height
    int fw = 2;       ///< filter width
    int elemBytes = 4;

    int eh() const { return h - fh + 1; }
    int ew() const { return w - fw + 1; }
    /** Stationary-space dims (paper §VI-E). */
    int64_t d1() const;
    int64_t d2() const;
    /** Moving-stream length per fold. */
    int64_t streamLength() const;
    int64_t macs() const
    {
        return int64_t(n) * eh() * ew() * c * fh * fw;
    }

    /** Structural identity: two equal configs generate identical
     *  modules, so batched sweeps may reuse the built module. */
    friend bool
    operator==(const Config &a, const Config &b)
    {
        return a.ah == b.ah && a.aw == b.aw &&
               a.dataflow == b.dataflow && a.c == b.c && a.h == b.h &&
               a.w == b.w && a.n == b.n && a.fh == b.fh &&
               a.fw == b.fw && a.elemBytes == b.elemBytes;
    }
    friend bool
    operator!=(const Config &a, const Config &b)
    {
        return !(a == b);
    }

    /** FNV-1a over every structural field (mirrors soc::SocConfig);
     *  stable across runs so caches can key on it. Equal configs hash
     *  equal; the converse is NOT guaranteed — cache lookups must
     *  verify full operator== equality on a hash hit. */
    uint64_t hash() const;
};

/** Model outputs compared in Fig. 9. */
struct Result {
    uint64_t cycles = 0;
    uint64_t folds = 0;
    uint64_t loopIterations = 0; ///< folds (the paper's Fig. 12c-e metric)
    int64_t sramIfmapReadBytes = 0;
    int64_t sramWeightReadBytes = 0;
    int64_t sramOfmapWriteBytes = 0;
    double avgOfmapWriteBw = 0.0; ///< bytes/cycle
    double avgIfmapReadBw = 0.0;
    /** Peak write bandwidth times the portion of time at peak. */
    double peakWriteBwTimesPortion = 0.0;
};

/** Run the analytic model. */
Result simulate(const Config &cfg);

/**
 * Evaluate the analytic model for a whole batch of configurations in
 * one fused pass (ROADMAP "Sweep-aware scalesim fusion"): sweep
 * harnesses precompute every grid point's analytic columns up front —
 * one tight loop over plain-old-data configs, no per-point call from
 * the sweep workers — so the SCALE-Sim columns are near-free next to
 * the engine simulations sharing the row.
 * @return results[i] == simulate(cfgs[i]) for every i
 */
std::vector<Result> simulateBatch(const std::vector<Config> &cfgs);

} // namespace scalesim
} // namespace eq

#endif // EQ_SCALESIM_SCALESIM_HH
