/**
 * @file
 * The Versal ACAP AI Engine case study (Section VII): a 32-tap complex
 * FIR filter over 512 samples, modeled at four design points:
 *
 *  case 1 — one AI Engine core, unlimited I/O        (paper: 2048 cyc)
 *  case 2 — 16 pipelined cores, unlimited I/O        (paper:  143 cyc)
 *  case 3 — 16 pipelined cores, 32-bit stream links  (paper:  588 cyc)
 *  case 4 — 4 balanced cores, 32-bit stream links    (paper:  538 cyc)
 *
 * Each core computes `mul4`/`mac4` intrinsics (4 lanes x 2 MACs/cycle
 * [39]); groups of 4 samples flow core-to-core through AXI4-Stream
 * style FIFOs, rate-limited by Streaming connections in cases 3-4.
 */

#ifndef EQ_AIE_FIR_HH
#define EQ_AIE_FIR_HH

#include <cstdint>

#include "ir/builder.hh"

namespace eq {
namespace aie {

/** FIR design-point description. */
struct FirConfig {
    int taps = 32;      ///< filter length
    int samples = 512;  ///< input series length
    int cores = 1;      ///< AI Engine cores in the pipeline
    /** Stream link bandwidth in bytes/cycle; 0 = unlimited (cases 1-2).
     *  The AI Engine's AXI4-Stream interfaces are 32-bit => 4. */
    int64_t streamBandwidth = 0;
    /** Issue the stream write after this many compute ops (the paper's
     *  case 4 interleaves the write mid-computation). Negative = after
     *  all compute ops. */
    int writeAfterOps = -1;

    /** Samples per vector group (mul4/mac4 compute 4 lanes). */
    int lanes() const { return 4; }
    int groups() const { return samples / lanes(); }
    /** mul4/mac4 ops needed per group: taps/2 (2 MACs per lane/cycle). */
    int totalOpsPerGroup() const { return taps / 2; }
    int opsPerCore() const { return totalOpsPerGroup() / cores; }

    static FirConfig case1();
    static FirConfig case2();
    static FirConfig case3();
    static FirConfig case4();
};

/** Emit the EQueue module for @p cfg. */
ir::OwningOpRef buildFirModule(ir::Context &ctx, const FirConfig &cfg);

/**
 * Closed-form cycle count the emitted module simulates to (derived in
 * EXPERIMENTS.md; used by tests to pin the engine's behaviour):
 *  unlimited:  L*(G + K - 1) with L = opsPerCore, G = groups, K = cores
 *  bandwidth-limited: K*(pre + tx) + (G-1)*max(L, tx)
 *    with tx = groupBytes/bw and pre = ops issued before the write.
 */
uint64_t expectedFirCycles(const FirConfig &cfg);

} // namespace aie
} // namespace eq

#endif // EQ_AIE_FIR_HH
