#include "aie/fir.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "dialects/affine.hh"
#include "dialects/equeue.hh"

namespace eq {
namespace aie {

FirConfig
FirConfig::case1()
{
    FirConfig c;
    c.cores = 1;
    c.streamBandwidth = 0;
    return c;
}

FirConfig
FirConfig::case2()
{
    FirConfig c;
    c.cores = 16;
    c.streamBandwidth = 0;
    return c;
}

FirConfig
FirConfig::case3()
{
    FirConfig c;
    c.cores = 16;
    c.streamBandwidth = 4; // 32-bit AXI4-Stream
    return c;
}

FirConfig
FirConfig::case4()
{
    FirConfig c;
    c.cores = 4;
    c.streamBandwidth = 4;
    c.writeAfterOps = 2; // the tutorial interleaves the output write
    return c;
}

ir::OwningOpRef
buildFirModule(ir::Context &ctx, const FirConfig &cfg)
{
    eq_assert(cfg.taps % 2 == 0, "taps must be even (2 MACs per lane)");
    eq_assert(cfg.samples % cfg.lanes() == 0,
              "samples must be a multiple of the lane count");
    eq_assert(cfg.totalOpsPerGroup() % cfg.cores == 0,
              "cores must evenly divide taps/2");

    ir::OwningOpRef module = ir::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(&module->region(0).front());
    using ir::Value;

    // ---- structure -----------------------------------------------------
    // Host staging memory feeding the input stream; one AI Engine core,
    // register file, and inter-core stream per pipeline stage.
    Value host_mem = b.create<equeue::CreateMemOp>(
                          std::string("Register"),
                          std::vector<int64_t>{cfg.samples}, 32u, 1u)
                         ->result(0);
    Value src_buf = b.create<equeue::AllocOp>(
                         host_mem, std::vector<int64_t>{cfg.samples}, 32u)
                        ->result(0);

    std::vector<Value> cores, ifmaps, filters, ofmaps;
    std::vector<Value> streams;  // streams[k] feeds core k; [cores] = sout
    std::vector<Value> conns;    // conns[k] carries core k's output
    auto comp = b.create<equeue::CreateCompOp>(std::string("HostMem"),
                                               std::vector<Value>{host_mem});
    for (int k = 0; k <= cfg.cores; ++k) {
        streams.push_back(
            b.create<equeue::CreateStreamOp>(32u)->result(0));
    }
    for (int k = 0; k < cfg.cores; ++k) {
        Value core =
            b.create<equeue::CreateProcOp>(std::string("AIEngine"))
                ->result(0);
        Value rmem = b.create<equeue::CreateMemOp>(
                          std::string("Register"),
                          std::vector<int64_t>{64}, 32u, 4u)
                         ->result(0);
        std::string id = std::to_string(k);
        b.create<equeue::AddCompOp>(comp->result(0),
                                    "AIE_" + id + " RF_" + id,
                                    std::vector<Value>{core, rmem});
        cores.push_back(core);
        ifmaps.push_back(b.create<equeue::AllocOp>(
                              rmem, std::vector<int64_t>{8}, 32u)
                             ->result(0));
        filters.push_back(
            b.create<equeue::AllocOp>(
                 rmem, std::vector<int64_t>{cfg.taps}, 32u)
                ->result(0));
        ofmaps.push_back(b.create<equeue::AllocOp>(
                              rmem, std::vector<int64_t>{4}, 32u)
                             ->result(0));
        if (cfg.streamBandwidth > 0) {
            conns.push_back(b.create<equeue::CreateConnectionOp>(
                                 std::string("Streaming"),
                                 cfg.streamBandwidth)
                                ->result(0));
        } else {
            conns.push_back(Value());
        }
    }

    // ---- pre-fill the input stream (available at cycle 0) ---------------
    Value samples_tensor =
        b.create<equeue::ReadOp>(src_buf, Value(), std::vector<Value>{})
            ->result(0);
    b.create<equeue::StreamWriteOp>(samples_tensor, streams[0], Value());

    // ---- per-core pipeline stages ---------------------------------------
    auto start = b.create<equeue::ControlStartOp>();
    std::vector<Value> dones;
    for (int k = 0; k < cfg.cores; ++k) {
        std::vector<Value> captured{streams[k], streams[k + 1], ifmaps[k],
                                    filters[k], ofmaps[k]};
        if (conns[k])
            captured.push_back(conns[k]);
        auto launch = b.create<equeue::LaunchOp>(
            std::vector<Value>{start->result(0)}, cores[k], captured,
            std::vector<ir::Type>{});
        dones.push_back(launch->result(0));
        ir::OpBuilder::InsertionGuard g(b);
        equeue::LaunchOp l(launch.op());
        b.setInsertionPointToEnd(&l.body());
        Value s_in = l.body().argument(0);
        Value s_out = l.body().argument(1);
        Value ifmap = l.body().argument(2);
        Value filter = l.body().argument(3);
        Value ofmap = l.body().argument(4);
        Value conn = conns[k] ? l.body().argument(5) : Value();

        auto loop = b.create<affine::ForOp>(int64_t{0},
                                            int64_t(cfg.groups()),
                                            int64_t{1});
        {
            ir::OpBuilder::InsertionGuard g2(b);
            b.setInsertionPointToEnd(&affine::ForOp(loop.op()).body());
            // Blocking read of one 4-sample group; arrival is shaped by
            // the upstream core's connection (reads are posted by the
            // stream unit and cost no core cycles).
            auto group = b.create<equeue::StreamReadOp>(
                s_in, int64_t(cfg.lanes()), 32u, Value());
            b.create<equeue::WriteOp>(group->result(0), ifmap, Value(),
                                      std::vector<Value>{});

            int ops = cfg.opsPerCore();
            int write_after = cfg.writeAfterOps >= 0
                                  ? std::min(cfg.writeAfterOps, ops)
                                  : ops;
            auto emit_compute = [&](int index) {
                // The first op of the whole chain multiplies; all later
                // ones multiply-accumulate (paper §VII-C).
                const char *sig =
                    (k == 0 && index == 0) ? "mul4" : "mac4";
                auto op = b.create<equeue::ExternOp>(
                    std::string(sig),
                    std::vector<Value>{ofmap, ifmap, filter},
                    std::vector<ir::Type>{});
                op->setAttr("offset",
                            ir::Attribute::integer(
                                2 * (k * ops + index) % cfg.taps));
            };
            int emitted = 0;
            for (; emitted < write_after; ++emitted)
                emit_compute(emitted);
            auto result = b.create<equeue::ReadOp>(ofmap, Value(),
                                                   std::vector<Value>{});
            b.create<equeue::StreamWriteOp>(result->result(0), s_out,
                                            conn);
            for (; emitted < ops; ++emitted)
                emit_compute(emitted);
            b.create<affine::YieldOp>(std::vector<Value>{});
        }
        b.create<equeue::ReturnOp>(std::vector<Value>{});
    }
    b.create<equeue::AwaitOp>(dones);
    return module;
}

uint64_t
expectedFirCycles(const FirConfig &cfg)
{
    const uint64_t g = cfg.groups();
    const uint64_t k = cfg.cores;
    const uint64_t l = cfg.opsPerCore();
    if (cfg.streamBandwidth <= 0) {
        // Unlimited links: classic pipeline fill + drain.
        return l * (g + k - 1);
    }
    const uint64_t group_bytes = cfg.lanes() * 4;
    const uint64_t tx =
        (group_bytes + cfg.streamBandwidth - 1) / cfg.streamBandwidth;
    const uint64_t pre =
        cfg.writeAfterOps >= 0
            ? std::min<uint64_t>(cfg.writeAfterOps, l)
            : l;
    const uint64_t ii = std::max(l, tx);
    return k * (pre + tx) + (g - 1) * ii;
}

} // namespace aie
} // namespace eq
