/**
 * @file
 * Multi-accelerator SoC scenario generators.
 *
 * Composes the existing component library into systems bigger than one
 * accelerator: several systolic arrays sharing one bus/DMA complex with
 * real contention, and GEMM-style layer pipelines chained through
 * on-chip buffers. Every family is a parameterized generator whose
 * config is value-comparable and hashable (mirroring scalesim::Config)
 * so sweep harnesses and worker caches can key on it.
 *
 * Families:
 *   buildSocModule       N systolic tiles (WS/OS mix) behind one shared
 *                        bus + DMA pool + shared SRAM. Boundary reads
 *                        and result writes travel over the shared bus
 *                        connection, staging memcpys ride the DMA pool,
 *                        per-tile links carry preload/drain traffic.
 *   buildPipelineModule  a chain of compute stages double-ended by
 *                        in/out DMAs, items flowing through per-stage
 *                        on-chip buffers with structural hazards
 *                        (stage s of item t waits for stage s+1 of
 *                        item t-1 to free the buffer).
 *
 * The SoC bodies deliberately lean on connection-carrying reads/writes
 * — the records the superinstruction fuser skips — so these scenarios
 * double as the profile workload for the ROADMAP's follow-on fusion
 * work.
 *
 * expectedSocTraffic / expectedPipelineTraffic give closed-form byte
 * counts for every connection so property tests can assert exact byte
 * conservation instead of loose bounds.
 */

#ifndef EQ_SOC_SOC_HH
#define EQ_SOC_SOC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/builder.hh"
#include "scalesim/scalesim.hh"

namespace eq {
namespace soc {

/** One systolic tile on the shared bus. */
struct TileSpec {
    int ah = 2;           ///< array rows
    int aw = 2;           ///< array cols
    scalesim::Dataflow dataflow = scalesim::Dataflow::WS;
    int64_t linkBytesPerCycle = 8; ///< private link (preload/drain)

    bool operator==(const TileSpec &o) const
    {
        return ah == o.ah && aw == o.aw && dataflow == o.dataflow &&
               linkBytesPerCycle == o.linkBytesPerCycle;
    }
    bool operator!=(const TileSpec &o) const { return !(*this == o); }
};

/** Shared-bus multi-accelerator SoC configuration. */
struct SocConfig {
    std::vector<TileSpec> accels = {TileSpec{}, TileSpec{}};
    int64_t busBytesPerCycle = 8; ///< shared bus bandwidth
    std::string busKind = "Streaming"; ///< "Streaming" or "Window"
    unsigned sramBanks = 4;       ///< shared SRAM bank count
    int dmaEngines = 1;           ///< DMA pool size (FIFO per engine)
    int rounds = 2;               ///< outer rounds (stage + compute)
    int steps = 4;                ///< systolic steps per round
    int64_t elemBytes = 4;

    bool operator==(const SocConfig &o) const
    {
        return accels == o.accels &&
               busBytesPerCycle == o.busBytesPerCycle &&
               busKind == o.busKind && sramBanks == o.sramBanks &&
               dmaEngines == o.dmaEngines && rounds == o.rounds &&
               steps == o.steps && elemBytes == o.elemBytes;
    }
    bool operator!=(const SocConfig &o) const { return !(*this == o); }

    /** FNV-1a over every field; stable across runs for cache keying. */
    uint64_t hash() const;

    /** Two identical WS tiles contending for one bus + one DMA. */
    static SocConfig dualSharedBus();
    /** WS + OS mix behind a narrow Window bus, few banks, one DMA. */
    static SocConfig heteroStarved();
};

/** Buffered layer-pipeline configuration. */
struct PipelineConfig {
    int stages = 4;          ///< compute stages in the chain
    int batches = 6;         ///< items pushed through the pipeline
    int64_t tileElems = 16;  ///< elements per item tile
    int computePerElem = 2;  ///< chained MACs per element per stage
    int64_t dmaBytesPerCycle = 8; ///< in/out DMA connection bandwidth
    int64_t hopBytesPerCycle = 4; ///< stage-to-stage hop bandwidth
    int64_t elemBytes = 4;

    bool operator==(const PipelineConfig &o) const
    {
        return stages == o.stages && batches == o.batches &&
               tileElems == o.tileElems &&
               computePerElem == o.computePerElem &&
               dmaBytesPerCycle == o.dmaBytesPerCycle &&
               hopBytesPerCycle == o.hopBytesPerCycle &&
               elemBytes == o.elemBytes;
    }
    bool operator!=(const PipelineConfig &o) const
    {
        return !(*this == o);
    }

    uint64_t hash() const;

    static PipelineConfig small();
};

/** Exact per-connection byte counts for a SocConfig run. */
struct SocTraffic {
    int64_t busReadBytes = 0;
    int64_t busWriteBytes = 0;
    /** Per-accelerator private-link traffic, index-aligned with
     *  SocConfig::accels. WS tiles read preloads; OS tiles write
     *  drained accumulators. */
    std::vector<int64_t> linkReadBytes;
    std::vector<int64_t> linkWriteBytes;
};

/** Exact per-connection byte counts for a PipelineConfig run. */
struct PipelineTraffic {
    int64_t inBytes = 0;  ///< DMA-in connection write bytes
    int64_t outBytes = 0; ///< DMA-out connection write bytes
    int64_t hopBytes = 0; ///< each stage hop connection write bytes
};

SocTraffic expectedSocTraffic(const SocConfig &cfg);
PipelineTraffic expectedPipelineTraffic(const PipelineConfig &cfg);

ir::OwningOpRef buildSocModule(ir::Context &ctx, const SocConfig &cfg);
ir::OwningOpRef buildPipelineModule(ir::Context &ctx,
                                    const PipelineConfig &cfg);

} // namespace soc
} // namespace eq

#endif // EQ_SOC_SOC_HH
