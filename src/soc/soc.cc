#include "soc/soc.hh"

#include <string>
#include <vector>

#include "base/logging.hh"
#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/equeue.hh"

namespace eq {
namespace soc {

namespace {

using ir::OpBuilder;
using ir::Value;

uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
fnv1aStr(uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Per-PE register cells inside one tile. */
struct PeRegs {
    Value inA;    ///< operand arriving from the left
    Value inB;    ///< second operand from above (OS)
    Value acc;    ///< partial sum (WS: moving, OS: resident)
    Value outA;   ///< latched operand to pass right
    Value outB;   ///< latched second operand to pass down (OS)
    Value outAcc; ///< latched partial sum to pass down (WS)
    Value stat;   ///< stationary value (WS)
};

/** One accelerator tile's structure handles. */
struct Tile {
    Value link;     ///< private connection (preload/drain)
    Value stageSrc; ///< staging source in shared SRAM
    Value stageDst; ///< staging destination in tile L1
    Value inHead;   ///< shared-SRAM head feeding the left boundary
    Value in2Head;  ///< shared-SRAM head feeding the top boundary (OS)
    Value outCell;  ///< shared-SRAM cell receiving results
    std::vector<std::vector<Value>> pe;
    std::vector<std::vector<PeRegs>> regs;
};

/** Emitter for the shared-bus multi-accelerator family. */
struct SocEmitter {
    ir::Context &ctx;
    OpBuilder b;
    const SocConfig &cfg;

    Value sram; ///< shared staging SRAM behind the bus
    Value bus;  ///< the contended system connection
    std::vector<Value> dmas;
    std::vector<Tile> tiles;

    SocEmitter(ir::Context &c, const SocConfig &cf) : ctx(c), b(c), cfg(cf)
    {}

    Value
    allocOn(Value mem, int64_t elems)
    {
        return b.create<equeue::AllocOp>(mem, std::vector<int64_t>{elems},
                                         32u)
            ->result(0);
    }

    Value
    readCell(Value buf, Value conn = Value())
    {
        return b.create<equeue::ReadOp>(buf, conn, std::vector<Value>{})
            ->result(0);
    }

    void
    writeCell(Value data, Value buf, Value conn = Value())
    {
        b.create<equeue::WriteOp>(data, buf, conn, std::vector<Value>{});
    }

    static bool
    isOs(const TileSpec &t)
    {
        return t.dataflow == scalesim::Dataflow::OS;
    }

    void
    buildStructure(ir::Block *top)
    {
        b.setInsertionPointToEnd(top);
        sram = b.create<equeue::CreateMemOp>(
                    std::string("SRAM"), std::vector<int64_t>{1 << 20},
                    32u, cfg.sramBanks)
                   ->result(0);
        bus = b.create<equeue::CreateConnectionOp>(cfg.busKind,
                                                   cfg.busBytesPerCycle)
                  ->result(0);
        std::string dma_names = "SharedSRAM";
        std::vector<Value> shared{sram};
        for (int d = 0; d < cfg.dmaEngines; ++d) {
            dmas.push_back(b.create<equeue::CreateDmaOp>()->result(0));
            dma_names += " DMA_" + std::to_string(d);
            shared.push_back(dmas.back());
        }
        auto comp = b.create<equeue::CreateCompOp>(dma_names, shared);

        tiles.resize(cfg.accels.size());
        for (size_t a = 0; a < cfg.accels.size(); ++a) {
            const TileSpec &ts = cfg.accels[a];
            Tile &t = tiles[a];
            std::string pfx = "A" + std::to_string(a) + "_";
            t.link = b.create<equeue::CreateConnectionOp>(
                          std::string("Streaming"), ts.linkBytesPerCycle)
                         ->result(0);
            Value l1 = b.create<equeue::CreateMemOp>(
                            std::string("SRAM"),
                            std::vector<int64_t>{4096}, 32u,
                            static_cast<unsigned>(2 * (ts.ah + ts.aw)))
                           ->result(0);
            b.create<equeue::AddCompOp>(comp->result(0), pfx + "L1",
                                        std::vector<Value>{l1});

            int64_t pes = int64_t(ts.ah) * ts.aw;
            t.stageSrc = allocOn(sram, pes);
            t.stageDst = allocOn(l1, pes);
            t.inHead = allocOn(sram, 1);
            t.in2Head = allocOn(sram, 1);
            t.outCell = allocOn(sram, 1);

            t.pe.assign(ts.ah, std::vector<Value>(ts.aw));
            t.regs.assign(ts.ah, std::vector<PeRegs>(ts.aw));
            for (int h = 0; h < ts.ah; ++h) {
                for (int w = 0; w < ts.aw; ++w) {
                    t.pe[h][w] =
                        b.create<equeue::CreateProcOp>(std::string("MAC"))
                            ->result(0);
                    Value rmem = b.create<equeue::CreateMemOp>(
                                      std::string("Register"),
                                      std::vector<int64_t>{16}, 32u, 8u)
                                     ->result(0);
                    std::string suffix = std::to_string(h) + "_" +
                                         std::to_string(w);
                    b.create<equeue::AddCompOp>(
                        comp->result(0),
                        pfx + "PE_" + suffix + " " + pfx + "REG_" +
                            suffix,
                        std::vector<Value>{t.pe[h][w], rmem});
                    PeRegs &r = t.regs[h][w];
                    r.inA = allocOn(rmem, 1);
                    r.inB = allocOn(rmem, 1);
                    r.acc = allocOn(rmem, 1);
                    r.outA = allocOn(rmem, 1);
                    r.outB = allocOn(rmem, 1);
                    r.outAcc = allocOn(rmem, 1);
                    r.stat = allocOn(rmem, 1);
                }
            }
        }
    }

    /** Preload the stationary value of one WS PE from the tile's staged
     *  L1 tile over the private link (conn-carrying indexed read). */
    Value
    emitPreload(Value dep, size_t a, int h, int w)
    {
        const TileSpec &ts = cfg.accels[a];
        Tile &t = tiles[a];
        const PeRegs &r = t.regs[h][w];
        std::vector<Value> captured{t.stageDst, t.link, r.stat};
        auto launch = b.create<equeue::LaunchOp>(
            std::vector<Value>{dep}, t.pe[h][w], captured,
            std::vector<ir::Type>{});
        {
            OpBuilder::InsertionGuard g(b);
            equeue::LaunchOp l(launch.op());
            b.setInsertionPointToEnd(&l.body());
            Value staged = l.body().argument(0);
            Value link = l.body().argument(1);
            Value stat = l.body().argument(2);
            Value idx = b.create<arith::ConstantOp>(
                             int64_t(h) * ts.aw + w, ctx.indexType())
                            ->result(0);
            Value v = b.create<equeue::ReadOp>(staged, link,
                                               std::vector<Value>{idx})
                          ->result(0);
            writeCell(v, stat);
            b.create<equeue::ReturnOp>(std::vector<Value>{});
        }
        return launch->result(0);
    }

    /** Stage R: fetch operands (boundary PEs over the shared bus), MAC,
     *  latch into out-registers. */
    Value
    emitStageR(Value dep, size_t a, int h, int w)
    {
        const TileSpec &ts = cfg.accels[a];
        Tile &t = tiles[a];
        const PeRegs &r = t.regs[h][w];
        bool left_edge = w == 0;
        bool top_edge = h == 0;
        bool os = isOs(ts);
        Value src_a = left_edge ? t.inHead : r.inA;
        Value conn_a = left_edge ? bus : Value();
        Value src_b = r.inB;
        Value conn_b;
        if (os && top_edge) {
            src_b = t.in2Head;
            conn_b = bus;
        }

        std::vector<Value> captured{src_a, src_b, r.acc, r.stat, r.outA,
                                    r.outB, r.outAcc};
        if (conn_a)
            captured.push_back(conn_a);
        if (conn_b)
            captured.push_back(conn_b);
        auto launch = b.create<equeue::LaunchOp>(
            std::vector<Value>{dep}, t.pe[h][w], captured,
            std::vector<ir::Type>{});
        {
            OpBuilder::InsertionGuard g(b);
            equeue::LaunchOp l(launch.op());
            b.setInsertionPointToEnd(&l.body());
            Value a_in = l.body().argument(0);
            Value b_in = l.body().argument(1);
            Value acc_in = l.body().argument(2);
            Value stat_in = l.body().argument(3);
            Value out_a = l.body().argument(4);
            Value out_b = l.body().argument(5);
            Value out_acc = l.body().argument(6);
            unsigned arg = 7;
            Value ca = conn_a ? l.body().argument(arg++) : Value();
            Value cb = conn_b ? l.body().argument(arg++) : Value();

            Value av = readCell(a_in, ca);
            Value acc, mul_operand;
            if (os) {
                Value bv = readCell(b_in, cb);
                acc = readCell(acc_in);
                mul_operand = bv;
                writeCell(bv, out_b);
            } else {
                Value st = readCell(stat_in);
                acc = readCell(acc_in);
                mul_operand = st;
            }
            auto res = b.create<equeue::ExternOp>(
                std::string("mac"),
                std::vector<Value>{av, mul_operand, acc},
                std::vector<ir::Type>{ctx.i32Type()});
            if (os)
                writeCell(res->result(0), acc_in); // resident accumulate
            else
                writeCell(res->result(0), out_acc);
            writeCell(av, out_a);
            b.create<equeue::ReturnOp>(std::vector<Value>{});
        }
        return launch->result(0);
    }

    /** Stage W: pass latched values to neighbors; WS bottom-row PEs
     *  emit partial sums to shared SRAM over the bus. */
    Value
    emitStageW(Value dep, size_t a, int h, int w)
    {
        const TileSpec &ts = cfg.accels[a];
        Tile &t = tiles[a];
        const PeRegs &r = t.regs[h][w];
        bool right_edge = w == ts.aw - 1;
        bool bottom_edge = h == ts.ah - 1;
        bool os = isOs(ts);

        std::vector<Value> captured{r.outA, r.outB, r.outAcc};
        Value dst_a, dst_b, dst_acc, conn_acc;
        if (!right_edge)
            dst_a = t.regs[h][w + 1].inA;
        if (os) {
            if (!bottom_edge)
                dst_b = t.regs[h + 1][w].inB;
        } else {
            if (!bottom_edge) {
                dst_acc = t.regs[h + 1][w].acc;
            } else {
                dst_acc = t.outCell; // results exit over the bus
                conn_acc = bus;
            }
        }
        for (Value v : {dst_a, dst_b, dst_acc, conn_acc})
            if (v)
                captured.push_back(v);

        auto launch = b.create<equeue::LaunchOp>(
            std::vector<Value>{dep}, t.pe[h][w], captured,
            std::vector<ir::Type>{});
        {
            OpBuilder::InsertionGuard g(b);
            equeue::LaunchOp l(launch.op());
            b.setInsertionPointToEnd(&l.body());
            Value out_a = l.body().argument(0);
            Value out_b = l.body().argument(1);
            Value out_acc = l.body().argument(2);
            unsigned arg = 3;
            if (dst_a) {
                Value v = readCell(out_a);
                writeCell(v, l.body().argument(arg++));
            }
            if (dst_b) {
                Value v = readCell(out_b);
                writeCell(v, l.body().argument(arg++));
            }
            if (dst_acc) {
                Value v = readCell(out_acc);
                Value dst = l.body().argument(arg++);
                Value cacc = conn_acc ? l.body().argument(arg++) : Value();
                writeCell(v, dst, cacc);
            }
            b.create<equeue::ReturnOp>(std::vector<Value>{});
        }
        return launch->result(0);
    }

    /** Drain one OS PE's resident accumulator to shared SRAM over the
     *  tile's private link (conn-carrying write). */
    Value
    emitDrain(Value dep, size_t a, int h, int w)
    {
        Tile &t = tiles[a];
        const PeRegs &r = t.regs[h][w];
        std::vector<Value> captured{r.acc, t.outCell, t.link};
        auto launch = b.create<equeue::LaunchOp>(
            std::vector<Value>{dep}, t.pe[h][w], captured,
            std::vector<ir::Type>{});
        {
            OpBuilder::InsertionGuard g(b);
            equeue::LaunchOp l(launch.op());
            b.setInsertionPointToEnd(&l.body());
            Value v = readCell(l.body().argument(0));
            writeCell(v, l.body().argument(1), l.body().argument(2));
            b.create<equeue::ReturnOp>(std::vector<Value>{});
        }
        return launch->result(0);
    }

    /** Emit a counted loop whose body is filled by @p body_fn. */
    void
    emitLoop(int64_t trip, const std::function<void()> &body_fn)
    {
        if (trip <= 0)
            return;
        auto loop = b.create<affine::ForOp>(int64_t{0}, trip, int64_t{1});
        OpBuilder::InsertionGuard g(b);
        b.setInsertionPointToEnd(&affine::ForOp(loop.op()).body());
        body_fn();
        b.create<affine::YieldOp>(std::vector<Value>{});
    }

    /** One systolic step across every tile: stage R everywhere, one
     *  wide await, stage W everywhere, one wide await. */
    void
    emitStep()
    {
        auto stage_start = b.create<equeue::ControlStartOp>();
        std::vector<Value> reads;
        for (size_t a = 0; a < cfg.accels.size(); ++a)
            for (int h = 0; h < cfg.accels[a].ah; ++h)
                for (int w = 0; w < cfg.accels[a].aw; ++w)
                    reads.push_back(
                        emitStageR(stage_start->result(0), a, h, w));
        b.create<equeue::AwaitOp>(reads);
        auto pass_start = b.create<equeue::ControlStartOp>();
        std::vector<Value> writes;
        for (size_t a = 0; a < cfg.accels.size(); ++a)
            for (int h = 0; h < cfg.accels[a].ah; ++h)
                for (int w = 0; w < cfg.accels[a].aw; ++w)
                    writes.push_back(
                        emitStageW(pass_start->result(0), a, h, w));
        b.create<equeue::AwaitOp>(writes);
    }

    /** One round: stage every tile over the bus (DMA pool contention),
     *  preload stationaries, run the steps, drain OS accumulators. */
    void
    emitRound()
    {
        auto start = b.create<equeue::ControlStartOp>();
        std::vector<Value> copies;
        for (size_t a = 0; a < cfg.accels.size(); ++a) {
            Value dma = dmas[a % dmas.size()];
            copies.push_back(b.create<equeue::MemcpyOp>(
                                  start->result(0), tiles[a].stageSrc,
                                  tiles[a].stageDst, dma, bus)
                                 ->result(0));
        }
        b.create<equeue::AwaitOp>(copies);

        auto pre_start = b.create<equeue::ControlStartOp>();
        std::vector<Value> preloads;
        for (size_t a = 0; a < cfg.accels.size(); ++a)
            if (!isOs(cfg.accels[a]))
                for (int h = 0; h < cfg.accels[a].ah; ++h)
                    for (int w = 0; w < cfg.accels[a].aw; ++w)
                        preloads.push_back(
                            emitPreload(pre_start->result(0), a, h, w));
        if (!preloads.empty())
            b.create<equeue::AwaitOp>(preloads);

        emitLoop(cfg.steps, [&] { emitStep(); });

        auto drain_start = b.create<equeue::ControlStartOp>();
        std::vector<Value> drains;
        for (size_t a = 0; a < cfg.accels.size(); ++a)
            if (isOs(cfg.accels[a]))
                for (int h = 0; h < cfg.accels[a].ah; ++h)
                    for (int w = 0; w < cfg.accels[a].aw; ++w)
                        drains.push_back(
                            emitDrain(drain_start->result(0), a, h, w));
        if (!drains.empty())
            b.create<equeue::AwaitOp>(drains);
    }

    void
    buildControl()
    {
        emitLoop(cfg.rounds, [&] { emitRound(); });
    }
};

/** Emitter for the buffered layer-pipeline family. */
struct PipelineEmitter {
    ir::Context &ctx;
    OpBuilder b;
    const PipelineConfig &cfg;

    Value sram;   ///< system memory holding source/result tiles
    Value dmaIn;
    Value dmaOut;
    Value connIn;
    Value connOut;
    std::vector<Value> procs; ///< per-stage compute processors
    std::vector<Value> hops;  ///< stage s -> buffer s+1 connections
    std::vector<Value> bufs;  ///< bufs[s] feeds stage s; back() is out
    Value src;
    Value dst;

    PipelineEmitter(ir::Context &c, const PipelineConfig &cf)
        : ctx(c), b(c), cfg(cf)
    {}

    Value
    allocOn(Value mem, int64_t elems)
    {
        return b.create<equeue::AllocOp>(mem, std::vector<int64_t>{elems},
                                         32u)
            ->result(0);
    }

    void
    buildStructure(ir::Block *top)
    {
        b.setInsertionPointToEnd(top);
        sram = b.create<equeue::CreateMemOp>(
                    std::string("SRAM"), std::vector<int64_t>{1 << 20},
                    32u, 4u)
                   ->result(0);
        dmaIn = b.create<equeue::CreateDmaOp>()->result(0);
        dmaOut = b.create<equeue::CreateDmaOp>()->result(0);
        connIn = b.create<equeue::CreateConnectionOp>(
                      std::string("Streaming"), cfg.dmaBytesPerCycle)
                     ->result(0);
        connOut = b.create<equeue::CreateConnectionOp>(
                       std::string("Streaming"), cfg.dmaBytesPerCycle)
                      ->result(0);
        auto comp = b.create<equeue::CreateCompOp>(
            std::string("SysSRAM DMA_IN DMA_OUT"),
            std::vector<Value>{sram, dmaIn, dmaOut});

        src = allocOn(sram, cfg.tileElems);
        dst = allocOn(sram, cfg.tileElems);

        for (int s = 0; s < cfg.stages; ++s) {
            std::string pfx = "S" + std::to_string(s);
            procs.push_back(
                b.create<equeue::CreateProcOp>(std::string("MAC"))
                    ->result(0));
            Value l1 = b.create<equeue::CreateMemOp>(
                            std::string("SRAM"),
                            std::vector<int64_t>{cfg.tileElems}, 32u, 2u)
                           ->result(0);
            b.create<equeue::AddCompOp>(
                comp->result(0), pfx + " " + pfx + "_BUF",
                std::vector<Value>{procs.back(), l1});
            bufs.push_back(allocOn(l1, cfg.tileElems));
            hops.push_back(b.create<equeue::CreateConnectionOp>(
                                std::string("Streaming"),
                                cfg.hopBytesPerCycle)
                               ->result(0));
        }
        Value outMem = b.create<equeue::CreateMemOp>(
                            std::string("SRAM"),
                            std::vector<int64_t>{cfg.tileElems}, 32u, 2u)
                           ->result(0);
        b.create<equeue::AddCompOp>(comp->result(0), "OUT_BUF",
                                    std::vector<Value>{outMem});
        bufs.push_back(allocOn(outMem, cfg.tileElems));
    }

    /** Stage body: for each element, read the stage input buffer
     *  (plain indexed read — fusable), chain MACs, then push into the
     *  next buffer over the hop connection (unfusable). */
    Value
    emitStage(std::vector<Value> deps, int s)
    {
        std::vector<Value> captured{bufs[s], bufs[s + 1], hops[s]};
        auto launch = b.create<equeue::LaunchOp>(deps, procs[s], captured,
                                                 std::vector<ir::Type>{});
        {
            OpBuilder::InsertionGuard g(b);
            equeue::LaunchOp l(launch.op());
            b.setInsertionPointToEnd(&l.body());
            Value in = l.body().argument(0);
            Value out = l.body().argument(1);
            Value hop = l.body().argument(2);
            auto loop = b.create<affine::ForOp>(int64_t{0},
                                                cfg.tileElems, int64_t{1});
            {
                OpBuilder::InsertionGuard g2(b);
                affine::ForOp f(loop.op());
                b.setInsertionPointToEnd(&f.body());
                Value idx = f.inductionVar();
                Value v = b.create<equeue::ReadOp>(
                               in, Value(), std::vector<Value>{idx})
                              ->result(0);
                Value acc = b.create<arith::ConstantOp>(int64_t{0},
                                                        ctx.i32Type())
                                ->result(0);
                for (int k = 0; k < cfg.computePerElem; ++k)
                    acc = b.create<equeue::ExternOp>(
                               std::string("mac"),
                               std::vector<Value>{v, v, acc},
                               std::vector<ir::Type>{ctx.i32Type()})
                              ->result(0);
                b.create<equeue::WriteOp>(acc, out, hop,
                                          std::vector<Value>{idx});
                b.create<affine::YieldOp>(std::vector<Value>{});
            }
            b.create<equeue::ReturnOp>(std::vector<Value>{});
        }
        return launch->result(0);
    }

    void
    buildControl()
    {
        auto start = b.create<equeue::ControlStartOp>();
        // ev[s] tracks the previous item's stage-s event so item t can
        // wait for the buffer it writes to drain (single buffering).
        std::vector<Value> ev(cfg.stages, Value());
        Value prev_out;
        std::vector<Value> outs;
        for (int t = 0; t < cfg.batches; ++t) {
            // Refill bufs[0] once the previous item's stage 0 read it.
            Value in_dep = ev[0] ? ev[0] : start->result(0);
            Value cp_in = b.create<equeue::MemcpyOp>(in_dep, src, bufs[0],
                                                     dmaIn, connIn)
                              ->result(0);
            Value carry = cp_in;
            std::vector<Value> next(cfg.stages, Value());
            for (int s = 0; s < cfg.stages; ++s) {
                std::vector<Value> deps{carry};
                // Structural hazard: stage s writes bufs[s+1]; wait for
                // the consumer of the previous item to vacate it.
                Value hazard =
                    s + 1 < cfg.stages ? ev[s + 1] : prev_out;
                if (hazard)
                    deps.push_back(hazard);
                carry = emitStage(deps, s);
                next[s] = carry;
            }
            Value cp_out = b.create<equeue::MemcpyOp>(
                                carry, bufs[cfg.stages], dst, dmaOut,
                                connOut)
                               ->result(0);
            outs.push_back(cp_out);
            ev = next;
            prev_out = cp_out;
        }
        b.create<equeue::AwaitOp>(outs);
    }
};

} // namespace

uint64_t
SocConfig::hash() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const TileSpec &t : accels) {
        h = fnv1a(h, uint64_t(t.ah));
        h = fnv1a(h, uint64_t(t.aw));
        h = fnv1a(h, uint64_t(t.dataflow));
        h = fnv1a(h, uint64_t(t.linkBytesPerCycle));
    }
    h = fnv1a(h, uint64_t(busBytesPerCycle));
    h = fnv1aStr(h, busKind);
    h = fnv1a(h, sramBanks);
    h = fnv1a(h, uint64_t(dmaEngines));
    h = fnv1a(h, uint64_t(rounds));
    h = fnv1a(h, uint64_t(steps));
    h = fnv1a(h, uint64_t(elemBytes));
    return h;
}

uint64_t
PipelineConfig::hash() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, uint64_t(stages));
    h = fnv1a(h, uint64_t(batches));
    h = fnv1a(h, uint64_t(tileElems));
    h = fnv1a(h, uint64_t(computePerElem));
    h = fnv1a(h, uint64_t(dmaBytesPerCycle));
    h = fnv1a(h, uint64_t(hopBytesPerCycle));
    h = fnv1a(h, uint64_t(elemBytes));
    return h;
}

SocConfig
SocConfig::dualSharedBus()
{
    SocConfig cfg;
    cfg.accels = {TileSpec{2, 2, scalesim::Dataflow::WS, 8},
                  TileSpec{2, 2, scalesim::Dataflow::WS, 8}};
    cfg.busBytesPerCycle = 8;
    cfg.busKind = "Streaming";
    cfg.sramBanks = 4;
    cfg.dmaEngines = 1;
    cfg.rounds = 2;
    cfg.steps = 4;
    return cfg;
}

SocConfig
SocConfig::heteroStarved()
{
    SocConfig cfg;
    cfg.accels = {TileSpec{2, 3, scalesim::Dataflow::WS, 8},
                  TileSpec{3, 2, scalesim::Dataflow::OS, 2}};
    cfg.busBytesPerCycle = 4;
    cfg.busKind = "Window"; // exclusive locking: reads block writes
    cfg.sramBanks = 2;
    cfg.dmaEngines = 1;
    cfg.rounds = 2;
    cfg.steps = 3;
    return cfg;
}

PipelineConfig
PipelineConfig::small()
{
    return PipelineConfig{};
}

SocTraffic
expectedSocTraffic(const SocConfig &cfg)
{
    SocTraffic t;
    const int64_t eb = cfg.elemBytes;
    t.linkReadBytes.assign(cfg.accels.size(), 0);
    t.linkWriteBytes.assign(cfg.accels.size(), 0);
    for (size_t a = 0; a < cfg.accels.size(); ++a) {
        const TileSpec &ts = cfg.accels[a];
        const int64_t pes = int64_t(ts.ah) * ts.aw;
        const bool os = ts.dataflow == scalesim::Dataflow::OS;
        // Staging memcpys write tile loads across the bus each round.
        t.busWriteBytes += int64_t(cfg.rounds) * pes * eb;
        // Left-boundary PEs fetch one element over the bus per step.
        t.busReadBytes += int64_t(cfg.rounds) * cfg.steps * ts.ah * eb;
        if (os) {
            // Top-boundary PEs stream the second operand via the bus;
            // resident accumulators drain over the private link.
            t.busReadBytes +=
                int64_t(cfg.rounds) * cfg.steps * ts.aw * eb;
            t.linkWriteBytes[a] += int64_t(cfg.rounds) * pes * eb;
        } else {
            // Stationary preloads arrive over the private link; the
            // bottom row emits partial sums across the bus.
            t.linkReadBytes[a] += int64_t(cfg.rounds) * pes * eb;
            t.busWriteBytes +=
                int64_t(cfg.rounds) * cfg.steps * ts.aw * eb;
        }
    }
    return t;
}

PipelineTraffic
expectedPipelineTraffic(const PipelineConfig &cfg)
{
    PipelineTraffic t;
    const int64_t tile = cfg.tileElems * cfg.elemBytes;
    t.inBytes = int64_t(cfg.batches) * tile;
    t.outBytes = int64_t(cfg.batches) * tile;
    t.hopBytes = int64_t(cfg.batches) * tile;
    return t;
}

ir::OwningOpRef
buildSocModule(ir::Context &ctx, const SocConfig &cfg)
{
    eq_assert(!cfg.accels.empty(), "SoC needs at least one accelerator");
    eq_assert(cfg.dmaEngines >= 1, "SoC needs at least one DMA engine");
    ir::OwningOpRef module = ir::createModule(ctx);
    SocEmitter em(ctx, cfg);
    em.buildStructure(&module->region(0).ensureBlock());
    em.buildControl();
    return module;
}

ir::OwningOpRef
buildPipelineModule(ir::Context &ctx, const PipelineConfig &cfg)
{
    eq_assert(cfg.stages >= 1, "pipeline needs at least one stage");
    eq_assert(cfg.batches >= 1, "pipeline needs at least one item");
    ir::OwningOpRef module = ir::createModule(ctx);
    PipelineEmitter em(ctx, cfg);
    em.buildStructure(&module->region(0).ensureBlock());
    em.buildControl();
    return module;
}

} // namespace soc
} // namespace eq
