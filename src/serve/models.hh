/**
 * @file
 * The serving layer's model registry: every scenario family the daemon
 * can simulate, behind one value-typed key.
 *
 * A ModelKey names a scenario family (systolic / soc / pipeline) plus
 * the family's full structural config. Keys are value-comparable
 * (operator== compares the active config field-for-field) and FNV-1a
 * hashable — the ProgramCache keys on hash() but always verifies full
 * equality before reusing an entry, so hash collisions cost a rebuild,
 * never a wrong result.
 *
 * A SweepSpec is the serializable subset of a sweep::Grid — a base
 * ModelKey plus named integer axes applied on top of it per point.
 * The spec is shared verbatim by both execution paths: the daemon's
 * scheduler (rows streamed in completion order, tagged with the dense
 * point index) and runLocalSweep (an in-process SweepRunner). Both
 * produce rows through the same schema()/row() functions, which is
 * what makes a served sweep byte-identical to the in-process table
 * after the client re-merges rows by point index.
 */

#ifndef EQ_SERVE_MODELS_HH
#define EQ_SERVE_MODELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/context.hh"
#include "ir/operation.hh"
#include "scalesim/scalesim.hh"
#include "serve/protocol.hh"
#include "sim/engine.hh"
#include "soc/soc.hh"
#include "sweep/grid.hh"
#include "sweep/journal.hh"
#include "sweep/runner.hh"
#include "sweep/table.hh"

namespace eq {
namespace serve {

enum class ModelKind : uint8_t { Systolic, Soc, Pipeline };

const char *modelName(ModelKind kind);
/** Returns false for unknown names ("systolic"/"soc"/"pipeline"). */
bool modelFromName(const std::string &name, ModelKind *out);

/** One scenario family + its full structural config. */
struct ModelKey {
    ModelKind kind = ModelKind::Systolic;
    // Only the config matching `kind` is meaningful; the others stay
    // default-constructed so plain memberwise comparison of the active
    // one is well-defined.
    scalesim::Config systolic;
    soc::SocConfig soc;
    soc::PipelineConfig pipeline;

    static ModelKey systolicKey(const scalesim::Config &cfg);
    static ModelKey socKey(const soc::SocConfig &cfg);
    static ModelKey pipelineKey(const soc::PipelineConfig &cfg);

    /** FNV-1a over kind + the active config's structural hash. */
    uint64_t hash() const;

    /** Full structural equality (kind + active config operator==). */
    bool operator==(const ModelKey &o) const;
    bool operator!=(const ModelKey &o) const { return !(*this == o); }

    /** Build the family's module for this config. */
    ir::OwningOpRef build(ir::Context &ctx) const;
};

/** The family's default config (what a request's omitted "config"
 *  fields fall back to). */
ModelKey defaultKey(ModelKind kind);

/** Config <-> JSON. toJson dumps every structural field; fromJson
 *  starts from defaultKey(kind) and overrides the fields present in
 *  @p config (unknown fields are an error, so typos never silently
 *  simulate the default). */
Json modelKeyToJson(const ModelKey &key);
bool modelKeyFromJson(ModelKind kind, const Json &config, ModelKey *out,
                      std::string *err);

/**
 * Apply one named sweep-axis value onto a key (e.g. "ah"=8 for
 * systolic, "tiles"=4 or "bus_bw"=16 for soc). Axis vocabulary:
 *   systolic: ah aw hw h w c n f fh fw df elem_bytes
 *   soc:      tiles dmas bus_bw rounds steps sram_banks elem_bytes
 *   pipeline: stages batches tile_elems compute dma_bw hop_bw
 *             elem_bytes
 * "tiles" resizes the SoC to N alternating WS/OS 2x2 tiles (the
 * fig_soc_contention convention). Returns false on an unknown axis.
 */
bool applyAxis(ModelKey *key, const std::string &axis, int64_t value,
               std::string *err);

/** One named integer axis of a sweep request. */
struct SweepAxis {
    std::string name;
    std::vector<int64_t> values;
};

/** A serializable sweep: base config + axes (declaration order is the
 *  grid's axis order, so dense point indices match the nested loops). */
struct SweepSpec {
    ModelKey base;
    std::vector<SweepAxis> axes;

    /** The equivalent declarative grid (unfiltered). */
    sweep::Grid grid() const;

    /** Axis columns (request order) + the family's metric columns.
     *  Metric columns are simulation-deterministic only — no wall
     *  clock — so tables byte-compare across hosts and worker
     *  counts. */
    std::vector<sweep::Column> schema() const;

    /** The structural key simulated at @p point: base + axis
     *  overrides. Panics on axis names applyAxis rejects — specs must
     *  be validated (validate()) before points are expanded. */
    ModelKey keyAt(const sweep::Point &point) const;

    /** One result row for @p point (axis cells + metrics derived from
     *  @p report). */
    std::vector<sweep::Cell> row(const sweep::Point &point,
                                 const sim::SimReport &report) const;

    /** Check every axis name/value against the base key. */
    bool validate(std::string *err) const;

    /** Content key of @p point for the result cache: the model name
     *  plus the *full resolved config* simulated there (base + axis
     *  overrides), not the point's grid coordinates — so a config
     *  keeps hitting the cache after the grid around it changes. */
    std::string pointKey(const sweep::Point &point) const;

    /** The sweep identity beyond the grid (model name + base config) —
     *  what JournalOptions::salt carries into the journal header so a
     *  journal from a different model/base refuses to resume even when
     *  the grids coincide. */
    std::string saltString() const;

    Json toJson() const;
    static bool fromJson(const Json &request, SweepSpec *out,
                         std::string *err);
};

/**
 * Run @p spec in-process through the SweepRunner (one sim::Session per
 * worker, BatchSession reuse per structural key) — the reference the
 * served path must reproduce byte-identically.
 */
sweep::Table runLocalSweep(const SweepSpec &spec, unsigned threads = 0,
                           sim::EngineOptions engine = {});

/**
 * runLocalSweep with the crash-safety layer (sweep/journal.hh): rows
 * found in the journal (by dense index) or result cache (by
 * pointKey()) are replayed, the rest simulated and journaled as they
 * complete. @p points selects the slice to run — a shard's sub-range,
 * or the grid's full point set (pass spec.grid().points()); the
 * points must come from this spec's grid. Table assembly and refusal
 * semantics are runJournaledSweep's. @p on_point (optional) fires
 * after each freshly *computed* point, on the worker thread that ran
 * it — the shard heartbeat hook; the callee synchronizes.
 */
sweep::JournalStatus runLocalSweepDurable(
    const SweepSpec &spec, const std::vector<sweep::Point> &points,
    unsigned threads, sim::EngineOptions engine,
    const sweep::JournalOptions &opts, sweep::Table *out,
    sweep::ResumeStats *stats, std::string *err,
    const std::function<void(const sweep::Point &)> &on_point = {});

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_MODELS_HH
