/**
 * @file
 * Server: the long-lived simulation service (the ROADMAP's
 * "simulation-as-a-service daemon" — eqserved is a thin main()
 * around this class; tests run it in-process on an ephemeral port).
 *
 * One accept loop, one reader thread per connection, one shared
 * Scheduler worker pool, one shared ProgramCache. Request handling:
 *
 *  - simulate: scheduled (non-blocking submit — a full queue answers
 *    with a structured backpressure error carrying a retry_after_ms
 *    hint), runs through the cache, and answers with the full report
 *    plus whether the program was warm.
 *  - sweep: points expand on the reader thread (blocking submits, so
 *    a huge grid stalls only its own client), each point streams one
 *    row line in completion order tagged with its dense index, and a
 *    sweep_end line follows the last row. Rows re-merged by index
 *    reproduce runLocalSweep's table byte-identically at any worker
 *    count and in every backend mode.
 *  - stats: cache + scheduler + server counters, answered inline.
 *  - shutdown: acknowledged, then the server stops accepting and
 *    wait() returns after in-flight work drains.
 *
 * Operational hardening (see the README's "Operational hardening"):
 *
 *  - Every failure answers with the structured ErrorCode taxonomy,
 *    never free text.
 *  - Requests may carry "deadline_ms"; queue entries that outlive it
 *    are dropped by the workers with a deadline_exceeded error
 *    instead of being simulated.
 *  - When a client disconnects, its reader marks the connection gone
 *    and every still-queued point is cancelled — workers stop burning
 *    cycles for a dead socket.
 *  - Request lines are capped (maxLineBytes / EQ_SERVE_MAX_LINE,
 *    default 8 MiB); an endless line answers frame_too_large instead
 *    of growing the daemon's memory without bound.
 *  - The FaultInjector seams (torn writes, dropped connections,
 *    worker faults, stalls, build failures) live in Conn::send and
 *    the worker jobs; they are no-ops unless a fault plan is active.
 *
 * Responses for one connection are serialized by a per-connection
 * write mutex, so concurrently finishing sweep rows never interleave
 * bytes on the wire.
 */

#ifndef EQ_SERVE_SERVER_HH
#define EQ_SERVE_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/cache.hh"
#include "serve/scheduler.hh"
#include "sim/engine.hh"

namespace eq {
namespace serve {

struct ServerOptions {
    std::string host = "127.0.0.1";
    uint16_t port = 0;     ///< 0 = ephemeral (read back via port())
    size_t cacheEntries = 0; ///< 0 = ProgramCache::defaultEntries()
    unsigned workers = 0;  ///< scheduler pool; 0 = EQ_SERVE_WORKERS/hw
    size_t maxQueuedPerClient = 256; ///< backpressure cap
    size_t maxQueuedTotal = 0; ///< pool-wide shed cap; 0 = unlimited
    size_t maxLineBytes = 0; ///< request-line cap; 0 = env or 8 MiB
    sim::EngineOptions engine;       ///< backend/fusion for every entry
};

class Server {
  public:
    using Clock = Scheduler::Clock;

    explicit Server(ServerOptions opts = {});
    ~Server(); ///< shuts down and joins everything

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + spawn the accept loop. False (with @p err) on
     *  bind failure. */
    bool start(std::string *err = nullptr);

    /** The bound port (valid after start()). */
    uint16_t port() const { return _port; }

    /** Block until shutdown() — typically a client's shutdown
     *  request — then drain queued work and join all threads. */
    void wait();

    /** Request shutdown (idempotent, callable from any thread). */
    void shutdown();

    ProgramCache &cache() { return *_cache; }
    Scheduler &scheduler() { return *_scheduler; }

    /** The resolved request-line byte cap. */
    size_t maxLineBytes() const { return _maxLine; }

    /** Connections accepted over the server's lifetime. */
    uint64_t connectionsAccepted() const;

  private:
    struct Conn;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void handleSimulate(const std::shared_ptr<Conn> &conn, Json request,
                        Clock::time_point deadline);
    void handleSweep(const std::shared_ptr<Conn> &conn, Json request,
                     Clock::time_point deadline);
    void handleStats(const std::shared_ptr<Conn> &conn,
                     const Json &request);

    /** The retry_after_ms backpressure hint: how long, at the current
     *  queue depth, a shed client should wait before trying again. */
    int64_t retryAfterMs() const;

    ServerOptions _opts;
    uint16_t _port = 0;
    int _listenFd = -1;
    size_t _maxLine = 0;
    std::unique_ptr<ProgramCache> _cache;
    std::unique_ptr<Scheduler> _scheduler;

    struct State;
    std::unique_ptr<State> _state;
};

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_SERVER_HH
