/**
 * @file
 * Server: the long-lived simulation service (the ROADMAP's
 * "simulation-as-a-service daemon" — eqserved is a thin main()
 * around this class; tests run it in-process on an ephemeral port).
 *
 * One accept loop, one reader thread per connection, one shared
 * Scheduler worker pool, one shared ProgramCache. Request handling:
 *
 *  - simulate: scheduled (non-blocking submit — a full client queue
 *    answers with a backpressure error), runs through the cache, and
 *    answers with the full report plus whether the program was warm.
 *  - sweep: points expand on the reader thread (blocking submits, so
 *    a huge grid stalls only its own client), each point streams one
 *    row line in completion order tagged with its dense index, and a
 *    sweep_end line follows the last row. Rows re-merged by index
 *    reproduce runLocalSweep's table byte-identically at any worker
 *    count and in every backend mode.
 *  - stats: cache + scheduler + server counters, answered inline.
 *  - shutdown: acknowledged, then the server stops accepting and
 *    wait() returns after in-flight work drains.
 *
 * Responses for one connection are serialized by a per-connection
 * write mutex, so concurrently finishing sweep rows never interleave
 * bytes on the wire.
 */

#ifndef EQ_SERVE_SERVER_HH
#define EQ_SERVE_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/cache.hh"
#include "serve/scheduler.hh"
#include "sim/engine.hh"

namespace eq {
namespace serve {

struct ServerOptions {
    std::string host = "127.0.0.1";
    uint16_t port = 0;     ///< 0 = ephemeral (read back via port())
    size_t cacheEntries = 0; ///< 0 = ProgramCache::defaultEntries()
    unsigned workers = 0;  ///< scheduler pool; 0 = EQ_SERVE_WORKERS/hw
    size_t maxQueuedPerClient = 256; ///< backpressure cap
    sim::EngineOptions engine;       ///< backend/fusion for every entry
};

class Server {
  public:
    explicit Server(ServerOptions opts = {});
    ~Server(); ///< shuts down and joins everything

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + spawn the accept loop. False (with @p err) on
     *  bind failure. */
    bool start(std::string *err = nullptr);

    /** The bound port (valid after start()). */
    uint16_t port() const { return _port; }

    /** Block until shutdown() — typically a client's shutdown
     *  request — then drain queued work and join all threads. */
    void wait();

    /** Request shutdown (idempotent, callable from any thread). */
    void shutdown();

    ProgramCache &cache() { return *_cache; }
    Scheduler &scheduler() { return *_scheduler; }

    /** Connections accepted over the server's lifetime. */
    uint64_t connectionsAccepted() const;

  private:
    struct Conn;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void handleSimulate(const std::shared_ptr<Conn> &conn, Json request);
    void handleSweep(const std::shared_ptr<Conn> &conn, Json request);
    void handleStats(const std::shared_ptr<Conn> &conn,
                     const Json &request);

    ServerOptions _opts;
    uint16_t _port = 0;
    int _listenFd = -1;
    std::unique_ptr<ProgramCache> _cache;
    std::unique_ptr<Scheduler> _scheduler;

    struct State;
    std::unique_ptr<State> _state;
};

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_SERVER_HH
