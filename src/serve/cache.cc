#include "serve/cache.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "serve/faults.hh"

namespace eq {
namespace serve {

/** One cached config: the session plus the full key for collision
 *  verification. The session is built lazily under `mu` by the first
 *  handle that runs, so cache lookups stay cheap and concurrent
 *  first-acquires cannot double-compile. */
class ProgramCache::Entry {
  public:
    Entry(const ModelKey &k, uint64_t h, sim::EngineOptions engine)
        : key(k), hash(h), session(engine)
    {
    }

    const ModelKey key;
    const uint64_t hash;
    std::mutex mu;        ///< serializes build + runs on this entry
    sim::Session session; ///< guarded by mu
    bool built = false;   ///< guarded by mu
    LruList::iterator lruIt; ///< guarded by the cache mutex
};

ProgramCache::ProgramCache(size_t max_entries, sim::EngineOptions engine)
    : _capacity(max_entries ? max_entries : defaultEntries()),
      _engine(engine)
{
    if (_capacity < 1)
        _capacity = 1;
    _stats.capacity = _capacity;
}

size_t
ProgramCache::defaultEntries()
{
    if (const char *env = std::getenv("EQ_SERVE_CACHE_ENTRIES")) {
        char *end = nullptr;
        long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<size_t>(n);
    }
    return 32;
}

ProgramCache::Handle
ProgramCache::acquireHashed(uint64_t hash, const ModelKey &key)
{
    std::lock_guard<std::mutex> g(_mu);
    auto bucket = _byHash.find(hash);
    if (bucket != _byHash.end()) {
        for (LruList::iterator it : bucket->second) {
            if ((*it)->key == key) {
                ++_stats.hits;
                _lru.splice(_lru.begin(), _lru, it); // touch: move to MRU
                return Handle(this, *it, /*warm=*/true);
            }
            // Hash matched but the structural config did not: a real
            // collision. Never reuse — fall through to a fresh entry.
            ++_stats.collisions;
        }
    }
    ++_stats.misses;
    auto entry = std::make_shared<Entry>(key, hash, _engine);
    _lru.push_front(entry);
    entry->lruIt = _lru.begin();
    _byHash[hash].push_back(_lru.begin());
    _stats.entries = _lru.size();

    while (_lru.size() > _capacity) {
        std::shared_ptr<Entry> victim = _lru.back();
        auto vb = _byHash.find(victim->hash);
        if (vb != _byHash.end()) {
            auto &vec = vb->second;
            for (auto vit = vec.begin(); vit != vec.end(); ++vit) {
                if (*vit == victim->lruIt) {
                    vec.erase(vit);
                    break;
                }
            }
            if (vec.empty())
                _byHash.erase(vb);
        }
        _lru.pop_back();
        ++_stats.evictions;
        _stats.entries = _lru.size();
        // `victim` may still be pinned by outstanding handles; the
        // shared_ptr keeps it runnable until the last one drops.
    }
    return Handle(this, std::move(entry), /*warm=*/false);
}

bool
ProgramCache::contains(const ModelKey &key) const
{
    std::lock_guard<std::mutex> g(_mu);
    auto bucket = _byHash.find(key.hash());
    if (bucket == _byHash.end())
        return false;
    for (LruList::iterator it : bucket->second)
        if ((*it)->key == key)
            return true;
    return false;
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> g(_mu);
    Stats s = _stats;
    s.entries = _lru.size();
    return s;
}

sim::SimReport
ProgramCache::Handle::run()
{
    std::lock_guard<std::mutex> g(_entry->mu);
    if (!_entry->built) {
        const ModelKey &key = _entry->key;
        // The fault seam sits inside the build function, so an
        // injected failure propagates through Session::rebuild exactly
        // like a real one. The entry stays un-built (rebuild resets
        // its state before rethrowing), so the next handle retries
        // the compile from scratch.
        _entry->session.rebuild([&](ir::Context &ctx) {
            if (FaultInjector::buildFault())
                throw BuildError("injected program build failure");
            return key.build(ctx);
        });
        _entry->built = true;
    }
    sim::SimReport report = _entry->session.run();
    {
        std::lock_guard<std::mutex> sg(_cache->_mu);
        ++_cache->_stats.runs;
    }
    return report;
}

const ModelKey &
ProgramCache::Handle::key() const
{
    return _entry->key;
}

uint64_t
ProgramCache::Handle::keyHash() const
{
    return _entry->hash;
}

} // namespace serve
} // namespace eq
