/**
 * @file
 * The eqserved wire protocol: newline-delimited JSON over a TCP
 * stream. Every request and every response is exactly one JSON object
 * on one line, so responses to long-running work (sweep rows) can be
 * streamed incrementally and interleaved per connection.
 *
 * Requests ("op" selects the verb):
 *   {"op":"simulate","id":1,"model":"systolic","config":{...}}
 *   {"op":"sweep","id":2,"model":"soc","config":{...},
 *    "axes":[{"name":"tiles","values":[1,2]}, ...]}
 *   {"op":"stats","id":3}
 *   {"op":"shutdown","id":4}
 *
 * Responses always carry the request's "id" and "ok". A simulate
 * request answers with one {"type":"report",...} line; a sweep request
 * streams {"type":"sweep_begin"}, then one {"type":"row","index":i}
 * line per dense grid point *in completion order* as workers finish,
 * then {"type":"sweep_end"} — the client re-merges rows by their dense
 * point index, which reproduces the in-process SweepRunner table
 * byte-identically at any worker count.
 *
 * This header also holds the minimal JSON value type the protocol is
 * built on (parser + deterministic writer; object member order is
 * preserved) and the blocking line-framing helpers both ends share.
 */

#ifndef EQ_SERVE_PROTOCOL_HH
#define EQ_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/report.hh"
#include "sweep/table.hh"

namespace eq {
namespace serve {

/** A parsed JSON value: null / bool / int64 / double / string /
 *  array / object. Ints and reals are kept distinct so integer cells
 *  survive a round trip exactly; doubles are written with enough
 *  digits ("%.17g") to round-trip bit-exactly. */
class Json {
  public:
    enum class Kind : uint8_t { Null, Bool, Int, Real, Str, Array, Object };

    Json() : _kind(Kind::Null) {}
    Json(bool v) : _kind(Kind::Bool), _b(v) {}
    Json(int v) : _kind(Kind::Int), _i(v) {}
    Json(unsigned v) : _kind(Kind::Int), _i(v) {}
    Json(int64_t v) : _kind(Kind::Int), _i(v) {}
    Json(uint64_t v) : _kind(Kind::Int), _i(static_cast<int64_t>(v)) {}
    Json(double v) : _kind(Kind::Real), _r(v) {}
    Json(std::string v) : _kind(Kind::Str), _s(std::move(v)) {}
    Json(const char *v) : _kind(Kind::Str), _s(v) {}

    static Json array() { return Json(Kind::Array); }
    static Json object() { return Json(Kind::Object); }

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isInt() const { return _kind == Kind::Int; }
    bool isNumber() const
    {
        return _kind == Kind::Int || _kind == Kind::Real;
    }
    bool isStr() const { return _kind == Kind::Str; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isObject() const { return _kind == Kind::Object; }

    bool asBool() const { return _b; }
    /** Int value (Real cells truncate). */
    int64_t asInt() const
    {
        return _kind == Kind::Real ? static_cast<int64_t>(_r) : _i;
    }
    /** Numeric value (Int promotes). */
    double asReal() const
    {
        return _kind == Kind::Int ? static_cast<double>(_i) : _r;
    }
    const std::string &asStr() const { return _s; }

    // Array access.
    void push(Json v) { _arr.push_back(std::move(v)); }
    size_t size() const { return _arr.size(); }
    const Json &at(size_t i) const { return _arr[i]; }
    const std::vector<Json> &items() const { return _arr; }

    // Object access (insertion-ordered; set() replaces in place).
    void set(const std::string &key, Json v);
    /** Member lookup; nullptr when absent (or not an object). */
    const Json *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return _obj;
    }

    /** Typed member conveniences for request parsing: the member's
     *  value when present and of the right kind, else @p fallback. */
    int64_t getInt(const std::string &key, int64_t fallback) const;
    std::string getStr(const std::string &key,
                       const std::string &fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** Compact single-line serialization (no spaces, members in
     *  insertion order) — one dump() per protocol line. */
    std::string dump() const;

    /** Parse @p text (one complete JSON value, surrounding whitespace
     *  allowed). Returns false and sets @p err on malformed input. */
    static bool parse(const std::string &text, Json *out,
                      std::string *err);

  private:
    explicit Json(Kind k) : _kind(k) {}

    void dumpTo(std::string &out) const;

    Kind _kind;
    bool _b = false;
    int64_t _i = 0;
    double _r = 0.0;
    std::string _s;
    std::vector<Json> _arr;
    std::vector<std::pair<std::string, Json>> _obj;
};

/**
 * The serving layer's error taxonomy. Every failed request answers
 * with a structured error object — {"code":<name>,"message":...,
 * ["retry_after_ms":N]} — never a free-text string, so clients can
 * branch on the code (retry, surface, give up) without parsing prose.
 * None/Unknown are client-side values and never appear on the wire.
 */
enum class ErrorCode : uint8_t {
    None,             ///< no error (client-side only)
    MalformedRequest, ///< line was not a JSON object
    FrameTooLarge,    ///< line exceeded the reader's byte cap
    BadRequest,       ///< unknown op/model/config/axis
    Backpressure,     ///< queue full; retry after retry_after_ms
    DeadlineExceeded, ///< deadline_ms elapsed before the run started
    Cancelled,        ///< client connection went away mid-request
    BuildFailed,      ///< program build failed (retryable)
    Internal,         ///< worker-side exception (retryable)
    ShuttingDown,     ///< server is stopping
    Unknown,          ///< unrecognized wire code (client-side only)
};

const char *errorCodeName(ErrorCode code);
/** False (leaving @p out untouched) for names not in the taxonomy. */
bool errorCodeFromName(const std::string &name, ErrorCode *out);
/** True for codes a client may retry verbatim: served results are
 *  byte-deterministic, so re-sending an idempotent request after
 *  backpressure or a transient worker/build fault is always safe. */
bool errorCodeRetryable(ErrorCode code);

/** A parsed error response (see parseError). */
struct ErrorInfo {
    ErrorCode code = ErrorCode::None;
    std::string message;
    int64_t retryAfterMs = -1; ///< server hint; -1 = none
};

/** Extract the structured error from a response with "ok":false.
 *  Unknown or missing codes map to ErrorCode::Unknown. */
ErrorInfo parseError(const Json &response);

/**
 * Blocking newline-framed reads over a socket/pipe fd. Lines are
 * LF-terminated (a trailing CR is stripped so `nc -C` works); the
 * terminator is removed from the returned line.
 *
 * Input is capped at @p max_line bytes per line (default 8 MiB): a
 * peer that streams an endless line cannot grow the buffer — and the
 * daemon's memory — without bound. An oversized frame ends the
 * stream; overflowed() tells the caller to answer with a structured
 * frame_too_large error before closing.
 */
class LineReader {
  public:
    static constexpr size_t kDefaultMaxLine = 8u << 20; // 8 MiB

    explicit LineReader(int fd, size_t max_line = kDefaultMaxLine)
        : _fd(fd), _max(max_line ? max_line : kDefaultMaxLine)
    {
    }

    /** Read the next complete line. Returns false on EOF, error, or
     *  an oversized frame (call again is not meaningful afterwards). */
    bool next(std::string *line);

    /** True when the stream ended because a line exceeded the cap. */
    bool overflowed() const { return _overflow; }

    size_t maxLine() const { return _max; }

  private:
    int _fd;
    size_t _max;
    std::string _buf;
    bool _eof = false;
    bool _overflow = false;
};

/** Write @p line plus the LF terminator, looping over partial writes.
 *  SIGPIPE-safe (MSG_NOSIGNAL); returns false once the peer is gone. */
bool writeLine(int fd, const std::string &line);

/**
 * Serialize a SimReport. Every field is simulation-deterministic
 * except wall_s (host execution time), which @p include_wall drops for
 * byte-comparing warm and cold runs of the same config.
 */
Json reportToJson(const sim::SimReport &report, bool include_wall = true);

/**
 * sweep::Cell <-> Json codec shared by every consumer that moves rows
 * through JSON: the daemon's streamed sweep rows, the client's
 * re-merge, the sweep journal's records, and the result cache. Int
 * and Real stay distinct (a Real whose value is integral serializes
 * as a JSON integer and is re-promoted by the schema on decode), so a
 * row survives the round trip byte-identically under the table's
 * renderers.
 */
Json cellToJson(const sweep::Cell &cell);
Json cellsToJson(const std::vector<sweep::Cell> &cells);

/** Decode a row against @p schema: arity must match and every cell
 *  must be kind-compatible with its column (Int column ⇐ JSON int,
 *  Real ⇐ int or real, Str ⇐ string). False + @p err otherwise. */
bool cellsFromJson(const Json &cells,
                   const std::vector<sweep::Column> &schema,
                   std::vector<sweep::Cell> *out, std::string *err);

/** Standard response skeletons ("id" echoed, "ok" set). @p id may be
 *  any client-chosen Json value (servers echo it verbatim). Errors
 *  carry the structured taxonomy object; @p retry_after_ms >= 0 adds
 *  the backpressure hint. */
Json makeResponse(const Json *id, const std::string &type);
Json makeError(const Json *id, ErrorCode code,
               const std::string &message, int64_t retry_after_ms = -1);

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_PROTOCOL_HH
