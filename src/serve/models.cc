#include "serve/models.hh"

#include <cassert>
#include <memory>

#include "sim/session.hh"
#include "systolic/generator.hh"

namespace eq {
namespace serve {

namespace {

uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
dataflowFromName(const std::string &name, scalesim::Dataflow *out)
{
    if (name == "WS")
        *out = scalesim::Dataflow::WS;
    else if (name == "IS")
        *out = scalesim::Dataflow::IS;
    else if (name == "OS")
        *out = scalesim::Dataflow::OS;
    else
        return false;
    return true;
}

} // namespace

// ---------------------------------------------------------------------------
// ModelKind / ModelKey

const char *
modelName(ModelKind kind)
{
    switch (kind) {
    case ModelKind::Systolic: return "systolic";
    case ModelKind::Soc: return "soc";
    case ModelKind::Pipeline: return "pipeline";
    }
    return "?";
}

bool
modelFromName(const std::string &name, ModelKind *out)
{
    if (name == "systolic")
        *out = ModelKind::Systolic;
    else if (name == "soc")
        *out = ModelKind::Soc;
    else if (name == "pipeline")
        *out = ModelKind::Pipeline;
    else
        return false;
    return true;
}

ModelKey
ModelKey::systolicKey(const scalesim::Config &cfg)
{
    ModelKey k;
    k.kind = ModelKind::Systolic;
    k.systolic = cfg;
    return k;
}

ModelKey
ModelKey::socKey(const soc::SocConfig &cfg)
{
    ModelKey k;
    k.kind = ModelKind::Soc;
    k.soc = cfg;
    return k;
}

ModelKey
ModelKey::pipelineKey(const soc::PipelineConfig &cfg)
{
    ModelKey k;
    k.kind = ModelKind::Pipeline;
    k.pipeline = cfg;
    return k;
}

uint64_t
ModelKey::hash() const
{
    uint64_t h = fnv1a(0xcbf29ce484222325ull, uint64_t(kind));
    switch (kind) {
    case ModelKind::Systolic: return fnv1a(h, systolic.hash());
    case ModelKind::Soc: return fnv1a(h, soc.hash());
    case ModelKind::Pipeline: return fnv1a(h, pipeline.hash());
    }
    return h;
}

bool
ModelKey::operator==(const ModelKey &o) const
{
    if (kind != o.kind)
        return false;
    switch (kind) {
    case ModelKind::Systolic: return systolic == o.systolic;
    case ModelKind::Soc: return soc == o.soc;
    case ModelKind::Pipeline: return pipeline == o.pipeline;
    }
    return false;
}

ir::OwningOpRef
ModelKey::build(ir::Context &ctx) const
{
    switch (kind) {
    case ModelKind::Systolic:
        return systolic::buildSystolicModule(ctx, systolic);
    case ModelKind::Soc: return soc::buildSocModule(ctx, soc);
    case ModelKind::Pipeline:
        return soc::buildPipelineModule(ctx, pipeline);
    }
    return ir::OwningOpRef();
}

ModelKey
defaultKey(ModelKind kind)
{
    ModelKey k;
    k.kind = kind;
    return k; // default-constructed configs are each family's default
}

// ---------------------------------------------------------------------------
// Config <-> JSON

Json
modelKeyToJson(const ModelKey &key)
{
    Json out = Json::object();
    switch (key.kind) {
    case ModelKind::Systolic: {
        const auto &c = key.systolic;
        out.set("ah", c.ah);
        out.set("aw", c.aw);
        out.set("df", scalesim::dataflowName(c.dataflow));
        out.set("c", c.c);
        out.set("h", c.h);
        out.set("w", c.w);
        out.set("n", c.n);
        out.set("fh", c.fh);
        out.set("fw", c.fw);
        out.set("elem_bytes", c.elemBytes);
        break;
    }
    case ModelKind::Soc: {
        const auto &c = key.soc;
        Json accels = Json::array();
        for (const auto &t : c.accels) {
            Json a = Json::object();
            a.set("ah", t.ah);
            a.set("aw", t.aw);
            a.set("df", scalesim::dataflowName(t.dataflow));
            a.set("link_bw", t.linkBytesPerCycle);
            accels.push(std::move(a));
        }
        out.set("accels", std::move(accels));
        out.set("bus_bw", c.busBytesPerCycle);
        out.set("bus_kind", c.busKind);
        out.set("sram_banks", int64_t(c.sramBanks));
        out.set("dmas", c.dmaEngines);
        out.set("rounds", c.rounds);
        out.set("steps", c.steps);
        out.set("elem_bytes", c.elemBytes);
        break;
    }
    case ModelKind::Pipeline: {
        const auto &c = key.pipeline;
        out.set("stages", c.stages);
        out.set("batches", c.batches);
        out.set("tile_elems", c.tileElems);
        out.set("compute", c.computePerElem);
        out.set("dma_bw", c.dmaBytesPerCycle);
        out.set("hop_bw", c.hopBytesPerCycle);
        out.set("elem_bytes", c.elemBytes);
        break;
    }
    }
    return out;
}

namespace {

bool
wantInt(const Json &v, const std::string &field, int64_t *out,
        std::string *err)
{
    if (!v.isNumber() || !v.isInt()) {
        *err = "config field '" + field + "' must be an integer";
        return false;
    }
    *out = v.asInt();
    return true;
}

bool
wantDataflow(const Json &v, const std::string &field,
             scalesim::Dataflow *out, std::string *err)
{
    if (!v.isStr() || !dataflowFromName(v.asStr(), out)) {
        *err = "config field '" + field + "' must be \"WS\", \"IS\" "
               "or \"OS\"";
        return false;
    }
    return true;
}

} // namespace

bool
modelKeyFromJson(ModelKind kind, const Json &config, ModelKey *out,
                 std::string *err)
{
    *out = defaultKey(kind);
    if (config.isNull())
        return true; // omitted config: the family default
    if (!config.isObject()) {
        *err = "\"config\" must be an object";
        return false;
    }
    for (const auto &m : config.members()) {
        const std::string &f = m.first;
        const Json &v = m.second;
        int64_t i = 0;
        switch (kind) {
        case ModelKind::Systolic: {
            auto &c = out->systolic;
            if (f == "df") {
                if (!wantDataflow(v, f, &c.dataflow, err))
                    return false;
                continue;
            }
            int *target = nullptr;
            if (f == "ah")
                target = &c.ah;
            else if (f == "aw")
                target = &c.aw;
            else if (f == "c")
                target = &c.c;
            else if (f == "h")
                target = &c.h;
            else if (f == "w")
                target = &c.w;
            else if (f == "n")
                target = &c.n;
            else if (f == "fh")
                target = &c.fh;
            else if (f == "fw")
                target = &c.fw;
            else if (f == "elem_bytes")
                target = &c.elemBytes;
            if (!target) {
                *err = "unknown systolic config field '" + f + "'";
                return false;
            }
            if (!wantInt(v, f, &i, err))
                return false;
            *target = static_cast<int>(i);
            continue;
        }
        case ModelKind::Soc: {
            auto &c = out->soc;
            if (f == "accels") {
                if (!v.isArray()) {
                    *err = "config field 'accels' must be an array";
                    return false;
                }
                c.accels.clear();
                for (const Json &aj : v.items()) {
                    if (!aj.isObject()) {
                        *err = "accel entries must be objects";
                        return false;
                    }
                    soc::TileSpec t;
                    for (const auto &am : aj.members()) {
                        if (am.first == "ah" || am.first == "aw") {
                            if (!wantInt(am.second, am.first, &i, err))
                                return false;
                            (am.first == "ah" ? t.ah : t.aw) =
                                static_cast<int>(i);
                        } else if (am.first == "df") {
                            if (!wantDataflow(am.second, am.first,
                                              &t.dataflow, err))
                                return false;
                        } else if (am.first == "link_bw") {
                            if (!wantInt(am.second, am.first, &i, err))
                                return false;
                            t.linkBytesPerCycle = i;
                        } else {
                            *err = "unknown accel field '" + am.first +
                                   "'";
                            return false;
                        }
                    }
                    c.accels.push_back(t);
                }
                continue;
            }
            if (f == "bus_kind") {
                if (!v.isStr() || (v.asStr() != "Streaming" &&
                                   v.asStr() != "Window")) {
                    *err = "config field 'bus_kind' must be "
                           "\"Streaming\" or \"Window\"";
                    return false;
                }
                c.busKind = v.asStr();
                continue;
            }
            if (f == "bus_bw" || f == "sram_banks" || f == "dmas" ||
                f == "rounds" || f == "steps" || f == "elem_bytes") {
                if (!wantInt(v, f, &i, err))
                    return false;
                if (f == "bus_bw")
                    c.busBytesPerCycle = i;
                else if (f == "sram_banks")
                    c.sramBanks = static_cast<unsigned>(i);
                else if (f == "dmas")
                    c.dmaEngines = static_cast<int>(i);
                else if (f == "rounds")
                    c.rounds = static_cast<int>(i);
                else if (f == "steps")
                    c.steps = static_cast<int>(i);
                else
                    c.elemBytes = i;
                continue;
            }
            *err = "unknown soc config field '" + f + "'";
            return false;
        }
        case ModelKind::Pipeline: {
            auto &c = out->pipeline;
            if (f == "stages" || f == "batches" || f == "tile_elems" ||
                f == "compute" || f == "dma_bw" || f == "hop_bw" ||
                f == "elem_bytes") {
                if (!wantInt(v, f, &i, err))
                    return false;
                if (f == "stages")
                    c.stages = static_cast<int>(i);
                else if (f == "batches")
                    c.batches = static_cast<int>(i);
                else if (f == "tile_elems")
                    c.tileElems = i;
                else if (f == "compute")
                    c.computePerElem = static_cast<int>(i);
                else if (f == "dma_bw")
                    c.dmaBytesPerCycle = i;
                else if (f == "hop_bw")
                    c.hopBytesPerCycle = i;
                else
                    c.elemBytes = i;
                continue;
            }
            *err = "unknown pipeline config field '" + f + "'";
            return false;
        }
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// Sweep axes

bool
applyAxis(ModelKey *key, const std::string &axis, int64_t value,
          std::string *err)
{
    switch (key->kind) {
    case ModelKind::Systolic: {
        auto &c = key->systolic;
        if (axis == "ah")
            c.ah = static_cast<int>(value);
        else if (axis == "aw")
            c.aw = static_cast<int>(value);
        else if (axis == "hw")
            c.h = c.w = static_cast<int>(value);
        else if (axis == "h")
            c.h = static_cast<int>(value);
        else if (axis == "w")
            c.w = static_cast<int>(value);
        else if (axis == "c")
            c.c = static_cast<int>(value);
        else if (axis == "n")
            c.n = static_cast<int>(value);
        else if (axis == "f")
            c.fh = c.fw = static_cast<int>(value);
        else if (axis == "fh")
            c.fh = static_cast<int>(value);
        else if (axis == "fw")
            c.fw = static_cast<int>(value);
        else if (axis == "df") {
            if (value < 0 || value > 2) {
                if (err)
                    *err = "axis 'df' takes 0 (WS), 1 (IS) or 2 (OS)";
                return false;
            }
            c.dataflow = value == 0   ? scalesim::Dataflow::WS
                         : value == 1 ? scalesim::Dataflow::IS
                                      : scalesim::Dataflow::OS;
        }
        else if (axis == "elem_bytes")
            c.elemBytes = static_cast<int>(value);
        else {
            if (err)
                *err = "unknown systolic axis '" + axis + "'";
            return false;
        }
        return true;
    }
    case ModelKind::Soc: {
        auto &c = key->soc;
        if (axis == "tiles") {
            if (value < 1) {
                if (err)
                    *err = "axis 'tiles' must be >= 1";
                return false;
            }
            // The fig_soc_contention convention: N alternating WS/OS
            // 2x2 tiles on 8 B/cyc private links.
            c.accels.clear();
            for (int64_t a = 0; a < value; ++a) {
                soc::TileSpec t;
                t.ah = t.aw = 2;
                t.dataflow = (a % 2 == 0) ? scalesim::Dataflow::WS
                                          : scalesim::Dataflow::OS;
                t.linkBytesPerCycle = 8;
                c.accels.push_back(t);
            }
        }
        else if (axis == "dmas")
            c.dmaEngines = static_cast<int>(value);
        else if (axis == "bus_bw")
            c.busBytesPerCycle = value;
        else if (axis == "rounds")
            c.rounds = static_cast<int>(value);
        else if (axis == "steps")
            c.steps = static_cast<int>(value);
        else if (axis == "sram_banks")
            c.sramBanks = static_cast<unsigned>(value);
        else if (axis == "elem_bytes")
            c.elemBytes = value;
        else {
            if (err)
                *err = "unknown soc axis '" + axis + "'";
            return false;
        }
        return true;
    }
    case ModelKind::Pipeline: {
        auto &c = key->pipeline;
        if (axis == "stages")
            c.stages = static_cast<int>(value);
        else if (axis == "batches")
            c.batches = static_cast<int>(value);
        else if (axis == "tile_elems")
            c.tileElems = value;
        else if (axis == "compute")
            c.computePerElem = static_cast<int>(value);
        else if (axis == "dma_bw")
            c.dmaBytesPerCycle = value;
        else if (axis == "hop_bw")
            c.hopBytesPerCycle = value;
        else if (axis == "elem_bytes")
            c.elemBytes = value;
        else {
            if (err)
                *err = "unknown pipeline axis '" + axis + "'";
            return false;
        }
        return true;
    }
    }
    if (err)
        *err = "bad model kind";
    return false;
}

// ---------------------------------------------------------------------------
// SweepSpec

sweep::Grid
SweepSpec::grid() const
{
    sweep::Grid g;
    for (const auto &a : axes)
        g.axis(a.name, a.values);
    return g;
}

std::vector<sweep::Column>
SweepSpec::schema() const
{
    std::vector<sweep::Column> cols;
    for (const auto &a : axes)
        cols.push_back({a.name, sweep::ValueKind::Int, 6, 0});
    switch (base.kind) {
    case ModelKind::Systolic:
        cols.push_back({"cycles", sweep::ValueKind::Int, 12, 0});
        cols.push_back({"ops", sweep::ValueKind::Int, 12, 0});
        cols.push_back({"sram_rd_B", sweep::ValueKind::Int, 10, 0});
        cols.push_back({"sram_wr_B", sweep::ValueKind::Int, 10, 0});
        break;
    case ModelKind::Soc:
        cols.push_back({"cycles", sweep::ValueKind::Int, 10, 0});
        cols.push_back({"ops", sweep::ValueKind::Int, 12, 0});
        cols.push_back({"bus_rd_B", sweep::ValueKind::Int, 10, 0});
        cols.push_back({"bus_wr_B", sweep::ValueKind::Int, 10, 0});
        cols.push_back({"bus_peak", sweep::ValueKind::Real, 9, 3});
        break;
    case ModelKind::Pipeline:
        cols.push_back({"cycles", sweep::ValueKind::Int, 10, 0});
        cols.push_back({"ops", sweep::ValueKind::Int, 12, 0});
        cols.push_back({"conn_wr_B", sweep::ValueKind::Int, 10, 0});
        break;
    }
    return cols;
}

ModelKey
SweepSpec::keyAt(const sweep::Point &point) const
{
    ModelKey key = base;
    for (const auto &a : axes) {
        std::string err;
        bool ok = applyAxis(&key, a.name, point.at(a.name), &err);
        assert(ok && "SweepSpec::keyAt on unvalidated spec");
        (void)ok;
    }
    return key;
}

std::vector<sweep::Cell>
SweepSpec::row(const sweep::Point &point,
               const sim::SimReport &report) const
{
    std::vector<sweep::Cell> cells;
    for (const auto &a : axes)
        cells.push_back(point.at(a.name));
    switch (base.kind) {
    case ModelKind::Systolic: {
        int64_t rd = 0, wr = 0;
        for (const auto &m : report.memories) {
            if (m.kind == "SRAM") {
                rd += m.bytesRead;
                wr += m.bytesWritten;
            }
        }
        cells.push_back(static_cast<int64_t>(report.cycles));
        cells.push_back(static_cast<int64_t>(report.opsExecuted));
        cells.push_back(rd);
        cells.push_back(wr);
        break;
    }
    case ModelKind::Soc: {
        int64_t rd = 0, wr = 0;
        double peak = 0.0;
        if (!report.connections.empty()) {
            // The bus is the first connection the generator creates.
            const auto &bus = report.connections.front();
            rd = bus.readBytes;
            wr = bus.writeBytes;
            peak = bus.maxBwPortionRead + bus.maxBwPortionWrite;
        }
        cells.push_back(static_cast<int64_t>(report.cycles));
        cells.push_back(static_cast<int64_t>(report.opsExecuted));
        cells.push_back(rd);
        cells.push_back(wr);
        cells.push_back(peak);
        break;
    }
    case ModelKind::Pipeline: {
        int64_t wr = 0;
        for (const auto &conn : report.connections)
            wr += conn.writeBytes;
        cells.push_back(static_cast<int64_t>(report.cycles));
        cells.push_back(static_cast<int64_t>(report.opsExecuted));
        cells.push_back(wr);
        break;
    }
    }
    return cells;
}

bool
SweepSpec::validate(std::string *err) const
{
    if (axes.empty()) {
        if (err)
            *err = "sweep needs at least one axis";
        return false;
    }
    for (const auto &a : axes) {
        if (a.values.empty()) {
            if (err)
                *err = "axis '" + a.name + "' has no values";
            return false;
        }
        for (int64_t v : a.values) {
            ModelKey probe = base;
            if (!applyAxis(&probe, a.name, v, err))
                return false;
        }
    }
    return true;
}

std::string
SweepSpec::pointKey(const sweep::Point &point) const
{
    return std::string(modelName(base.kind)) + " " +
           modelKeyToJson(keyAt(point)).dump();
}

std::string
SweepSpec::saltString() const
{
    return std::string(modelName(base.kind)) + " " +
           modelKeyToJson(base).dump();
}

Json
SweepSpec::toJson() const
{
    Json out = Json::object();
    out.set("op", "sweep");
    out.set("model", modelName(base.kind));
    out.set("config", modelKeyToJson(base));
    Json jaxes = Json::array();
    for (const auto &a : axes) {
        Json ja = Json::object();
        ja.set("name", a.name);
        Json vals = Json::array();
        for (int64_t v : a.values)
            vals.push(v);
        ja.set("values", std::move(vals));
        jaxes.push(std::move(ja));
    }
    out.set("axes", std::move(jaxes));
    return out;
}

bool
SweepSpec::fromJson(const Json &request, SweepSpec *out,
                    std::string *err)
{
    ModelKind kind;
    if (!modelFromName(request.getStr("model", ""), &kind)) {
        *err = "unknown or missing \"model\"";
        return false;
    }
    const Json *config = request.find("config");
    if (!modelKeyFromJson(kind, config ? *config : Json(), &out->base,
                          err))
        return false;
    out->axes.clear();
    const Json *jaxes = request.find("axes");
    if (!jaxes || !jaxes->isArray()) {
        *err = "sweep request needs an \"axes\" array";
        return false;
    }
    for (const Json &ja : jaxes->items()) {
        if (!ja.isObject()) {
            *err = "axis entries must be objects";
            return false;
        }
        SweepAxis axis;
        axis.name = ja.getStr("name", "");
        if (axis.name.empty()) {
            *err = "axis entry missing \"name\"";
            return false;
        }
        const Json *vals = ja.find("values");
        if (!vals || !vals->isArray()) {
            *err = "axis '" + axis.name + "' missing \"values\"";
            return false;
        }
        for (const Json &v : vals->items()) {
            if (!v.isInt()) {
                *err = "axis '" + axis.name +
                       "' values must be integers";
                return false;
            }
            axis.values.push_back(v.asInt());
        }
        out->axes.push_back(std::move(axis));
    }
    return out->validate(err);
}

// ---------------------------------------------------------------------------
// In-process reference sweep

sweep::Table
runLocalSweep(const SweepSpec &spec, unsigned threads,
              sim::EngineOptions engine)
{
    sweep::Grid g = spec.grid();
    auto points = g.points();
    sweep::RunnerOptions ropts;
    ropts.threads = threads;
    sweep::SweepRunner runner(ropts);

    // One Session per worker, rebuilt only when the point's structural
    // key changes — the same build-cache-run path the daemon's
    // ProgramCache entries use.
    struct Worker {
        explicit Worker(sim::EngineOptions opts) : session(opts) {}
        sim::Session session;
        ModelKey key;
        bool hasKey = false;
    };
    std::vector<std::unique_ptr<Worker>> workers;
    unsigned n = runner.threadsFor(points.size());
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.push_back(std::make_unique<Worker>(engine));

    return runner.run(
        points, spec.schema(),
        [&](const sweep::Point &p,
            unsigned w) -> std::vector<sweep::Cell> {
            Worker &worker = *workers[w];
            ModelKey key = spec.keyAt(p);
            if (!worker.hasKey || worker.key != key) {
                worker.session.rebuild([&](ir::Context &ctx) {
                    return key.build(ctx);
                });
                worker.key = key;
                worker.hasKey = true;
            }
            return spec.row(p, worker.session.run());
        });
}

sweep::JournalStatus
runLocalSweepDurable(const SweepSpec &spec,
                     const std::vector<sweep::Point> &points,
                     unsigned threads, sim::EngineOptions engine,
                     const sweep::JournalOptions &opts,
                     sweep::Table *out, sweep::ResumeStats *stats,
                     std::string *err,
                     const std::function<void(const sweep::Point &)>
                         &on_point)
{
    sweep::RunnerOptions ropts;
    ropts.threads = threads;
    sweep::SweepRunner runner(ropts);

    // Same per-worker Session discipline as runLocalSweep — worker w
    // only ever runs on one thread, so no locking.
    struct Worker {
        explicit Worker(sim::EngineOptions opts) : session(opts) {}
        sim::Session session;
        ModelKey key;
        bool hasKey = false;
    };
    std::vector<std::unique_ptr<Worker>> workers;
    unsigned n = runner.threadsFor(points.size());
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.push_back(std::make_unique<Worker>(engine));

    return sweep::runJournaledSweep(
        runner, points, spec.schema(),
        [&](const sweep::Point &p) { return spec.pointKey(p); },
        [&](const sweep::Point &p,
            unsigned w) -> std::vector<sweep::Cell> {
            Worker &worker = *workers[w];
            ModelKey key = spec.keyAt(p);
            if (!worker.hasKey || worker.key != key) {
                worker.session.rebuild([&](ir::Context &ctx) {
                    return key.build(ctx);
                });
                worker.key = key;
                worker.hasKey = true;
            }
            std::vector<sweep::Cell> cells =
                spec.row(p, worker.session.run());
            if (on_point)
                on_point(p);
            return cells;
        },
        opts, engine, out, stats, err);
}

} // namespace serve
} // namespace eq
