#include "serve/server.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/faults.hh"

namespace eq {
namespace serve {

namespace {

using Clock = Scheduler::Clock;

bool
deadlinePassed(Clock::time_point deadline)
{
    return deadline != Clock::time_point{} && Clock::now() > deadline;
}

size_t
resolveMaxLine(size_t requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("EQ_SERVE_MAX_LINE")) {
        char *end = nullptr;
        long long n = std::strtoll(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<size_t>(n);
    }
    return LineReader::kDefaultMaxLine;
}

} // namespace

/** One accepted connection. Writes are serialized by `writeMu` so
 *  concurrently finishing jobs never interleave response bytes. The
 *  `gone` flag doubles as the scheduler cancel token for everything
 *  this client queued: the reader flips it on EOF (and send() flips
 *  it on a dead socket), and workers then skip the client's pending
 *  points instead of simulating for nobody. */
struct Server::Conn {
    int fd = -1;
    uint64_t id = 0; ///< scheduler client id

    std::mutex writeMu;
    std::atomic<bool> alive{true};
    std::shared_ptr<std::atomic<bool>> gone =
        std::make_shared<std::atomic<bool>>(false);

    void
    markDead()
    {
        alive.store(false);
        gone->store(true);
    }

    bool
    send(const Json &msg)
    {
        std::lock_guard<std::mutex> g(writeMu);
        if (!alive.load())
            return false;
        switch (FaultInjector::onSend()) {
        case FaultInjector::SendAction::Torn: {
            // Write half the frame (no terminator), then kill the
            // socket: the peer sees a truncated line followed by EOF.
            std::string frame = msg.dump();
            frame.resize(frame.size() / 2);
            (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
            ::shutdown(fd, SHUT_RDWR);
            markDead();
            return false;
        }
        case FaultInjector::SendAction::Drop:
            ::shutdown(fd, SHUT_RDWR);
            markDead();
            return false;
        case FaultInjector::SendAction::None: break;
        }
        if (!writeLine(fd, msg.dump())) {
            markDead();
            return false;
        }
        return true;
    }
};

struct Server::State {
    std::thread acceptThread;

    std::mutex mu;
    std::condition_variable stopCv;
    bool stopRequested = false;
    bool tornDown = false;
    uint64_t accepted = 0;
    std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> readers;
};

Server::Server(ServerOptions opts)
    : _opts(std::move(opts)), _state(std::make_unique<State>())
{
    _maxLine = resolveMaxLine(_opts.maxLineBytes);
    _cache = std::make_unique<ProgramCache>(_opts.cacheEntries,
                                            _opts.engine);
    Scheduler::Options sopts;
    sopts.workers = _opts.workers;
    sopts.maxQueuedPerClient = _opts.maxQueuedPerClient;
    sopts.maxQueuedTotal = _opts.maxQueuedTotal;
    _scheduler = std::make_unique<Scheduler>(sopts);
}

Server::~Server()
{
    shutdown();
    wait();
}

bool
Server::start(std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg + ": " + std::strerror(errno);
        if (_listenFd >= 0) {
            ::close(_listenFd);
            _listenFd = -1;
        }
        return false;
    };

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(_opts.port);
    if (::inet_pton(AF_INET, _opts.host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton(" + _opts.host + ")");
    }
    if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        return fail("bind");
    if (::listen(_listenFd, 64) != 0)
        return fail("listen");

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return fail("getsockname");
    _port = ntohs(bound.sin_port);

    _state->acceptThread = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::acceptLoop()
{
    uint64_t nextClient = 1;
    for (;;) {
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket closed: shutting down
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->id = nextClient++;
        std::lock_guard<std::mutex> g(_state->mu);
        if (_state->stopRequested) {
            ::close(fd);
            return;
        }
        ++_state->accepted;
        _state->readers.emplace_back(
            conn, std::thread([this, conn] { readerLoop(conn); }));
    }
}

void
Server::readerLoop(std::shared_ptr<Conn> conn)
{
    LineReader reader(conn->fd, _maxLine);
    std::string line;
    while (reader.next(&line)) {
        if (line.empty())
            continue;
        handleLine(conn, line);
    }
    if (reader.overflowed()) {
        // The stream cannot be re-synchronized past an oversized
        // frame: answer with the structured error, then drop the
        // connection.
        conn->send(makeError(
            nullptr, ErrorCode::FrameTooLarge,
            "request line exceeds " + std::to_string(_maxLine) +
                " bytes"));
        // Half-close so a peer draining its receive side sees EOF
        // right after the error frame instead of hanging until
        // server teardown closes the fd.
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    // The reader is the liveness authority: once the request stream
    // ends (EOF, error, oversize), every point this client still has
    // queued is cancelled so workers stop burning cycles for a dead
    // socket.
    conn->markDead();
}

int64_t
Server::retryAfterMs() const
{
    Scheduler::Stats s = _scheduler->stats();
    unsigned workers = std::max(1u, _scheduler->workers());
    int64_t ms = 10 * static_cast<int64_t>(s.queued / workers + 1);
    return std::min<int64_t>(ms, 2000);
}

void
Server::handleLine(const std::shared_ptr<Conn> &conn,
                   const std::string &line)
{
    Json request;
    std::string err;
    if (!Json::parse(line, &request, &err) || !request.isObject()) {
        conn->send(makeError(nullptr, ErrorCode::MalformedRequest,
                             "malformed request: " +
                                 (err.empty() ? "not an object" : err)));
        return;
    }
    // An optional relative deadline; the absolute deadline is stamped
    // here, at receipt, so queueing time counts against it.
    Clock::time_point deadline{};
    int64_t deadlineMs = request.getInt("deadline_ms", -1);
    if (deadlineMs >= 0)
        deadline = Clock::now() + std::chrono::milliseconds(deadlineMs);

    const std::string op = request.getStr("op", "");
    if (op == "simulate") {
        handleSimulate(conn, std::move(request), deadline);
    } else if (op == "sweep") {
        handleSweep(conn, std::move(request), deadline);
    } else if (op == "stats") {
        handleStats(conn, request);
    } else if (op == "shutdown") {
        const Json *id = request.find("id");
        conn->send(makeResponse(id, "bye"));
        shutdown();
    } else {
        const Json *id = request.find("id");
        conn->send(makeError(id, ErrorCode::BadRequest,
                             "unknown op '" + op + "'"));
    }
}

namespace {

constexpr const char *kDeadlineMsg =
    "deadline elapsed before the run started";

} // namespace

void
Server::handleSimulate(const std::shared_ptr<Conn> &conn, Json request,
                       Clock::time_point deadline)
{
    const Json *idp = request.find("id");
    Json id = idp ? *idp : Json();
    ModelKind kind;
    if (!modelFromName(request.getStr("model", ""), &kind)) {
        conn->send(makeError(&id, ErrorCode::BadRequest,
                             "unknown or missing \"model\""));
        return;
    }
    ModelKey key;
    std::string err;
    const Json *config = request.find("config");
    if (!modelKeyFromJson(kind, config ? *config : Json(), &key, &err)) {
        conn->send(makeError(&id, ErrorCode::BadRequest, err));
        return;
    }

    Scheduler::Task task;
    task.deadline = deadline;
    task.cancel = conn->gone;
    task.job = [this, conn, id, key,
                deadline](Scheduler::Outcome outcome) {
        if (outcome == Scheduler::Outcome::Cancelled)
            return; // nobody left to answer
        if (outcome == Scheduler::Outcome::Expired) {
            conn->send(makeError(&id, ErrorCode::DeadlineExceeded,
                                 kDeadlineMsg));
            return;
        }
        if (int ms = FaultInjector::stallMs())
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        if (deadlinePassed(deadline)) {
            conn->send(makeError(&id, ErrorCode::DeadlineExceeded,
                                 kDeadlineMsg));
            return;
        }
        try {
            if (FaultInjector::workerFault())
                throw std::runtime_error("injected worker fault");
            auto handle = _cache->acquire(key);
            bool warm = handle.warm();
            sim::SimReport report = handle.run();
            Json resp = makeResponse(&id, "report");
            resp.set("model", modelName(key.kind));
            resp.set("cached", warm);
            resp.set("report", reportToJson(report));
            conn->send(resp);
        } catch (const BuildError &e) {
            conn->send(
                makeError(&id, ErrorCode::BuildFailed, e.what()));
        } catch (const std::exception &e) {
            conn->send(makeError(&id, ErrorCode::Internal, e.what()));
        }
    };
    switch (_scheduler->submit(conn->id, std::move(task))) {
    case Scheduler::Submit::Queued: break;
    case Scheduler::Submit::Rejected:
        conn->send(makeError(&id, ErrorCode::Backpressure,
                             "client queue full", retryAfterMs()));
        break;
    case Scheduler::Submit::Shed:
        conn->send(makeError(&id, ErrorCode::Backpressure,
                             "server overloaded", retryAfterMs()));
        break;
    case Scheduler::Submit::Stopped:
        conn->send(makeError(&id, ErrorCode::ShuttingDown,
                             "server shutting down"));
        break;
    }
}

void
Server::handleSweep(const std::shared_ptr<Conn> &conn, Json request,
                    Clock::time_point deadline)
{
    const Json *idp = request.find("id");
    Json id = idp ? *idp : Json();
    std::string err;

    // Shared by every point job. The grid is stored by value and the
    // points are enumerated from the *stored* grid, so their borrowed
    // Grid pointer stays valid for the sweep's lifetime.
    struct SweepState {
        SweepSpec spec;
        sweep::Grid grid;
        std::vector<sweep::Point> points;
        Json id;
        Clock::time_point deadline{};
        std::atomic<size_t> remaining{0};
    };
    auto state = std::make_shared<SweepState>();
    if (!SweepSpec::fromJson(request, &state->spec, &err)) {
        conn->send(makeError(&id, ErrorCode::BadRequest, err));
        return;
    }
    state->grid = state->spec.grid();
    state->points = state->grid.points();
    state->id = id;
    state->deadline = deadline;
    if (state->points.empty()) {
        conn->send(makeError(&id, ErrorCode::BadRequest,
                             "sweep grid has no points"));
        return;
    }
    state->remaining.store(state->points.size());

    Json begin = makeResponse(&id, "sweep_begin");
    begin.set("model", modelName(state->spec.base.kind));
    begin.set("points", state->points.size());
    Json columns = Json::array();
    for (const auto &col : state->spec.schema())
        columns.push(col.name);
    begin.set("columns", std::move(columns));
    if (!conn->send(begin))
        return;

    for (size_t i = 0; i < state->points.size(); ++i) {
        Scheduler::Task task;
        task.deadline = deadline;
        task.cancel = conn->gone;
        task.job = [this, conn, state, i](Scheduler::Outcome outcome) {
            // Every outcome decrements `remaining` exactly once, so
            // sweep_end (or the attempt to send it to a dead socket)
            // always happens and nothing leaks.
            auto finish = [&] {
                if (state->remaining.fetch_sub(1) == 1) {
                    Json end = makeResponse(&state->id, "sweep_end");
                    end.set("rows", state->points.size());
                    conn->send(end);
                }
            };
            if (outcome == Scheduler::Outcome::Cancelled) {
                finish();
                return;
            }
            auto sendPointError = [&](ErrorCode code,
                                      const std::string &message) {
                Json resp = makeError(&state->id, code, message);
                resp.set("index", state->points[i].index());
                conn->send(resp);
            };
            if (outcome == Scheduler::Outcome::Run) {
                if (int ms = FaultInjector::stallMs())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(ms));
                if (deadlinePassed(state->deadline))
                    outcome = Scheduler::Outcome::Expired;
            }
            if (outcome == Scheduler::Outcome::Expired) {
                sendPointError(ErrorCode::DeadlineExceeded,
                               kDeadlineMsg);
                finish();
                return;
            }
            try {
                if (FaultInjector::workerFault())
                    throw std::runtime_error("injected worker fault");
                const sweep::Point &point = state->points[i];
                ModelKey key = state->spec.keyAt(point);
                auto handle = _cache->acquire(key);
                sim::SimReport report = handle.run();
                Json resp = makeResponse(&state->id, "row");
                resp.set("index", point.index());
                resp.set("cells",
                         cellsToJson(state->spec.row(point, report)));
                conn->send(resp);
            } catch (const BuildError &e) {
                sendPointError(ErrorCode::BuildFailed, e.what());
            } catch (const std::exception &e) {
                sendPointError(ErrorCode::Internal, e.what());
            }
            finish();
        };
        // Blocking submit: a grid larger than the queue cap stalls
        // this client's reader (its own backpressure), not the pool.
        if (_scheduler->submit(conn->id, std::move(task),
                               /*block=*/true) !=
            Scheduler::Submit::Queued) {
            conn->send(makeError(&id, ErrorCode::ShuttingDown,
                                 "server shutting down"));
            return;
        }
    }
}

void
Server::handleStats(const std::shared_ptr<Conn> &conn,
                    const Json &request)
{
    const Json *idp = request.find("id");
    Json id = idp ? *idp : Json();
    Json resp = makeResponse(&id, "stats");

    ProgramCache::Stats cs = _cache->stats();
    Json cache = Json::object();
    cache.set("hits", cs.hits);
    cache.set("misses", cs.misses);
    cache.set("evictions", cs.evictions);
    cache.set("collisions", cs.collisions);
    cache.set("runs", cs.runs);
    cache.set("entries", cs.entries);
    cache.set("capacity", cs.capacity);
    resp.set("cache", std::move(cache));

    Scheduler::Stats ss = _scheduler->stats();
    Json sched = Json::object();
    sched.set("workers", _scheduler->workers());
    sched.set("submitted", ss.submitted);
    sched.set("rejected", ss.rejected);
    sched.set("shed", ss.shed);
    sched.set("executed", ss.executed);
    sched.set("expired", ss.expired);
    sched.set("cancelled", ss.cancelled);
    sched.set("queued", ss.queued);
    resp.set("scheduler", std::move(sched));

    Json server = Json::object();
    {
        std::lock_guard<std::mutex> g(_state->mu);
        server.set("connections", _state->accepted);
    }
    server.set("backend",
               _opts.engine.backend == sim::Backend::Interp ? "interp"
               : _opts.engine.backend == sim::Backend::Compiled
                   ? "compiled"
                   : "auto");
    server.set("max_line_bytes", _maxLine);
    resp.set("server", std::move(server));

    if (FaultInjector::enabled()) {
        FaultInjector::Stats fs = FaultInjector::stats();
        Json faults = Json::object();
        faults.set("spec", FaultInjector::describe());
        faults.set("torn", fs.torn);
        faults.set("drops", fs.drops);
        faults.set("worker_faults", fs.workerFaults);
        faults.set("build_faults", fs.buildFaults);
        faults.set("stalls", fs.stalls);
        faults.set("injected", fs.injected);
        resp.set("faults", std::move(faults));
    }
    conn->send(resp);
}

void
Server::shutdown()
{
    {
        std::lock_guard<std::mutex> g(_state->mu);
        if (_state->stopRequested)
            return;
        _state->stopRequested = true;
    }
    // Closing the listen socket pops the accept loop out of accept().
    if (_listenFd >= 0)
        ::shutdown(_listenFd, SHUT_RDWR);
    _state->stopCv.notify_all();
}

uint64_t
Server::connectionsAccepted() const
{
    std::lock_guard<std::mutex> g(_state->mu);
    return _state->accepted;
}

void
Server::wait()
{
    {
        std::unique_lock<std::mutex> lk(_state->mu);
        _state->stopCv.wait(lk,
                            [this] { return _state->stopRequested; });
        if (_state->tornDown)
            return;
        _state->tornDown = true;
    }
    if (_state->acceptThread.joinable())
        _state->acceptThread.join();
    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }
    // Finish every queued job (streams pending rows to still-open
    // connections), then stop the pool.
    _scheduler->stop();
    // Wake blocked readers and join them.
    std::vector<std::pair<std::shared_ptr<Conn>, std::thread>> readers;
    {
        std::lock_guard<std::mutex> g(_state->mu);
        readers.swap(_state->readers);
    }
    for (auto &r : readers) {
        r.first->markDead();
        ::shutdown(r.first->fd, SHUT_RDWR);
    }
    for (auto &r : readers) {
        if (r.second.joinable())
            r.second.join();
        ::close(r.first->fd);
    }
}

} // namespace serve
} // namespace eq
