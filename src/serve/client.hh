/**
 * @file
 * Client: a small typed wrapper over the daemon's NDJSON protocol.
 *
 * One Client is one TCP connection. Requests are synchronous —
 * simulate() and stats() write a line and block for the matching
 * response; sweepTable() streams row lines as they finish on the
 * server and re-merges them by dense point index, so the returned
 * table is byte-identical (csv()) to runLocalSweep() for the same
 * spec, at any server worker count. Not thread-safe: use one Client
 * per thread (each opens its own connection, which is also what gives
 * the server's per-client fairness its meaning).
 *
 * Retry/backoff: with a RetryPolicy installed (maxAttempts > 1) the
 * typed requests retry transparently on transport failures (connect
 * refused, connection dropped or torn mid-response) and on structured
 * errors the taxonomy marks retryable (backpressure, build_failed,
 * internal), sleeping an exponentially growing, deterministically
 * jittered delay between attempts — and at least the server's
 * retry_after_ms hint when one is present. Retrying verbatim is safe
 * by construction: served results are byte-deterministic, so a
 * repeated simulate/sweep is idempotent. A failed sweep always
 * reconnects before retrying (stale rows of the aborted stream could
 * otherwise interleave with the new one).
 */

#ifndef EQ_SERVE_CLIENT_HH
#define EQ_SERVE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/models.hh"
#include "serve/protocol.hh"
#include "sweep/table.hh"

namespace eq {
namespace serve {

/** Bounded-retry knobs. maxAttempts counts every try including the
 *  first; 1 disables retrying. Delays are deterministic for a given
 *  seed (jitter comes from a seeded xorshift, not wall clock). */
struct RetryPolicy {
    int maxAttempts = 1;
    int baseDelayMs = 10;
    int maxDelayMs = 1000;
    uint64_t seed = 1;
};

class Client {
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to @p host:@p port. False (with @p err) on failure.
     *  The address is remembered for retry reconnects. */
    bool connect(const std::string &host, uint16_t port,
                 std::string *err = nullptr);
    bool connected() const { return _fd >= 0; }
    void close();

    void setRetryPolicy(const RetryPolicy &policy) { _policy = policy; }
    const RetryPolicy &retryPolicy() const { return _policy; }
    /** Retries performed (sleeps taken) over this client's lifetime. */
    uint64_t retriesPerformed() const { return _retries; }

    struct SimulateResult {
        bool ok = false;
        ErrorCode code = ErrorCode::None; ///< taxonomy code when !ok
        std::string error;                ///< message when !ok
        bool cached = false; ///< program was warm in the server cache
        Json report;         ///< reportToJson shape
    };

    /** Simulate one configuration (round-trips ModelKey as JSON).
     *  @p deadline_ms < 0 sends no deadline. */
    SimulateResult simulate(const ModelKey &key,
                            int64_t deadline_ms = -1);

    /** Run @p spec on the server and re-merge the streamed rows (by
     *  dense point index) into a table with spec.schema(). False on
     *  protocol or server error. */
    bool sweepTable(const SweepSpec &spec, sweep::Table *out,
                    std::string *err = nullptr,
                    int64_t deadline_ms = -1);

    /** Server/cache/scheduler counters. False on error. */
    bool stats(Json *out, std::string *err = nullptr);

    /** Ask the server to shut down (acknowledged with "bye"). */
    bool shutdownServer(std::string *err = nullptr);

    /** Send one raw request line and read one raw response line —
     *  protocol-level escape hatch (used by the smoke script's
     *  scripted checks and the protocol tests). Never retries. */
    bool roundTrip(const Json &request, Json *response,
                   std::string *err = nullptr);

  private:
    bool sendRequest(const Json &request, std::string *err);
    bool readResponse(Json *response, std::string *err);
    bool reconnect(std::string *err);
    /** Sleep before attempt @p attempt (1-based retry count), honoring
     *  @p retry_after_ms when the server sent a hint. */
    void backoff(int attempt, int64_t retry_after_ms);
    bool sweepTableOnce(const SweepSpec &spec, sweep::Table *out,
                        std::string *err, int64_t deadline_ms,
                        ErrorInfo *info);

    int _fd = -1;
    uint64_t _nextId = 1;
    std::unique_ptr<LineReader> _reader;
    std::string _host;
    uint16_t _port = 0;
    RetryPolicy _policy;
    uint64_t _rng = 0;
    uint64_t _retries = 0;
};

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_CLIENT_HH
