/**
 * @file
 * Client: a small typed wrapper over the daemon's NDJSON protocol.
 *
 * One Client is one TCP connection. Requests are synchronous —
 * simulate() and stats() write a line and block for the matching
 * response; sweepTable() streams row lines as they finish on the
 * server and re-merges them by dense point index, so the returned
 * table is byte-identical (csv()) to runLocalSweep() for the same
 * spec, at any server worker count. Not thread-safe: use one Client
 * per thread (each opens its own connection, which is also what gives
 * the server's per-client fairness its meaning).
 */

#ifndef EQ_SERVE_CLIENT_HH
#define EQ_SERVE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/models.hh"
#include "serve/protocol.hh"
#include "sweep/table.hh"

namespace eq {
namespace serve {

class Client {
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to @p host:@p port. False (with @p err) on failure. */
    bool connect(const std::string &host, uint16_t port,
                 std::string *err = nullptr);
    bool connected() const { return _fd >= 0; }
    void close();

    struct SimulateResult {
        bool ok = false;
        std::string error; ///< set when !ok
        bool cached = false; ///< program was warm in the server cache
        Json report;         ///< reportToJson shape
    };

    /** Simulate one configuration (round-trips ModelKey as JSON). */
    SimulateResult simulate(const ModelKey &key);

    /** Run @p spec on the server and re-merge the streamed rows (by
     *  dense point index) into a table with spec.schema(). False on
     *  protocol or server error. */
    bool sweepTable(const SweepSpec &spec, sweep::Table *out,
                    std::string *err = nullptr);

    /** Server/cache/scheduler counters. False on error. */
    bool stats(Json *out, std::string *err = nullptr);

    /** Ask the server to shut down (acknowledged with "bye"). */
    bool shutdownServer(std::string *err = nullptr);

    /** Send one raw request line and read one raw response line —
     *  protocol-level escape hatch (used by the smoke script's
     *  scripted checks and the protocol tests). */
    bool roundTrip(const Json &request, Json *response,
                   std::string *err = nullptr);

  private:
    bool sendRequest(const Json &request, std::string *err);
    bool readResponse(Json *response, std::string *err);

    int _fd = -1;
    uint64_t _nextId = 1;
    std::unique_ptr<LineReader> _reader;
};

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_CLIENT_HH
