#include "serve/protocol.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace eq {
namespace serve {

// ---------------------------------------------------------------------------
// Json: object access

void
Json::set(const std::string &key, Json v)
{
    for (auto &m : _obj) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    _obj.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &m : _obj)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

int64_t
Json::getInt(const std::string &key, int64_t fallback) const
{
    const Json *v = find(key);
    return v && v->isNumber() ? v->asInt() : fallback;
}

std::string
Json::getStr(const std::string &key, const std::string &fallback) const
{
    const Json *v = find(key);
    return v && v->isStr() ? v->asStr() : fallback;
}

bool
Json::getBool(const std::string &key, bool fallback) const
{
    const Json *v = find(key);
    return v && v->isBool() ? v->asBool() : fallback;
}

// ---------------------------------------------------------------------------
// Json: writer

namespace {

void
dumpString(const std::string &s, std::string &out)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::dumpTo(std::string &out) const
{
    char buf[64];
    switch (_kind) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += _b ? "true" : "false";
        break;
    case Kind::Int:
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(_i));
        out += buf;
        break;
    case Kind::Real:
        // %.17g round-trips every finite double exactly; non-finite
        // values have no JSON spelling, write null.
        if (_r != _r || _r > 1.7976931348623157e308 ||
            _r < -1.7976931348623157e308) {
            out += "null";
        } else {
            std::snprintf(buf, sizeof buf, "%.17g", _r);
            out += buf;
        }
        break;
    case Kind::Str:
        dumpString(_s, out);
        break;
    case Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json &v : _arr) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
    }
    case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &m : _obj) {
            if (!first)
                out += ',';
            first = false;
            dumpString(m.first, out);
            out += ':';
            m.second.dumpTo(out);
        }
        out += '}';
        break;
    }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

// ---------------------------------------------------------------------------
// Json: parser (recursive descent)

namespace {

struct Parser {
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (static_cast<size_t>(end - p) >= n &&
            std::memcmp(p, word, n) == 0) {
            p += n;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return fail("expected string");
        out->clear();
        while (p < end && *p != '"') {
            unsigned char c = static_cast<unsigned char>(*p);
            if (c == '\\') {
                if (p + 1 >= end)
                    return fail("truncated escape");
                ++p;
                switch (*p) {
                case '"': *out += '"'; break;
                case '\\': *out += '\\'; break;
                case '/': *out += '/'; break;
                case 'b': *out += '\b'; break;
                case 'f': *out += '\f'; break;
                case 'n': *out += '\n'; break;
                case 'r': *out += '\r'; break;
                case 't': *out += '\t'; break;
                case 'u': {
                    if (end - p < 5)
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 1; i <= 4; ++i) {
                        char h = p[i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    p += 4;
                    // Encode the code point as UTF-8 (surrogate pairs
                    // are passed through as-is; the protocol never
                    // emits them).
                    if (cp < 0x80) {
                        *out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        *out += static_cast<char>(0xc0 | (cp >> 6));
                        *out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        *out += static_cast<char>(0xe0 | (cp >> 12));
                        *out += static_cast<char>(0x80 |
                                                  ((cp >> 6) & 0x3f));
                        *out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                }
                default: return fail("unknown escape");
                }
                ++p;
            } else if (c < 0x20) {
                return fail("raw control character in string");
            } else {
                *out += static_cast<char>(c);
                ++p;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseNumber(Json *out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        bool isReal = false;
        while (p < end &&
               ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' ||
                *p == 'E' || *p == '+' || *p == '-')) {
            if (*p == '.' || *p == 'e' || *p == 'E')
                isReal = true;
            ++p;
        }
        if (p == start || (p == start + 1 && *start == '-'))
            return fail("expected number");
        std::string text(start, p);
        errno = 0;
        if (isReal) {
            char *endp = nullptr;
            double v = std::strtod(text.c_str(), &endp);
            if (endp != text.c_str() + text.size())
                return fail("malformed number");
            *out = Json(v);
        } else {
            char *endp = nullptr;
            long long v = std::strtoll(text.c_str(), &endp, 10);
            if (endp != text.c_str() + text.size())
                return fail("malformed number");
            if (errno == ERANGE)
                return fail("integer out of range");
            *out = Json(static_cast<int64_t>(v));
        }
        return true;
    }

    bool
    parseValue(Json *out, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
        case '{': {
            ++p;
            Json obj = Json::object();
            skipWs();
            if (consume('}')) {
                *out = std::move(obj);
                return true;
            }
            for (;;) {
                std::string key;
                if (!parseString(&key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json v;
                if (!parseValue(&v, depth + 1))
                    return false;
                obj.set(key, std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    break;
                return fail("expected ',' or '}'");
            }
            *out = std::move(obj);
            return true;
        }
        case '[': {
            ++p;
            Json arr = Json::array();
            skipWs();
            if (consume(']')) {
                *out = std::move(arr);
                return true;
            }
            for (;;) {
                Json v;
                if (!parseValue(&v, depth + 1))
                    return false;
                arr.push(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    break;
                return fail("expected ',' or ']'");
            }
            *out = std::move(arr);
            return true;
        }
        case '"': {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json(std::move(s));
            return true;
        }
        case 't':
            if (literal("true")) {
                *out = Json(true);
                return true;
            }
            return fail("bad literal");
        case 'f':
            if (literal("false")) {
                *out = Json(false);
                return true;
            }
            return fail("bad literal");
        case 'n':
            if (literal("null")) {
                *out = Json();
                return true;
            }
            return fail("bad literal");
        default: return parseNumber(out);
        }
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json *out, std::string *err)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    Json v;
    if (!parser.parseValue(&v, 0)) {
        if (err)
            *err = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (err)
            *err = "trailing characters after JSON value";
        return false;
    }
    *out = std::move(v);
    return true;
}

// ---------------------------------------------------------------------------
// Error taxonomy

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::MalformedRequest: return "malformed_request";
    case ErrorCode::FrameTooLarge: return "frame_too_large";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::Backpressure: return "backpressure";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::BuildFailed: return "build_failed";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Unknown: return "unknown";
    }
    return "unknown";
}

bool
errorCodeFromName(const std::string &name, ErrorCode *out)
{
    for (ErrorCode code :
         {ErrorCode::MalformedRequest, ErrorCode::FrameTooLarge,
          ErrorCode::BadRequest, ErrorCode::Backpressure,
          ErrorCode::DeadlineExceeded, ErrorCode::Cancelled,
          ErrorCode::BuildFailed, ErrorCode::Internal,
          ErrorCode::ShuttingDown}) {
        if (name == errorCodeName(code)) {
            *out = code;
            return true;
        }
    }
    return false;
}

bool
errorCodeRetryable(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Backpressure:
    case ErrorCode::BuildFailed:
    case ErrorCode::Internal:
        return true;
    default:
        return false;
    }
}

ErrorInfo
parseError(const Json &response)
{
    ErrorInfo info;
    const Json *error = response.find("error");
    if (!error || !error->isObject()) {
        info.code = ErrorCode::Unknown;
        info.message = "missing error object";
        return info;
    }
    if (!errorCodeFromName(error->getStr("code", ""), &info.code))
        info.code = ErrorCode::Unknown;
    info.message = error->getStr("message", "");
    info.retryAfterMs = error->getInt("retry_after_ms", -1);
    return info;
}

// ---------------------------------------------------------------------------
// Line framing

bool
LineReader::next(std::string *line)
{
    for (;;) {
        size_t nl = _buf.find('\n');
        if (nl != std::string::npos) {
            if (nl > _max) {
                _overflow = true;
                return false;
            }
            *line = _buf.substr(0, nl);
            _buf.erase(0, nl + 1);
            if (!line->empty() && line->back() == '\r')
                line->pop_back();
            return true;
        }
        if (_buf.size() > _max) {
            _overflow = true;
            return false;
        }
        if (_eof)
            return false;
        char chunk[4096];
        ssize_t n = ::read(_fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0) {
            _eof = true;
            // A final unterminated line still counts as a line.
            if (!_buf.empty()) {
                *line = std::move(_buf);
                _buf.clear();
                if (!line->empty() && line->back() == '\r')
                    line->pop_back();
                return true;
            }
            return false;
        }
        _buf.append(chunk, static_cast<size_t>(n));
    }
}

bool
writeLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

// ---------------------------------------------------------------------------
// Report serialization and response skeletons

Json
reportToJson(const sim::SimReport &report, bool include_wall)
{
    Json out = Json::object();
    out.set("cycles", report.cycles);
    out.set("events", report.eventsExecuted);
    out.set("ops", report.opsExecuted);
    out.set("dispatches", report.dispatchCount);
    if (include_wall)
        out.set("wall_s", report.wallSeconds);
    Json conns = Json::array();
    for (const auto &c : report.connections) {
        Json j = Json::object();
        j.set("name", c.name);
        j.set("kind", c.kind);
        j.set("bw_limit", c.bandwidthLimit);
        j.set("rd_B", c.readBytes);
        j.set("wr_B", c.writeBytes);
        j.set("avg_rd_bw", c.avgReadBw);
        j.set("avg_wr_bw", c.avgWriteBw);
        j.set("max_bw", c.maxBw);
        j.set("max_bw_portion_rd", c.maxBwPortionRead);
        j.set("max_bw_portion_wr", c.maxBwPortionWrite);
        conns.push(std::move(j));
    }
    out.set("connections", std::move(conns));
    Json mems = Json::array();
    for (const auto &m : report.memories) {
        Json j = Json::object();
        j.set("name", m.name);
        j.set("kind", m.kind);
        j.set("rd_B", m.bytesRead);
        j.set("wr_B", m.bytesWritten);
        j.set("avg_rd_bw", m.avgReadBw);
        j.set("avg_wr_bw", m.avgWriteBw);
        mems.push(std::move(j));
    }
    out.set("memories", std::move(mems));
    Json procs = Json::array();
    for (const auto &pr : report.processors) {
        Json j = Json::object();
        j.set("name", pr.name);
        j.set("kind", pr.kind);
        j.set("busy_cycles", pr.busyCycles);
        j.set("ops", pr.opsExecuted);
        j.set("utilization", pr.utilization);
        procs.push(std::move(j));
    }
    out.set("processors", std::move(procs));
    return out;
}

Json
cellToJson(const sweep::Cell &cell)
{
    switch (cell.kind()) {
    case sweep::ValueKind::Int: return Json(cell.asInt());
    case sweep::ValueKind::Real: return Json(cell.asReal());
    case sweep::ValueKind::Str: return Json(cell.asStr());
    }
    return Json();
}

Json
cellsToJson(const std::vector<sweep::Cell> &cells)
{
    Json out = Json::array();
    for (const auto &cell : cells)
        out.push(cellToJson(cell));
    return out;
}

bool
cellsFromJson(const Json &cells,
              const std::vector<sweep::Column> &schema,
              std::vector<sweep::Cell> *out, std::string *err)
{
    if (!cells.isArray() || cells.size() != schema.size()) {
        if (err)
            *err = "row has " + std::to_string(cells.size()) +
                   " cells, schema has " +
                   std::to_string(schema.size()) + " columns";
        return false;
    }
    out->clear();
    out->reserve(schema.size());
    for (size_t c = 0; c < schema.size(); ++c) {
        const Json &v = cells.at(c);
        switch (schema[c].kind) {
        case sweep::ValueKind::Int:
            if (!v.isInt()) {
                if (err)
                    *err = "column '" + schema[c].name +
                           "' expects an integer cell";
                return false;
            }
            out->push_back(sweep::Cell(v.asInt()));
            break;
        case sweep::ValueKind::Real:
            // Integral reals serialize as JSON ints; re-promote.
            if (!v.isNumber()) {
                if (err)
                    *err = "column '" + schema[c].name +
                           "' expects a numeric cell";
                return false;
            }
            out->push_back(sweep::Cell(v.asReal()));
            break;
        case sweep::ValueKind::Str:
            if (!v.isStr()) {
                if (err)
                    *err = "column '" + schema[c].name +
                           "' expects a string cell";
                return false;
            }
            out->push_back(sweep::Cell(v.asStr()));
            break;
        }
    }
    return true;
}

Json
makeResponse(const Json *id, const std::string &type)
{
    Json out = Json::object();
    out.set("id", id ? *id : Json());
    out.set("ok", true);
    out.set("type", type);
    return out;
}

Json
makeError(const Json *id, ErrorCode code, const std::string &message,
          int64_t retry_after_ms)
{
    Json out = Json::object();
    out.set("id", id ? *id : Json());
    out.set("ok", false);
    Json error = Json::object();
    error.set("code", errorCodeName(code));
    error.set("message", message);
    if (retry_after_ms >= 0)
        error.set("retry_after_ms", retry_after_ms);
    out.set("error", std::move(error));
    return out;
}

} // namespace serve
} // namespace eq
