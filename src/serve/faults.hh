/**
 * @file
 * FaultInjector: the serving layer's deterministic chaos seam.
 *
 * Every hard-to-reach failure branch in the daemon — torn response
 * writes, mid-line connection drops, worker-side exceptions, slow
 * requests, forced ProgramCache build failures — is guarded by one of
 * the static decision points below. With no plan configured they are
 * single relaxed-atomic-load no-ops, so the fast path pays nothing;
 * with a plan (EQ_SERVE_FAULTS=<spec>:<seed> or eqserved --faults)
 * every decision is drawn from a seeded SplitMix64 stream, so a chaos
 * run is reproducible for a given seed and serial request order.
 *
 * Spec grammar (comma-separated, probabilities in [0,1]):
 *   torn=P      write half a response line, then drop the connection
 *   drop=P      drop the connection instead of writing a response
 *   werr=P      throw inside the worker job (error.code "internal")
 *   build=P     fail the ProgramCache build (error.code "build_failed")
 *   stall=P     sleep stall_ms before running a point
 *   stall_ms=N  stall duration (default 10 ms)
 *   max=N       total fault budget — after N injections the injector
 *               goes quiescent, which bounds how long a retrying
 *               client can be starved (default: unbounded)
 * followed by an optional ":<seed>" suffix (default seed 1), e.g.
 *   EQ_SERVE_FAULTS=torn=0.1,werr=0.25,build=0.2,max=16:7
 */

#ifndef EQ_SERVE_FAULTS_HH
#define EQ_SERVE_FAULTS_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace eq {
namespace serve {

class FaultInjector {
  public:
    /** What Conn::send should do with this response line. */
    enum class SendAction : uint8_t { None, Torn, Drop };

    struct Spec {
        double torn = 0.0;
        double drop = 0.0;
        double workerFault = 0.0;
        double buildFault = 0.0;
        double stall = 0.0;
        int stallMs = 10;
        uint64_t maxFaults = UINT64_MAX;
        uint64_t seed = 1;
    };

    struct Stats {
        uint64_t torn = 0;
        uint64_t drops = 0;
        uint64_t workerFaults = 0;
        uint64_t buildFaults = 0;
        uint64_t stalls = 0;
        uint64_t injected = 0; ///< total, against the max= budget
    };

    /** Parse the spec grammar above. False (with @p err) on bad text;
     *  @p out is only written on success. */
    static bool parseSpec(const std::string &text, Spec *out,
                          std::string *err);

    /** Install @p spec as the process-wide plan (replaces any). */
    static void configure(const Spec &spec);

    /** parseSpec + configure. */
    static bool configureFromText(const std::string &text,
                                  std::string *err);

    /** Remove the plan: every decision point becomes a no-op again. */
    static void disable();

    static bool enabled();
    static Stats stats(); ///< zeros when disabled

    /** One-line human summary of the active plan ("" when disabled). */
    static std::string describe();

    // -- decision points (no-ops when disabled) ---------------------
    static SendAction onSend();
    static bool workerFault();
    static bool buildFault();
    /** Milliseconds the caller should stall this request; 0 = none. */
    static int stallMs();

    /** RAII plan for tests: configures on construction, restores the
     *  disabled state on destruction. */
    struct Scoped {
        explicit Scoped(const Spec &spec) { configure(spec); }
        explicit Scoped(const std::string &text)
        {
            std::string err;
            if (!configureFromText(text, &err))
                disable();
        }
        ~Scoped() { disable(); }
        Scoped(const Scoped &) = delete;
        Scoped &operator=(const Scoped &) = delete;
    };
};

/** Thrown by the ProgramCache build path under an injected build
 *  fault (and usable by real build failures); mapped to the
 *  "build_failed" error code by the server. */
struct BuildError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_FAULTS_HH
