#include "serve/faults.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace eq {
namespace serve {

namespace {

/** The installed plan. Decision points take a shared_ptr snapshot
 *  under the mutex (cheap, and reconfiguration mid-flight — a test
 *  pattern — can never free state under a racing check); the common
 *  disabled case is one relaxed atomic load, no lock. */
struct Plan {
    FaultInjector::Spec spec;
    std::atomic<uint64_t> draws{0};    ///< decision stream position
    std::atomic<uint64_t> injected{0}; ///< against spec.maxFaults
    std::atomic<uint64_t> torn{0};
    std::atomic<uint64_t> drops{0};
    std::atomic<uint64_t> workerFaults{0};
    std::atomic<uint64_t> buildFaults{0};
    std::atomic<uint64_t> stalls{0};
};

std::atomic<bool> g_enabled{false};
std::mutex g_mu;
std::shared_ptr<Plan> g_plan; // guarded by g_mu

std::shared_ptr<Plan>
currentPlan()
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return nullptr;
    std::lock_guard<std::mutex> g(g_mu);
    return g_plan;
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** One seeded decision: true with probability @p prob, drawn from the
 *  plan's shared stream, and only while budget remains. */
bool
draw(Plan &plan, double prob, uint64_t site)
{
    if (prob <= 0.0)
        return false;
    uint64_t n = plan.draws.fetch_add(1, std::memory_order_relaxed);
    uint64_t bits =
        splitmix64(plan.spec.seed ^ (site * 0x9e3779b97f4a7c15ull) ^ n);
    double u = double(bits >> 11) * (1.0 / 9007199254740992.0);
    if (u >= prob)
        return false;
    // Charge the budget; back out when it is already spent.
    uint64_t used = plan.injected.load(std::memory_order_relaxed);
    do {
        if (used >= plan.spec.maxFaults)
            return false;
    } while (!plan.injected.compare_exchange_weak(used, used + 1));
    return true;
}

} // namespace

bool
FaultInjector::parseSpec(const std::string &text, Spec *out,
                         std::string *err)
{
    Spec spec;
    std::string body = text;
    // An optional ":<seed>" suffix (digits only, so probabilities
    // like "0.5" are never mistaken for it).
    size_t colon = body.rfind(':');
    if (colon != std::string::npos) {
        std::string tail = body.substr(colon + 1);
        if (!tail.empty() &&
            tail.find_first_not_of("0123456789") == std::string::npos) {
            spec.seed = std::strtoull(tail.c_str(), nullptr, 10);
            body = body.substr(0, colon);
        }
    }
    size_t start = 0;
    while (start < body.size()) {
        size_t comma = body.find(',', start);
        std::string item = body.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        start = comma == std::string::npos ? body.size() : comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            if (err)
                *err = "fault spec item '" + item +
                       "' is not name=value";
            return false;
        }
        std::string name = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        char *end = nullptr;
        if (name == "stall_ms" || name == "max") {
            long long n = std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || n < 0) {
                if (err)
                    *err = "fault spec '" + name +
                           "' needs a non-negative integer";
                return false;
            }
            if (name == "stall_ms")
                spec.stallMs = static_cast<int>(n);
            else
                spec.maxFaults = static_cast<uint64_t>(n);
            continue;
        }
        double p = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
            if (err)
                *err = "fault spec '" + name +
                       "' needs a probability in [0,1]";
            return false;
        }
        if (name == "torn")
            spec.torn = p;
        else if (name == "drop")
            spec.drop = p;
        else if (name == "werr")
            spec.workerFault = p;
        else if (name == "build")
            spec.buildFault = p;
        else if (name == "stall")
            spec.stall = p;
        else {
            if (err)
                *err = "unknown fault kind '" + name + "'";
            return false;
        }
    }
    *out = spec;
    return true;
}

void
FaultInjector::configure(const Spec &spec)
{
    auto plan = std::make_shared<Plan>();
    plan->spec = spec;
    std::lock_guard<std::mutex> g(g_mu);
    g_plan = std::move(plan);
    g_enabled.store(true, std::memory_order_relaxed);
}

bool
FaultInjector::configureFromText(const std::string &text,
                                 std::string *err)
{
    Spec spec;
    if (!parseSpec(text, &spec, err))
        return false;
    configure(spec);
    return true;
}

void
FaultInjector::disable()
{
    std::lock_guard<std::mutex> g(g_mu);
    g_enabled.store(false, std::memory_order_relaxed);
    g_plan.reset();
}

bool
FaultInjector::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

FaultInjector::Stats
FaultInjector::stats()
{
    Stats s;
    auto plan = currentPlan();
    if (!plan)
        return s;
    s.torn = plan->torn.load();
    s.drops = plan->drops.load();
    s.workerFaults = plan->workerFaults.load();
    s.buildFaults = plan->buildFaults.load();
    s.stalls = plan->stalls.load();
    s.injected = plan->injected.load();
    return s;
}

std::string
FaultInjector::describe()
{
    auto plan = currentPlan();
    if (!plan)
        return "";
    const Spec &s = plan->spec;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "torn=%g drop=%g werr=%g build=%g stall=%g "
                  "stall_ms=%d max=%llu seed=%llu",
                  s.torn, s.drop, s.workerFault, s.buildFault, s.stall,
                  s.stallMs,
                  static_cast<unsigned long long>(s.maxFaults),
                  static_cast<unsigned long long>(s.seed));
    return buf;
}

FaultInjector::SendAction
FaultInjector::onSend()
{
    auto plan = currentPlan();
    if (!plan)
        return SendAction::None;
    if (draw(*plan, plan->spec.torn, 1)) {
        ++plan->torn;
        return SendAction::Torn;
    }
    if (draw(*plan, plan->spec.drop, 2)) {
        ++plan->drops;
        return SendAction::Drop;
    }
    return SendAction::None;
}

bool
FaultInjector::workerFault()
{
    auto plan = currentPlan();
    if (!plan || !draw(*plan, plan->spec.workerFault, 3))
        return false;
    ++plan->workerFaults;
    return true;
}

bool
FaultInjector::buildFault()
{
    auto plan = currentPlan();
    if (!plan || !draw(*plan, plan->spec.buildFault, 4))
        return false;
    ++plan->buildFaults;
    return true;
}

int
FaultInjector::stallMs()
{
    auto plan = currentPlan();
    if (!plan || !draw(*plan, plan->spec.stall, 5))
        return 0;
    ++plan->stalls;
    return plan->spec.stallMs;
}

} // namespace serve
} // namespace eq
