/**
 * @file
 * eqserved: the simulation-as-a-service daemon. Binds, prints one
 * "listening" line (and optionally writes the bound port to a file for
 * scripts using an ephemeral port), then serves until a client sends
 * {"op":"shutdown"} or the process receives SIGINT/SIGTERM.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/fsutil.hh"
#include "serve/faults.hh"
#include "serve/server.hh"

using namespace eq;

namespace {

serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->shutdown();
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --host ADDR          bind address (default 127.0.0.1)\n"
        "  --port N             TCP port; 0 = ephemeral (default 0)\n"
        "  --port-file PATH     write the bound port to PATH\n"
        "  --cache-entries N    program-cache capacity\n"
        "                       (default $EQ_SERVE_CACHE_ENTRIES or 32)\n"
        "  --workers N          scheduler worker threads\n"
        "                       (default $EQ_SERVE_WORKERS or hw)\n"
        "  --max-queue N        per-client queued-job cap (default 256)\n"
        "  --max-queue-total N  pool-wide queued-job cap; excess\n"
        "                       requests are shed (default unlimited)\n"
        "  --max-line N         request-line byte cap\n"
        "                       (default $EQ_SERVE_MAX_LINE or 8 MiB)\n"
        "  --faults SPEC        deterministic fault injection, e.g.\n"
        "                       torn=0.1,drop=0.05,werr=0.2,max=20:42\n"
        "                       (default $EQ_SERVE_FAULTS; testing only)\n"
        "  --backend MODE       auto|interp|compiled (default auto,\n"
        "                       which resolves $EQ_SIM_BACKEND)\n"
        "  --fuse MODE          auto|on|off (default auto, which\n"
        "                       resolves $EQ_SIM_FUSE)\n",
        argv0);
}

bool
parseNum(const char *text, long *out)
{
    char *end = nullptr;
    long n = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || n < 0)
        return false;
    *out = n;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions opts;
    std::string portFile;
    std::string faultSpec;
    bool faultsFromFlag = false;
    if (const char *env = std::getenv("EQ_SERVE_FAULTS"))
        faultSpec = env;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "eqserved: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        long n = 0;
        if (arg == "--host") {
            opts.host = value();
        } else if (arg == "--port") {
            if (!parseNum(value(), &n) || n > 65535) {
                std::fprintf(stderr, "eqserved: bad --port\n");
                return 2;
            }
            opts.port = static_cast<uint16_t>(n);
        } else if (arg == "--port-file") {
            portFile = value();
        } else if (arg == "--cache-entries") {
            if (!parseNum(value(), &n) || n < 1) {
                std::fprintf(stderr, "eqserved: bad --cache-entries\n");
                return 2;
            }
            opts.cacheEntries = static_cast<size_t>(n);
        } else if (arg == "--workers") {
            if (!parseNum(value(), &n) || n < 1) {
                std::fprintf(stderr, "eqserved: bad --workers\n");
                return 2;
            }
            opts.workers = static_cast<unsigned>(n);
        } else if (arg == "--max-queue") {
            if (!parseNum(value(), &n) || n < 1) {
                std::fprintf(stderr, "eqserved: bad --max-queue\n");
                return 2;
            }
            opts.maxQueuedPerClient = static_cast<size_t>(n);
        } else if (arg == "--max-queue-total") {
            if (!parseNum(value(), &n) || n < 1) {
                std::fprintf(stderr,
                             "eqserved: bad --max-queue-total\n");
                return 2;
            }
            opts.maxQueuedTotal = static_cast<size_t>(n);
        } else if (arg == "--max-line") {
            if (!parseNum(value(), &n) || n < 1) {
                std::fprintf(stderr, "eqserved: bad --max-line\n");
                return 2;
            }
            opts.maxLineBytes = static_cast<size_t>(n);
        } else if (arg == "--faults") {
            faultSpec = value();
            faultsFromFlag = true;
        } else if (arg == "--backend") {
            const std::string mode = value();
            if (mode == "auto")
                opts.engine.backend = sim::Backend::Auto;
            else if (mode == "interp")
                opts.engine.backend = sim::Backend::Interp;
            else if (mode == "compiled")
                opts.engine.backend = sim::Backend::Compiled;
            else {
                std::fprintf(stderr, "eqserved: bad --backend '%s'\n",
                             mode.c_str());
                return 2;
            }
        } else if (arg == "--fuse") {
            const std::string mode = value();
            if (mode == "auto")
                opts.engine.fuse = sim::Fusion::Auto;
            else if (mode == "on")
                opts.engine.fuse = sim::Fusion::On;
            else if (mode == "off")
                opts.engine.fuse = sim::Fusion::Off;
            else {
                std::fprintf(stderr, "eqserved: bad --fuse '%s'\n",
                             mode.c_str());
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "eqserved: unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (!faultSpec.empty()) {
        std::string ferr;
        if (!serve::FaultInjector::configureFromText(faultSpec, &ferr)) {
            std::fprintf(stderr, "eqserved: bad %s: %s\n",
                         faultsFromFlag ? "--faults" : "EQ_SERVE_FAULTS",
                         ferr.c_str());
            return 2;
        }
    }

    serve::Server server(opts);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "eqserved: %s\n", err.c_str());
        return 1;
    }

    if (!portFile.empty()) {
        // Atomic (temp + rename): a script polling for the file can
        // never read a half-written or empty port line.
        std::string werr;
        if (!fs::writeFileAtomic(
                portFile, std::to_string(unsigned(server.port())) + "\n",
                &werr)) {
            std::fprintf(stderr, "eqserved: cannot write %s: %s\n",
                         portFile.c_str(), werr.c_str());
            server.shutdown();
            server.wait();
            return 1;
        }
    }

    std::printf("eqserved: listening on %s:%u (cache %zu entries, "
                "%u workers)\n",
                opts.host.c_str(), unsigned(server.port()),
                server.cache().stats().capacity,
                server.scheduler().workers());
    if (serve::FaultInjector::enabled())
        std::printf("eqserved: FAULT INJECTION ACTIVE (%s)\n",
                    serve::FaultInjector::describe().c_str());
    std::fflush(stdout);

    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    server.wait();
    g_server = nullptr;
    std::printf("eqserved: shut down\n");
    return 0;
}
