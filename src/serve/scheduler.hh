/**
 * @file
 * Scheduler: the daemon's worker pool with per-client fairness and
 * bounded queues.
 *
 * Work arrives tagged with a client id. Each client owns a FIFO; the
 * pool drains clients round-robin, one job per turn, so a client that
 * floods ten thousand sweep points cannot starve another client's
 * single simulate request — the second client's job runs after at
 * most (clients x 1) other jobs, not after the whole flood.
 *
 * Backpressure: each client's queue is capped. A non-blocking submit
 * is refused at the cap (the server answers such requests with an
 * error, which is the protocol's backpressure signal); a blocking
 * submit — used for expanding a sweep's points from the client's own
 * reader thread — waits for space, which stalls exactly that client's
 * request stream and nobody else's. Jobs must never submit blocking
 * work themselves (worker threads don't drain while blocked).
 */

#ifndef EQ_SERVE_SCHEDULER_HH
#define EQ_SERVE_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace eq {
namespace serve {

struct SchedulerOptions {
    /** Worker threads; 0 = EQ_SERVE_WORKERS env, else hardware
     *  concurrency (min 1). */
    unsigned workers = 0;
    /** Per-client queued-job cap (backpressure bound). */
    size_t maxQueuedPerClient = 256;
};

class Scheduler {
  public:
    using Options = SchedulerOptions;

    using Job = std::function<void()>;

    enum class Submit : uint8_t {
        Queued,   ///< accepted
        Rejected, ///< client queue full (non-blocking submit only)
        Stopped,  ///< scheduler is shutting down
    };

    struct Stats {
        uint64_t submitted = 0;
        uint64_t rejected = 0;
        uint64_t executed = 0;
        size_t queued = 0; ///< currently waiting across all clients
    };

    explicit Scheduler(Options opts = {});
    ~Scheduler(); ///< stops without draining (stop() first to drain)

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Enqueue @p job for @p client. With @p block, waits for queue
     *  space instead of rejecting (never returns Rejected). */
    Submit submit(uint64_t client, Job job, bool block = false);

    /** Finish every queued job, then stop the workers. Idempotent. */
    void stop();

    unsigned workers() const
    {
        return static_cast<unsigned>(_threads.size());
    }
    Stats stats() const;

  private:
    void workerLoop();

    struct ClientQueue {
        std::deque<Job> jobs;
        bool inRoundRobin = false;
    };

    Options _opts;
    mutable std::mutex _mu;
    std::condition_variable _work;  ///< workers wait here
    std::condition_variable _space; ///< blocking submitters wait here
    std::map<uint64_t, ClientQueue> _clients;
    std::deque<uint64_t> _rr; ///< clients with pending jobs, in turn order
    std::vector<std::thread> _threads;
    Stats _stats;
    bool _stopping = false;
};

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_SCHEDULER_HH
