/**
 * @file
 * Scheduler: the daemon's worker pool with per-client fairness,
 * bounded queues, request deadlines, and cancellation.
 *
 * Work arrives tagged with a client id. Each client owns a FIFO; the
 * pool drains clients round-robin, one job per turn, so a client that
 * floods ten thousand sweep points cannot starve another client's
 * single simulate request — the second client's job runs after at
 * most (clients x 1) other jobs, not after the whole flood.
 *
 * Backpressure: each client's queue is capped, and the whole pool is
 * capped by maxQueuedTotal. A non-blocking submit is refused at
 * either cap (the server answers such requests with a structured
 * backpressure error carrying a retry_after hint — overload
 * shedding); a blocking submit — used for expanding a sweep's points
 * from the client's own reader thread — waits for space, which stalls
 * exactly that client's request stream and nobody else's. Jobs must
 * never submit blocking work themselves (worker threads don't drain
 * while blocked).
 *
 * Deadlines and cancellation: a task may carry an absolute deadline
 * and/or a shared cancel flag. Workers check both when they pop a
 * task and hand the job its Outcome instead of running the work —
 * an expired queue entry costs one callback (typically "send
 * deadline_exceeded"), not a simulation; a cancelled one (client
 * disconnected mid-sweep) costs only its bookkeeping. Submitting over
 * a full queue also purges that client's already-dead entries first,
 * so a queue full of expired work cannot wedge a client.
 */

#ifndef EQ_SERVE_SCHEDULER_HH
#define EQ_SERVE_SCHEDULER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace eq {
namespace serve {

struct SchedulerOptions {
    /** Worker threads; 0 = EQ_SERVE_WORKERS env, else hardware
     *  concurrency (min 1). */
    unsigned workers = 0;
    /** Per-client queued-job cap (backpressure bound). */
    size_t maxQueuedPerClient = 256;
    /** Pool-wide queued-job cap across all clients; 0 = unlimited.
     *  Non-blocking submits over this cap are shed. */
    size_t maxQueuedTotal = 0;
};

class Scheduler {
  public:
    using Options = SchedulerOptions;
    using Clock = std::chrono::steady_clock;

    /** Why a job callback is being invoked. */
    enum class Outcome : uint8_t {
        Run,       ///< deadline and cancellation clear: do the work
        Expired,   ///< deadline passed while queued
        Cancelled, ///< cancel flag set while queued
    };

    using Job = std::function<void(Outcome)>;

    /** One unit of queued work. A default-constructed deadline means
     *  "none"; a null cancel flag means "not cancellable". */
    struct Task {
        Job job;
        Clock::time_point deadline{};
        std::shared_ptr<std::atomic<bool>> cancel;
    };

    enum class Submit : uint8_t {
        Queued,   ///< accepted
        Rejected, ///< client queue full (non-blocking submit only)
        Shed,     ///< pool-wide cap reached (non-blocking submit only)
        Stopped,  ///< scheduler is shutting down
    };

    struct Stats {
        uint64_t submitted = 0;
        uint64_t rejected = 0;  ///< per-client cap refusals
        uint64_t shed = 0;      ///< pool-wide cap refusals
        uint64_t executed = 0;  ///< jobs run with Outcome::Run
        uint64_t expired = 0;   ///< jobs handed Outcome::Expired
        uint64_t cancelled = 0; ///< jobs handed Outcome::Cancelled
        size_t queued = 0; ///< currently waiting across all clients
    };

    explicit Scheduler(Options opts = {});
    ~Scheduler(); ///< stops without draining (stop() first to drain)

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Enqueue @p task for @p client. With @p block, waits for queue
     *  space instead of rejecting (never returns Rejected/Shed). */
    Submit submit(uint64_t client, Task task, bool block = false);

    /** Convenience for deadline-free, non-cancellable work. */
    Submit submit(uint64_t client, std::function<void()> job,
                  bool block = false)
    {
        Task task;
        task.job = [fn = std::move(job)](Outcome outcome) {
            if (outcome == Outcome::Run)
                fn();
        };
        return submit(client, std::move(task), block);
    }

    /** Finish every queued job, then stop the workers. Idempotent. */
    void stop();

    unsigned workers() const
    {
        return static_cast<unsigned>(_threads.size());
    }
    Stats stats() const;

  private:
    struct ClientQueue {
        std::deque<Task> jobs;
        bool inRoundRobin = false;
    };

    void workerLoop();

    /** Pop dead (expired/cancelled) entries out of @p q into
     *  @p reaped. Caller holds _mu; callbacks run after unlock. */
    void reapDeadLocked(ClientQueue &q,
                        std::vector<std::pair<Task, Outcome>> *reaped);
    void finishReaped(std::vector<std::pair<Task, Outcome>> &reaped);

    /** The task's outcome if it started right now. */
    static Outcome outcomeFor(const Task &task, Clock::time_point now);

    Options _opts;
    mutable std::mutex _mu;
    std::condition_variable _work;  ///< workers wait here
    std::condition_variable _space; ///< blocking submitters wait here
    std::map<uint64_t, ClientQueue> _clients;
    std::deque<uint64_t> _rr; ///< clients with pending jobs, in turn order
    std::vector<std::thread> _threads;
    Stats _stats;
    size_t _queuedTotal = 0;
    bool _stopping = false;
};

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_SCHEDULER_HH
