/**
 * @file
 * ProgramCache: the daemon's cross-request warm cache of compiled
 * programs.
 *
 * Each entry owns a full sim::Session for one structural config — a
 * Context, a Simulator, the built module, and the BatchSession whose
 * value numbering, dispatch tables, and compiled + fused micro-op
 * programs survive between runs. The cache is a bounded LRU keyed by
 * the config's FNV-1a structural hash; on a hash hit the stored
 * ModelKey is ALWAYS compared for full structural equality
 * (operator==) before reuse, so a hash collision costs a second entry
 * and a rebuild, never a wrong simulation.
 *
 * Concurrency: the map/LRU bookkeeping sits behind one cache mutex
 * held only for lookups. Building and running happen under a
 * per-entry mutex outside the cache lock — two requests racing on the
 * same new config both resolve to the same (unbuilt) entry, the first
 * compiles under the entry mutex, the second blocks and then reuses;
 * requests on different configs never serialize against each other.
 * Handles pin entries via shared_ptr, so an entry evicted while
 * pinned stays fully usable until its last handle drops — eviction
 * only forgets, it never invalidates.
 */

#ifndef EQ_SERVE_CACHE_HH
#define EQ_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/models.hh"
#include "sim/session.hh"

namespace eq {
namespace serve {

class ProgramCache {
  public:
    struct Stats {
        uint64_t hits = 0;       ///< lookup found an equal key
        uint64_t misses = 0;     ///< lookup created a fresh entry
        uint64_t evictions = 0;  ///< LRU entries dropped at capacity
        uint64_t collisions = 0; ///< hash matched, full key did not
        uint64_t runs = 0;       ///< simulations served
        size_t entries = 0;      ///< live entries in the map
        size_t capacity = 0;     ///< the bound
    };

    /** @p max_entries is clamped to >= 1; @p engine configures every
     *  entry's Simulator (backend / fusion / env resolution happens
     *  per entry at first build). */
    explicit ProgramCache(size_t max_entries = 0,
                          sim::EngineOptions engine = {});

    /** EQ_SERVE_CACHE_ENTRIES when set and positive, else 32. */
    static size_t defaultEntries();

    class Entry;

    /**
     * A pinned cache entry. run() compiles the program on first use
     * (under the entry's mutex, so concurrent handles to the same
     * config never double-compile) and simulates it once; repeated
     * and concurrent runs serialize per entry and stay byte-identical
     * to a fresh Simulator run. The issuing cache must outlive the
     * handle.
     */
    class Handle {
      public:
        sim::SimReport run();
        const ModelKey &key() const;
        uint64_t keyHash() const;
        /** True when acquire() found a warm (already present) entry. */
        bool warm() const { return _warm; }

      private:
        friend class ProgramCache;
        Handle(ProgramCache *cache, std::shared_ptr<Entry> entry,
               bool warm)
            : _cache(cache), _entry(std::move(entry)), _warm(warm)
        {
        }
        ProgramCache *_cache;
        std::shared_ptr<Entry> _entry;
        bool _warm;
    };

    /** Look up (or create) the entry for @p key. */
    Handle acquire(const ModelKey &key)
    {
        return acquireHashed(key.hash(), key);
    }

    /** Same, with the hash supplied by the caller — the test seam
     *  that lets unit tests force two different keys onto one hash
     *  bucket and prove the equality check keeps them apart. */
    Handle acquireHashed(uint64_t hash, const ModelKey &key);

    /** True when an equal key is currently cached. Touches neither
     *  the LRU order nor the stats (test/introspection helper). */
    bool contains(const ModelKey &key) const;

    Stats stats() const;
    size_t capacity() const { return _capacity; }

  private:
    friend class Handle;

    using LruList = std::list<std::shared_ptr<Entry>>;

    mutable std::mutex _mu;
    size_t _capacity;
    sim::EngineOptions _engine;
    LruList _lru; ///< front = most recently used
    std::unordered_map<uint64_t, std::vector<LruList::iterator>> _byHash;
    Stats _stats;
};

} // namespace serve
} // namespace eq

#endif // EQ_SERVE_CACHE_HH
