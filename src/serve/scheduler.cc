#include "serve/scheduler.hh"

#include <cstdlib>

namespace eq {
namespace serve {

namespace {

unsigned
resolveWorkers(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("EQ_SERVE_WORKERS")) {
        char *end = nullptr;
        long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

Scheduler::Scheduler(Options opts) : _opts(opts)
{
    if (_opts.maxQueuedPerClient < 1)
        _opts.maxQueuedPerClient = 1;
    unsigned n = resolveWorkers(_opts.workers);
    _threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _threads.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler()
{
    stop();
}

Scheduler::Submit
Scheduler::submit(uint64_t client, Job job, bool block)
{
    std::unique_lock<std::mutex> lk(_mu);
    for (;;) {
        if (_stopping)
            return Submit::Stopped;
        ClientQueue &q = _clients[client];
        if (q.jobs.size() < _opts.maxQueuedPerClient) {
            q.jobs.push_back(std::move(job));
            if (!q.inRoundRobin) {
                q.inRoundRobin = true;
                _rr.push_back(client);
            }
            ++_stats.submitted;
            ++_stats.queued;
            _work.notify_one();
            return Submit::Queued;
        }
        if (!block) {
            ++_stats.rejected;
            return Submit::Rejected;
        }
        _space.wait(lk);
    }
}

void
Scheduler::workerLoop()
{
    std::unique_lock<std::mutex> lk(_mu);
    for (;;) {
        while (_rr.empty() && !_stopping)
            _work.wait(lk);
        if (_rr.empty() && _stopping)
            return; // drained
        // One job per client turn: take the head of the next client's
        // FIFO, then rotate the client to the back if it still has
        // work.
        uint64_t client = _rr.front();
        _rr.pop_front();
        ClientQueue &q = _clients[client];
        Job job = std::move(q.jobs.front());
        q.jobs.pop_front();
        if (q.jobs.empty())
            q.inRoundRobin = false;
        else
            _rr.push_back(client);
        --_stats.queued;
        _space.notify_all();
        lk.unlock();
        job();
        lk.lock();
        ++_stats.executed;
    }
}

void
Scheduler::stop()
{
    {
        std::lock_guard<std::mutex> g(_mu);
        if (_stopping && _threads.empty())
            return;
        _stopping = true;
    }
    _work.notify_all();
    _space.notify_all();
    for (auto &t : _threads)
        if (t.joinable())
            t.join();
    _threads.clear();
}

Scheduler::Stats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> g(_mu);
    return _stats;
}

} // namespace serve
} // namespace eq
