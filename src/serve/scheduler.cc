#include "serve/scheduler.hh"

#include <cstdlib>
#include <utility>

namespace eq {
namespace serve {

namespace {

unsigned
resolveWorkers(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("EQ_SERVE_WORKERS")) {
        char *end = nullptr;
        long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

Scheduler::Scheduler(Options opts) : _opts(opts)
{
    if (_opts.maxQueuedPerClient < 1)
        _opts.maxQueuedPerClient = 1;
    unsigned n = resolveWorkers(_opts.workers);
    _threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _threads.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler()
{
    stop();
}

Scheduler::Outcome
Scheduler::outcomeFor(const Task &task, Clock::time_point now)
{
    if (task.cancel && task.cancel->load(std::memory_order_relaxed))
        return Outcome::Cancelled;
    if (task.deadline != Clock::time_point{} && now > task.deadline)
        return Outcome::Expired;
    return Outcome::Run;
}

void
Scheduler::reapDeadLocked(ClientQueue &q,
                          std::vector<std::pair<Task, Outcome>> *reaped)
{
    const Clock::time_point now = Clock::now();
    auto it = q.jobs.begin();
    while (it != q.jobs.end()) {
        Outcome outcome = outcomeFor(*it, now);
        if (outcome == Outcome::Run) {
            ++it;
            continue;
        }
        reaped->emplace_back(std::move(*it), outcome);
        it = q.jobs.erase(it);
        --_stats.queued;
        --_queuedTotal;
        if (outcome == Outcome::Expired)
            ++_stats.expired;
        else
            ++_stats.cancelled;
    }
}

void
Scheduler::finishReaped(std::vector<std::pair<Task, Outcome>> &reaped)
{
    for (auto &dead : reaped)
        dead.first.job(dead.second);
    if (!reaped.empty())
        _space.notify_all();
    reaped.clear();
}

Scheduler::Submit
Scheduler::submit(uint64_t client, Task task, bool block)
{
    std::vector<std::pair<Task, Outcome>> reaped;
    Submit result;
    {
        std::unique_lock<std::mutex> lk(_mu);
        for (;;) {
            if (_stopping) {
                result = Submit::Stopped;
                break;
            }
            ClientQueue &q = _clients[client];
            auto clientFull = [&] {
                return q.jobs.size() >= _opts.maxQueuedPerClient;
            };
            auto poolFull = [&] {
                return _opts.maxQueuedTotal &&
                       _queuedTotal >= _opts.maxQueuedTotal;
            };
            if (clientFull() || poolFull()) {
                // Entries that already expired or were cancelled are
                // dead weight: drop them first and re-check, so a
                // queue full of dead work cannot wedge its client.
                reapDeadLocked(q, &reaped);
            }
            if (clientFull() || poolFull()) {
                if (!block) {
                    // A full pool with a non-full client queue is the
                    // pool-wide overload case (shed); otherwise the
                    // client exceeded its own bound.
                    if (clientFull()) {
                        ++_stats.rejected;
                        result = Submit::Rejected;
                    } else {
                        ++_stats.shed;
                        result = Submit::Shed;
                    }
                    break;
                }
                _space.wait(lk);
                continue;
            }
            q.jobs.push_back(std::move(task));
            if (!q.inRoundRobin) {
                q.inRoundRobin = true;
                _rr.push_back(client);
            }
            ++_stats.submitted;
            ++_stats.queued;
            ++_queuedTotal;
            _work.notify_one();
            result = Submit::Queued;
            break;
        }
    }
    finishReaped(reaped);
    return result;
}

void
Scheduler::workerLoop()
{
    std::unique_lock<std::mutex> lk(_mu);
    for (;;) {
        while (_rr.empty() && !_stopping)
            _work.wait(lk);
        if (_rr.empty() && _stopping)
            return; // drained
        // One job per client turn: take the head of the next client's
        // FIFO, then rotate the client to the back if it still has
        // work.
        uint64_t client = _rr.front();
        _rr.pop_front();
        ClientQueue &q = _clients[client];
        if (q.jobs.empty()) {
            // Reaping can empty a queue whose turn marker is still in
            // the rotation.
            q.inRoundRobin = false;
            continue;
        }
        Task task = std::move(q.jobs.front());
        q.jobs.pop_front();
        if (q.jobs.empty())
            q.inRoundRobin = false;
        else
            _rr.push_back(client);
        --_stats.queued;
        --_queuedTotal;
        _space.notify_all();
        lk.unlock();
        // Deadline and cancellation are checked at the last moment
        // before the work would start: an entry that died in the
        // queue costs one callback, never a simulation.
        Outcome outcome = outcomeFor(task, Clock::now());
        task.job(outcome);
        lk.lock();
        switch (outcome) {
        case Outcome::Run: ++_stats.executed; break;
        case Outcome::Expired: ++_stats.expired; break;
        case Outcome::Cancelled: ++_stats.cancelled; break;
        }
    }
}

void
Scheduler::stop()
{
    {
        std::lock_guard<std::mutex> g(_mu);
        if (_stopping && _threads.empty())
            return;
        _stopping = true;
    }
    _work.notify_all();
    _space.notify_all();
    for (auto &t : _threads)
        if (t.joinable())
            t.join();
    _threads.clear();
}

Scheduler::Stats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> g(_mu);
    return _stats;
}

} // namespace serve
} // namespace eq
