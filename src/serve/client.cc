#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace eq {
namespace serve {

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _reader.reset();
}

bool
Client::connect(const std::string &host, uint16_t port, std::string *err)
{
    close();
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg + ": " + std::strerror(errno);
        close();
        return false;
    };
    _fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_fd < 0)
        return fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton(" + host + ")");
    }
    if (::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0)
        return fail("connect " + host + ":" + std::to_string(port));
    int one = 1;
    ::setsockopt(_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    _reader = std::make_unique<LineReader>(_fd);
    return true;
}

bool
Client::sendRequest(const Json &request, std::string *err)
{
    if (_fd < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    if (!writeLine(_fd, request.dump())) {
        if (err)
            *err = std::string("send: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
Client::readResponse(Json *response, std::string *err)
{
    std::string line;
    if (!_reader || !_reader->next(&line)) {
        if (err)
            *err = "connection closed by server";
        return false;
    }
    std::string perr;
    if (!Json::parse(line, response, &perr) || !response->isObject()) {
        if (err)
            *err = "malformed response: " + perr;
        return false;
    }
    return true;
}

bool
Client::roundTrip(const Json &request, Json *response, std::string *err)
{
    return sendRequest(request, err) && readResponse(response, err);
}

Client::SimulateResult
Client::simulate(const ModelKey &key)
{
    SimulateResult result;
    Json request = Json::object();
    request.set("op", "simulate");
    request.set("id", _nextId++);
    request.set("model", modelName(key.kind));
    request.set("config", modelKeyToJson(key));
    Json response;
    std::string err;
    if (!roundTrip(request, &response, &err)) {
        result.error = err;
        return result;
    }
    if (!response.getBool("ok", false)) {
        result.error = response.getStr("error", "server error");
        return result;
    }
    result.ok = true;
    result.cached = response.getBool("cached", false);
    if (const Json *report = response.find("report"))
        result.report = *report;
    return result;
}

bool
Client::sweepTable(const SweepSpec &spec, sweep::Table *out,
                   std::string *err)
{
    std::string verr;
    if (!spec.validate(&verr)) {
        if (err)
            *err = verr;
        return false;
    }
    Json request = spec.toJson();
    request.set("id", _nextId++);
    if (!sendRequest(request, err))
        return false;

    Json begin;
    if (!readResponse(&begin, err))
        return false;
    if (!begin.getBool("ok", false)) {
        if (err)
            *err = begin.getStr("error", "server error");
        return false;
    }
    if (begin.getStr("type", "") != "sweep_begin") {
        if (err)
            *err = "expected sweep_begin, got '" +
                   begin.getStr("type", "") + "'";
        return false;
    }
    const std::vector<sweep::Column> schema = spec.schema();
    const size_t points =
        static_cast<size_t>(begin.getInt("points", 0));

    // Rows arrive in completion order; slot them by dense point index
    // so the merged table matches the in-process nested-loop order.
    std::vector<std::vector<sweep::Cell>> rows(points);
    std::vector<bool> seen(points, false);
    size_t received = 0;
    for (;;) {
        Json msg;
        if (!readResponse(&msg, err))
            return false;
        if (!msg.getBool("ok", false)) {
            if (err)
                *err = msg.getStr("error", "server error");
            return false;
        }
        const std::string type = msg.getStr("type", "");
        if (type == "sweep_end")
            break;
        if (type != "row") {
            if (err)
                *err = "unexpected message type '" + type +
                       "' inside sweep stream";
            return false;
        }
        const size_t index =
            static_cast<size_t>(msg.getInt("index", -1));
        const Json *cells = msg.find("cells");
        if (index >= points || !cells || !cells->isArray() ||
            cells->size() != schema.size()) {
            if (err)
                *err = "malformed row line";
            return false;
        }
        if (seen[index]) {
            if (err)
                *err = "duplicate row index " + std::to_string(index);
            return false;
        }
        seen[index] = true;
        std::vector<sweep::Cell> row;
        row.reserve(schema.size());
        for (size_t c = 0; c < schema.size(); ++c) {
            const Json &v = cells->at(c);
            switch (schema[c].kind) {
            case sweep::ValueKind::Int:
                row.push_back(sweep::Cell(v.asInt()));
                break;
            case sweep::ValueKind::Real:
                row.push_back(sweep::Cell(v.asReal()));
                break;
            case sweep::ValueKind::Str:
                row.push_back(sweep::Cell(v.asStr()));
                break;
            }
        }
        rows[index] = std::move(row);
        ++received;
    }
    if (received != points) {
        if (err)
            *err = "sweep_end after " + std::to_string(received) +
                   " of " + std::to_string(points) + " rows";
        return false;
    }

    sweep::Table table(schema);
    for (auto &row : rows)
        table.addRow(std::move(row));
    *out = std::move(table);
    return true;
}

bool
Client::stats(Json *out, std::string *err)
{
    Json request = Json::object();
    request.set("op", "stats");
    request.set("id", _nextId++);
    Json response;
    if (!roundTrip(request, &response, err))
        return false;
    if (!response.getBool("ok", false)) {
        if (err)
            *err = response.getStr("error", "server error");
        return false;
    }
    *out = std::move(response);
    return true;
}

bool
Client::shutdownServer(std::string *err)
{
    Json request = Json::object();
    request.set("op", "shutdown");
    request.set("id", _nextId++);
    Json response;
    if (!roundTrip(request, &response, err))
        return false;
    if (!response.getBool("ok", false)) {
        if (err)
            *err = response.getStr("error", "server error");
        return false;
    }
    return true;
}

} // namespace serve
} // namespace eq
