#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace eq {
namespace serve {

namespace {

uint64_t
xorshift64(uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

} // namespace

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _reader.reset();
}

bool
Client::connect(const std::string &host, uint16_t port, std::string *err)
{
    close();
    _host = host;
    _port = port;
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg + ": " + std::strerror(errno);
        close();
        return false;
    };
    _fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_fd < 0)
        return fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton(" + host + ")");
    }
    if (::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0)
        return fail("connect " + host + ":" + std::to_string(port));
    int one = 1;
    ::setsockopt(_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    _reader = std::make_unique<LineReader>(_fd);
    return true;
}

bool
Client::reconnect(std::string *err)
{
    if (_host.empty()) {
        if (err)
            *err = "not connected";
        return false;
    }
    return connect(_host, _port, err);
}

void
Client::backoff(int attempt, int64_t retry_after_ms)
{
    if (_rng == 0)
        _rng = _policy.seed ? _policy.seed : 1;
    int64_t base = _policy.baseDelayMs > 0 ? _policy.baseDelayMs : 1;
    int64_t cap = _policy.maxDelayMs > 0 ? _policy.maxDelayMs : base;
    int64_t delay = base;
    for (int i = 1; i < attempt && delay < cap; ++i)
        delay *= 2;
    if (delay > cap)
        delay = cap;
    // Jitter the top half so a fleet of retrying clients desynchronizes
    // while the floor keeps every wait meaningful. Deterministic: the
    // stream depends only on the policy seed and the retry count.
    int64_t half = delay / 2;
    delay = half + static_cast<int64_t>(
                       xorshift64(_rng) %
                       static_cast<uint64_t>(half + 1));
    if (retry_after_ms > delay)
        delay = retry_after_ms; // the server knows its queue better
    ++_retries;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

bool
Client::sendRequest(const Json &request, std::string *err)
{
    if (_fd < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    if (!writeLine(_fd, request.dump())) {
        if (err)
            *err = std::string("send: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
Client::readResponse(Json *response, std::string *err)
{
    std::string line;
    if (!_reader || !_reader->next(&line)) {
        if (err)
            *err = "connection closed by server";
        return false;
    }
    std::string perr;
    if (!Json::parse(line, response, &perr) || !response->isObject()) {
        if (err)
            *err = "malformed response: " + perr;
        return false;
    }
    return true;
}

bool
Client::roundTrip(const Json &request, Json *response, std::string *err)
{
    return sendRequest(request, err) && readResponse(response, err);
}

Client::SimulateResult
Client::simulate(const ModelKey &key, int64_t deadline_ms)
{
    const int attempts = _policy.maxAttempts > 0 ? _policy.maxAttempts : 1;
    SimulateResult result;
    for (int attempt = 1;; ++attempt) {
        result = SimulateResult();
        std::string err;
        int64_t hint = -1;
        // Transport failures (refused connect, dropped or torn
        // response) are always retryable: results are byte
        // deterministic, so re-asking cannot change the answer.
        bool retryable = true;
        if (connected() || reconnect(&err)) {
            Json request = Json::object();
            request.set("op", "simulate");
            request.set("id", _nextId++);
            request.set("model", modelName(key.kind));
            request.set("config", modelKeyToJson(key));
            if (deadline_ms >= 0)
                request.set("deadline_ms", deadline_ms);
            Json response;
            if (roundTrip(request, &response, &err)) {
                if (response.getBool("ok", false)) {
                    result.ok = true;
                    result.cached = response.getBool("cached", false);
                    if (const Json *report = response.find("report"))
                        result.report = *report;
                    return result;
                }
                ErrorInfo info = parseError(response);
                result.code = info.code;
                result.error = info.message;
                hint = info.retryAfterMs;
                retryable = errorCodeRetryable(info.code);
            } else {
                result.error = err;
                close(); // broken transport; reconnect on retry
            }
        } else {
            result.error = err;
        }
        if (!retryable || attempt >= attempts)
            return result;
        backoff(attempt, hint);
    }
}

bool
Client::sweepTable(const SweepSpec &spec, sweep::Table *out,
                   std::string *err, int64_t deadline_ms)
{
    std::string verr;
    if (!spec.validate(&verr)) {
        if (err)
            *err = verr;
        return false;
    }
    const int attempts = _policy.maxAttempts > 0 ? _policy.maxAttempts : 1;
    for (int attempt = 1;; ++attempt) {
        std::string aerr;
        ErrorInfo info;
        if (sweepTableOnce(spec, out, &aerr, deadline_ms, &info))
            return true;
        const bool retryable = info.code == ErrorCode::None
                                   ? true // transport-class failure
                                   : errorCodeRetryable(info.code);
        if (!retryable || attempt >= attempts) {
            if (err)
                *err = aerr;
            return false;
        }
        // Always tear the connection down before retrying a sweep:
        // rows of the aborted stream may still be in flight and would
        // otherwise interleave with the fresh attempt's stream.
        close();
        backoff(attempt, info.retryAfterMs);
    }
}

bool
Client::sweepTableOnce(const SweepSpec &spec, sweep::Table *out,
                       std::string *err, int64_t deadline_ms,
                       ErrorInfo *info)
{
    *info = ErrorInfo(); // code None = transport-class failure
    std::string cerr;
    if (!connected() && !reconnect(&cerr)) {
        if (err)
            *err = cerr;
        return false;
    }
    Json request = spec.toJson();
    request.set("id", _nextId++);
    if (deadline_ms >= 0)
        request.set("deadline_ms", deadline_ms);
    if (!sendRequest(request, err)) {
        close();
        return false;
    }

    auto serverError = [&](const Json &msg) {
        *info = parseError(msg);
        if (err)
            *err = info->message;
        return false;
    };

    Json begin;
    if (!readResponse(&begin, err)) {
        close();
        return false;
    }
    if (!begin.getBool("ok", false))
        return serverError(begin);
    if (begin.getStr("type", "") != "sweep_begin") {
        if (err)
            *err = "expected sweep_begin, got '" +
                   begin.getStr("type", "") + "'";
        close();
        return false;
    }
    const std::vector<sweep::Column> schema = spec.schema();
    const size_t points =
        static_cast<size_t>(begin.getInt("points", 0));

    // Rows arrive in completion order; slot them by dense point index
    // so the merged table matches the in-process nested-loop order.
    std::vector<std::vector<sweep::Cell>> rows(points);
    std::vector<bool> seen(points, false);
    size_t received = 0;
    for (;;) {
        Json msg;
        if (!readResponse(&msg, err)) {
            close();
            return false;
        }
        if (!msg.getBool("ok", false))
            return serverError(msg);
        const std::string type = msg.getStr("type", "");
        if (type == "sweep_end")
            break;
        if (type != "row") {
            if (err)
                *err = "unexpected message type '" + type +
                       "' inside sweep stream";
            close();
            return false;
        }
        const size_t index =
            static_cast<size_t>(msg.getInt("index", -1));
        const Json *cells = msg.find("cells");
        if (index >= points || !cells || !cells->isArray() ||
            cells->size() != schema.size()) {
            if (err)
                *err = "malformed row line";
            close();
            return false;
        }
        if (seen[index]) {
            if (err)
                *err = "duplicate row index " + std::to_string(index);
            close();
            return false;
        }
        seen[index] = true;
        std::vector<sweep::Cell> row;
        if (!cellsFromJson(*cells, schema, &row, err)) {
            close();
            return false;
        }
        rows[index] = std::move(row);
        ++received;
    }
    if (received != points) {
        if (err)
            *err = "sweep_end after " + std::to_string(received) +
                   " of " + std::to_string(points) + " rows";
        close();
        return false;
    }

    sweep::Table table(schema);
    for (auto &row : rows)
        table.addRow(std::move(row));
    *out = std::move(table);
    return true;
}

bool
Client::stats(Json *out, std::string *err)
{
    const int attempts = _policy.maxAttempts > 0 ? _policy.maxAttempts : 1;
    for (int attempt = 1;; ++attempt) {
        std::string aerr;
        int64_t hint = -1;
        bool retryable = true;
        std::string cerr;
        if (connected() || reconnect(&cerr)) {
            Json request = Json::object();
            request.set("op", "stats");
            request.set("id", _nextId++);
            Json response;
            if (roundTrip(request, &response, &aerr)) {
                if (response.getBool("ok", false)) {
                    *out = std::move(response);
                    return true;
                }
                ErrorInfo info = parseError(response);
                aerr = info.message;
                hint = info.retryAfterMs;
                retryable = errorCodeRetryable(info.code);
            } else {
                close();
            }
        } else {
            aerr = cerr;
        }
        if (!retryable || attempt >= attempts) {
            if (err)
                *err = aerr;
            return false;
        }
        backoff(attempt, hint);
    }
}

bool
Client::shutdownServer(std::string *err)
{
    // Deliberately never retried: a lost ack usually means the server
    // is already gone, and re-sending against a restarted instance
    // would shut down the wrong process.
    Json request = Json::object();
    request.set("op", "shutdown");
    request.set("id", _nextId++);
    Json response;
    if (!roundTrip(request, &response, err))
        return false;
    if (!response.getBool("ok", false)) {
        if (err)
            *err = parseError(response).message;
        return false;
    }
    return true;
}

} // namespace serve
} // namespace eq
