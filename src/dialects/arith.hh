/**
 * @file
 * Arith dialect: scalar constants and integer/float arithmetic.
 *
 * The subset of MLIR's arith dialect that accelerator kernels in this
 * project use (the paper's examples embed `addi` etc. inside launch
 * blocks).
 */

#ifndef EQ_DIALECTS_ARITH_HH
#define EQ_DIALECTS_ARITH_HH

#include "ir/builder.hh"

namespace eq {
namespace arith {

/** `arith.constant {value} : () -> T` */
class ConstantOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "arith.constant";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, int64_t value,
                                ir::Type type);
    static ir::Operation *build(ir::OpBuilder &b, double value,
                                ir::Type type);

    ir::Attribute value() const { return _op->attr("value"); }
};

/** Shared shape for binary elementwise ops: `name(lhs, rhs) -> T`. */
ir::Operation *buildBinary(ir::OpBuilder &b, const char *name, ir::Value lhs,
                           ir::Value rhs);

struct AddIOp : ir::OpView {
    using OpView::OpView;
    static constexpr const char *opName = "arith.addi";
    EQ_DECLARE_OP_ID()
    static ir::Operation *
    build(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
    {
        return buildBinary(b, opName, lhs, rhs);
    }
};

struct SubIOp : ir::OpView {
    using OpView::OpView;
    static constexpr const char *opName = "arith.subi";
    EQ_DECLARE_OP_ID()
    static ir::Operation *
    build(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
    {
        return buildBinary(b, opName, lhs, rhs);
    }
};

struct MulIOp : ir::OpView {
    using OpView::OpView;
    static constexpr const char *opName = "arith.muli";
    EQ_DECLARE_OP_ID()
    static ir::Operation *
    build(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
    {
        return buildBinary(b, opName, lhs, rhs);
    }
};

struct DivSIOp : ir::OpView {
    using OpView::OpView;
    static constexpr const char *opName = "arith.divsi";
    EQ_DECLARE_OP_ID()
    static ir::Operation *
    build(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
    {
        return buildBinary(b, opName, lhs, rhs);
    }
};

struct RemSIOp : ir::OpView {
    using OpView::OpView;
    static constexpr const char *opName = "arith.remsi";
    EQ_DECLARE_OP_ID()
    static ir::Operation *
    build(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
    {
        return buildBinary(b, opName, lhs, rhs);
    }
};

struct AddFOp : ir::OpView {
    using OpView::OpView;
    static constexpr const char *opName = "arith.addf";
    EQ_DECLARE_OP_ID()
    static ir::Operation *
    build(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
    {
        return buildBinary(b, opName, lhs, rhs);
    }
};

struct MulFOp : ir::OpView {
    using OpView::OpView;
    static constexpr const char *opName = "arith.mulf";
    EQ_DECLARE_OP_ID()
    static ir::Operation *
    build(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
    {
        return buildBinary(b, opName, lhs, rhs);
    }
};

/** Register all arith ops with @p ctx. */
void registerDialect(ir::Context &ctx);

} // namespace arith
} // namespace eq

#endif // EQ_DIALECTS_ARITH_HH
