#include "dialects/linalg.hh"

#include "base/logging.hh"

namespace eq {
namespace linalg {

ir::Operation *
ConvOp::build(ir::OpBuilder &b, ir::Value ifmap, ir::Value weight,
              ir::Value ofmap)
{
    return b.create(opName, {}, {ifmap, weight, ofmap});
}

ir::Operation *
MatmulOp::build(ir::OpBuilder &b, ir::Value a, ir::Value bm, ir::Value c)
{
    return b.create(opName, {}, {a, bm, c});
}

ir::Operation *
FillOp::build(ir::OpBuilder &b, ir::Value memref, int64_t value)
{
    ir::AttrDict attrs;
    attrs.set("value", ir::Attribute::integer(value));
    return b.create(opName, {}, {memref}, std::move(attrs));
}

ConvDims
convDims(ir::Operation *conv)
{
    eq_assert(ir::isa<ConvOp>(conv), "not a linalg.conv");
    ir::Type it = conv->operand(0).type();
    ir::Type wt = conv->operand(1).type();
    ir::Type ot = conv->operand(2).type();
    eq_assert(it.shape().size() == 3 && wt.shape().size() == 4 &&
                  ot.shape().size() == 3,
              "linalg.conv operand ranks must be 3/4/3");
    ConvDims d{};
    d.C = it.shape()[0];
    d.H = it.shape()[1];
    d.W = it.shape()[2];
    d.N = wt.shape()[0];
    d.Fh = wt.shape()[2];
    d.Fw = wt.shape()[3];
    d.Eh = ot.shape()[1];
    d.Ew = ot.shape()[2];
    return d;
}

namespace {

std::string
verifyConv(ir::Operation *op)
{
    if (op->numOperands() != 3)
        return "expects ifmap, weight, ofmap operands";
    for (unsigned i = 0; i < 3; ++i) {
        ir::Type t = op->operand(i).type();
        if (!t.isMemRef() && !t.isBuffer())
            return "operands must be memrefs";
    }
    ir::Type it = op->operand(0).type();
    ir::Type wt = op->operand(1).type();
    ir::Type ot = op->operand(2).type();
    if (it.shape().size() != 3)
        return "ifmap must be rank 3 (C x H x W)";
    if (wt.shape().size() != 4)
        return "weight must be rank 4 (N x C x Fh x Fw)";
    if (ot.shape().size() != 3)
        return "ofmap must be rank 3 (N x Eh x Ew)";
    if (it.shape()[0] != wt.shape()[1])
        return "channel mismatch between ifmap and weight";
    if (ot.shape()[0] != wt.shape()[0])
        return "filter count mismatch between weight and ofmap";
    int64_t eh = it.shape()[1] - wt.shape()[2] + 1;
    int64_t ew = it.shape()[2] - wt.shape()[3] + 1;
    if (ot.shape()[1] != eh || ot.shape()[2] != ew)
        return "ofmap spatial dims must be (H-Fh+1) x (W-Fw+1)";
    return "";
}

std::string
verifyMatmul(ir::Operation *op)
{
    if (op->numOperands() != 3)
        return "expects A, B, C operands";
    ir::Type a = op->operand(0).type();
    ir::Type b = op->operand(1).type();
    ir::Type c = op->operand(2).type();
    if (a.shape().size() != 2 || b.shape().size() != 2 ||
        c.shape().size() != 2)
        return "operands must be rank-2 memrefs";
    if (a.shape()[1] != b.shape()[0] || c.shape()[0] != a.shape()[0] ||
        c.shape()[1] != b.shape()[1])
        return "matmul shape mismatch";
    return "";
}

std::string
verifyFill(ir::Operation *op)
{
    if (op->numOperands() != 1)
        return "expects one memref operand";
    if (!op->attr("value"))
        return "requires a 'value' attribute";
    return "";
}

} // namespace

void
registerDialect(ir::Context &ctx)
{
    ctx.registerOp({ConvOp::opName, verifyConv, false});
    ctx.registerOp({MatmulOp::opName, verifyMatmul, false});
    ctx.registerOp({FillOp::opName, verifyFill, false});
}

} // namespace linalg
} // namespace eq
