/**
 * @file
 * Cross-dialect registration entry point (declared in ir/context.hh).
 */

#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "dialects/linalg.hh"
#include "dialects/memref.hh"
#include "ir/context.hh"

namespace eq {
namespace ir {

namespace {

std::string
verifyModule(Operation *op)
{
    if (op->numRegions() != 1)
        return "module must have exactly one region";
    return "";
}

} // namespace

void
registerAllDialects(Context &ctx)
{
    ctx.registerOp({"builtin.module", verifyModule, false});
    arith::registerDialect(ctx);
    memref::registerDialect(ctx);
    affine::registerDialect(ctx);
    linalg::registerDialect(ctx);
    equeue::registerDialect(ctx);
}

} // namespace ir
} // namespace eq
