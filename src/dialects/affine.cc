#include "dialects/affine.hh"

namespace eq {
namespace affine {

ir::Operation *
ForOp::build(ir::OpBuilder &b, int64_t lb, int64_t ub, int64_t step)
{
    ir::AttrDict attrs;
    attrs.set("lb", ir::Attribute::integer(lb));
    attrs.set("ub", ir::Attribute::integer(ub));
    attrs.set("step", ir::Attribute::integer(step));
    ir::Operation *op =
        b.create(opName, {}, {}, std::move(attrs), /*num_regions=*/1);
    ir::Block &body = op->region(0).ensureBlock();
    body.addArgument(b.context().indexType());
    return op;
}

ir::Operation *
ParallelOp::build(ir::OpBuilder &b, std::vector<int64_t> lbs,
                  std::vector<int64_t> ubs, std::vector<int64_t> steps)
{
    if (steps.empty())
        steps.assign(lbs.size(), 1);
    ir::AttrDict attrs;
    attrs.set("lbs", ir::Attribute::i64Array(lbs));
    attrs.set("ubs", ir::Attribute::i64Array(ubs));
    attrs.set("steps", ir::Attribute::i64Array(steps));
    ir::Operation *op =
        b.create(opName, {}, {}, std::move(attrs), /*num_regions=*/1);
    ir::Block &body = op->region(0).ensureBlock();
    for (size_t i = 0; i < lbs.size(); ++i)
        body.addArgument(b.context().indexType());
    return op;
}

ir::Operation *
LoadOp::build(ir::OpBuilder &b, ir::Value memref,
              std::vector<ir::Value> indices)
{
    ir::Type elem = b.context().intType(memref.type().elemBits());
    std::vector<ir::Value> operands{memref};
    operands.insert(operands.end(), indices.begin(), indices.end());
    return b.create(opName, {elem}, std::move(operands));
}

std::vector<ir::Value>
LoadOp::indices() const
{
    auto ops = _op->operands();
    return {ops.begin() + 1, ops.end()};
}

ir::Operation *
StoreOp::build(ir::OpBuilder &b, ir::Value value, ir::Value memref,
               std::vector<ir::Value> indices)
{
    std::vector<ir::Value> operands{value, memref};
    operands.insert(operands.end(), indices.begin(), indices.end());
    return b.create(opName, {}, std::move(operands));
}

std::vector<ir::Value>
StoreOp::indices() const
{
    auto ops = _op->operands();
    return {ops.begin() + 2, ops.end()};
}

ir::Operation *
YieldOp::build(ir::OpBuilder &b, std::vector<ir::Value> values)
{
    return b.create(opName, {}, std::move(values));
}

namespace {

std::string
verifyFor(ir::Operation *op)
{
    if (op->numRegions() != 1 || op->region(0).empty())
        return "expects a body region";
    if (op->region(0).front().numArguments() != 1)
        return "body must have exactly one induction variable";
    if (!op->attr("lb") || !op->attr("ub") || !op->attr("step"))
        return "requires lb/ub/step attributes";
    return "";
}

std::string
verifyParallel(ir::Operation *op)
{
    if (op->numRegions() != 1 || op->region(0).empty())
        return "expects a body region";
    auto lbs = op->attr("lbs");
    auto ubs = op->attr("ubs");
    if (!lbs || !ubs)
        return "requires lbs/ubs attributes";
    if (lbs.asI64Array().size() != ubs.asI64Array().size())
        return "lbs/ubs rank mismatch";
    if (op->region(0).front().numArguments() != lbs.asI64Array().size())
        return "induction variable count mismatch";
    return "";
}

std::string
verifyLoad(ir::Operation *op)
{
    if (op->numOperands() < 1)
        return "expects a memref operand";
    ir::Type mt = op->operand(0).type();
    if (!mt.isMemRef() && !mt.isBuffer())
        return "first operand must be a memref or buffer";
    if (op->numOperands() - 1 != mt.shape().size())
        return "index count must match memref rank";
    return "";
}

std::string
verifyStore(ir::Operation *op)
{
    if (op->numOperands() < 2)
        return "expects value and memref operands";
    ir::Type mt = op->operand(1).type();
    if (!mt.isMemRef() && !mt.isBuffer())
        return "second operand must be a memref or buffer";
    if (op->numOperands() - 2 != mt.shape().size())
        return "index count must match memref rank";
    return "";
}

} // namespace

void
registerDialect(ir::Context &ctx)
{
    ctx.registerOp({ForOp::opName, verifyFor, false});
    ctx.registerOp({ParallelOp::opName, verifyParallel, false});
    ctx.registerOp({LoadOp::opName, verifyLoad, false});
    ctx.registerOp({StoreOp::opName, verifyStore, false});
    ctx.registerOp({YieldOp::opName, nullptr, true});
}

} // namespace affine
} // namespace eq
