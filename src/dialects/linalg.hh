/**
 * @file
 * Linalg dialect subset: named tensor computations on memrefs.
 *
 * The lowering pipeline of the paper starts at this level: a convolution
 * expressed as one `linalg.conv` op, later lowered to explicit affine
 * loops and finally to an EQueue hardware model. The simulator can also
 * execute this level directly, using an analytic cost model, which gives
 * the fast/abstract end of the multi-level spectrum (Fig. 1).
 */

#ifndef EQ_DIALECTS_LINALG_HH
#define EQ_DIALECTS_LINALG_HH

#include "ir/builder.hh"

namespace eq {
namespace linalg {

/**
 * 2-D multi-channel convolution with N filters:
 *
 *   ofmap[n][eh][ew] += ifmap[c][eh+fh][ew+fw] * weight[n][c][fh][fw]
 *
 * Shapes: ifmap memref<C x H x W>, weight memref<N x C x Fh x Fw>,
 * ofmap memref<N x Eh x Ew> with Eh = H-Fh+1, Ew = W-Fw+1.
 */
class ConvOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "linalg.conv";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value ifmap,
                                ir::Value weight, ir::Value ofmap);

    ir::Value ifmap() const { return _op->operand(0); }
    ir::Value weight() const { return _op->operand(1); }
    ir::Value ofmap() const { return _op->operand(2); }
};

/** `linalg.matmul(%a, %b, %c)`: C += A * B on 2-D memrefs. */
class MatmulOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "linalg.matmul";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value a, ir::Value bm,
                                ir::Value c);
};

/** `linalg.fill(%memref) {value}`: splat a scalar constant. */
class FillOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "linalg.fill";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value memref,
                                int64_t value);

    int64_t fillValue() const { return _op->intAttr("value"); }
};

/** Dimensions of a ConvOp, derived from its operand types. */
struct ConvDims {
    int64_t C, H, W;    ///< ifmap: channels, height, width
    int64_t N, Fh, Fw;  ///< weight: filters, filter height/width
    int64_t Eh, Ew;     ///< ofmap spatial dims

    int64_t macs() const { return N * Eh * Ew * C * Fh * Fw; }
};

/** Extract (and sanity-check) the conv dimensions from op types. */
ConvDims convDims(ir::Operation *conv);

void registerDialect(ir::Context &ctx);

} // namespace linalg
} // namespace eq

#endif // EQ_DIALECTS_LINALG_HH
