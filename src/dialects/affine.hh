/**
 * @file
 * Affine dialect subset: counted loops, parallel loop nests, and
 * load/store on memrefs. The `--convert-linalg-to-affine-loops` pass
 * lowers convolutions into these ops; `--equeue-read-write` then converts
 * load/store into EQueue data movement.
 */

#ifndef EQ_DIALECTS_AFFINE_HH
#define EQ_DIALECTS_AFFINE_HH

#include "ir/builder.hh"

namespace eq {
namespace affine {

/**
 * `affine.for {lb, ub, step}` with a single-block region whose one
 * argument is the induction variable (index type).
 */
class ForOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "affine.for";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, int64_t lb, int64_t ub,
                                int64_t step = 1);

    int64_t lb() const { return _op->intAttr("lb"); }
    int64_t ub() const { return _op->intAttr("ub"); }
    int64_t step() const { return _op->intAttr("step"); }
    ir::Block &body() { return _op->region(0).front(); }
    ir::Value inductionVar() { return body().argument(0); }
};

/**
 * `affine.parallel {lbs, ubs, steps}` — a multi-dimensional parallel
 * loop nest. One region; block args are the induction variables.
 */
class ParallelOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "affine.parallel";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, std::vector<int64_t> lbs,
                                std::vector<int64_t> ubs,
                                std::vector<int64_t> steps = {});

    std::vector<int64_t> lbs() const
    {
        return _op->attr("lbs").asI64Array();
    }
    std::vector<int64_t> ubs() const
    {
        return _op->attr("ubs").asI64Array();
    }
    std::vector<int64_t> steps() const
    {
        return _op->attr("steps").asI64Array();
    }
    ir::Block &body() { return _op->region(0).front(); }
};

/** `affine.load(%memref, %i...) -> elem` */
class LoadOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "affine.load";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value memref,
                                std::vector<ir::Value> indices);

    ir::Value memref() const { return _op->operand(0); }
    std::vector<ir::Value> indices() const;
};

/** `affine.store(%value, %memref, %i...)` */
class StoreOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "affine.store";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value value,
                                ir::Value memref,
                                std::vector<ir::Value> indices);

    ir::Value value() const { return _op->operand(0); }
    ir::Value memref() const { return _op->operand(1); }
    std::vector<ir::Value> indices() const;
};

/** `affine.yield(values...)` — loop body terminator. */
class YieldOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "affine.yield";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b,
                                std::vector<ir::Value> values = {});
};

void registerDialect(ir::Context &ctx);

} // namespace affine
} // namespace eq

#endif // EQ_DIALECTS_AFFINE_HH
