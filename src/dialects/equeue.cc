#include "dialects/equeue.hh"

#include "base/logging.hh"

namespace eq {
namespace equeue {

// ---------------------------------------------------------------------------
// Structure ops

ir::Operation *
CreateProcOp::build(ir::OpBuilder &b, const std::string &kind)
{
    ir::AttrDict attrs;
    attrs.set("kind", ir::Attribute::string(kind));
    return b.create(opName, {b.context().procType()}, {}, std::move(attrs));
}

ir::Operation *
CreateDmaOp::build(ir::OpBuilder &b)
{
    return b.create(opName, {b.context().dmaType()}, {});
}

ir::Operation *
CreateMemOp::build(ir::OpBuilder &b, const std::string &kind,
                   std::vector<int64_t> shape, unsigned data_bits,
                   unsigned banks)
{
    ir::AttrDict attrs;
    attrs.set("kind", ir::Attribute::string(kind));
    attrs.set("shape", ir::Attribute::i64Array(std::move(shape)));
    attrs.set("data_bits", ir::Attribute::integer(data_bits));
    attrs.set("banks", ir::Attribute::integer(banks));
    return b.create(opName, {b.context().memType()}, {}, std::move(attrs));
}

ir::Operation *
CreateStreamOp::build(ir::OpBuilder &b, unsigned data_bits)
{
    ir::AttrDict attrs;
    attrs.set("data_bits", ir::Attribute::integer(data_bits));
    return b.create(opName, {b.context().streamType()}, {},
                    std::move(attrs));
}

ir::Operation *
CreateCompOp::build(ir::OpBuilder &b, const std::string &names,
                    std::vector<ir::Value> subcomps)
{
    ir::AttrDict attrs;
    attrs.set("names", ir::Attribute::string(names));
    return b.create(opName, {b.context().compType()}, std::move(subcomps),
                    std::move(attrs));
}

ir::Operation *
AddCompOp::build(ir::OpBuilder &b, ir::Value comp, const std::string &names,
                 std::vector<ir::Value> subcomps)
{
    ir::AttrDict attrs;
    attrs.set("names", ir::Attribute::string(names));
    std::vector<ir::Value> operands{comp};
    operands.insert(operands.end(), subcomps.begin(), subcomps.end());
    return b.create(opName, {}, std::move(operands), std::move(attrs));
}

ir::Operation *
ExtractCompOp::build(ir::OpBuilder &b, ir::Value comp,
                     const std::string &prefix,
                     std::vector<int64_t> indices, ir::Type result_type)
{
    ir::AttrDict attrs;
    attrs.set("prefix", ir::Attribute::string(prefix));
    attrs.set("indices", ir::Attribute::i64Array(std::move(indices)));
    return b.create(opName, {result_type}, {comp}, std::move(attrs));
}

std::string
ExtractCompOp::resolvedName() const
{
    std::string name = _op->strAttr("prefix");
    const auto &idx = _op->attr("indices").asI64Array();
    for (size_t i = 0; i < idx.size(); ++i) {
        if (i)
            name += "_";
        name += std::to_string(idx[i]);
    }
    return name;
}

ir::Operation *
GetCompOp::build(ir::OpBuilder &b, ir::Value comp, const std::string &name,
                 ir::Type result_type)
{
    ir::AttrDict attrs;
    attrs.set("name", ir::Attribute::string(name));
    return b.create(opName, {result_type}, {comp}, std::move(attrs));
}

ir::Operation *
CreateConnectionOp::build(ir::OpBuilder &b, const std::string &kind,
                          int64_t bandwidth_bytes_per_cycle)
{
    ir::AttrDict attrs;
    attrs.set("kind", ir::Attribute::string(kind));
    attrs.set("bandwidth",
              ir::Attribute::integer(bandwidth_bytes_per_cycle));
    return b.create(opName, {b.context().connectionType()}, {},
                    std::move(attrs));
}

// ---------------------------------------------------------------------------
// Data movement ops

ir::Operation *
AllocOp::build(ir::OpBuilder &b, ir::Value mem, std::vector<int64_t> shape,
               unsigned elem_bits)
{
    ir::Type bt = b.context().bufferType(std::move(shape), elem_bits);
    return b.create(opName, {bt}, {mem});
}

ir::Operation *
DeallocOp::build(ir::OpBuilder &b, ir::Value buffer)
{
    return b.create(opName, {}, {buffer});
}

ir::Operation *
ReadOp::build(ir::OpBuilder &b, ir::Value buffer, ir::Value conn,
              std::vector<ir::Value> indices)
{
    ir::Type bt = buffer.type();
    ir::Type result = indices.empty()
                          ? b.context().tensorType(bt.shape(),
                                                   bt.elemBits())
                          : b.context().intType(bt.elemBits());
    std::vector<ir::Value> operands{buffer};
    ir::AttrDict attrs;
    if (conn) {
        operands.push_back(conn);
        attrs.set("has_conn", ir::Attribute::integer(1));
    }
    attrs.set("num_indices",
              ir::Attribute::integer(static_cast<int64_t>(indices.size())));
    operands.insert(operands.end(), indices.begin(), indices.end());
    return b.create(opName, {result}, std::move(operands),
                    std::move(attrs));
}

std::vector<ir::Value>
ReadOp::indices() const
{
    unsigned start = 1 + (hasConn() ? 1 : 0);
    auto ops = _op->operands();
    return {ops.begin() + start, ops.end()};
}

ir::Operation *
WriteOp::build(ir::OpBuilder &b, ir::Value value, ir::Value buffer,
               ir::Value conn, std::vector<ir::Value> indices)
{
    std::vector<ir::Value> operands{value, buffer};
    ir::AttrDict attrs;
    if (conn) {
        operands.push_back(conn);
        attrs.set("has_conn", ir::Attribute::integer(1));
    }
    attrs.set("num_indices",
              ir::Attribute::integer(static_cast<int64_t>(indices.size())));
    operands.insert(operands.end(), indices.begin(), indices.end());
    return b.create(opName, {}, std::move(operands), std::move(attrs));
}

std::vector<ir::Value>
WriteOp::indices() const
{
    unsigned start = 2 + (hasConn() ? 1 : 0);
    auto ops = _op->operands();
    return {ops.begin() + start, ops.end()};
}

ir::Operation *
StreamReadOp::build(ir::OpBuilder &b, ir::Value stream, int64_t elems,
                    unsigned elem_bits, ir::Value conn)
{
    ir::Type result = b.context().tensorType({elems}, elem_bits);
    std::vector<ir::Value> operands{stream};
    ir::AttrDict attrs;
    attrs.set("elems", ir::Attribute::integer(elems));
    if (conn) {
        operands.push_back(conn);
        attrs.set("has_conn", ir::Attribute::integer(1));
    }
    return b.create(opName, {result}, std::move(operands),
                    std::move(attrs));
}

ir::Operation *
StreamWriteOp::build(ir::OpBuilder &b, ir::Value value, ir::Value stream,
                     ir::Value conn)
{
    std::vector<ir::Value> operands{value, stream};
    ir::AttrDict attrs;
    if (conn) {
        operands.push_back(conn);
        attrs.set("has_conn", ir::Attribute::integer(1));
    }
    return b.create(opName, {}, std::move(operands), std::move(attrs));
}

// ---------------------------------------------------------------------------
// Control ops

ir::Operation *
ControlStartOp::build(ir::OpBuilder &b)
{
    return b.create(opName, {b.context().eventType()}, {});
}

ir::Operation *
ControlAndOp::build(ir::OpBuilder &b, std::vector<ir::Value> events)
{
    return b.create(opName, {b.context().eventType()}, std::move(events));
}

ir::Operation *
ControlOrOp::build(ir::OpBuilder &b, std::vector<ir::Value> events)
{
    return b.create(opName, {b.context().eventType()}, std::move(events));
}

ir::Operation *
LaunchOp::build(ir::OpBuilder &b, std::vector<ir::Value> deps,
                ir::Value proc, std::vector<ir::Value> captured,
                std::vector<ir::Type> return_types)
{
    eq_assert(!deps.empty(), "launch requires at least one dependency");
    std::vector<ir::Value> operands(deps.begin(), deps.end());
    operands.push_back(proc);
    operands.insert(operands.end(), captured.begin(), captured.end());

    std::vector<ir::Type> results{b.context().eventType()};
    results.insert(results.end(), return_types.begin(), return_types.end());

    ir::AttrDict attrs;
    attrs.set("num_deps",
              ir::Attribute::integer(static_cast<int64_t>(deps.size())));

    ir::Operation *op = b.create(opName, std::move(results),
                                 std::move(operands), std::move(attrs),
                                 /*num_regions=*/1);
    ir::Block &body = op->region(0).ensureBlock();
    for (ir::Value v : captured)
        body.addArgument(v.type());
    return op;
}

std::vector<ir::Value>
LaunchOp::deps() const
{
    auto ops = _op->operands();
    return {ops.begin(), ops.begin() + numDeps()};
}

std::vector<ir::Value>
LaunchOp::captured() const
{
    auto ops = _op->operands();
    return {ops.begin() + numDeps() + 1, ops.end()};
}

ir::Operation *
MemcpyOp::build(ir::OpBuilder &b, ir::Value dep, ir::Value src,
                ir::Value dst, ir::Value dma, ir::Value conn)
{
    std::vector<ir::Value> operands{dep, src, dst, dma};
    ir::AttrDict attrs;
    if (conn) {
        operands.push_back(conn);
        attrs.set("has_conn", ir::Attribute::integer(1));
    }
    return b.create(opName, {b.context().eventType()}, std::move(operands),
                    std::move(attrs));
}

ir::Operation *
AwaitOp::build(ir::OpBuilder &b, std::vector<ir::Value> events)
{
    return b.create(opName, {}, std::move(events));
}

ir::Operation *
ReturnOp::build(ir::OpBuilder &b, std::vector<ir::Value> values)
{
    return b.create(opName, {}, std::move(values));
}

ir::Operation *
ExternOp::build(ir::OpBuilder &b, const std::string &signature,
                std::vector<ir::Value> args,
                std::vector<ir::Type> result_types)
{
    ir::AttrDict attrs;
    attrs.set("signature", ir::Attribute::string(signature));
    return b.create(opName, std::move(result_types), std::move(args),
                    std::move(attrs));
}

// ---------------------------------------------------------------------------
// Verifiers

namespace {

std::string
verifyCreateProc(ir::Operation *op)
{
    if (!op->attr("kind"))
        return "requires a 'kind' attribute";
    if (op->numResults() != 1 ||
        op->result(0).type().kind() != ir::TypeKind::Proc)
        return "must return a !equeue.proc";
    return "";
}

std::string
verifyCreateMem(ir::Operation *op)
{
    if (!op->attr("kind") || !op->attr("shape") || !op->attr("data_bits"))
        return "requires kind/shape/data_bits attributes";
    if (op->intAttrOr("banks", 1) < 1)
        return "banks must be >= 1";
    return "";
}

std::string
verifyCreateComp(ir::Operation *op)
{
    if (!op->attr("names"))
        return "requires a 'names' attribute";
    size_t names = 0;
    {
        const std::string &s = op->strAttr("names");
        bool in_word = false;
        for (char c : s) {
            if (c == ' ') {
                in_word = false;
            } else if (!in_word) {
                in_word = true;
                ++names;
            }
        }
    }
    if (names != op->numOperands())
        return "'names' count must match subcomponent count";
    for (ir::Value v : op->operands())
        if (!v.type().isComponent() &&
            v.type().kind() != ir::TypeKind::Stream)
            return "subcomponents must be components";
    return "";
}

std::string
verifyAddComp(ir::Operation *op)
{
    if (op->numOperands() < 1 ||
        op->operand(0).type().kind() != ir::TypeKind::Comp)
        return "first operand must be a !equeue.comp";
    return "";
}

std::string
verifyGetComp(ir::Operation *op)
{
    if (!op->attr("name"))
        return "requires a 'name' attribute";
    if (op->numOperands() != 1 ||
        op->operand(0).type().kind() != ir::TypeKind::Comp)
        return "operand must be a !equeue.comp";
    return "";
}

std::string
verifyCreateConnection(ir::Operation *op)
{
    if (!op->attr("kind") || !op->attr("bandwidth"))
        return "requires kind/bandwidth attributes";
    const std::string &kind = op->strAttr("kind");
    if (kind != "Streaming" && kind != "Window")
        return "kind must be Streaming or Window";
    if (op->intAttr("bandwidth") < 0)
        return "bandwidth must be >= 0 (0 = unlimited)";
    return "";
}

std::string
verifyAlloc(ir::Operation *op)
{
    if (op->numOperands() != 1 ||
        op->operand(0).type().kind() != ir::TypeKind::Mem)
        return "operand must be a !equeue.mem";
    if (op->numResults() != 1 || !op->result(0).type().isBuffer())
        return "must return a !equeue.buffer";
    return "";
}

std::string
verifyRead(ir::Operation *op)
{
    if (op->numOperands() < 1)
        return "expects a buffer operand";
    ir::Type bt = op->operand(0).type();
    if (!bt.isBuffer())
        return "first operand must be a buffer";
    bool has_conn = op->intAttrOr("has_conn", 0) != 0;
    if (has_conn &&
        (op->numOperands() < 2 ||
         op->operand(1).type().kind() != ir::TypeKind::Connection))
        return "has_conn set but operand 1 is not a connection";
    int64_t num_indices = op->intAttrOr("num_indices", 0);
    unsigned expected = 1 + (has_conn ? 1 : 0) +
                        static_cast<unsigned>(num_indices);
    if (op->numOperands() != expected)
        return "operand count inconsistent with has_conn/num_indices";
    if (num_indices != 0 &&
        num_indices != static_cast<int64_t>(bt.shape().size()))
        return "index count must be 0 or the buffer rank";
    return "";
}

std::string
verifyWrite(ir::Operation *op)
{
    if (op->numOperands() < 2)
        return "expects value and buffer operands";
    ir::Type bt = op->operand(1).type();
    if (!bt.isBuffer())
        return "second operand must be a buffer";
    bool has_conn = op->intAttrOr("has_conn", 0) != 0;
    if (has_conn &&
        (op->numOperands() < 3 ||
         op->operand(2).type().kind() != ir::TypeKind::Connection))
        return "has_conn set but operand 2 is not a connection";
    int64_t num_indices = op->intAttrOr("num_indices", 0);
    unsigned expected = 2 + (has_conn ? 1 : 0) +
                        static_cast<unsigned>(num_indices);
    if (op->numOperands() != expected)
        return "operand count inconsistent with has_conn/num_indices";
    return "";
}

std::string
verifyLaunch(ir::Operation *op)
{
    int64_t num_deps = op->intAttrOr("num_deps", 1);
    if (num_deps < 1)
        return "requires at least one dependency";
    if (static_cast<int64_t>(op->numOperands()) < num_deps + 1)
        return "too few operands for num_deps";
    for (int64_t i = 0; i < num_deps; ++i)
        if (!op->operand(static_cast<unsigned>(i)).type().isEvent())
            return "dependencies must be events";
    ir::Type pt = op->operand(static_cast<unsigned>(num_deps)).type();
    if (pt.kind() != ir::TypeKind::Proc && pt.kind() != ir::TypeKind::Dma)
        return "launch target must be a processor or DMA";
    if (op->numResults() < 1 || !op->result(0).type().isEvent())
        return "first result must be the done event";
    if (op->numRegions() != 1 || op->region(0).empty())
        return "requires a body region";
    size_t captured = op->numOperands() - num_deps - 1;
    if (op->region(0).front().numArguments() != captured)
        return "body block arg count must equal captured value count";
    return "";
}

std::string
verifyMemcpy(ir::Operation *op)
{
    bool has_conn = op->intAttrOr("has_conn", 0) != 0;
    unsigned expected = 4 + (has_conn ? 1 : 0);
    if (op->numOperands() != expected)
        return "expects dep, src, dst, dma (, conn) operands";
    if (!op->operand(0).type().isEvent())
        return "dep must be an event";
    if (!op->operand(1).type().isBuffer() ||
        !op->operand(2).type().isBuffer())
        return "src/dst must be buffers";
    ir::TypeKind dk = op->operand(3).type().kind();
    if (dk != ir::TypeKind::Dma && dk != ir::TypeKind::Proc)
        return "memcpy executor must be a DMA (or processor)";
    if (op->numResults() != 1 || !op->result(0).type().isEvent())
        return "must return the done event";
    return "";
}

std::string
verifyEvents(ir::Operation *op)
{
    for (ir::Value v : op->operands())
        if (!v.type().isEvent())
            return "operands must be events";
    return "";
}

std::string
verifyExternOp(ir::Operation *op)
{
    if (!op->attr("signature"))
        return "requires a 'signature' attribute";
    return "";
}

} // namespace

void
registerDialect(ir::Context &ctx)
{
    ctx.registerOp({CreateProcOp::opName, verifyCreateProc, false});
    ctx.registerOp({CreateDmaOp::opName, nullptr, false});
    ctx.registerOp({CreateMemOp::opName, verifyCreateMem, false});
    ctx.registerOp({CreateStreamOp::opName, nullptr, false});
    ctx.registerOp({CreateCompOp::opName, verifyCreateComp, false});
    ctx.registerOp({AddCompOp::opName, verifyAddComp, false});
    ctx.registerOp({GetCompOp::opName, verifyGetComp, false});
    ctx.registerOp({ExtractCompOp::opName, nullptr, false});
    ctx.registerOp(
        {CreateConnectionOp::opName, verifyCreateConnection, false});
    ctx.registerOp({AllocOp::opName, verifyAlloc, false});
    ctx.registerOp({DeallocOp::opName, nullptr, false});
    ctx.registerOp({ReadOp::opName, verifyRead, false});
    ctx.registerOp({WriteOp::opName, verifyWrite, false});
    ctx.registerOp({StreamReadOp::opName, nullptr, false});
    ctx.registerOp({StreamWriteOp::opName, nullptr, false});
    ctx.registerOp({ControlStartOp::opName, nullptr, false});
    ctx.registerOp({ControlAndOp::opName, verifyEvents, false});
    ctx.registerOp({ControlOrOp::opName, verifyEvents, false});
    ctx.registerOp({LaunchOp::opName, verifyLaunch, false});
    ctx.registerOp({MemcpyOp::opName, verifyMemcpy, false});
    ctx.registerOp({AwaitOp::opName, verifyEvents, false});
    ctx.registerOp({ReturnOp::opName, nullptr, true});
    ctx.registerOp({ExternOp::opName, verifyExternOp, false});
}

} // namespace equeue
} // namespace eq
