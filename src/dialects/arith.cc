#include "dialects/arith.hh"

namespace eq {
namespace arith {

ir::Operation *
ConstantOp::build(ir::OpBuilder &b, int64_t value, ir::Type type)
{
    ir::AttrDict attrs;
    attrs.set("value", ir::Attribute::integer(value));
    return b.create(opName, {type}, {}, std::move(attrs));
}

ir::Operation *
ConstantOp::build(ir::OpBuilder &b, double value, ir::Type type)
{
    ir::AttrDict attrs;
    attrs.set("value", ir::Attribute::floating(value));
    return b.create(opName, {type}, {}, std::move(attrs));
}

ir::Operation *
buildBinary(ir::OpBuilder &b, const char *name, ir::Value lhs, ir::Value rhs)
{
    return b.create(name, {lhs.type()}, {lhs, rhs});
}

namespace {

std::string
verifyBinary(ir::Operation *op)
{
    if (op->numOperands() != 2)
        return "expects exactly two operands";
    if (op->numResults() != 1)
        return "expects exactly one result";
    return "";
}

std::string
verifyConstant(ir::Operation *op)
{
    if (op->numOperands() != 0)
        return "expects no operands";
    if (op->numResults() != 1)
        return "expects one result";
    if (!op->attr("value"))
        return "requires a 'value' attribute";
    return "";
}

} // namespace

void
registerDialect(ir::Context &ctx)
{
    ctx.registerOp({ConstantOp::opName, verifyConstant, false});
    for (const char *name :
         {AddIOp::opName, SubIOp::opName, MulIOp::opName,
          DivSIOp::opName, RemSIOp::opName, AddFOp::opName,
          MulFOp::opName}) {
        ctx.registerOp({name, verifyBinary, false});
    }
}

} // namespace arith
} // namespace eq
