#include "dialects/memref.hh"

namespace eq {
namespace memref {

ir::Operation *
AllocOp::build(ir::OpBuilder &b, std::vector<int64_t> shape,
               unsigned elem_bits)
{
    ir::Type t = b.context().memrefType(std::move(shape), elem_bits);
    return b.create(opName, {t}, {});
}

ir::Operation *
DeallocOp::build(ir::OpBuilder &b, ir::Value memref)
{
    return b.create(opName, {}, {memref});
}

namespace {

std::string
verifyAlloc(ir::Operation *op)
{
    if (op->numResults() != 1 || !op->result(0).type().isMemRef())
        return "expects a single memref result";
    return "";
}

std::string
verifyDealloc(ir::Operation *op)
{
    if (op->numOperands() != 1 || !op->operand(0).type().isMemRef())
        return "expects a single memref operand";
    return "";
}

} // namespace

void
registerDialect(ir::Context &ctx)
{
    ctx.registerOp({AllocOp::opName, verifyAlloc, false});
    ctx.registerOp({DeallocOp::opName, verifyDealloc, false});
}

} // namespace memref
} // namespace eq
