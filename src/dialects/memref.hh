/**
 * @file
 * MemRef dialect: host-level shaped buffers used by the Linalg and Affine
 * stages of the lowering pipeline, before buffers are placed on modeled
 * device memories by the allocate-buffer pass.
 */

#ifndef EQ_DIALECTS_MEMREF_HH
#define EQ_DIALECTS_MEMREF_HH

#include "ir/builder.hh"

namespace eq {
namespace memref {

/** `memref.alloc() : () -> memref<shape x iN>` */
class AllocOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "memref.alloc";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b,
                                std::vector<int64_t> shape,
                                unsigned elem_bits);
};

/** `memref.dealloc(%m)` */
class DeallocOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "memref.dealloc";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value memref);
};

void registerDialect(ir::Context &ctx);

} // namespace memref
} // namespace eq

#endif // EQ_DIALECTS_MEMREF_HH
