/**
 * @file
 * The EQueue dialect (the paper's core contribution, Section III).
 *
 * Ops fall into four groups:
 *  - structure:    create_proc / create_mem / create_dma / create_comp /
 *                  add_comp / get_comp / create_connection / create_stream
 *  - data motion:  alloc / dealloc / read / write / stream_read /
 *                  stream_write
 *  - control:      launch / memcpy / control_start / control_and /
 *                  control_or / await / return
 *  - extension:    equeue.op (custom signatures, Section III-E)
 *
 * Operand layout conventions (used by verifier and simulation engine):
 *  - launch: [deps x num_deps, proc, captured...]; region block args
 *    mirror the captured values; results are [done_event, returns...].
 *  - memcpy: [dep, src_buffer, dst_buffer, dma (, connection)]
 *  - read:   [buffer (, connection) (, indices...)] -> tensor | scalar
 *  - write:  [value, buffer (, connection) (, indices...)]
 *  The presence of a connection operand is flagged by the `has_conn`
 *  attribute; the index count is `num_indices`.
 */

#ifndef EQ_DIALECTS_EQUEUE_HH
#define EQ_DIALECTS_EQUEUE_HH

#include <optional>

#include "ir/builder.hh"

namespace eq {
namespace equeue {

// ---------------------------------------------------------------------------
// Structure ops

/** `equeue.create_proc {kind}` — processor kinds are simulator-library
 *  model names: "ARMr5", "ARMr6", "MAC", "AIEngine", "Generic". */
class CreateProcOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.create_proc";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, const std::string &kind);
    const std::string &kind() const { return _op->strAttr("kind"); }
};

/** `equeue.create_dma` — a processor specialised for data movement. */
class CreateDmaOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.create_dma";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b);
};

/**
 * `equeue.create_mem {kind, shape, data_bits, banks}` — memory kinds are
 * component-library model names: "SRAM", "Register", "DRAM", or any
 * custom-registered memory class (e.g. "Cache").
 */
class CreateMemOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.create_mem";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, const std::string &kind,
                                std::vector<int64_t> shape,
                                unsigned data_bits, unsigned banks = 1);
    const std::string &kind() const { return _op->strAttr("kind"); }
    std::vector<int64_t> shape() const
    {
        return _op->attr("shape").asI64Array();
    }
    unsigned dataBits() const
    {
        return static_cast<unsigned>(_op->intAttr("data_bits"));
    }
    unsigned banks() const
    {
        return static_cast<unsigned>(_op->intAttr("banks"));
    }
};

/** `equeue.create_stream {data_bits}` — a FIFO stream endpoint
 *  (models AXI4-Stream style interfaces in the AI Engine case study). */
class CreateStreamOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.create_stream";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, unsigned data_bits);
};

/** `equeue.create_comp {names}(subcomponents...)` */
class CreateCompOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.create_comp";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, const std::string &names,
                                std::vector<ir::Value> subcomps);
};

/** `equeue.add_comp {names}(comp, subcomponents...)` */
class AddCompOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.add_comp";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value comp,
                                const std::string &names,
                                std::vector<ir::Value> subcomps);
};

/** `equeue.extract_comp {prefix, indices}(comp) -> component` —
 *  symbolic indexed reference into a component array (e.g. prefix
 *  "PE_" + indices [1,2] names "PE_1_2"); produced by
 *  --parallel-to-equeue, resolved to get_comp by --lower-extraction. */
class ExtractCompOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.extract_comp";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value comp,
                                const std::string &prefix,
                                std::vector<int64_t> indices,
                                ir::Type result_type);
    /** The component name the reference resolves to. */
    std::string resolvedName() const;
};

/** `equeue.get_comp {name}(comp) -> component` */
class GetCompOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.get_comp";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value comp,
                                const std::string &name,
                                ir::Type result_type);
};

/** `equeue.create_connection {kind, bandwidth}` — kind is "Streaming"
 *  (simultaneous read+write) or "Window" (exclusive locking);
 *  bandwidth is bytes/cycle, 0 meaning unlimited (§III-A). */
class CreateConnectionOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.create_connection";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, const std::string &kind,
                                int64_t bandwidth_bytes_per_cycle);
    const std::string &kind() const { return _op->strAttr("kind"); }
    int64_t bandwidth() const { return _op->intAttr("bandwidth"); }
};

// ---------------------------------------------------------------------------
// Data movement ops

/** `equeue.alloc(mem) -> !equeue.buffer<shape x bits>` */
class AllocOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.alloc";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value mem,
                                std::vector<int64_t> shape,
                                unsigned elem_bits);
    ir::Value mem() const { return _op->operand(0); }
};

/** `equeue.dealloc(buffer)` */
class DeallocOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.dealloc";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value buffer);
};

/**
 * `equeue.read(buffer (, conn) (, indices...))`.
 * Without indices the whole buffer is read and the result is a tensor;
 * with indices a single element is read and the result is a scalar.
 */
class ReadOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.read";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value buffer,
                                ir::Value conn = ir::Value(),
                                std::vector<ir::Value> indices = {});

    ir::Value buffer() const { return _op->operand(0); }
    bool hasConn() const { return _op->intAttrOr("has_conn", 0) != 0; }
    ir::Value conn() const
    {
        return hasConn() ? _op->operand(1) : ir::Value();
    }
    std::vector<ir::Value> indices() const;
};

/** `equeue.write(value, buffer (, conn) (, indices...))`. */
class WriteOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.write";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value value,
                                ir::Value buffer,
                                ir::Value conn = ir::Value(),
                                std::vector<ir::Value> indices = {});

    ir::Value value() const { return _op->operand(0); }
    ir::Value buffer() const { return _op->operand(1); }
    bool hasConn() const { return _op->intAttrOr("has_conn", 0) != 0; }
    ir::Value conn() const
    {
        return hasConn() ? _op->operand(2) : ir::Value();
    }
    std::vector<ir::Value> indices() const;
};

/** `equeue.stream_read(stream (, conn)) {elems}` -> tensor<elems x bits>.
 *  Blocks the executing processor until `elems` elements are available. */
class StreamReadOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.stream_read";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value stream,
                                int64_t elems, unsigned elem_bits,
                                ir::Value conn = ir::Value());
    bool hasConn() const { return _op->intAttrOr("has_conn", 0) != 0; }
};

/** `equeue.stream_write(value, stream (, conn))`. */
class StreamWriteOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.stream_write";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value value,
                                ir::Value stream,
                                ir::Value conn = ir::Value());
    bool hasConn() const { return _op->intAttrOr("has_conn", 0) != 0; }
};

// ---------------------------------------------------------------------------
// Control ops

/** `equeue.control_start() -> event` — begins a chain of events. */
class ControlStartOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.control_start";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b);
};

/** `equeue.control_and(events...) -> event` — ready when all finish. */
class ControlAndOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.control_and";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b,
                                std::vector<ir::Value> events);
};

/** `equeue.control_or(events...) -> event` — ready when any finishes. */
class ControlOrOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.control_or";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b,
                                std::vector<ir::Value> events);
};

/**
 * `equeue.launch(deps..., proc, captured...) ({body}) -> (event,
 * returns...)`. The body is dispatched onto `proc`'s event queue once all
 * deps complete; block args alias the captured values.
 */
class LaunchOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.launch";
    EQ_DECLARE_OP_ID()

    /**
     * @param deps events this launch waits for (>= 1)
     * @param proc target processor (proc or dma typed)
     * @param captured resources handed to the body
     * @param return_types types of values the body returns
     */
    static ir::Operation *build(ir::OpBuilder &b,
                                std::vector<ir::Value> deps, ir::Value proc,
                                std::vector<ir::Value> captured,
                                std::vector<ir::Type> return_types = {});

    unsigned numDeps() const
    {
        return static_cast<unsigned>(_op->intAttrOr("num_deps", 1));
    }
    std::vector<ir::Value> deps() const;
    ir::Value proc() const { return _op->operand(numDeps()); }
    std::vector<ir::Value> captured() const;
    ir::Block &body() { return _op->region(0).front(); }
    ir::Value done() { return _op->result(0); }
};

/** `equeue.memcpy(dep, src, dst, dma (, conn)) -> event`. */
class MemcpyOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.memcpy";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b, ir::Value dep,
                                ir::Value src, ir::Value dst, ir::Value dma,
                                ir::Value conn = ir::Value());

    ir::Value dep() const { return _op->operand(0); }
    ir::Value src() const { return _op->operand(1); }
    ir::Value dst() const { return _op->operand(2); }
    ir::Value dma() const { return _op->operand(3); }
    bool hasConn() const { return _op->intAttrOr("has_conn", 0) != 0; }
    ir::Value conn() const
    {
        return hasConn() ? _op->operand(4) : ir::Value();
    }
    ir::Value done() { return _op->result(0); }
};

/** `equeue.await(events...)` — blocks the current block; with no
 *  operands, waits for every event previously spawned by this block. */
class AwaitOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.await";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b,
                                std::vector<ir::Value> events = {});
};

/** `equeue.return(values...)` — launch body terminator. */
class ReturnOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.return";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b,
                                std::vector<ir::Value> values = {});
};

// ---------------------------------------------------------------------------
// Extension op (Section III-E)

/**
 * `equeue.op {signature}(args...) -> (results...)` — escape hatch for
 * hardware operations no dialect expresses; the simulation engine looks
 * up `signature` in its OpFunction registry (e.g. "mul4", "mac4").
 */
class ExternOp : public ir::OpView {
  public:
    using OpView::OpView;
    static constexpr const char *opName = "equeue.op";
    EQ_DECLARE_OP_ID()

    static ir::Operation *build(ir::OpBuilder &b,
                                const std::string &signature,
                                std::vector<ir::Value> args,
                                std::vector<ir::Type> result_types = {});
    const std::string &signature() const
    {
        return _op->strAttr("signature");
    }
};

/** Register all EQueue ops with @p ctx. */
void registerDialect(ir::Context &ctx);

} // namespace equeue
} // namespace eq

#endif // EQ_DIALECTS_EQUEUE_HH
