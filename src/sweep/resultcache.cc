/**
 * @file
 * ResultCache implementation. Same NDJSON + CRC + single-write(2)
 * discipline as the sweep journal, but with the opposite failure
 * policy: a cache is recomputable, so damage and staleness degrade to
 * a rewrite, never to an error the caller must handle.
 */

#include "sweep/resultcache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "base/fsutil.hh"
#include "serve/protocol.hh"

namespace eq {
namespace sweep {

namespace {

constexpr int kCacheVersion = 1;

std::string
hexU64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
hexToU64(const std::string &s, uint64_t *out)
{
    if (s.empty() || s.size() > 16)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | uint64_t(d);
    }
    *out = v;
    return true;
}

std::string
recordPayload(uint64_t hash, const std::string &key,
              const std::vector<Cell> &cells)
{
    serve::Json rec = serve::Json::object();
    rec.set("h", hexU64(hash));
    rec.set("key", key);
    rec.set("cells", serve::cellsToJson(cells));
    return rec.dump();
}

std::string
sealRecord(const std::string &payload)
{
    uint32_t crc = fs::crc32(payload.data(), payload.size());
    std::string line = payload;
    line.pop_back();
    line += ",\"crc\":";
    line += std::to_string(crc);
    line += "}\n";
    return line;
}

bool
parseRecordLine(const std::string &line,
                const std::vector<Column> &schema, uint64_t *hash,
                std::string *key, std::vector<Cell> *cells)
{
    serve::Json j;
    std::string err;
    if (!serve::Json::parse(line, &j, &err) || !j.isObject())
        return false;
    const serve::Json *jh = j.find("h");
    const serve::Json *jkey = j.find("key");
    const serve::Json *jcells = j.find("cells");
    const serve::Json *jcrc = j.find("crc");
    if (!jh || !jh->isStr() || !jkey || !jkey->isStr() || !jcells ||
        !jcrc || !jcrc->isInt())
        return false;
    if (!hexToU64(jh->asStr(), hash))
        return false;
    if (!serve::cellsFromJson(*jcells, schema, cells, nullptr))
        return false;
    const std::string payload =
        recordPayload(*hash, jkey->asStr(), *cells);
    if (int64_t(fs::crc32(payload.data(), payload.size())) !=
        jcrc->asInt())
        return false;
    *key = jkey->asStr();
    return true;
}

} // namespace

ResultCache::~ResultCache() { close(); }

void
ResultCache::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

uint64_t
ResultCache::hashKey(const std::string &key)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
ResultCache::writeHeader(std::string *err)
{
    serve::Json h = serve::Json::object();
    h.set("cache", "eqsweep-results");
    h.set("version", kCacheVersion);
    h.set("schema", _schemaSig);
    h.set("backend", _backend);
    h.set("fuse", _fuse);
    const std::string line = h.dump() + "\n";
    if (::write(_fd, line.data(), line.size()) !=
        ssize_t(line.size())) {
        if (err)
            *err = "write cache header " + _path + ": " +
                   std::strerror(errno);
        return false;
    }
    if (::fsync(_fd) != 0) {
        if (err)
            *err = "fsync cache header " + _path + ": " +
                   std::strerror(errno);
        return false;
    }
    return true;
}

bool
ResultCache::open(const std::string &path, const std::string &schema_sig,
                  const std::string &backend, const std::string &fuse,
                  const std::vector<Column> &schema, std::string *err)
{
    close();
    _path = path;
    _schemaSig = schema_sig;
    _backend = backend;
    _fuse = fuse;
    _schema = schema;
    _byHash.clear();
    _stats = Stats();

    // Read whatever is there; decide between resume-append, truncate
    // to a valid prefix, or start over with a fresh header.
    std::string text;
    bool haveFile = fs::fileExists(path);
    if (haveFile && !fs::readFile(path, &text, err))
        return false;

    bool rewrite = !haveFile;
    size_t keptBytes = 0;
    std::vector<Row> loaded;
    std::vector<uint64_t> loadedHash;
    if (haveFile) {
        size_t headerEnd = text.find('\n');
        serve::Json hj;
        std::string perr;
        if (headerEnd == std::string::npos ||
            !serve::Json::parse(text.substr(0, headerEnd), &hj, &perr) ||
            !hj.isObject() ||
            hj.getStr("cache", "") != "eqsweep-results" ||
            hj.getInt("version", -1) != kCacheVersion ||
            hj.getStr("schema", "") != schema_sig ||
            hj.getStr("backend", "") != backend ||
            hj.getStr("fuse", "") != fuse) {
            // Stale or unreadable header: the whole file describes
            // rows this sweep must not reuse.
            rewrite = true;
            size_t droppedRows = 0;
            for (char c : text)
                droppedRows += c == '\n';
            _stats.discarded += droppedRows > 0 ? droppedRows - 1 : 0;
        } else {
            keptBytes = headerEnd + 1;
            size_t pos = keptBytes;
            while (pos < text.size()) {
                size_t nl = text.find('\n', pos);
                const bool complete = nl != std::string::npos;
                uint64_t hash = 0;
                std::string key;
                std::vector<Cell> cells;
                if (complete &&
                    parseRecordLine(
                        text.substr(pos, nl - pos), schema, &hash,
                        &key, &cells)) {
                    loaded.push_back(Row{std::move(key),
                                         std::move(cells)});
                    loadedHash.push_back(hash);
                    pos = nl + 1;
                    keptBytes = pos;
                    continue;
                }
                // First bad line: drop it and everything after. A
                // cache is recomputable, so (unlike the journal) a
                // damaged middle is not worth refusing over.
                size_t remaining = 0;
                for (size_t p = pos; p < text.size(); ++p)
                    remaining += text[p] == '\n';
                _stats.discarded += remaining ? remaining : 1;
                break;
            }
        }
    }

    if (rewrite) {
        _fd = ::open(path.c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
        if (_fd < 0) {
            if (err)
                *err = "create cache " + path + ": " +
                       std::strerror(errno);
            return false;
        }
        return writeHeader(err);
    }

    if (keptBytes < text.size() &&
        ::truncate(path.c_str(), off_t(keptBytes)) != 0) {
        if (err)
            *err = "truncate cache " + path + ": " +
                   std::strerror(errno);
        return false;
    }
    _fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (_fd < 0) {
        if (err)
            *err = "open cache " + path + ": " + std::strerror(errno);
        return false;
    }
    for (size_t i = 0; i < loaded.size(); ++i) {
        auto &bucket = _byHash[loadedHash[i]];
        bool dup = false;
        for (const Row &row : bucket)
            dup = dup || row.key == loaded[i].key;
        if (!dup) {
            bucket.push_back(std::move(loaded[i]));
            ++_stats.loaded;
            ++_stats.entries;
        }
    }
    return true;
}

const std::vector<Cell> *
ResultCache::lookup(const std::string &key)
{
    return lookupHashed(hashKey(key), key);
}

const std::vector<Cell> *
ResultCache::lookupHashed(uint64_t hash, const std::string &key)
{
    auto it = _byHash.find(hash);
    if (it != _byHash.end()) {
        for (const Row &row : it->second) {
            if (row.key == key) {
                ++_stats.hits;
                return &row.cells;
            }
            ++_stats.collisions;
        }
    }
    ++_stats.misses;
    return nullptr;
}

bool
ResultCache::contains(const std::string &key) const
{
    auto it = _byHash.find(hashKey(key));
    if (it == _byHash.end())
        return false;
    for (const Row &row : it->second)
        if (row.key == key)
            return true;
    return false;
}

bool
ResultCache::appendRecordLine(uint64_t hash, const std::string &key,
                              const std::vector<Cell> &cells,
                              std::string *err)
{
    if (_fd < 0) {
        if (err)
            *err = "result cache is not open";
        return false;
    }
    const std::string line = sealRecord(recordPayload(hash, key, cells));
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(_fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("cache write: ") +
                       std::strerror(errno);
            return false;
        }
        off += size_t(n);
    }
    return true;
}

bool
ResultCache::appendHashed(uint64_t hash, const std::string &key,
                          const std::vector<Cell> &cells,
                          std::string *err)
{
    auto &bucket = _byHash[hash];
    for (const Row &row : bucket)
        if (row.key == key)
            return true; // first write wins; equal keys ⇒ equal rows
    if (!appendRecordLine(hash, key, cells, err))
        return false;
    bucket.push_back(Row{key, cells});
    ++_stats.appended;
    ++_stats.entries;
    return true;
}

bool
ResultCache::append(const std::string &key,
                    const std::vector<Cell> &cells, std::string *err)
{
    return appendHashed(hashKey(key), key, cells, err);
}

bool
ResultCache::sync(std::string *err)
{
    if (_fd >= 0 && ::fsync(_fd) != 0) {
        if (err)
            *err = std::string("cache fsync: ") + std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace sweep
} // namespace eq
