/**
 * @file
 * SweepRunner: sharded, batched execution of a scenario grid.
 *
 * The runner shards a Grid's points across a pool of worker threads.
 * Nothing is shared between workers — each gets a dense worker id with
 * which the caller indexes per-worker state (typically one ir::Context
 * plus one sim::Simulator / sim::BatchSession; see bench/bench_util.hh
 * for the systolic instantiation), following the bulk-synchronous
 * independent-unit model that makes simulator sweeps embarrassingly
 * parallel. Points are claimed dynamically (an atomic cursor) for load
 * balance, but results land in a slot per point index, so the emitted
 * table is byte-identical for any thread count.
 *
 * Thread-count resolution: Options::threads when nonzero, else the
 * EQ_SWEEP_THREADS environment variable, else hardware concurrency;
 * always clamped to [1, number of points].
 */

#ifndef EQ_SWEEP_RUNNER_HH
#define EQ_SWEEP_RUNNER_HH

#include <functional>

#include "sweep/grid.hh"
#include "sweep/table.hh"

namespace eq {
namespace sweep {

struct RunnerOptions {
    /** Worker threads; 0 = EQ_SWEEP_THREADS env, else hardware. */
    unsigned threads = 0;
};

class SweepRunner {
  public:
    explicit SweepRunner(RunnerOptions opts = {});

    /** Produce one result row for @p point. Runs on a worker thread;
     *  @p worker is dense in [0, threads) and stable for that thread,
     *  so it can index caller-owned per-worker state. */
    using RowFn =
        std::function<std::vector<Cell>(const Point &point,
                                        unsigned worker)>;

    /** Run every point of @p grid through @p fn; rows are collected in
     *  point-index order into a table with @p schema. */
    Table run(const Grid &grid, std::vector<Column> schema,
              const RowFn &fn) const;

    /** Same over pre-enumerated points (lets callers that already
     *  materialized grid.points() — e.g. to size a worker pool —
     *  avoid enumerating the grid twice). */
    Table run(const std::vector<Point> &points,
              std::vector<Column> schema, const RowFn &fn) const;

    /** The thread count run() would use for @p num_points points. */
    unsigned threadsFor(size_t num_points) const;

  private:
    RunnerOptions _opts;
};

} // namespace sweep
} // namespace eq

#endif // EQ_SWEEP_RUNNER_HH
