/**
 * @file
 * Grid enumeration: an odometer over the axes in declaration order
 * (last axis fastest), filters applied per combination, dense indices
 * assigned to survivors.
 */

#include "sweep/grid.hh"

#include "base/logging.hh"

namespace eq {
namespace sweep {

int64_t
Point::at(const std::string &axis) const
{
    eq_assert(_grid, "point is not attached to a grid");
    return _values[_grid->axisIndex(axis)];
}

int64_t
Point::at(size_t axis) const
{
    eq_assert(axis < _values.size(), "axis index out of range");
    return _values[axis];
}

Grid &
Grid::axis(std::string name, std::vector<int64_t> values)
{
    eq_assert(!values.empty(), "axis '", name, "' has no values");
    for (const auto &a : _axes)
        eq_assert(a.name != name, "duplicate axis '", name, "'");
    _axes.push_back(Axis{std::move(name), std::move(values)});
    return *this;
}

Grid &
Grid::filter(std::function<bool(const Point &)> keep)
{
    _filters.push_back(std::move(keep));
    return *this;
}

size_t
Grid::axisIndex(const std::string &name) const
{
    for (size_t i = 0; i < _axes.size(); ++i)
        if (_axes[i].name == name)
            return i;
    eq_panic("grid has no axis named '", name, "'");
}

std::vector<Point>
Grid::points() const
{
    std::vector<Point> out;
    if (_axes.empty())
        return out;
    std::vector<size_t> odo(_axes.size(), 0);
    while (true) {
        Point p;
        p._grid = this;
        p._values.reserve(_axes.size());
        for (size_t i = 0; i < _axes.size(); ++i)
            p._values.push_back(_axes[i].values[odo[i]]);
        bool keep = true;
        for (const auto &f : _filters)
            if (!f(p)) {
                keep = false;
                break;
            }
        if (keep) {
            p._index = out.size();
            out.push_back(std::move(p));
        }
        // Odometer increment, last axis fastest.
        size_t i = _axes.size();
        while (i > 0) {
            --i;
            if (++odo[i] < _axes[i].values.size())
                break;
            odo[i] = 0;
            if (i == 0)
                return out;
        }
    }
}

} // namespace sweep
} // namespace eq
