/**
 * @file
 * Table implementation: schema checking and the three emitters. All
 * floating-point rendering goes through one fixed-precision snprintf
 * path so that identical rows always produce identical bytes,
 * independent of locale or emitter.
 */

#include "sweep/table.hh"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace eq {
namespace sweep {

int64_t
Cell::asInt() const
{
    eq_assert(_kind == ValueKind::Int, "cell is not an integer");
    return _i;
}

double
Cell::asReal() const
{
    eq_assert(_kind == ValueKind::Real, "cell is not a real");
    return _r;
}

double
Cell::asNumber() const
{
    eq_assert(_kind != ValueKind::Str, "cell is not numeric");
    return _kind == ValueKind::Int ? static_cast<double>(_i) : _r;
}

const std::string &
Cell::asStr() const
{
    eq_assert(_kind == ValueKind::Str, "cell is not a string");
    return _s;
}

Table::Table(std::vector<Column> schema) : _schema(std::move(schema))
{
    eq_assert(!_schema.empty(), "table schema must have columns");
}

size_t
Table::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < _schema.size(); ++i)
        if (_schema[i].name == name)
            return i;
    eq_panic("table has no column named '", name, "'");
}

void
Table::addRow(std::vector<Cell> cells)
{
    eq_assert(cells.size() == _schema.size(), "row arity ", cells.size(),
              " != schema arity ", _schema.size());
    for (size_t i = 0; i < cells.size(); ++i)
        eq_assert(cells[i].kind() == _schema[i].kind,
                  "cell kind mismatch in column '", _schema[i].name, "'");
    _rows.push_back(std::move(cells));
}

const Cell &
Table::at(size_t row, size_t col) const
{
    eq_assert(row < _rows.size() && col < _schema.size(),
              "table index out of range");
    return _rows[row][col];
}

std::string
Table::renderCell(const Cell &c, const Column &col) const
{
    char buf[64];
    switch (c.kind()) {
    case ValueKind::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(c.asInt()));
        return buf;
    case ValueKind::Real:
        std::snprintf(buf, sizeof(buf), "%.*f", col.precision,
                      c.asReal());
        return buf;
    case ValueKind::Str:
        return c.asStr();
    }
    eq_panic("unreachable cell kind");
}

void
Table::emitText(std::ostream &os) const
{
    // Width per column: the declared minimum, grown to fit contents.
    std::vector<size_t> widths(_schema.size());
    std::vector<std::vector<std::string>> rendered(_rows.size());
    for (size_t c = 0; c < _schema.size(); ++c)
        widths[c] = std::max<size_t>(_schema[c].width,
                                     _schema[c].name.size());
    for (size_t r = 0; r < _rows.size(); ++r) {
        rendered[r].resize(_schema.size());
        for (size_t c = 0; c < _schema.size(); ++c) {
            rendered[r][c] = renderCell(_rows[r][c], _schema[c]);
            widths[c] = std::max(widths[c], rendered[r][c].size());
        }
    }
    auto pad = [&](const std::string &s, size_t c, bool left) {
        std::string out;
        size_t fill = widths[c] > s.size() ? widths[c] - s.size() : 0;
        if (left)
            out = s + std::string(fill, ' ');
        else
            out = std::string(fill, ' ') + s;
        return out;
    };
    os << "#";
    for (size_t c = 0; c < _schema.size(); ++c) {
        bool left = _schema[c].kind == ValueKind::Str;
        os << ' ' << pad(_schema[c].name, c, left);
    }
    os << '\n';
    for (size_t r = 0; r < _rows.size(); ++r) {
        os << ' ';
        for (size_t c = 0; c < _schema.size(); ++c) {
            bool left = _schema[c].kind == ValueKind::Str;
            os << ' ' << pad(rendered[r][c], c, left);
        }
        os << '\n';
    }
}

namespace {

/** RFC-4180 quoting: wrap when the field holds a comma, quote, or NL. */
std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

/** JSON string escaping (the subset our cell contents can hit). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += ch;
        }
    }
    return out;
}

} // namespace

void
Table::emitCsv(std::ostream &os) const
{
    for (size_t c = 0; c < _schema.size(); ++c)
        os << (c ? "," : "") << csvEscape(_schema[c].name);
    os << '\n';
    for (const auto &row : _rows) {
        for (size_t c = 0; c < _schema.size(); ++c) {
            os << (c ? "," : "");
            os << csvEscape(renderCell(row[c], _schema[c]));
        }
        os << '\n';
    }
}

void
Table::emitJson(std::ostream &os) const
{
    os << "{\n  \"columns\": [";
    for (size_t c = 0; c < _schema.size(); ++c)
        os << (c ? ", " : "") << '"' << jsonEscape(_schema[c].name)
           << '"';
    os << "],\n  \"rows\": [\n";
    for (size_t r = 0; r < _rows.size(); ++r) {
        os << "    [";
        for (size_t c = 0; c < _schema.size(); ++c) {
            os << (c ? ", " : "");
            const Cell &cell = _rows[r][c];
            if (cell.kind() == ValueKind::Str)
                os << '"' << jsonEscape(cell.asStr()) << '"';
            else
                os << renderCell(cell, _schema[c]);
        }
        os << (r + 1 < _rows.size() ? "],\n" : "]\n");
    }
    os << "  ]\n}\n";
}

std::string
Table::csv() const
{
    std::ostringstream os;
    emitCsv(os);
    return os.str();
}

Table
Table::filterColumns(
    const std::function<bool(const Column &)> &keep) const
{
    std::vector<size_t> kept;
    std::vector<Column> schema;
    for (size_t c = 0; c < _schema.size(); ++c) {
        if (keep(_schema[c])) {
            kept.push_back(c);
            schema.push_back(_schema[c]);
        }
    }
    Table out(std::move(schema));
    for (const auto &row : _rows) {
        std::vector<Cell> cells;
        cells.reserve(kept.size());
        for (size_t c : kept)
            cells.push_back(row[c]);
        out.addRow(std::move(cells));
    }
    return out;
}

ColumnSummary
Table::summarize(const std::string &column) const
{
    size_t c = columnIndex(column);
    eq_assert(_schema[c].kind != ValueKind::Str,
              "cannot summarize string column '", column, "'");
    ColumnSummary s;
    for (const auto &row : _rows) {
        double v = row[c].asNumber();
        if (s.count == 0) {
            s.min = s.max = v;
        } else {
            s.min = std::min(s.min, v);
            s.max = std::max(s.max, v);
        }
        s.sum += v;
        ++s.count;
    }
    s.mean = s.count ? s.sum / static_cast<double>(s.count) : 0.0;
    return s;
}

} // namespace sweep
} // namespace eq
