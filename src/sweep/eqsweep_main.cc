/**
 * @file
 * eqsweep: the crash-safe sweep driver.
 *
 * Four modes over one serializable SweepSpec:
 *   (default)      run the whole grid, optionally journaled
 *                  (--journal/--resume) and cached (--cache)
 *   --emit-shards  write spec.json + per-shard manifests into a dir
 *   --shard M      run one manifest's dense range [begin, end) as its
 *                  own process: always resumable, heartbeating after
 *                  every computed point
 *   --merge DIR    merge the dir's shard journals into one table,
 *                  byte-identical to a single-process run
 *
 * Failures speak the journal's structured vocabulary on stderr —
 *   eqsweep: error: {"code":"journal_header_mismatch","message":...}
 * — and the exit code mirrors it: 0 ok, 1 I/O, 2 usage, 3 header
 * mismatch, 4 corrupt journal, 5 incomplete merge. Dispatch scripts
 * branch on these, never on prose.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "base/fsutil.hh"
#include "serve/models.hh"
#include "sweep/shard.hh"

using namespace eq;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitIo = 1;
constexpr int kExitUsage = 2;
constexpr int kExitHeaderMismatch = 3;
constexpr int kExitCorrupt = 4;
constexpr int kExitIncomplete = 5;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "spec (pick one):\n"
        "  --spec FILE          sweep spec JSON ({model, config, axes})\n"
        "  --model NAME         systolic|soc|pipeline, with\n"
        "    --config JSON        base-config overrides (optional)\n"
        "    --axis NAME=V1,V2    sweep axis (repeatable, in order)\n"
        "execution:\n"
        "  --threads N          worker threads (default "
        "$EQ_SWEEP_THREADS)\n"
        "  --backend MODE       auto|interp|compiled (default auto)\n"
        "  --fuse MODE          auto|on|off (default auto)\n"
        "durability:\n"
        "  --journal PATH       journal completed points to PATH\n"
        "  --resume             replay an existing journal first\n"
        "  --cache PATH         content-keyed result cache file\n"
        "  --fsync              fsync the journal after every record\n"
        "sharding:\n"
        "  --emit-shards N      write N shard manifests (needs a spec\n"
        "                       and --shard-dir), then exit\n"
        "  --shard-dir DIR      manifest/journal/heartbeat directory\n"
        "  --shard MANIFEST     run one shard manifest's point range\n"
        "  --merge DIR          merge DIR's shard journals to a table\n"
        "output:\n"
        "  --csv PATH           write the table as CSV to PATH\n"
        "                       (atomic; default: stdout)\n",
        argv0);
}

void
structuredError(const std::string &code, const std::string &message)
{
    serve::Json e = serve::Json::object();
    e.set("code", code);
    e.set("message", message);
    std::fprintf(stderr, "eqsweep: error: %s\n", e.dump().c_str());
}

int
exitCodeFor(sweep::JournalStatus status)
{
    switch (status) {
    case sweep::JournalStatus::Ok: return kExitOk;
    case sweep::JournalStatus::IoError: return kExitIo;
    case sweep::JournalStatus::HeaderMismatch: return kExitHeaderMismatch;
    case sweep::JournalStatus::Corrupt: return kExitCorrupt;
    }
    return kExitIo;
}

int
refuse(sweep::JournalStatus status, const std::string &message)
{
    structuredError(sweep::journalStatusName(status), message);
    return exitCodeFor(status);
}

/** "name=v1,v2,..." -> SweepAxis. */
bool
parseAxis(const std::string &text, serve::SweepAxis *out)
{
    size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    out->name = text.substr(0, eq);
    out->values.clear();
    size_t pos = eq + 1;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        size_t end = comma == std::string::npos ? text.size() : comma;
        if (end == pos)
            return false;
        const std::string item = text.substr(pos, end - pos);
        char *endp = nullptr;
        long v = std::strtol(item.c_str(), &endp, 10);
        if (endp == item.c_str() || *endp != '\0')
            return false;
        out->values.push_back(v);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out->values.empty();
}

int
emitTable(const sweep::Table &table, const std::string &csv_path)
{
    if (csv_path.empty()) {
        std::fputs(table.csv().c_str(), stdout);
        return kExitOk;
    }
    std::string err;
    if (!fs::writeFileAtomic(csv_path, table.csv(), &err)) {
        structuredError("io_error", err);
        return kExitIo;
    }
    return kExitOk;
}

void
printResumeStats(const sweep::ResumeStats &st)
{
    std::fprintf(stderr,
                 "# resume: computed=%zu journal=%zu cache=%zu "
                 "truncated_bytes=%llu\n",
                 st.computed, st.fromJournal, st.fromCache,
                 static_cast<unsigned long long>(
                     st.journalTruncatedBytes));
}

struct Args {
    std::string specPath;
    std::string model;
    std::string configJson;
    std::vector<std::string> axisSpecs;
    unsigned threads = 0;
    sim::EngineOptions engine;
    sweep::JournalOptions durability;
    int emitShards = 0;
    std::string shardDir;
    std::string shardManifest;
    std::string mergeDir;
    std::string csvPath;
};

/** Build the spec from --spec or --model/--config/--axis. */
bool
buildSpec(const Args &args, serve::SweepSpec *spec, std::string *err)
{
    serve::Json request;
    if (!args.specPath.empty()) {
        std::string text;
        if (!fs::readFile(args.specPath, &text, err))
            return false;
        std::string perr;
        if (!serve::Json::parse(text, &request, &perr)) {
            *err = args.specPath + ": " + perr;
            return false;
        }
    } else {
        request = serve::Json::object();
        request.set("model", args.model);
        if (!args.configJson.empty()) {
            serve::Json config;
            std::string perr;
            if (!serve::Json::parse(args.configJson, &config, &perr)) {
                *err = "--config: " + perr;
                return false;
            }
            request.set("config", std::move(config));
        }
        serve::Json axes = serve::Json::array();
        for (const std::string &text : args.axisSpecs) {
            serve::SweepAxis axis;
            if (!parseAxis(text, &axis)) {
                *err = "bad --axis '" + text +
                       "' (want name=v1,v2,...)";
                return false;
            }
            serve::Json ja = serve::Json::object();
            ja.set("name", axis.name);
            serve::Json vals = serve::Json::array();
            for (int64_t v : axis.values)
                vals.push(v);
            ja.set("values", std::move(vals));
            axes.push(std::move(ja));
        }
        request.set("axes", std::move(axes));
    }
    return serve::SweepSpec::fromJson(request, spec, err);
}

/** The full-grid identity this spec + engine mode journals under. */
sweep::JournalHeader
headerFor(const serve::SweepSpec &spec,
          const std::vector<sweep::Point> &points,
          const sim::EngineOptions &engine)
{
    sweep::JournalHeader h;
    h.gridHash = sweep::hashPoints(points);
    h.numPoints = points.size();
    h.schemaSig = sweep::schemaSignature(spec.schema());
    h.salt = spec.saltString();
    sweep::resolveEngineMode(engine, &h.backend, &h.fuse);
    return h;
}

int
runWhole(const Args &args, const serve::SweepSpec &spec)
{
    sweep::Grid grid = spec.grid();
    std::vector<sweep::Point> points = grid.points();
    sweep::JournalOptions opts = args.durability;
    opts.salt = spec.saltString();
    sweep::Table table{spec.schema()};
    sweep::ResumeStats stats;
    std::string err;
    sweep::JournalStatus status = serve::runLocalSweepDurable(
        spec, points, args.threads, args.engine, opts, &table, &stats,
        &err);
    if (status != sweep::JournalStatus::Ok)
        return refuse(status, err);
    printResumeStats(stats);
    return emitTable(table, args.csvPath);
}

int
emitShardsMode(const Args &args, const serve::SweepSpec &spec)
{
    if (args.shardDir.empty()) {
        structuredError("usage", "--emit-shards needs --shard-dir");
        return kExitUsage;
    }
    sweep::Grid grid = spec.grid();
    std::vector<sweep::Point> points = grid.points();
    sweep::JournalHeader header = headerFor(spec, points, args.engine);

    const std::string specPath = args.shardDir + "/spec.json";
    std::string err;
    if (!fs::writeFileAtomic(specPath, spec.toJson().dump() + "\n",
                             &err)) {
        structuredError("io_error", err);
        return kExitIo;
    }
    std::vector<sweep::ShardManifest> manifests =
        sweep::makeShardManifests(points.size(), args.emitShards,
                                  header, args.shardDir);
    for (const auto &m : manifests) {
        sweep::ShardManifest manifest = m;
        manifest.specPath = specPath;
        const std::string path = args.shardDir + "/shard-" +
                                 std::to_string(manifest.shard) +
                                 ".manifest.json";
        if (!manifest.save(path, &err)) {
            structuredError("io_error", err);
            return kExitIo;
        }
        std::printf("%s\n", path.c_str());
    }
    return kExitOk;
}

int
shardMode(const Args &args)
{
    sweep::ShardManifest manifest;
    std::string err;
    if (!sweep::ShardManifest::load(args.shardManifest, &manifest,
                                    &err)) {
        structuredError("io_error", err);
        return kExitIo;
    }

    // The manifest pins the engine mode; this process obeys it rather
    // than its own environment, so every shard of a dispatch — and
    // every relaunch of a shard — simulates identically.
    sim::EngineOptions engine = args.engine;
    engine.backend = manifest.header.backend == "compiled"
                         ? sim::Backend::Compiled
                         : sim::Backend::Interp;
    engine.fuse = manifest.header.fuse == "on" ? sim::Fusion::On
                                               : sim::Fusion::Off;

    Args specArgs = args;
    specArgs.specPath = manifest.specPath;
    serve::SweepSpec spec;
    if (!buildSpec(specArgs, &spec, &err)) {
        structuredError("io_error", err);
        return kExitIo;
    }
    sweep::Grid grid = spec.grid();
    std::vector<sweep::Point> points = grid.points();

    // A swapped spec.json must not silently journal under the old
    // manifest's identity.
    sweep::JournalHeader expect = headerFor(spec, points, engine);
    std::string why;
    if (!manifest.header.matches(expect, &why))
        return refuse(sweep::JournalStatus::HeaderMismatch,
                      "manifest does not describe this spec: " + why);
    if (manifest.endPoint > points.size())
        return refuse(sweep::JournalStatus::HeaderMismatch,
                      "shard range exceeds the grid");

    std::vector<sweep::Point> slice(
        points.begin() + ptrdiff_t(manifest.beginPoint),
        points.begin() + ptrdiff_t(manifest.endPoint));

    sweep::JournalOptions opts = args.durability;
    opts.journalPath = manifest.journalPath;
    opts.resume = true; // relaunch after a kill is the normal case
    opts.salt = expect.salt;
    opts.gridHash = expect.gridHash;
    opts.numPoints = expect.numPoints;

    sweep::Heartbeat heartbeat(manifest.heartbeatPath, manifest.shard);
    std::mutex beatMu;
    size_t completed = 0;
    heartbeat.beat(0);

    sweep::Table table{spec.schema()};
    sweep::ResumeStats stats;
    sweep::JournalStatus status = serve::runLocalSweepDurable(
        spec, slice, args.threads, engine, opts, &table, &stats, &err,
        [&](const sweep::Point &) {
            std::lock_guard<std::mutex> lock(beatMu);
            heartbeat.beat(++completed);
        });
    if (status != sweep::JournalStatus::Ok)
        return refuse(status, err);
    heartbeat.beat(slice.size());
    printResumeStats(stats);
    std::fprintf(stderr, "# shard %d: points [%llu, %llu) done\n",
                 manifest.shard,
                 static_cast<unsigned long long>(manifest.beginPoint),
                 static_cast<unsigned long long>(manifest.endPoint));
    return kExitOk;
}

int
mergeMode(const Args &args)
{
    // shard-0's manifest names the dispatch width; every manifest
    // repeats the full-grid header, which the merge verifies per
    // journal.
    sweep::ShardManifest first;
    std::string err;
    if (!sweep::ShardManifest::load(
            args.mergeDir + "/shard-0.manifest.json", &first, &err)) {
        structuredError("io_error", err);
        return kExitIo;
    }
    std::vector<std::string> journals;
    for (int k = 0; k < first.numShards; ++k) {
        sweep::ShardManifest m;
        const std::string path = args.mergeDir + "/shard-" +
                                 std::to_string(k) + ".manifest.json";
        if (!sweep::ShardManifest::load(path, &m, &err)) {
            structuredError("io_error", err);
            return kExitIo;
        }
        std::string why;
        if (!m.header.matches(first.header, &why))
            return refuse(sweep::JournalStatus::HeaderMismatch,
                          path + ": " + why);
        if (fs::fileExists(m.journalPath))
            journals.push_back(m.journalPath);
    }

    Args specArgs = args;
    specArgs.specPath = first.specPath;
    serve::SweepSpec spec;
    if (!buildSpec(specArgs, &spec, &err)) {
        structuredError("io_error", err);
        return kExitIo;
    }

    sweep::Table table{spec.schema()};
    std::vector<uint64_t> missing;
    sweep::JournalStatus status = sweep::mergeShardJournals(
        journals, first.header, spec.schema(), &table, &missing, &err);
    if (status != sweep::JournalStatus::Ok)
        return refuse(status, err);
    if (!missing.empty()) {
        structuredError(
            "incomplete_merge",
            std::to_string(missing.size()) + " of " +
                std::to_string(first.header.numPoints) +
                " points missing (first: " +
                std::to_string(missing.front()) + ")");
        return kExitIncomplete;
    }
    return emitTable(table, args.csvPath);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "eqsweep: %s needs a value\n",
                             arg.c_str());
                std::exit(kExitUsage);
            }
            return argv[++i];
        };
        if (arg == "--spec") {
            args.specPath = value();
        } else if (arg == "--model") {
            args.model = value();
        } else if (arg == "--config") {
            args.configJson = value();
        } else if (arg == "--axis") {
            args.axisSpecs.push_back(value());
        } else if (arg == "--threads") {
            args.threads = unsigned(std::atoi(value()));
        } else if (arg == "--backend") {
            const std::string mode = value();
            if (mode == "auto")
                args.engine.backend = sim::Backend::Auto;
            else if (mode == "interp")
                args.engine.backend = sim::Backend::Interp;
            else if (mode == "compiled")
                args.engine.backend = sim::Backend::Compiled;
            else {
                std::fprintf(stderr, "eqsweep: bad --backend '%s'\n",
                             mode.c_str());
                return kExitUsage;
            }
        } else if (arg == "--fuse") {
            const std::string mode = value();
            if (mode == "auto")
                args.engine.fuse = sim::Fusion::Auto;
            else if (mode == "on")
                args.engine.fuse = sim::Fusion::On;
            else if (mode == "off")
                args.engine.fuse = sim::Fusion::Off;
            else {
                std::fprintf(stderr, "eqsweep: bad --fuse '%s'\n",
                             mode.c_str());
                return kExitUsage;
            }
        } else if (arg == "--journal") {
            args.durability.journalPath = value();
        } else if (arg == "--resume") {
            args.durability.resume = true;
        } else if (arg == "--cache") {
            args.durability.cachePath = value();
        } else if (arg == "--fsync") {
            args.durability.fsyncEachRecord = true;
        } else if (arg == "--emit-shards") {
            args.emitShards = std::atoi(value());
            if (args.emitShards < 1) {
                std::fprintf(stderr, "eqsweep: bad --emit-shards\n");
                return kExitUsage;
            }
        } else if (arg == "--shard-dir") {
            args.shardDir = value();
        } else if (arg == "--shard") {
            args.shardManifest = value();
        } else if (arg == "--merge") {
            args.mergeDir = value();
        } else if (arg == "--csv") {
            args.csvPath = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return kExitOk;
        } else {
            std::fprintf(stderr, "eqsweep: unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return kExitUsage;
        }
    }

    if (!args.shardManifest.empty())
        return shardMode(args);
    if (!args.mergeDir.empty())
        return mergeMode(args);

    if (args.specPath.empty() && args.model.empty()) {
        usage(argv[0]);
        return kExitUsage;
    }
    serve::SweepSpec spec;
    std::string err;
    if (!buildSpec(args, &spec, &err)) {
        structuredError("usage", err);
        return kExitUsage;
    }
    if (args.emitShards > 0)
        return emitShardsMode(args, spec);
    return runWhole(args, spec);
}
