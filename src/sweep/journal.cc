/**
 * @file
 * Journal implementation: NDJSON header + CRC-protected records over
 * an O_APPEND fd, tail-truncating recovery, and the journaled-sweep
 * orchestration that layers replay (journal), content-keyed reuse
 * (result cache), and recomputation (SweepRunner) into one table.
 */

#include "sweep/journal.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include <fcntl.h>
#include <unistd.h>

#include "base/fsutil.hh"
#include "base/logging.hh"
#include "sweep/resultcache.hh"

namespace eq {
namespace sweep {

namespace {

uint64_t
fnv1a(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
fnv1aStr(uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hexU64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
hexToU64(const std::string &s, uint64_t *out)
{
    if (s.empty() || s.size() > 16)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | uint64_t(d);
    }
    *out = v;
    return true;
}

/** Record payload (no CRC member yet) in canonical member order. */
std::string
recordPayload(size_t index, const std::string &key,
              const std::vector<Cell> &cells)
{
    serve::Json rec = serve::Json::object();
    rec.set("i", static_cast<int64_t>(index));
    rec.set("key", key);
    rec.set("cells", serve::cellsToJson(cells));
    return rec.dump();
}

/** payload "{...}" -> full line "{...,\"crc\":N}". */
std::string
sealRecord(const std::string &payload)
{
    uint32_t crc = fs::crc32(payload.data(), payload.size());
    std::string line = payload;
    line.pop_back(); // trailing '}'
    line += ",\"crc\":";
    line += std::to_string(crc);
    line += "}\n";
    return line;
}

/** Strict-parse one record line: JSON shape, schema-typed cells,
 *  index bounds, and the CRC over the canonically re-dumped payload
 *  (which also rejects any reordering or content tampering). */
bool
parseRecordLine(const std::string &line, uint64_t num_points,
                const std::vector<Column> &schema, JournalRecord *out)
{
    serve::Json j;
    std::string err;
    if (!serve::Json::parse(line, &j, &err) || !j.isObject())
        return false;
    const serve::Json *ji = j.find("i");
    const serve::Json *jkey = j.find("key");
    const serve::Json *jcells = j.find("cells");
    const serve::Json *jcrc = j.find("crc");
    if (!ji || !ji->isInt() || !jkey || !jkey->isStr() || !jcells ||
        !jcrc || !jcrc->isInt())
        return false;
    int64_t index = ji->asInt();
    if (index < 0 || uint64_t(index) >= num_points)
        return false;
    std::vector<Cell> cells;
    if (!serve::cellsFromJson(*jcells, schema, &cells, nullptr))
        return false;
    const std::string payload =
        recordPayload(size_t(index), jkey->asStr(), cells);
    uint32_t crc = fs::crc32(payload.data(), payload.size());
    if (int64_t(crc) != jcrc->asInt())
        return false;
    out->index = size_t(index);
    out->key = jkey->asStr();
    out->cells = std::move(cells);
    return true;
}

} // namespace

const char *
journalStatusName(JournalStatus status)
{
    switch (status) {
    case JournalStatus::Ok: return "ok";
    case JournalStatus::IoError: return "io_error";
    case JournalStatus::HeaderMismatch: return "journal_header_mismatch";
    case JournalStatus::Corrupt: return "journal_corrupt";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// JournalHeader

serve::Json
JournalHeader::toJson() const
{
    serve::Json out = serve::Json::object();
    out.set("journal", "eqsweep");
    out.set("version", kVersion);
    out.set("grid_hash", hexU64(gridHash));
    out.set("points", static_cast<int64_t>(numPoints));
    out.set("schema", schemaSig);
    out.set("backend", backend);
    out.set("fuse", fuse);
    out.set("salt", salt);
    return out;
}

bool
JournalHeader::fromJson(const serve::Json &j, JournalHeader *out,
                        std::string *err)
{
    if (!j.isObject() || j.getStr("journal", "") != "eqsweep") {
        if (err)
            *err = "not an eqsweep journal header";
        return false;
    }
    if (j.getInt("version", -1) != kVersion) {
        if (err)
            *err = "unsupported journal version " +
                   std::to_string(j.getInt("version", -1));
        return false;
    }
    if (!hexToU64(j.getStr("grid_hash", ""), &out->gridHash)) {
        if (err)
            *err = "bad grid_hash";
        return false;
    }
    int64_t points = j.getInt("points", -1);
    if (points < 0) {
        if (err)
            *err = "bad points";
        return false;
    }
    out->numPoints = uint64_t(points);
    out->schemaSig = j.getStr("schema", "");
    out->backend = j.getStr("backend", "");
    out->fuse = j.getStr("fuse", "");
    out->salt = j.getStr("salt", "");
    return true;
}

bool
JournalHeader::matches(const JournalHeader &o, std::string *why) const
{
    auto differ = [&](const char *field, const std::string &a,
                      const std::string &b) {
        if (why)
            *why = std::string(field) + " differs (journal: '" + a +
                   "', sweep: '" + b + "')";
        return false;
    };
    if (gridHash != o.gridHash)
        return differ("grid_hash", hexU64(gridHash), hexU64(o.gridHash));
    if (numPoints != o.numPoints)
        return differ("points", std::to_string(numPoints),
                      std::to_string(o.numPoints));
    if (schemaSig != o.schemaSig)
        return differ("schema", schemaSig, o.schemaSig);
    if (backend != o.backend)
        return differ("backend", backend, o.backend);
    if (fuse != o.fuse)
        return differ("fuse", fuse, o.fuse);
    if (salt != o.salt)
        return differ("salt", salt, o.salt);
    return true;
}

std::string
schemaSignature(const std::vector<Column> &schema)
{
    std::string sig;
    for (const auto &col : schema) {
        if (!sig.empty())
            sig += ';';
        sig += col.name;
        sig += ':';
        switch (col.kind) {
        case ValueKind::Int: sig += 'i'; break;
        case ValueKind::Real: sig += 'r'; break;
        case ValueKind::Str: sig += 's'; break;
        }
    }
    return sig;
}

uint64_t
hashPoints(const std::vector<Point> &points)
{
    uint64_t h = fnv1a(0xcbf29ce484222325ull, points.size());
    for (const auto &p : points) {
        h = fnv1a(h, p.index());
        for (int64_t v : p.values())
            h = fnv1a(h, uint64_t(v));
    }
    return h;
}

void
resolveEngineMode(const sim::EngineOptions &engine, std::string *backend,
                  std::string *fuse)
{
    // A throwaway Simulator resolves Auto exactly like every run will
    // (EQ_SIM_BACKEND / EQ_SIM_FUSE read once at construction).
    sim::Simulator probe(engine);
    *backend = probe.backend() == sim::Backend::Compiled ? "compiled"
                                                         : "interp";
    *fuse = probe.fusionEnabled() ? "on" : "off";
}

// ---------------------------------------------------------------------------
// Journal

Journal::~Journal() { close(); }

void
Journal::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

bool
Journal::openAppend(const std::string &path, std::string *err)
{
    close();
    _fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (_fd < 0) {
        if (err)
            *err = "open " + path + ": " + std::strerror(errno);
        return false;
    }
    return true;
}

bool
Journal::create(const std::string &path, const JournalHeader &header,
                std::string *err)
{
    close();
    _fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                 0644);
    if (_fd < 0) {
        if (err)
            *err = "create " + path + ": " + std::strerror(errno);
        return false;
    }
    const std::string line = header.toJson().dump() + "\n";
    if (::write(_fd, line.data(), line.size()) !=
        ssize_t(line.size())) {
        if (err)
            *err = "write header " + path + ": " + std::strerror(errno);
        close();
        return false;
    }
    // The header is the journal's provenance: records must never hit
    // the disk before it does.
    if (::fsync(_fd) != 0) {
        if (err)
            *err = "fsync header " + path + ": " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

Journal::Recovery
Journal::recover(const std::string &path, const JournalHeader *expect,
                 const std::vector<Column> &schema)
{
    Recovery rec;
    std::string text, err;
    if (!fs::readFile(path, &text, &err)) {
        rec.status = JournalStatus::IoError;
        rec.error = err;
        return rec;
    }

    // Header line. A file without any newline is a create() that never
    // reached its fsync — there cannot be records, so the caller may
    // start the journal over (headerValid stays false, keptBytes 0).
    size_t headerEnd = text.find('\n');
    if (headerEnd == std::string::npos) {
        rec.status = JournalStatus::Corrupt;
        rec.error = "journal header was torn (no complete header line)";
        return rec;
    }
    std::string herr;
    serve::Json hj;
    if (!serve::Json::parse(text.substr(0, headerEnd), &hj, &herr) ||
        !JournalHeader::fromJson(hj, &rec.header, &herr)) {
        rec.status = JournalStatus::Corrupt;
        rec.error = "unreadable journal header: " + herr;
        return rec;
    }
    rec.headerValid = true;
    if (expect) {
        std::string why;
        if (!rec.header.matches(*expect, &why)) {
            rec.status = JournalStatus::HeaderMismatch;
            rec.error = why;
            return rec;
        }
    }

    // Record lines. Exactly one damaged region is tolerated and only
    // when it is the file's final line (what a torn append or a bit
    // flip in the not-yet-rotated tail looks like); a bad record with
    // valid records after it is real corruption.
    rec.keptBytes = headerEnd + 1;
    size_t pos = headerEnd + 1;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::string line =
            text.substr(pos, complete ? nl - pos : std::string::npos);
        JournalRecord record;
        if (complete &&
            parseRecordLine(line, rec.header.numPoints, schema,
                            &record)) {
            rec.records.push_back(std::move(record));
            pos = nl + 1;
            rec.keptBytes = pos;
            continue;
        }
        // Bad line: tail-truncatable iff nothing follows it.
        const size_t after = complete ? nl + 1 : text.size();
        if (after < text.size()) {
            rec.status = JournalStatus::Corrupt;
            rec.error = "corrupt record at byte " + std::to_string(pos) +
                        " with valid data after it";
            rec.records.clear();
            return rec;
        }
        rec.truncatedBytes = text.size() - pos;
        break;
    }
    rec.status = JournalStatus::Ok;
    return rec;
}

JournalStatus
Journal::openResume(const std::string &path, const JournalHeader &expect,
                    Recovery *out_recovery)
{
    Recovery rec = recover(path, &expect, _schema);
    if (rec.status == JournalStatus::Corrupt && !rec.headerValid &&
        rec.error.find("torn") != std::string::npos) {
        // Crash during create(): no records can exist; start over.
        rec = Recovery();
        rec.header = expect;
        std::string err;
        if (!create(path, expect, &err)) {
            rec.status = JournalStatus::IoError;
            rec.error = err;
        }
        *out_recovery = std::move(rec);
        return out_recovery->status;
    }
    if (rec.status != JournalStatus::Ok) {
        *out_recovery = std::move(rec);
        return out_recovery->status;
    }
    if (rec.truncatedBytes > 0 &&
        ::truncate(path.c_str(), off_t(rec.keptBytes)) != 0) {
        rec.status = JournalStatus::IoError;
        rec.error = "truncate " + path + ": " + std::strerror(errno);
        *out_recovery = std::move(rec);
        return out_recovery->status;
    }
    std::string err;
    if (!openAppend(path, &err)) {
        rec.status = JournalStatus::IoError;
        rec.error = err;
    }
    *out_recovery = std::move(rec);
    return out_recovery->status;
}

bool
Journal::append(size_t index, const std::string &key,
                const std::vector<Cell> &cells, std::string *err)
{
    const std::string line = sealRecord(recordPayload(index, key, cells));
    std::lock_guard<std::mutex> lock(_mu);
    if (_fd < 0) {
        if (err)
            *err = "journal is not open";
        return false;
    }
    // One write(2) per record on an O_APPEND fd: concurrent appenders
    // never interleave, and a crash can only tear the final record.
    size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(_fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("journal write: ") +
                       std::strerror(errno);
            return false;
        }
        off += size_t(n);
    }
    if (_fsyncEach && ::fsync(_fd) != 0) {
        if (err)
            *err = std::string("journal fsync: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
Journal::sync(std::string *err)
{
    std::lock_guard<std::mutex> lock(_mu);
    if (_fd >= 0 && ::fsync(_fd) != 0) {
        if (err)
            *err = std::string("journal fsync: ") + std::strerror(errno);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Journaled sweep orchestration

JournalStatus
runJournaledSweep(const SweepRunner &runner,
                  const std::vector<Point> &points,
                  std::vector<Column> schema, const PointKeyFn &keyFn,
                  const SweepRunner::RowFn &fn,
                  const JournalOptions &opts,
                  const sim::EngineOptions &engine, Table *out,
                  ResumeStats *stats, std::string *err)
{
    ResumeStats local;
    ResumeStats &st = stats ? *stats : local;
    st = ResumeStats();

    JournalHeader header;
    header.gridHash =
        opts.numPoints ? opts.gridHash : hashPoints(points);
    header.numPoints = opts.numPoints ? opts.numPoints : points.size();
    header.schemaSig = schemaSignature(schema);
    header.salt = opts.salt;
    resolveEngineMode(engine, &header.backend, &header.fuse);

    // Row slots by *position in @p points* (dense global indices may
    // be a shard's sub-range); journal/cache records address global
    // indices, so map them back.
    std::unordered_map<size_t, size_t> slotOf;
    slotOf.reserve(points.size());
    for (size_t s = 0; s < points.size(); ++s)
        slotOf.emplace(points[s].index(), s);
    std::vector<std::vector<Cell>> rows(points.size());
    std::vector<bool> done(points.size(), false);

    std::vector<std::string> keys(points.size());
    for (size_t s = 0; s < points.size(); ++s)
        keys[s] = keyFn(points[s]);

    // 1) Replay the journal (authoritative for this exact grid).
    Journal journal;
    journal.setSchema(schema);
    const bool journaling = !opts.journalPath.empty();
    if (journaling && opts.resume && fs::fileExists(opts.journalPath)) {
        Journal::Recovery rec;
        if (journal.openResume(opts.journalPath, header, &rec) !=
            JournalStatus::Ok) {
            if (err)
                *err = rec.error;
            return rec.status;
        }
        st.journalTruncatedBytes = rec.truncatedBytes;
        for (auto &record : rec.records) {
            auto it = slotOf.find(record.index);
            if (it == slotOf.end())
                continue; // another shard's point
            // Duplicates resolve last-write-wins (pinned): byte-
            // determinism makes honest duplicates identical anyway.
            if (!done[it->second])
                ++st.fromJournal;
            rows[it->second] = std::move(record.cells);
            done[it->second] = true;
        }
    } else if (journaling) {
        std::string cerr_;
        if (!journal.create(opts.journalPath, header, &cerr_)) {
            if (err)
                *err = cerr_;
            return JournalStatus::IoError;
        }
    }
    journal.setFsyncEachRecord(opts.fsyncEachRecord);

    // 2) Content-keyed cache fills what the journal did not.
    ResultCache cache;
    const bool caching = !opts.cachePath.empty();
    if (caching) {
        std::string cerr_;
        if (!cache.open(opts.cachePath, header.schemaSig, header.backend,
                        header.fuse, schema, &cerr_)) {
            if (err)
                *err = cerr_;
            return JournalStatus::IoError;
        }
        for (size_t s = 0; s < points.size(); ++s) {
            if (done[s])
                continue;
            if (const std::vector<Cell> *hit = cache.lookup(keys[s])) {
                rows[s] = *hit;
                done[s] = true;
                ++st.fromCache;
                // Journal the replayed row too, so the journal alone
                // is a complete record of this grid (shard merges read
                // journals, not caches).
                if (journaling) {
                    std::string jerr;
                    if (!journal.append(points[s].index(), keys[s],
                                        rows[s], &jerr)) {
                        if (err)
                            *err = jerr;
                        return JournalStatus::IoError;
                    }
                }
            }
        }
    }

    // 3) Compute the remainder, journaling each point as it lands.
    std::vector<Point> pending;
    std::vector<size_t> pendingSlot;
    for (size_t s = 0; s < points.size(); ++s) {
        if (!done[s]) {
            pending.push_back(points[s]);
            pendingSlot.push_back(s);
        }
    }
    if (!pending.empty()) {
        std::atomic<bool> failed{false};
        std::string appendErr;
        std::mutex errMu;
        Table fresh = runner.run(
            pending, schema,
            [&](const Point &p, unsigned w) -> std::vector<Cell> {
                std::vector<Cell> cells = fn(p, w);
                if (journaling && !failed.load()) {
                    std::string jerr;
                    if (!journal.append(
                            p.index(),
                            keys[slotOf.find(p.index())->second], cells,
                            &jerr)) {
                        std::lock_guard<std::mutex> lock(errMu);
                        appendErr = jerr;
                        failed.store(true);
                    }
                }
                return cells;
            });
        if (failed.load()) {
            if (err)
                *err = appendErr;
            return JournalStatus::IoError;
        }
        for (size_t i = 0; i < pendingSlot.size(); ++i) {
            rows[pendingSlot[i]] = fresh.row(i);
            done[pendingSlot[i]] = true;
        }
        st.computed = pending.size();
    }

    // Close-time durability when not fsync'ing per record.
    if (journaling && !opts.fsyncEachRecord) {
        std::string serr;
        if (!journal.sync(&serr)) {
            if (err)
                *err = serr;
            return JournalStatus::IoError;
        }
    }

    // 4) Every row this sweep now holds is a valid cache entry
    //    (journal-replayed rows included — they re-seed a deleted
    //    cache from the journal).
    if (caching) {
        for (size_t s = 0; s < points.size(); ++s) {
            std::string cerr_;
            if (!cache.append(keys[s], rows[s], &cerr_)) {
                if (err)
                    *err = cerr_;
                return JournalStatus::IoError;
            }
        }
    }

    Table table(std::move(schema));
    for (auto &row : rows)
        table.addRow(std::move(row));
    *out = std::move(table);
    return JournalStatus::Ok;
}

} // namespace sweep
} // namespace eq
