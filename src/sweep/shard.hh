/**
 * @file
 * Cross-process shard dispatch for sweeps: manifests, heartbeats, and
 * the deterministic shard-journal merge.
 *
 * A sweep over N dense points is split into contiguous index ranges
 * [begin, end), one ShardManifest per range. Each manifest is a
 * self-contained work order — the full grid's identity (the
 * JournalHeader every shard journals under) plus the slice to run and
 * the journal/heartbeat paths to use — written atomically so a
 * dispatcher crash never leaves a half-written manifest.
 *
 * Shard processes journal every completed point under the *whole*
 * grid's header (grid hash over all N points, not the slice), so shard
 * journals are mutually mergeable and any shard can be relaunched with
 * --resume after a crash. The merge reads every shard journal, refuses
 * on any header that does not match the expected sweep
 * (HeaderMismatch) or any mid-file corruption (Corrupt), resolves
 * duplicate points last-write-wins (sound: results are
 * byte-deterministic, so honest duplicates are identical), and emits
 * rows in dense point order — byte-identical to a single-process run.
 *
 * Liveness is observed, not signalled: each shard rewrites a one-line
 * heartbeat file (atomic replace) after every completed point, and the
 * dispatcher decides death/straggling purely from heartbeat staleness
 * and process exit — no pipes or shared memory to clean up after a
 * SIGKILL.
 */

#ifndef EQ_SWEEP_SHARD_HH
#define EQ_SWEEP_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/journal.hh"

namespace eq {
namespace sweep {

/** One shard's work order. */
struct ShardManifest {
    int shard = 0;          ///< this shard's id in [0, numShards)
    int numShards = 1;      ///< total shards in the dispatch
    uint64_t beginPoint = 0; ///< dense index range [beginPoint,
    uint64_t endPoint = 0;   ///<                    endPoint)
    JournalHeader header;    ///< full-grid identity (all shards equal)
    std::string specPath;    ///< SweepSpec JSON the shard should load
    std::string journalPath; ///< where the shard journals its points
    std::string heartbeatPath; ///< where the shard beats after points

    serve::Json toJson() const;
    static bool fromJson(const serve::Json &j, ShardManifest *out,
                         std::string *err);

    /** Atomic write (temp + rename) / strict load. */
    bool save(const std::string &path, std::string *err) const;
    static bool load(const std::string &path, ShardManifest *out,
                     std::string *err);
};

/**
 * Split @p num_points dense indices into @p num_shards contiguous
 * stripes covering [0, num_points) exactly once (earlier shards take
 * the remainder). Journal and heartbeat paths land in @p dir as
 * shard-K.journal.ndjson / shard-K.heartbeat.json; specPath is left
 * for the caller. @p num_shards is clamped to [1, num_points].
 */
std::vector<ShardManifest> makeShardManifests(
    uint64_t num_points, int num_shards, const JournalHeader &header,
    const std::string &dir);

/**
 * Merge shard journals into one table, byte-identical to a
 * single-process run of the same sweep.
 *
 * Every journal's header must match @p expect (HeaderMismatch
 * otherwise); a journal with mid-file corruption is refused (Corrupt);
 * a torn final record is skipped (the merge never mutates the files).
 * Duplicate points — e.g. a reassigned range recomputed by a second
 * shard — resolve last-write-wins in @p paths order, then journal
 * order. Rows come out in dense point order. Points no journal
 * covered are reported in @p missing (and the table then holds only
 * the covered points, in order): an incomplete merge is the
 * dispatcher's signal to relaunch, not an error here.
 */
JournalStatus mergeShardJournals(const std::vector<std::string> &paths,
                                 const JournalHeader &expect,
                                 const std::vector<Column> &schema,
                                 Table *out,
                                 std::vector<uint64_t> *missing,
                                 std::string *err);

/**
 * Shard-side liveness beacon: one JSON line, atomically replaced, so
 * a reader never observes a torn beat and a SIGKILL leaves nothing to
 * clean up.
 */
class Heartbeat {
  public:
    Heartbeat() = default;
    Heartbeat(std::string path, int shard)
        : _path(std::move(path)), _shard(shard)
    {
    }

    /** Write {"shard":k,"beat":n,"completed":c} atomically. The beat
     *  counter increments every call, so a monitor distinguishes "no
     *  progress but alive" from "dead" without trusting mtimes. */
    bool beat(uint64_t completed, std::string *err = nullptr);

    uint64_t beats() const { return _beats; }

    /** Parsed heartbeat (the monitor/test side). */
    struct State {
        int shard = -1;
        uint64_t beat = 0;
        uint64_t completed = 0;
    };
    static bool load(const std::string &path, State *out,
                     std::string *err);

  private:
    std::string _path;
    int _shard = 0;
    uint64_t _beats = 0;
};

} // namespace sweep
} // namespace eq

#endif // EQ_SWEEP_SHARD_HH
