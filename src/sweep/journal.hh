/**
 * @file
 * Journaled sweep checkpointing: every completed point of a sweep is
 * appended to an NDJSON journal as one CRC-protected record, so a
 * crash at point 9,900 of 10,000 costs at most the points in flight —
 * --resume replays the journal and recomputes only what is missing.
 *
 * Durability discipline:
 *  - The header line is written and fsync'd before any record, so a
 *    journal that exists with a readable header is always attributable
 *    to exactly one (grid, schema, backend, fuse) combination.
 *  - Records are appended with a single write(2) each on an O_APPEND
 *    fd; a crash can only tear the *last* record, never interleave or
 *    damage earlier ones. An optional fsync-per-record policy
 *    (JournalOptions::fsyncEachRecord) bounds loss to the in-flight
 *    point at the cost of one fsync per point.
 *  - Recovery strict-parses every line and verifies a CRC32 over the
 *    record payload. A bad *tail* record (torn write, bit flip in the
 *    last line) is truncated and its point recomputed; a bad record
 *    in the *middle* of the journal — valid records follow it — is
 *    real corruption and recovery refuses loudly (JournalStatus::
 *    Corrupt) rather than merging garbage.
 *  - The header carries the grid hash, schema signature, and resolved
 *    backend/fuse mode; --resume against a journal whose header does
 *    not match the current sweep is refused (HeaderMismatch), never
 *    silently merged.
 *  - Duplicate records for one point are legal (a resumed run or a
 *    reassigned shard may recompute a point another attempt already
 *    journaled) and resolve last-write-wins — sound because sweep
 *    results are byte-deterministic, so duplicates are identical
 *    whenever the journal is honest.
 *
 * Replaying a journal is sound for exactly the reason serve::Client
 * retries are: results are byte-deterministic at any worker count, so
 * a replayed row is indistinguishable from a recomputed one.
 */

#ifndef EQ_SWEEP_JOURNAL_HH
#define EQ_SWEEP_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "sim/engine.hh"
#include "sweep/runner.hh"

namespace eq {
namespace sweep {

/** Outcome of opening/recovering/merging journals. */
enum class JournalStatus : uint8_t {
    Ok,             ///< usable (possibly after tail truncation)
    IoError,        ///< open/read/write failed
    HeaderMismatch, ///< journal belongs to a different sweep
    Corrupt,        ///< bad record with valid records after it
};

/** Stable wire/exit name ("ok", "io_error", "journal_header_mismatch",
 *  "journal_corrupt") — what eqsweep prints in structured errors. */
const char *journalStatusName(JournalStatus status);

/** The identity a journal is bound to. Two sweeps may share a journal
 *  iff every field matches. */
struct JournalHeader {
    static constexpr int kVersion = 1;

    uint64_t gridHash = 0;   ///< hashPoints() over the dense grid
    uint64_t numPoints = 0;  ///< dense points in the full grid
    std::string schemaSig;   ///< schemaSignature() of the table schema
    std::string backend;     ///< resolved engine backend ("interp"/...)
    std::string fuse;        ///< resolved fusion mode ("on"/"off")
    std::string salt;        ///< caller identity (model + base config)

    serve::Json toJson() const;
    static bool fromJson(const serve::Json &j, JournalHeader *out,
                         std::string *err);

    /** Full-field comparison; on mismatch @p why names the first
     *  differing field (old vs new). */
    bool matches(const JournalHeader &o, std::string *why) const;
};

/** "name:kind" per column, ';'-joined — the schema identity the
 *  journal/result-cache headers are verified against. */
std::string schemaSignature(const std::vector<Column> &schema);

/** FNV-1a over point count, per-point dense index and axis values —
 *  the grid identity. Any axis edit (value added, order changed,
 *  filter changed) yields a different hash. */
uint64_t hashPoints(const std::vector<Point> &points);

/** The resolved ("interp"/"compiled", "on"/"off") mode strings a
 *  header records for @p engine — resolution happens exactly like a
 *  Simulator would (Auto reads EQ_SIM_BACKEND / EQ_SIM_FUSE). */
void resolveEngineMode(const sim::EngineOptions &engine,
                       std::string *backend, std::string *fuse);

/** One recovered journal record. */
struct JournalRecord {
    size_t index = 0;        ///< dense point index
    std::string key;         ///< content key of the point's config
    std::vector<Cell> cells; ///< the completed row
};

/**
 * Append-side handle: create() writes the header and fsyncs it;
 * append() emits one record per completed point with a single
 * write(2). Thread-safe (the sweep workers share one writer).
 */
class Journal {
  public:
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Result of reading a journal back. */
    struct Recovery {
        JournalStatus status = JournalStatus::Ok;
        std::string error;                  ///< set when status != Ok
        bool headerValid = false;           ///< header line parsed
        JournalHeader header;               ///< parsed header
        std::vector<JournalRecord> records; ///< file order (dups kept)
        uint64_t truncatedBytes = 0;        ///< torn tail dropped
        uint64_t keptBytes = 0;             ///< prefix that was valid
    };

    /** Start a fresh journal at @p path (truncates any existing file):
     *  header written + fsync'd before returning. */
    bool create(const std::string &path, const JournalHeader &header,
                std::string *err);

    /**
     * Resume an existing journal: verify its header against @p expect,
     * recover its records, truncate a torn/corrupt tail record in
     * place, and reopen for appending. @p out_recovery receives the
     * replayable records (and the truncation accounting). On
     * HeaderMismatch/Corrupt the file is left untouched.
     */
    JournalStatus openResume(const std::string &path,
                             const JournalHeader &expect,
                             Recovery *out_recovery);

    /** Parse + verify a journal read-only (the merge path). @p expect
     *  may be null to accept any header (the caller then compares
     *  headers across shards itself). @p schema drives cell decoding
     *  and kind verification. */
    static Recovery recover(const std::string &path,
                            const JournalHeader *expect,
                            const std::vector<Column> &schema);

    /** Append one completed point (single write(2); thread-safe).
     *  With fsyncEachRecord, fsyncs before returning. */
    bool append(size_t index, const std::string &key,
                const std::vector<Cell> &cells, std::string *err);

    void setFsyncEachRecord(bool on) { _fsyncEach = on; }
    /** fsync the journal fd now (the close-time policy). */
    bool sync(std::string *err);
    void close();
    bool isOpen() const { return _fd >= 0; }

    /** The schema used to decode recovered cells; must be set before
     *  openResume (create() does not need it). */
    void setSchema(std::vector<Column> schema)
    {
        _schema = std::move(schema);
    }

  private:
    bool openAppend(const std::string &path, std::string *err);

    int _fd = -1;
    bool _fsyncEach = false;
    std::vector<Column> _schema; ///< decode schema (set by caller)
    std::mutex _mu;
};

// ---------------------------------------------------------------------------
// Journaled sweep orchestration

/** Durability knobs for runJournaledSweep (all optional). */
struct JournalOptions {
    std::string journalPath; ///< "" = no journal
    bool resume = false;     ///< replay an existing journal at the path
    std::string cachePath;   ///< "" = no content-keyed result cache
    bool fsyncEachRecord = false; ///< fsync per record, not per run
    std::string salt; ///< sweep identity beyond the grid (model, base
                      ///< config) — folded into the journal header

    /** Full-grid identity override for shard runs (which execute a
     *  dense sub-range but journal under the whole grid's header).
     *  When numPoints == 0 both are derived from the points passed to
     *  runJournaledSweep — the whole-grid case. */
    uint64_t gridHash = 0;
    uint64_t numPoints = 0;
};

/** Where each row of a journaled sweep came from. */
struct ResumeStats {
    size_t computed = 0;     ///< simulated this run
    size_t fromJournal = 0;  ///< replayed from the journal
    size_t fromCache = 0;    ///< content-keyed result-cache hits
    uint64_t journalTruncatedBytes = 0; ///< torn tail dropped on resume
};

/** Content key for one point: the full configuration identity (not
 *  the point index), so the result cache keeps hitting after the grid
 *  around a config changes. */
using PointKeyFn = std::function<std::string(const Point &)>;

/**
 * SweepRunner::run with a durability layer: rows already present in
 * the result cache (by content key) or the resumed journal (by dense
 * index) are replayed; only the remainder is simulated, each completed
 * point journaled as it lands and new results appended to the cache.
 * The assembled table is byte-identical to a fresh, journal-less run
 * for deterministic schemas (wall-clock columns replay their recorded
 * values — drop them before byte-comparing, as --no-wall does).
 *
 * Returns Ok and fills @p out on success. HeaderMismatch / Corrupt /
 * IoError (with @p err) mean the journal was refused — nothing was
 * simulated and nothing was merged.
 */
JournalStatus runJournaledSweep(const SweepRunner &runner,
                                const std::vector<Point> &points,
                                std::vector<Column> schema,
                                const PointKeyFn &keyFn,
                                const SweepRunner::RowFn &fn,
                                const JournalOptions &opts,
                                const sim::EngineOptions &engine,
                                Table *out, ResumeStats *stats,
                                std::string *err);

} // namespace sweep
} // namespace eq

#endif // EQ_SWEEP_JOURNAL_HH
