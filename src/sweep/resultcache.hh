/**
 * @file
 * ResultCache: a file-backed, content-keyed cache of completed sweep
 * rows — config identity in, result row out.
 *
 * Where the journal makes one grid crash-safe (keyed by dense point
 * index under a grid-hash header), the result cache makes *re-plots*
 * cheap: rows are keyed by the full content of the point's
 * configuration (a canonical string — e.g. the model name plus the
 * config's JSON dump), so after a one-axis change the new grid's
 * unchanged points hit the cache and only genuinely new configurations
 * are simulated.
 *
 * Collision discipline mirrors serve::ProgramCache: the in-memory
 * index buckets by FNV-1a hash of the key string, but every hit
 * verifies full string equality before reuse — a hash collision costs
 * a second bucket entry, never a wrong row. Keying on full content is
 * what makes replay sound: two equal keys denote byte-identical
 * simulations (the determinism guarantee), so a cached row is
 * indistinguishable from a recomputed one.
 *
 * File format: one NDJSON header line (schema signature + resolved
 * backend/fuse mode), then one CRC-protected record per row, appended
 * with a single write(2) each. Unlike the journal, a damaged or
 * mismatched cache is never an error: a cache can always be recomputed,
 * so open() quietly truncates a torn tail, drops everything from the
 * first corrupt record, and starts fresh (rewriting the header) when
 * the header does not match the current schema/backend — stale rows
 * must never be served to a sweep they do not describe.
 */

#ifndef EQ_SWEEP_RESULTCACHE_HH
#define EQ_SWEEP_RESULTCACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sweep/table.hh"

namespace eq {
namespace sweep {

class ResultCache {
  public:
    struct Stats {
        size_t entries = 0;      ///< rows held in memory
        uint64_t hits = 0;       ///< lookups that returned a row
        uint64_t misses = 0;     ///< lookups that found nothing
        uint64_t collisions = 0; ///< hash matched, key string did not
        uint64_t loaded = 0;     ///< rows recovered from the file
        uint64_t appended = 0;   ///< rows written this session
        uint64_t discarded = 0;  ///< file rows dropped (stale/corrupt)
    };

    ResultCache() = default;
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Bind to @p path and load every valid row recorded under a
     * matching header. Creates the file (with a fresh header) when
     * absent; rewrites it when the existing header does not match
     * @p schema_sig / @p backend / @p fuse — counting the dropped rows
     * in stats().discarded — and truncates torn/corrupt suffixes.
     * Returns false only on I/O errors.
     */
    bool open(const std::string &path, const std::string &schema_sig,
              const std::string &backend, const std::string &fuse,
              const std::vector<Column> &schema, std::string *err);

    /** The cached row for @p key, or nullptr. Full string equality —
     *  never trusts the hash alone. */
    const std::vector<Cell> *lookup(const std::string &key);

    /** True when an equal key is cached (no stats side effects). */
    bool contains(const std::string &key) const;

    /** Record @p cells for @p key: appended to the file (single
     *  write(2)) and indexed in memory. A key already present is
     *  ignored (first write wins — equal keys imply equal rows). */
    bool append(const std::string &key, const std::vector<Cell> &cells,
                std::string *err);

    /** Test seams: append/look up under a caller-chosen hash, so tests
     *  can force two keys into one bucket and prove full-key
     *  verification keeps them apart (the acquireHashed() of this
     *  cache). */
    bool appendHashed(uint64_t hash, const std::string &key,
                      const std::vector<Cell> &cells, std::string *err);
    const std::vector<Cell> *lookupHashed(uint64_t hash,
                                          const std::string &key);

    /** fsync the cache file fd. */
    bool sync(std::string *err);
    void close();

    const Stats &stats() const { return _stats; }

    /** FNV-1a over a key string (exposed for the test seam). */
    static uint64_t hashKey(const std::string &key);

  private:
    struct Row {
        std::string key;
        std::vector<Cell> cells;
    };

    bool writeHeader(std::string *err);
    bool appendRecordLine(uint64_t hash, const std::string &key,
                          const std::vector<Cell> &cells,
                          std::string *err);

    int _fd = -1;
    std::string _path;
    std::string _schemaSig;
    std::string _backend;
    std::string _fuse;
    std::vector<Column> _schema;
    std::unordered_map<uint64_t, std::vector<Row>> _byHash;
    Stats _stats;
};

} // namespace sweep
} // namespace eq

#endif // EQ_SWEEP_RESULTCACHE_HH
