/**
 * @file
 * Declarative scenario grids: named cartesian axes plus filters,
 * mirroring the nested sweep loops of the paper's experiment harnesses
 * (e.g. fig12_scalability's dataflow x Ah x HW x F x N nest).
 *
 * A Grid enumerates its points in a deterministic order — lexicographic
 * over the axes in declaration order, last axis fastest, exactly like
 * the nested for-loops it replaces — and assigns each surviving point a
 * dense index. That index, not thread scheduling, orders sweep results,
 * which is what makes sharded execution reproducible.
 */

#ifndef EQ_SWEEP_GRID_HH
#define EQ_SWEEP_GRID_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace eq {
namespace sweep {

class Grid;

/** One scenario: a value for every axis, plus its dense sweep index. */
class Point {
  public:
    /** Dense index in enumeration order (after filtering). */
    size_t index() const { return _index; }

    /** Value of the named axis; panics when the axis is unknown. */
    int64_t at(const std::string &axis) const;
    /** Value of the @p axis -th declared axis. */
    int64_t at(size_t axis) const;

    const std::vector<int64_t> &values() const { return _values; }

  private:
    friend class Grid;
    const Grid *_grid = nullptr;
    size_t _index = 0;
    std::vector<int64_t> _values;
};

/** Cartesian product of named axes, pruned by filters. */
class Grid {
  public:
    /** Append an axis; @p values are swept in the given order. */
    Grid &axis(std::string name, std::vector<int64_t> values);

    /** Keep only points for which @p keep returns true. Filters see a
     *  fully populated Point (index not yet assigned). */
    Grid &filter(std::function<bool(const Point &)> keep);

    size_t numAxes() const { return _axes.size(); }
    const std::string &axisName(size_t i) const { return _axes[i].name; }
    /** Index of the named axis; panics when absent. */
    size_t axisIndex(const std::string &name) const;

    /** Enumerate all surviving points with dense indices. The returned
     *  points borrow this Grid (for axis-name lookup); it must outlive
     *  them. */
    std::vector<Point> points() const;

    /** Number of surviving points (filters applied). */
    size_t size() const { return points().size(); }

  private:
    struct Axis {
        std::string name;
        std::vector<int64_t> values;
    };
    std::vector<Axis> _axes;
    std::vector<std::function<bool(const Point &)>> _filters;
};

} // namespace sweep
} // namespace eq

#endif // EQ_SWEEP_GRID_HH
