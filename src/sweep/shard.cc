/**
 * @file
 * Shard manifests, the deterministic shard-journal merge, and the
 * heartbeat beacon. See shard.hh for the dispatch model.
 */

#include "sweep/shard.hh"

#include <map>

#include "base/fsutil.hh"

namespace eq {
namespace sweep {

// ---------------------------------------------------------------------------
// ShardManifest

serve::Json
ShardManifest::toJson() const
{
    serve::Json out = serve::Json::object();
    out.set("manifest", "eqsweep-shard");
    out.set("shard", shard);
    out.set("num_shards", numShards);
    out.set("begin", static_cast<int64_t>(beginPoint));
    out.set("end", static_cast<int64_t>(endPoint));
    out.set("header", header.toJson());
    out.set("spec", specPath);
    out.set("journal", journalPath);
    out.set("heartbeat", heartbeatPath);
    return out;
}

bool
ShardManifest::fromJson(const serve::Json &j, ShardManifest *out,
                        std::string *err)
{
    if (!j.isObject() || j.getStr("manifest", "") != "eqsweep-shard") {
        if (err)
            *err = "not an eqsweep shard manifest";
        return false;
    }
    out->shard = int(j.getInt("shard", -1));
    out->numShards = int(j.getInt("num_shards", 0));
    int64_t begin = j.getInt("begin", -1);
    int64_t end = j.getInt("end", -1);
    const serve::Json *header = j.find("header");
    if (out->shard < 0 || out->numShards <= out->shard || begin < 0 ||
        end < begin || !header) {
        if (err)
            *err = "malformed shard manifest";
        return false;
    }
    out->beginPoint = uint64_t(begin);
    out->endPoint = uint64_t(end);
    if (!JournalHeader::fromJson(*header, &out->header, err))
        return false;
    if (out->endPoint > out->header.numPoints) {
        if (err)
            *err = "shard range exceeds the grid";
        return false;
    }
    out->specPath = j.getStr("spec", "");
    out->journalPath = j.getStr("journal", "");
    out->heartbeatPath = j.getStr("heartbeat", "");
    return true;
}

bool
ShardManifest::save(const std::string &path, std::string *err) const
{
    return fs::writeFileAtomic(path, toJson().dump() + "\n", err);
}

bool
ShardManifest::load(const std::string &path, ShardManifest *out,
                    std::string *err)
{
    std::string text;
    if (!fs::readFile(path, &text, err))
        return false;
    serve::Json j;
    std::string perr;
    if (!serve::Json::parse(text, &j, &perr)) {
        if (err)
            *err = "parse " + path + ": " + perr;
        return false;
    }
    return fromJson(j, out, err);
}

std::vector<ShardManifest>
makeShardManifests(uint64_t num_points, int num_shards,
                   const JournalHeader &header, const std::string &dir)
{
    if (num_shards < 1)
        num_shards = 1;
    if (uint64_t(num_shards) > num_points && num_points > 0)
        num_shards = int(num_points);

    std::vector<ShardManifest> out;
    const uint64_t base = num_points / uint64_t(num_shards);
    const uint64_t extra = num_points % uint64_t(num_shards);
    uint64_t begin = 0;
    for (int k = 0; k < num_shards; ++k) {
        ShardManifest m;
        m.shard = k;
        m.numShards = num_shards;
        m.beginPoint = begin;
        m.endPoint = begin + base + (uint64_t(k) < extra ? 1 : 0);
        begin = m.endPoint;
        m.header = header;
        m.journalPath =
            dir + "/shard-" + std::to_string(k) + ".journal.ndjson";
        m.heartbeatPath =
            dir + "/shard-" + std::to_string(k) + ".heartbeat.json";
        out.push_back(std::move(m));
    }
    return out;
}

// ---------------------------------------------------------------------------
// Merge

JournalStatus
mergeShardJournals(const std::vector<std::string> &paths,
                   const JournalHeader &expect,
                   const std::vector<Column> &schema, Table *out,
                   std::vector<uint64_t> *missing, std::string *err)
{
    // Dense index -> row; later insertions (later paths / later
    // records) overwrite earlier ones: last-write-wins.
    std::map<uint64_t, std::vector<Cell>> rows;
    for (const std::string &path : paths) {
        Journal::Recovery rec = Journal::recover(path, &expect, schema);
        if (rec.status != JournalStatus::Ok) {
            if (err)
                *err = path + ": " + rec.error;
            return rec.status;
        }
        for (auto &record : rec.records)
            rows[record.index] = std::move(record.cells);
    }

    if (missing) {
        missing->clear();
        for (uint64_t i = 0; i < expect.numPoints; ++i)
            if (!rows.count(i))
                missing->push_back(i);
    }

    Table table{std::vector<Column>(schema)};
    for (auto &entry : rows)
        table.addRow(std::move(entry.second));
    *out = std::move(table);
    return JournalStatus::Ok;
}

// ---------------------------------------------------------------------------
// Heartbeat

bool
Heartbeat::beat(uint64_t completed, std::string *err)
{
    ++_beats;
    serve::Json j = serve::Json::object();
    j.set("shard", _shard);
    j.set("beat", static_cast<int64_t>(_beats));
    j.set("completed", static_cast<int64_t>(completed));
    return fs::writeFileAtomic(_path, j.dump() + "\n", err);
}

bool
Heartbeat::load(const std::string &path, State *out, std::string *err)
{
    std::string text;
    if (!fs::readFile(path, &text, err))
        return false;
    serve::Json j;
    std::string perr;
    if (!serve::Json::parse(text, &j, &perr) || !j.isObject()) {
        if (err)
            *err = "parse " + path + ": " + perr;
        return false;
    }
    out->shard = int(j.getInt("shard", -1));
    out->beat = uint64_t(j.getInt("beat", 0));
    out->completed = uint64_t(j.getInt("completed", 0));
    return true;
}

} // namespace sweep
} // namespace eq
