/**
 * @file
 * Structured result collection for parameter sweeps: a typed row table
 * with a declared column schema, deterministic text/CSV/JSON emitters,
 * and per-column summary statistics.
 *
 * Every experiment harness routes its rows through one of these instead
 * of hand-rolled printf loops, so the same sweep can render the paper's
 * aligned terminal tables, machine-readable CSV for plotting, or JSON
 * for downstream tooling — byte-identically for identical rows, which
 * is what the sweep-determinism tests compare across thread counts.
 */

#ifndef EQ_SWEEP_TABLE_HH
#define EQ_SWEEP_TABLE_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace eq {
namespace sweep {

/** Cell/column value kinds. */
enum class ValueKind { Int, Real, Str };

/** One table cell: a tagged int64 / double / string. */
class Cell {
  public:
    Cell() : _kind(ValueKind::Int), _i(0) {}
    Cell(int64_t v) : _kind(ValueKind::Int), _i(v) {}
    Cell(int v) : _kind(ValueKind::Int), _i(v) {}
    Cell(unsigned v) : _kind(ValueKind::Int), _i(v) {}
    Cell(uint64_t v) : _kind(ValueKind::Int), _i(static_cast<int64_t>(v)) {}
    Cell(double v) : _kind(ValueKind::Real), _r(v) {}
    Cell(std::string v) : _kind(ValueKind::Str), _s(std::move(v)) {}
    Cell(const char *v) : _kind(ValueKind::Str), _s(v) {}

    ValueKind kind() const { return _kind; }
    int64_t asInt() const;
    double asReal() const;
    /** Numeric value of an Int or Real cell (for summaries). */
    double asNumber() const;
    const std::string &asStr() const;

  private:
    ValueKind _kind;
    int64_t _i = 0;
    double _r = 0.0;
    std::string _s;
};

/** Schema entry: column name, kind, and text-rendering hints. */
struct Column {
    std::string name;
    ValueKind kind = ValueKind::Int;
    /** Minimum text width (0 = natural). */
    int width = 0;
    /** Fraction digits for Real cells (text, CSV, and JSON). */
    int precision = 4;
};

/** Min/max/mean/sum over one numeric column. */
struct ColumnSummary {
    size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double sum = 0.0;
};

/** A schema-typed result table. */
class Table {
  public:
    explicit Table(std::vector<Column> schema);

    const std::vector<Column> &schema() const { return _schema; }
    size_t numColumns() const { return _schema.size(); }
    size_t numRows() const { return _rows.size(); }

    /** Index of the named column; panics when absent. */
    size_t columnIndex(const std::string &name) const;

    /** Append a row; arity and cell kinds must match the schema. */
    void addRow(std::vector<Cell> cells);

    const Cell &at(size_t row, size_t col) const;
    const std::vector<Cell> &row(size_t i) const { return _rows[i]; }

    /** Aligned human-readable columns (header prefixed with '#'). */
    void emitText(std::ostream &os) const;
    /** RFC-4180-style CSV with a header line. */
    void emitCsv(std::ostream &os) const;
    /** JSON: {"columns": [...], "rows": [[...], ...]}. */
    void emitJson(std::ostream &os) const;

    /** The CSV emission as a string (what determinism tests compare). */
    std::string csv() const;

    /** Stats over a numeric (Int or Real) column; panics on Str. */
    ColumnSummary summarize(const std::string &column) const;

    /** A copy holding only the columns for which @p keep returns true
     *  (e.g. dropping wall-clock columns before byte-comparing tables
     *  from different thread counts). */
    Table filterColumns(
        const std::function<bool(const Column &)> &keep) const;

  private:
    std::string renderCell(const Cell &c, const Column &col) const;

    std::vector<Column> _schema;
    std::vector<std::vector<Cell>> _rows;
};

} // namespace sweep
} // namespace eq

#endif // EQ_SWEEP_TABLE_HH
