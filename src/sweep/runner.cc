/**
 * @file
 * SweepRunner implementation: dynamic point claiming over an atomic
 * cursor, per-point result slots for deterministic assembly, and
 * EQ_SWEEP_THREADS resolution.
 */

#include "sweep/runner.hh"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"

namespace eq {
namespace sweep {

SweepRunner::SweepRunner(RunnerOptions opts) : _opts(opts) {}

unsigned
SweepRunner::threadsFor(size_t num_points) const
{
    unsigned n = _opts.threads;
    if (n == 0) {
        if (const char *env = std::getenv("EQ_SWEEP_THREADS")) {
            long v = std::strtol(env, nullptr, 10);
            if (v > 0)
                n = static_cast<unsigned>(v);
            else
                eq_warn("ignoring invalid EQ_SWEEP_THREADS='", env, "'");
        }
    }
    if (n == 0)
        n = std::max(1u, std::thread::hardware_concurrency());
    if (num_points > 0 && n > num_points)
        n = static_cast<unsigned>(num_points);
    return std::max(1u, n);
}

Table
SweepRunner::run(const Grid &grid, std::vector<Column> schema,
                 const RowFn &fn) const
{
    return run(grid.points(), std::move(schema), fn);
}

Table
SweepRunner::run(const std::vector<Point> &points,
                 std::vector<Column> schema, const RowFn &fn) const
{
    Table table(std::move(schema));
    if (points.empty())
        return table;

    std::vector<std::vector<Cell>> rows(points.size());
    std::atomic<size_t> cursor{0};
    auto work = [&](unsigned worker) {
        for (size_t i; (i = cursor.fetch_add(1)) < points.size();)
            rows[i] = fn(points[i], worker);
    };

    unsigned nthreads = threadsFor(points.size());
    if (nthreads == 1) {
        // Inline: no thread spawn for serial sweeps (and no scheduler
        // noise in single-threaded determinism baselines).
        work(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nthreads);
        for (unsigned w = 0; w < nthreads; ++w)
            pool.emplace_back(work, w);
        for (auto &t : pool)
            t.join();
    }

    // Assemble in point-index order: the table is independent of how
    // points were interleaved across workers.
    for (auto &row : rows)
        table.addRow(std::move(row));
    return table;
}

} // namespace sweep
} // namespace eq
