/**
 * @file
 * linalg.conv / linalg.matmul / linalg.fill -> affine loop nests.
 */

#include "base/logging.hh"
#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/linalg.hh"
#include "ir/builder.hh"
#include "passes/passes.hh"

namespace eq {
namespace passes {

namespace {

using ir::OpBuilder;
using ir::Value;

/** An opened loop nest: induction variables plus each level's body. */
struct LoopNest {
    std::vector<Value> ivs;
    std::vector<ir::Block *> bodies;
};

/** Open a loop nest over @p ubs; leaves the builder inside the
 *  innermost body. */
LoopNest
openLoopNest(OpBuilder &b, const std::vector<int64_t> &ubs)
{
    LoopNest nest;
    for (int64_t ub : ubs) {
        auto loop = b.create<affine::ForOp>(int64_t{0}, ub, int64_t{1});
        affine::ForOp f(loop.op());
        nest.ivs.push_back(f.inductionVar());
        nest.bodies.push_back(&f.body());
        b.setInsertionPointToEnd(&f.body());
    }
    return nest;
}

/** Terminate every level of the nest with affine.yield. */
void
closeLoopNest(OpBuilder &b, const LoopNest &nest)
{
    for (ir::Block *body : nest.bodies) {
        OpBuilder yb(b.context());
        yb.setInsertionPointToEnd(body);
        yb.create<affine::YieldOp>(std::vector<Value>{});
    }
}

void
lowerConv(ir::Operation *conv)
{
    OpBuilder b(conv->context());
    b.setInsertionPoint(conv);
    linalg::ConvOp c(conv);
    auto d = linalg::convDims(conv);
    Value ifmap = c.ifmap();
    Value weight = c.weight();
    Value ofmap = c.ofmap();

    auto nest = openLoopNest(b, {d.N, d.Eh, d.Ew, d.C, d.Fh, d.Fw});
    const auto &ivs = nest.ivs;
    Value n = ivs[0], eh = ivs[1], ew = ivs[2], ch = ivs[3], fh = ivs[4],
          fw = ivs[5];
    Value ih = b.create<arith::AddIOp>(eh, fh)->result(0);
    Value iw = b.create<arith::AddIOp>(ew, fw)->result(0);
    Value iv = b.create<affine::LoadOp>(ifmap,
                                        std::vector<Value>{ch, ih, iw})
                   ->result(0);
    Value wv = b.create<affine::LoadOp>(
                    weight, std::vector<Value>{n, ch, fh, fw})
                   ->result(0);
    Value ov = b.create<affine::LoadOp>(ofmap,
                                        std::vector<Value>{n, eh, ew})
                   ->result(0);
    Value prod = b.create<arith::MulIOp>(iv, wv)->result(0);
    Value sum = b.create<arith::AddIOp>(ov, prod)->result(0);
    b.create<affine::StoreOp>(sum, ofmap, std::vector<Value>{n, eh, ew});
    closeLoopNest(b, nest);
    conv->erase();
}

void
lowerFill(ir::Operation *fill)
{
    OpBuilder b(fill->context());
    b.setInsertionPoint(fill);
    linalg::FillOp f(fill);
    Value memref = fill->operand(0);
    const auto &shape = memref.type().shape();
    Value cst = b.create<arith::ConstantOp>(f.fillValue(),
                                            b.context().i32Type())
                    ->result(0);
    auto nest = openLoopNest(b, shape);
    b.create<affine::StoreOp>(cst, memref, nest.ivs);
    closeLoopNest(b, nest);
    fill->erase();
}

void
lowerMatmul(ir::Operation *mm)
{
    OpBuilder b(mm->context());
    b.setInsertionPoint(mm);
    Value a = mm->operand(0);
    Value bm = mm->operand(1);
    Value cm = mm->operand(2);
    int64_t m = a.type().shape()[0];
    int64_t k = a.type().shape()[1];
    int64_t n = bm.type().shape()[1];
    auto nest = openLoopNest(b, {m, n, k});
    const auto &ivs = nest.ivs;
    Value av = b.create<affine::LoadOp>(
                    a, std::vector<Value>{ivs[0], ivs[2]})
                   ->result(0);
    Value bv = b.create<affine::LoadOp>(
                    bm, std::vector<Value>{ivs[2], ivs[1]})
                   ->result(0);
    Value cv = b.create<affine::LoadOp>(
                    cm, std::vector<Value>{ivs[0], ivs[1]})
                   ->result(0);
    Value prod = b.create<arith::MulIOp>(av, bv)->result(0);
    Value sum = b.create<arith::AddIOp>(cv, prod)->result(0);
    b.create<affine::StoreOp>(sum, cm,
                              std::vector<Value>{ivs[0], ivs[1]});
    closeLoopNest(b, nest);
    mm->erase();
}

} // namespace

std::string
ConvertLinalgToAffinePass::runOnModule(ir::Operation *module)
{
    std::vector<ir::Operation *> worklist;
    module->walk([&](ir::Operation *op) {
        if (op->dialect() == "linalg")
            worklist.push_back(op);
    });
    for (ir::Operation *op : worklist) {
        if (ir::isa<linalg::ConvOp>(op))
            lowerConv(op);
        else if (ir::isa<linalg::FillOp>(op))
            lowerFill(op);
        else if (ir::isa<linalg::MatmulOp>(op))
            lowerMatmul(op);
        else
            return "unsupported linalg op '" + op->name() + "'";
    }
    return "";
}

} // namespace passes
} // namespace eq
