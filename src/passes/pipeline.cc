#include "passes/pipeline.hh"

#include "base/logging.hh"
#include "dialects/equeue.hh"
#include "dialects/linalg.hh"
#include "passes/passes.hh"
#include "systolic/generator.hh"

namespace eq {
namespace passes {

std::string
stageName(Stage s)
{
    switch (s) {
      case Stage::Linalg:
        return "Linalg";
      case Stage::Affine:
        return "Affine";
      case Stage::Reassign:
        return "Reassign";
      case Stage::Systolic:
        return "Systolic";
    }
    return "?";
}

ir::OwningOpRef
buildConvModule(ir::Context &ctx, const scalesim::Config &cfg)
{
    ir::OwningOpRef module = ir::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(&module->region(0).front());
    using ir::Value;

    auto host = b.create<equeue::CreateProcOp>(std::string("ARMr5"));
    host->setAttr(kTagAttr, ir::Attribute::string("host"));
    auto sram = b.create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{1 << 20}, 32u, 4u);
    sram->setAttr(kTagAttr, ir::Attribute::string("sram"));
    auto dma = b.create<equeue::CreateDmaOp>();
    dma->setAttr(kTagAttr, ir::Attribute::string("dma"));
    b.create<equeue::CreateCompOp>(
        std::string("Host SRAM DMA"),
        std::vector<Value>{host->result(0), sram->result(0),
                           dma->result(0)});

    auto alloc = [&](std::vector<int64_t> shape, const char *tag) {
        auto buf = b.create<equeue::AllocOp>(sram->result(0),
                                             std::move(shape), 32u);
        buf->setAttr(kTagAttr, ir::Attribute::string(tag));
        return buf->result(0);
    };
    Value ifmap = alloc({cfg.c, cfg.h, cfg.w}, "ifmap");
    Value weight = alloc({cfg.n, cfg.c, cfg.fh, cfg.fw}, "weight");
    Value ofmap = alloc({cfg.n, int64_t(cfg.eh()), int64_t(cfg.ew())},
                        "ofmap");
    b.create<linalg::ConvOp>(ifmap, weight, ofmap);
    return module;
}

namespace {

/** Final stage: replace the module with the systolic model emitted from
 *  the same reusable building blocks the generator uses; per the paper,
 *  the pass-produced model does not include the final cool-down. */
class SystolicConvertPass : public ir::Pass {
  public:
    explicit SystolicConvertPass(const scalesim::Config &cfg)
        : Pass("systolic-convert"), _cfg(cfg)
    {}

    std::string
    runOnModule(ir::Operation *module) override
    {
        // Drop the scalar-core program: the systolic structure replaces
        // both the structure and the control flow.
        ir::Block &top = module->region(0).front();
        std::vector<ir::Operation *> ops(top.begin(), top.end());
        for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
            (*it)->remove();
            delete *it;
        }
        systolic::EmitOptions opts;
        opts.skipFinalDrain = true;
        systolic::emitSystolicInto(module, _cfg, opts);
        return "";
    }

  private:
    scalesim::Config _cfg;
};

} // namespace

std::string
lowerConvModule(ir::Operation *module, Stage stage,
                const scalesim::Config &cfg)
{
    ir::PassManager pm(/*verify_each=*/true);
    if (stage == Stage::Systolic) {
        pm.add<SystolicConvertPass>(cfg);
        return pm.run(module);
    }
    if (stage >= Stage::Affine) {
        pm.add<ConvertLinalgToAffinePass>();
        pm.add<EQueueReadWritePass>();
    }
    if (stage >= Stage::Reassign) {
        pm.add<AllocateMemoryPass>("Register", std::vector<int64_t>{1},
                                   32u, 1u, "acc");
        pm.add<ReassignBufferPass>("ofmap", "acc");
    }
    pm.add<LaunchPass>("host", "main");
    if (stage >= Stage::Reassign) {
        // Write the accumulator back to the SRAM ofmap when done.
        pm.add<MemcpyPass>("acc", "ofmap", "dma", "main",
                           /*before=*/false);
    }
    return pm.run(module);
}

ir::OwningOpRef
buildConvAtStage(ir::Context &ctx, Stage stage,
                 const scalesim::Config &cfg)
{
    ir::OwningOpRef module = buildConvModule(ctx, cfg);
    std::string err = lowerConvModule(module.get(), stage, cfg);
    if (!err.empty())
        eq_fatal("pipeline failed: ", err);
    return module;
}

} // namespace passes
} // namespace eq
