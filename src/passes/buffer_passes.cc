/**
 * @file
 * Buffer-oriented passes: equeue-read-write, allocate-buffer,
 * reassign-buffer, launch.
 */

#include "base/logging.hh"
#include "base/stringutil.hh"
#include "dialects/affine.hh"
#include "dialects/equeue.hh"
#include "dialects/memref.hh"
#include "ir/builder.hh"
#include "passes/passes.hh"

namespace eq {
namespace passes {

using ir::OpBuilder;
using ir::Value;

std::string
EQueueReadWritePass::runOnModule(ir::Operation *module)
{
    std::vector<ir::Operation *> worklist;
    module->walk([&](ir::Operation *op) {
        if (ir::isa<affine::LoadOp>(op) || ir::isa<affine::StoreOp>(op))
            worklist.push_back(op);
    });
    for (ir::Operation *op : worklist) {
        bool is_store = ir::isa<affine::StoreOp>(op);
        Value memref = is_store ? affine::StoreOp(op).memref()
                                : affine::LoadOp(op).memref();
        if (!memref.type().isBuffer())
            continue; // host memrefs stay in the affine dialect
        OpBuilder b(op->context());
        b.setInsertionPoint(op);
        if (is_store) {
            affine::StoreOp st(op);
            b.create<equeue::WriteOp>(st.value(), memref, Value(),
                                      st.indices());
        } else {
            affine::LoadOp ld(op);
            auto rd = b.create<equeue::ReadOp>(memref, Value(),
                                               ld.indices());
            op->result(0).replaceAllUsesWith(rd->result(0));
        }
        op->erase();
    }
    return "";
}

std::string
AllocateMemoryPass::runOnModule(ir::Operation *module)
{
    ir::Block &top = module->region(0).ensureBlock();
    OpBuilder b(module->context());
    if (top.empty())
        b.setInsertionPointToEnd(&top);
    else
        b.setInsertionPoint(&top, top.begin());
    auto mem = b.create<equeue::CreateMemOp>(_kind, _shape, _bits, _banks);
    auto buf = b.create<equeue::AllocOp>(mem->result(0), _shape, _bits);
    buf->setAttr(kTagAttr, ir::Attribute::string(_tag));
    return "";
}

std::string
ReassignBufferPass::runOnModule(ir::Operation *module)
{
    ir::Operation *from = findByTag(module, _from);
    ir::Operation *to = findByTag(module, _to);
    if (!from || !to)
        return "missing tagged buffer '" + (from ? _to : _from) + "'";
    Value from_buf = from->result(0);
    Value to_buf = to->result(0);
    bool same_rank =
        from_buf.type().shape() == to_buf.type().shape();

    // Replace uses; reads/writes with stale index ranks degrade to
    // whole-buffer accesses on the (typically element-sized) new buffer.
    auto uses = from_buf.uses();
    for (auto &[user, idx] : uses) {
        if (ir::isa<equeue::ReadOp>(user) && !same_rank) {
            equeue::ReadOp rd(user);
            OpBuilder b(user->context());
            b.setInsertionPoint(user);
            auto new_read = b.create<equeue::ReadOp>(
                to_buf, Value(), std::vector<Value>{});
            // Element loads expect a scalar; surface element 0.
            if (user->result(0).type().isInteger()) {
                auto zero = b.create("arith.constant",
                                     {b.context().indexType()}, {});
                zero->setAttr("value", ir::Attribute::integer(0));
                new_read->erase();
                auto scalar = b.create<equeue::ReadOp>(
                    to_buf, Value(),
                    std::vector<Value>{zero->result(0)});
                user->result(0).replaceAllUsesWith(scalar->result(0));
            } else {
                user->result(0).replaceAllUsesWith(new_read->result(0));
            }
            user->erase();
        } else if (ir::isa<equeue::WriteOp>(user) && !same_rank) {
            equeue::WriteOp wr(user);
            OpBuilder b(user->context());
            b.setInsertionPoint(user);
            auto zero = b.create("arith.constant",
                                 {b.context().indexType()}, {});
            zero->setAttr("value", ir::Attribute::integer(0));
            b.create<equeue::WriteOp>(
                wr.value(), to_buf, Value(),
                std::vector<Value>{zero->result(0)});
            user->erase();
        } else {
            user->setOperand(idx, to_buf);
        }
    }
    return "";
}

std::string
LaunchPass::runOnModule(ir::Operation *module)
{
    ir::Operation *proc_op = findByTag(module, _procTag);
    if (!proc_op)
        return "missing tagged processor '" + _procTag + "'";
    Value proc = proc_op->result(0);

    ir::Block &top = module->region(0).front();
    // Everything outside the structure prologue moves into the launch.
    std::vector<ir::Operation *> to_move;
    for (ir::Operation *op : top) {
        bool structural = startsWith(op->name(), "equeue.create_") ||
                          ir::isa<equeue::AllocOp>(op) ||
                          ir::isa<equeue::AddCompOp>(op) ||
                          ir::isa<equeue::GetCompOp>(op) ||
                          ir::isa<memref::AllocOp>(op);
        if (!structural)
            to_move.push_back(op);
    }
    if (to_move.empty())
        return "";

    OpBuilder b(module->context());
    b.setInsertionPoint(to_move.front());
    auto start = b.create<equeue::ControlStartOp>();
    auto launch = b.create<equeue::LaunchOp>(
        std::vector<Value>{start->result(0)}, proc,
        std::vector<Value>{}, std::vector<ir::Type>{});
    launch->setAttr(kTagAttr, ir::Attribute::string(_launchTag));
    equeue::LaunchOp l(launch.op());
    for (ir::Operation *op : to_move)
        op->moveToEnd(&l.body());
    {
        OpBuilder rb(module->context());
        rb.setInsertionPointToEnd(&l.body());
        rb.create<equeue::ReturnOp>(std::vector<Value>{});
    }
    b.setInsertionPointToEnd(&top);
    b.create<equeue::AwaitOp>(std::vector<Value>{launch->result(0)});
    return "";
}

} // namespace passes
} // namespace eq
