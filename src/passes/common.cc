#include "passes/passes.hh"

#include "base/logging.hh"

namespace eq {
namespace passes {

ir::Operation *
findByTag(ir::Operation *root, const std::string &tag)
{
    ir::Operation *found = nullptr;
    root->walk([&](ir::Operation *op) {
        ir::Attribute a = op->attr(kTagAttr);
        if (a && a.kind() == ir::AttrKind::String && a.asString() == tag) {
            eq_assert(!found, "ambiguous eq.tag '", tag, "'");
            found = op;
        }
    });
    return found;
}

} // namespace passes
} // namespace eq
