/**
 * @file
 * --parallel-to-equeue and --lower-extraction, plus loop coalescing.
 */

#include "base/logging.hh"
#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "ir/builder.hh"
#include "passes/passes.hh"

namespace eq {
namespace passes {

using ir::OpBuilder;
using ir::Value;

std::string
ParallelToEQueuePass::runOnModule(ir::Operation *module)
{
    std::vector<ir::Operation *> worklist;
    module->walk([&](ir::Operation *op) {
        if (ir::isa<affine::ParallelOp>(op) &&
            op->attr("eq.proc_prefix"))
            worklist.push_back(op);
    });
    for (ir::Operation *par_op : worklist) {
        affine::ParallelOp par(par_op);
        if (par_op->numOperands() != 1 ||
            par_op->operand(0).type().kind() != ir::TypeKind::Comp)
            return "tagged affine.parallel needs a component operand";
        Value comp = par_op->operand(0);
        std::string prefix = par_op->strAttr("eq.proc_prefix");
        auto lbs = par.lbs();
        auto ubs = par.ubs();
        auto steps = par.steps();

        OpBuilder b(module->context());
        b.setInsertionPoint(par_op);
        auto start = b.create<equeue::ControlStartOp>();
        Value all_done;

        // Unroll the (static) iteration domain.
        std::vector<int64_t> ivs(lbs.begin(), lbs.end());
        bool done = ivs.empty();
        while (!done) {
            auto extract = b.create<equeue::ExtractCompOp>(
                comp, prefix, ivs, b.context().procType());
            auto launch = b.create<equeue::LaunchOp>(
                std::vector<Value>{start->result(0)},
                extract->result(0), std::vector<Value>{},
                std::vector<ir::Type>{});
            {
                // Clone the body with induction variables bound to the
                // current constants.
                OpBuilder::InsertionGuard g(b);
                equeue::LaunchOp l(launch.op());
                b.setInsertionPointToEnd(&l.body());
                std::map<ir::ValueImpl *, Value> mapping;
                for (size_t i = 0; i < ivs.size(); ++i) {
                    auto cst = b.create<arith::ConstantOp>(
                        ivs[i], b.context().indexType());
                    mapping[par.body()
                                .argument(static_cast<unsigned>(i))
                                .impl()] = cst->result(0);
                }
                for (ir::Operation *inner : par.body()) {
                    if (ir::isa<affine::YieldOp>(inner))
                        continue;
                    b.insert(inner->clone(mapping));
                }
                b.create<equeue::ReturnOp>(std::vector<Value>{});
            }
            // Chain completion events with control_and (paper §VI-B.1).
            if (!all_done) {
                all_done = launch->result(0);
            } else {
                all_done = b.create<equeue::ControlAndOp>(
                                std::vector<Value>{all_done,
                                                   launch->result(0)})
                               ->result(0);
            }
            // Lexicographic advance.
            int dim = static_cast<int>(ivs.size()) - 1;
            while (dim >= 0) {
                ivs[dim] += steps[dim];
                if (ivs[dim] < ubs[dim])
                    break;
                ivs[dim] = lbs[dim];
                --dim;
            }
            done = dim < 0;
        }
        if (all_done)
            b.create<equeue::AwaitOp>(std::vector<Value>{all_done});
        par_op->erase();
    }
    return "";
}

std::string
LowerExtractionPass::runOnModule(ir::Operation *module)
{
    std::vector<ir::Operation *> worklist;
    module->walk([&](ir::Operation *op) {
        if (ir::isa<equeue::ExtractCompOp>(op))
            worklist.push_back(op);
    });
    for (ir::Operation *op : worklist) {
        equeue::ExtractCompOp ex(op);
        OpBuilder b(module->context());
        b.setInsertionPoint(op);
        auto get = b.create<equeue::GetCompOp>(op->operand(0),
                                               ex.resolvedName(),
                                               op->result(0).type());
        op->result(0).replaceAllUsesWith(get->result(0));
        op->erase();
    }
    return "";
}

std::string
CoalesceLoopsPass::runOnModule(ir::Operation *module)
{
    // Repeatedly merge tagged perfect 2-nests until none remain.
    bool changed = true;
    while (changed) {
        changed = false;
        ir::Operation *target = nullptr;
        module->walk([&](ir::Operation *op) {
            if (!target && ir::isa<affine::ForOp>(op) &&
                op->attr("eq.coalesce"))
                target = op;
        });
        if (!target)
            break;
        affine::ForOp outer(target);
        // Perfect nest check: body = [inner for, yield].
        ir::Block &obody = outer.body();
        if (obody.size() != 2 ||
            !ir::isa<affine::ForOp>(obody.front()))
            return "eq.coalesce target is not a perfect 2-nest";
        affine::ForOp inner(obody.front());
        if (outer.lb() != 0 || inner.lb() != 0 || outer.step() != 1 ||
            inner.step() != 1)
            return "coalescing requires normalized loops";
        int64_t trip_o = outer.ub();
        int64_t trip_i = inner.ub();

        OpBuilder b(module->context());
        b.setInsertionPoint(target);
        auto fused = b.create<affine::ForOp>(int64_t{0}, trip_o * trip_i,
                                             int64_t{1});
        affine::ForOp f(fused.op());
        {
            OpBuilder::InsertionGuard g(b);
            b.setInsertionPointToEnd(&f.body());
            auto ti = b.create<arith::ConstantOp>(trip_i,
                                                  b.context().indexType());
            Value ov = b.create<arith::DivSIOp>(f.inductionVar(),
                                                ti->result(0))
                           ->result(0);
            Value iv = b.create<arith::RemSIOp>(f.inductionVar(),
                                                ti->result(0))
                           ->result(0);
            outer.inductionVar().replaceAllUsesWith(ov);
            inner.inductionVar().replaceAllUsesWith(iv);
            std::vector<ir::Operation *> to_move;
            for (ir::Operation *op : inner.body())
                if (!ir::isa<affine::YieldOp>(op))
                    to_move.push_back(op);
            for (ir::Operation *op : to_move)
                op->moveToEnd(&f.body());
            b.create<affine::YieldOp>(std::vector<Value>{});
        }
        // Propagate the tag so chains of coalesces keep reducing, then
        // remove the old nest.
        if (target->attr("eq.coalesce_chain"))
            fused->setAttr("eq.coalesce", ir::Attribute::unit());
        target->erase();
        changed = true;
    }
    return "";
}

} // namespace passes
} // namespace eq
