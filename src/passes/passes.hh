/**
 * @file
 * The reusable lowering passes of Section V, plus the
 * linalg-to-affine-loops conversion the pipeline starts with.
 *
 * Buffers are located across passes through the `eq.tag` string
 * attribute on their defining alloc op; launches through `eq.tag` on the
 * launch op. Parameterised passes take tags in their constructors, so
 * the same pass composes into different dataflow pipelines with
 * different arguments (the paper's central reusability claim, §VI-D).
 */

#ifndef EQ_PASSES_PASSES_HH
#define EQ_PASSES_PASSES_HH

#include <string>
#include <vector>

#include "ir/pass.hh"

namespace eq {
namespace passes {

/** Attribute used to locate tagged ops across passes. */
constexpr const char *kTagAttr = "eq.tag";

/** Find the unique op with `eq.tag == tag` under @p root (null if none,
 *  fatal if ambiguous). */
ir::Operation *findByTag(ir::Operation *root, const std::string &tag);

// ---------------------------------------------------------------------------

/** --convert-linalg-to-affine-loops: linalg.conv/matmul/fill to explicit
 *  affine loop nests with affine.load/store + arith ops. */
class ConvertLinalgToAffinePass : public ir::Pass {
  public:
    ConvertLinalgToAffinePass()
        : Pass("convert-linalg-to-affine-loops")
    {}
    std::string runOnModule(ir::Operation *module) override;
};

/** --equeue-read-write (§V.1): affine.load/store on EQueue buffers to
 *  equeue.read/write with indices. */
class EQueueReadWritePass : public ir::Pass {
  public:
    EQueueReadWritePass() : Pass("equeue-read-write") {}
    std::string runOnModule(ir::Operation *module) override;
};

/** --allocate-buffer (§V.2): create a memory component and allocate a
 *  tagged buffer on it at the top of the module. */
class AllocateMemoryPass : public ir::Pass {
  public:
    AllocateMemoryPass(std::string mem_kind, std::vector<int64_t> shape,
                       unsigned elem_bits, unsigned banks,
                       std::string buffer_tag)
        : Pass("allocate-buffer"), _kind(std::move(mem_kind)),
          _shape(std::move(shape)), _bits(elem_bits), _banks(banks),
          _tag(std::move(buffer_tag))
    {}
    std::string runOnModule(ir::Operation *module) override;

  private:
    std::string _kind;
    std::vector<int64_t> _shape;
    unsigned _bits;
    unsigned _banks;
    std::string _tag;
};

/** --launch (§V.3): wrap the ops following the structure prologue of the
 *  module into an equeue.launch on the tagged processor. */
class LaunchPass : public ir::Pass {
  public:
    explicit LaunchPass(std::string proc_tag, std::string launch_tag)
        : Pass("launch"), _procTag(std::move(proc_tag)),
          _launchTag(std::move(launch_tag))
    {}
    std::string runOnModule(ir::Operation *module) override;

  private:
    std::string _procTag;
    std::string _launchTag;
};

/** --mem-copy (§V.4): insert a memcpy between two tagged buffers over a
 *  tagged DMA, before or after the tagged launch. */
class MemcpyPass : public ir::Pass {
  public:
    MemcpyPass(std::string src_tag, std::string dst_tag,
               std::string dma_tag, std::string launch_tag, bool before)
        : Pass("mem-copy"), _src(std::move(src_tag)),
          _dst(std::move(dst_tag)), _dma(std::move(dma_tag)),
          _launch(std::move(launch_tag)), _before(before)
    {}
    std::string runOnModule(ir::Operation *module) override;

  private:
    std::string _src, _dst, _dma, _launch;
    bool _before;
};

/** --memcpy-to-launch (§V.5): rewrite each equeue.memcpy into an
 *  equivalent equeue.launch on its DMA containing read + write. */
class MemcpyToLaunchPass : public ir::Pass {
  public:
    MemcpyToLaunchPass() : Pass("memcpy-to-launch") {}
    std::string runOnModule(ir::Operation *module) override;
};

/** --split-launch (§V.6): split a launch body at every op carrying the
 *  `eq.split` unit attribute into a dependency-chained launch sequence. */
class SplitLaunchPass : public ir::Pass {
  public:
    SplitLaunchPass() : Pass("split-launch") {}
    std::string runOnModule(ir::Operation *module) override;
};

/** --merge-memcpy-launch (§V.7): fold a memcpy that gates a launch and
 *  feeds one of its captured buffers into the head of the launch body. */
class MergeMemcpyLaunchPass : public ir::Pass {
  public:
    MergeMemcpyLaunchPass() : Pass("merge-memcpy-launch") {}
    std::string runOnModule(ir::Operation *module) override;
};

/** --reassign-buffer (§V.8): replace every use of the buffer tagged
 *  @p from with the buffer tagged @p to (e.g. SRAM -> register). Reads
 *  and writes whose index rank no longer matches become whole-buffer
 *  accesses on the new (smaller) buffer. */
class ReassignBufferPass : public ir::Pass {
  public:
    ReassignBufferPass(std::string from, std::string to)
        : Pass("reassign-buffer"), _from(std::move(from)),
          _to(std::move(to))
    {}
    std::string runOnModule(ir::Operation *module) override;

  private:
    std::string _from, _to;
};

/** --parallel-to-equeue (§V.9): unroll a tagged affine.parallel into
 *  per-iteration equeue.launch ops on per-iteration processors
 *  (symbolic `equeue.extract_comp` references), chained with
 *  control_and and closed by an await. */
class ParallelToEQueuePass : public ir::Pass {
  public:
    ParallelToEQueuePass() : Pass("parallel-to-equeue") {}
    std::string runOnModule(ir::Operation *module) override;
};

/** --lower-extraction (§V.10): resolve symbolic `equeue.extract_comp`
 *  references (prefix + constant indices) into equeue.get_comp. */
class LowerExtractionPass : public ir::Pass {
  public:
    LowerExtractionPass() : Pass("lower-extraction") {}
    std::string runOnModule(ir::Operation *module) override;
};

/** Loop coalescing (the flattening step of §VI-D stage 3): merge a
 *  perfectly nested pair of affine.for loops tagged `eq.coalesce` into
 *  one loop, reconstructing the indices with divsi/remsi. */
class CoalesceLoopsPass : public ir::Pass {
  public:
    CoalesceLoopsPass() : Pass("coalesce-loops") {}
    std::string runOnModule(ir::Operation *module) override;
};

} // namespace passes
} // namespace eq

#endif // EQ_PASSES_PASSES_HH
