/**
 * @file
 * The four-stage lowering pipeline of Section VI-D (Fig. 10 / Fig. 11):
 *
 *   Linalg  -> Affine -> Reassign -> Systolic
 *
 * All dataflows share the first three stages; the final systolic
 * conversion takes dataflow-specific parameters. Each stage is a
 * composition of the reusable passes in passes.hh; the module remains
 * executable by the generic simulation engine after every stage, which
 * is what enables simulation at multiple abstraction levels (Fig. 1).
 */

#ifndef EQ_PASSES_PIPELINE_HH
#define EQ_PASSES_PIPELINE_HH

#include <string>

#include "ir/builder.hh"
#include "ir/pass.hh"
#include "scalesim/scalesim.hh"

namespace eq {
namespace passes {

enum class Stage { Linalg, Affine, Reassign, Systolic };

std::string stageName(Stage s);

/**
 * Build the Linalg-stage input module: host processor + SRAM structure,
 * ifmap/weight/ofmap buffers (tagged), and a bare linalg.conv at module
 * scope (the launch pass wraps it during lowering).
 */
ir::OwningOpRef buildConvModule(ir::Context &ctx,
                                const scalesim::Config &cfg);

/**
 * Lower a freshly built conv module to @p stage in place.
 * @return empty on success, else a pass diagnostic.
 */
std::string lowerConvModule(ir::Operation *module, Stage stage,
                            const scalesim::Config &cfg);

/** Convenience: build + lower in one step. */
ir::OwningOpRef buildConvAtStage(ir::Context &ctx, Stage stage,
                                 const scalesim::Config &cfg);

} // namespace passes
} // namespace eq

#endif // EQ_PASSES_PIPELINE_HH
