/**
 * @file
 * --split-launch: split launch bodies at `eq.split`-tagged ops into a
 * dependency-chained sequence of launches. Values crossing a split point
 * flow through the earlier launch's return values, preserving SSA.
 */

#include <set>

#include "base/logging.hh"
#include "dialects/equeue.hh"
#include "ir/builder.hh"
#include "passes/passes.hh"

namespace eq {
namespace passes {

using ir::OpBuilder;
using ir::Value;

namespace {

constexpr const char *kSplitAttr = "eq.split";

/** True when any result of @p op still has uses. */
bool
hasDanglingResults(ir::Operation *op)
{
    for (Value r : op->results())
        if (r.hasUses())
            return true;
    return false;
}

/** Split one launch; returns an error string or "". */
std::string
splitLaunch(ir::Operation *launch_op)
{
    equeue::LaunchOp launch(launch_op);
    ir::Block &body = launch.body();

    // Partition body ops into segments at eq.split markers.
    std::vector<std::vector<ir::Operation *>> segments(1);
    for (ir::Operation *op : body) {
        if (op->attr(kSplitAttr) && !segments.back().empty())
            segments.push_back({});
        op->removeAttr(kSplitAttr);
        segments.back().push_back(op);
    }
    if (segments.size() < 2)
        return "";

    // The original terminator stays with the last segment.
    OpBuilder b(launch_op->context());
    b.setInsertionPoint(launch_op);

    // Map original block arguments back to the captured values (the new
    // launches use implicit capture).
    auto captured = launch.captured();
    for (size_t i = 0; i < captured.size(); ++i)
        body.argument(static_cast<unsigned>(i))
            .replaceAllUsesWith(captured[i]);

    Value prev_done;
    std::vector<Value> deps = launch.deps();
    ir::Operation *final_launch = nullptr;

    for (size_t s = 0; s < segments.size(); ++s) {
        bool last = s + 1 == segments.size();
        // Values defined in this segment and used later cross the split:
        // they become return values of this segment's launch.
        std::set<ir::ValueImpl *> defined;
        for (ir::Operation *op : segments[s])
            for (Value r : op->results())
                defined.insert(r.impl());
        std::vector<Value> crossing;
        for (size_t later = s + 1; later < segments.size(); ++later) {
            for (ir::Operation *op : segments[later]) {
                op->walk([&](ir::Operation *inner) {
                    for (Value v : inner->operands()) {
                        if (defined.count(v.impl()) &&
                            std::find(crossing.begin(), crossing.end(),
                                      v) == crossing.end())
                            crossing.push_back(v);
                    }
                });
            }
        }

        std::vector<ir::Type> ret_types;
        for (Value v : crossing)
            ret_types.push_back(v.type());
        // The last segment keeps the original return's values.
        ir::Operation *orig_return = nullptr;
        if (last) {
            orig_return = segments[s].back();
            if (!ir::isa<equeue::ReturnOp>(orig_return))
                orig_return = nullptr;
            if (orig_return) {
                ret_types.clear();
                for (Value v : orig_return->operands())
                    ret_types.push_back(v.type());
            }
        }

        std::vector<Value> seg_deps =
            s == 0 ? deps : std::vector<Value>{prev_done};
        auto new_launch = b.create<equeue::LaunchOp>(
            seg_deps, launch.proc(), std::vector<Value>{}, ret_types);
        equeue::LaunchOp nl(new_launch.op());
        for (ir::Operation *op : segments[s]) {
            if (last && op == orig_return)
                continue;
            if (!last && ir::isa<equeue::ReturnOp>(op))
                continue;
            op->remove();
            nl.body().push_back(op);
        }
        {
            OpBuilder rb(launch_op->context());
            rb.setInsertionPointToEnd(&nl.body());
            if (last && orig_return) {
                std::vector<Value> rets = orig_return->operands();
                rb.create<equeue::ReturnOp>(rets);
            } else {
                rb.create<equeue::ReturnOp>(last ? std::vector<Value>{}
                                                 : crossing);
            }
        }
        // Redirect crossing uses in later segments to our results.
        if (!last) {
            for (size_t k = 0; k < crossing.size(); ++k) {
                Value repl =
                    new_launch->result(static_cast<unsigned>(k) + 1);
                auto uses = crossing[k].uses();
                for (auto &[user, idx] : uses) {
                    // Only redirect uses that now live outside nl.
                    ir::Operation *anc = user;
                    bool inside = false;
                    while (anc) {
                        if (anc == new_launch.op()) {
                            inside = true;
                            break;
                        }
                        anc = anc->parentOp();
                    }
                    if (!inside)
                        user->setOperand(idx, repl);
                }
            }
        }
        prev_done = new_launch->result(0);
        final_launch = new_launch.op();
    }

    // Rewire the original launch's results.
    launch_op->result(0).replaceAllUsesWith(final_launch->result(0));
    for (unsigned r = 1; r < launch_op->numResults(); ++r)
        launch_op->result(r).replaceAllUsesWith(final_launch->result(r));
    if (hasDanglingResults(launch_op))
        return "internal: dangling results after split";
    launch_op->erase();
    return "";
}

} // namespace

std::string
SplitLaunchPass::runOnModule(ir::Operation *module)
{
    std::vector<ir::Operation *> launches;
    module->walk([&](ir::Operation *op) {
        if (!ir::isa<equeue::LaunchOp>(op))
            return;
        bool has_split = false;
        for (auto &block : op->region(0))
            for (ir::Operation *inner : *block)
                if (inner->attr("eq.split"))
                    has_split = true;
        if (has_split)
            launches.push_back(op);
    });
    for (ir::Operation *op : launches) {
        std::string err = splitLaunch(op);
        if (!err.empty())
            return err;
    }
    return "";
}

} // namespace passes
} // namespace eq
