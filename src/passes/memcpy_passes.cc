/**
 * @file
 * memcpy-related passes: mem-copy, memcpy-to-launch, merge-memcpy-launch.
 */

#include "base/logging.hh"
#include "dialects/equeue.hh"
#include "ir/builder.hh"
#include "passes/passes.hh"

namespace eq {
namespace passes {

using ir::OpBuilder;
using ir::Value;

std::string
MemcpyPass::runOnModule(ir::Operation *module)
{
    ir::Operation *src = findByTag(module, _src);
    ir::Operation *dst = findByTag(module, _dst);
    ir::Operation *dma = findByTag(module, _dma);
    ir::Operation *launch = findByTag(module, _launch);
    if (!src || !dst || !dma || !launch)
        return "missing tagged op for mem-copy";
    OpBuilder b(module->context());
    if (_before) {
        // dep -> memcpy -> launch: the copy inherits the launch's first
        // dependency and the launch then waits on the copy.
        b.setInsertionPoint(launch);
        equeue::LaunchOp l(launch);
        Value old_dep = l.deps().front();
        auto cp = b.create<equeue::MemcpyOp>(old_dep, src->result(0),
                                             dst->result(0),
                                             dma->result(0), Value());
        launch->setOperand(0, cp->result(0));
    } else {
        // launch -> memcpy (e.g. write results back after compute).
        b.setInsertionPointAfter(launch);
        auto cp = b.create<equeue::MemcpyOp>(
            launch->result(0), src->result(0), dst->result(0),
            dma->result(0), Value());
        // Anyone already awaiting the launch should await the copy too.
        auto uses = launch->result(0).uses();
        for (auto &[user, idx] : uses) {
            if (ir::isa<equeue::AwaitOp>(user) && user != cp.op())
                user->setOperand(idx, cp->result(0));
        }
    }
    return "";
}

std::string
MemcpyToLaunchPass::runOnModule(ir::Operation *module)
{
    std::vector<ir::Operation *> worklist;
    module->walk([&](ir::Operation *op) {
        if (ir::isa<equeue::MemcpyOp>(op))
            worklist.push_back(op);
    });
    for (ir::Operation *op : worklist) {
        equeue::MemcpyOp mc(op);
        OpBuilder b(module->context());
        b.setInsertionPoint(op);
        auto launch = b.create<equeue::LaunchOp>(
            std::vector<Value>{mc.dep()}, mc.dma(),
            std::vector<Value>{mc.src(), mc.dst()},
            std::vector<ir::Type>{});
        {
            OpBuilder::InsertionGuard g(b);
            equeue::LaunchOp l(launch.op());
            b.setInsertionPointToEnd(&l.body());
            Value conn = mc.hasConn() ? mc.conn() : Value();
            auto data = b.create<equeue::ReadOp>(
                l.body().argument(0), conn, std::vector<Value>{});
            b.create<equeue::WriteOp>(data->result(0),
                                      l.body().argument(1), conn,
                                      std::vector<Value>{});
            b.create<equeue::ReturnOp>(std::vector<Value>{});
        }
        op->result(0).replaceAllUsesWith(launch->result(0));
        op->erase();
    }
    return "";
}

std::string
MergeMemcpyLaunchPass::runOnModule(ir::Operation *module)
{
    // Pattern: %e = memcpy(%d, %src, %dst, %dma);
    //          launch(... deps contain %e ..., captured contains %dst)
    // Rewrite: drop the memcpy; the launch performs the copy at the head
    // of its body (read src, write dst), gated on %d instead of %e.
    std::vector<ir::Operation *> memcpys;
    module->walk([&](ir::Operation *op) {
        if (ir::isa<equeue::MemcpyOp>(op))
            memcpys.push_back(op);
    });
    for (ir::Operation *mc_op : memcpys) {
        equeue::MemcpyOp mc(mc_op);
        // A unique launch user that both depends on the copy and
        // captures its destination buffer.
        ir::Operation *target = nullptr;
        for (auto &[user, idx] : mc_op->result(0).uses()) {
            if (!ir::isa<equeue::LaunchOp>(user))
                continue;
            equeue::LaunchOp l(user);
            if (idx >= l.numDeps())
                continue;
            for (Value cap : l.captured()) {
                if (cap == mc.dst()) {
                    target = user;
                    break;
                }
            }
            if (target)
                break;
        }
        if (!target)
            continue;
        equeue::LaunchOp l(target);
        // Find the block argument aliasing the destination buffer.
        Value dst_arg;
        auto captured = l.captured();
        for (size_t i = 0; i < captured.size(); ++i)
            if (captured[i] == mc.dst())
                dst_arg = l.body().argument(static_cast<unsigned>(i));
        OpBuilder b(module->context());
        b.setInsertionPoint(&l.body(), l.body().begin());
        auto data = b.create<equeue::ReadOp>(mc.src(), Value(),
                                             std::vector<Value>{});
        b.create<equeue::WriteOp>(data->result(0), dst_arg, Value(),
                                  std::vector<Value>{});
        // Gate the launch on the copy's dependency instead.
        mc_op->result(0).replaceAllUsesWith(mc.dep());
        mc_op->erase();
    }
    return "";
}

} // namespace passes
} // namespace eq
