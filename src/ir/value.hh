/**
 * @file
 * SSA values with explicit use lists.
 *
 * A Value is a handle onto a ValueImpl owned either by the defining
 * Operation (op results) or by a Block (block arguments). Use lists record
 * (user op, operand index) pairs so passes can replaceAllUsesWith.
 */

#ifndef EQ_IR_VALUE_HH
#define EQ_IR_VALUE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ir/type.hh"

namespace eq {
namespace ir {

class Operation;
class Block;

/** Storage behind a Value handle. Addresses are stable after creation. */
struct ValueImpl {
    Type type;
    Operation *defOp = nullptr; ///< defining op, or null for block args
    Block *ownerBlock = nullptr; ///< owning block for block args
    unsigned index = 0;          ///< result index or argument index
    std::vector<std::pair<Operation *, unsigned>> uses;
    std::string nameHint;        ///< optional printing hint

    /** Dense value-numbering scratch used by interpreting consumers
     *  (the simulation engine): @ref interpScope identifies the
     *  numbering scope (an interpreted block tree), @ref interpSlot the
     *  value's slot within that scope's environment vector. Assigned at
     *  region entry by the consumer; 0/0 means "not yet numbered". */
    uint32_t interpScope = 0;
    uint32_t interpSlot = 0;
};

/** A lightweight SSA value handle. */
class Value {
  public:
    Value() = default;
    explicit Value(ValueImpl *impl) : _impl(impl) {}

    explicit operator bool() const { return _impl != nullptr; }
    bool operator==(const Value &o) const { return _impl == o._impl; }
    bool operator!=(const Value &o) const { return _impl != o._impl; }
    bool operator<(const Value &o) const { return _impl < o._impl; }

    Type type() const { return _impl->type; }
    void setType(Type t) { _impl->type = t; }

    /** Defining operation, or nullptr for a block argument. */
    Operation *definingOp() const { return _impl->defOp; }
    /** Owning block for block arguments, else nullptr. */
    Block *ownerBlock() const { return _impl->ownerBlock; }
    bool isBlockArg() const { return _impl->ownerBlock != nullptr; }
    unsigned index() const { return _impl->index; }

    const std::vector<std::pair<Operation *, unsigned>> &
    uses() const
    {
        return _impl->uses;
    }
    bool hasUses() const { return !_impl->uses.empty(); }
    size_t numUses() const { return _impl->uses.size(); }

    /** Redirect every use of this value to @p other. */
    void replaceAllUsesWith(Value other) const;

    void setNameHint(std::string hint) { _impl->nameHint = std::move(hint); }
    const std::string &nameHint() const { return _impl->nameHint; }

    ValueImpl *impl() const { return _impl; }

  private:
    ValueImpl *_impl = nullptr;
};

} // namespace ir
} // namespace eq

#endif // EQ_IR_VALUE_HH
