/**
 * @file
 * Parser for the generic textual form produced by Operation::print.
 *
 * The printer/parser pair round-trips: parse(print(op)) is structurally
 * identical to op. Used by tests and by the example tools to read IR
 * fragments from disk.
 */

#ifndef EQ_IR_PARSER_HH
#define EQ_IR_PARSER_HH

#include <string>

#include "ir/operation.hh"

namespace eq {
namespace ir {

/** Result of a parse: either an op tree or a diagnostic. */
struct ParseResult {
    OwningOpRef op;
    std::string error; ///< empty on success

    explicit operator bool() const { return error.empty() && op; }
};

/**
 * Parse a single top-level operation (usually a builtin.module) from the
 * generic textual format.
 */
ParseResult parseSourceString(Context &ctx, const std::string &source);

} // namespace ir
} // namespace eq

#endif // EQ_IR_PARSER_HH
