/**
 * @file
 * OpBuilder: insertion-point-based construction of operations.
 *
 * Dialect headers layer typed wrapper classes (with static `build`
 * methods) on top; this class provides the untyped core plus insertion
 * point management, mirroring mlir::OpBuilder.
 */

#ifndef EQ_IR_BUILDER_HH
#define EQ_IR_BUILDER_HH

#include <string>
#include <vector>

#include "base/logging.hh"
#include "ir/operation.hh"

namespace eq {
namespace ir {

/** Builds operations at a movable insertion point. */
class OpBuilder {
  public:
    explicit OpBuilder(Context &ctx) : _ctx(&ctx) {}

    Context &context() const { return *_ctx; }

    /// @name Insertion point management
    /// @{
    void
    setInsertionPointToEnd(Block *block)
    {
        _block = block;
        _atEnd = true;
    }
    void
    setInsertionPoint(Block *block, Block::iterator it)
    {
        _block = block;
        _it = it;
        _atEnd = false;
    }
    /** Insert right before @p op. */
    void
    setInsertionPoint(Operation *op)
    {
        Block *b = op->block();
        setInsertionPoint(b, b->find(op));
    }
    /** Insert right after @p op. */
    void
    setInsertionPointAfter(Operation *op)
    {
        Block *b = op->block();
        auto it = b->find(op);
        ++it;
        setInsertionPoint(b, it);
    }
    Block *insertionBlock() const { return _block; }
    /// @}

    /** Create and insert an op at the current insertion point. */
    Operation *
    create(const std::string &name, std::vector<Type> result_types,
           std::vector<Value> operands, AttrDict attrs = {},
           unsigned num_regions = 0)
    {
        Operation *op = Operation::create(*_ctx, name,
                                          std::move(result_types),
                                          std::move(operands),
                                          std::move(attrs), num_regions);
        insert(op);
        return op;
    }

    /** Create a detached op (no insertion). */
    Operation *
    createDetached(const std::string &name, std::vector<Type> result_types,
                   std::vector<Value> operands, AttrDict attrs = {},
                   unsigned num_regions = 0)
    {
        return Operation::create(*_ctx, name, std::move(result_types),
                                 std::move(operands), std::move(attrs),
                                 num_regions);
    }

    /** Typed creation: OpT must expose
     *  `static Operation *build(OpBuilder&, Args...)`. */
    template <typename OpT, typename... Args>
    OpT
    create(Args &&...args)
    {
        return OpT(OpT::build(*this, std::forward<Args>(args)...));
    }

    /** Insert a detached op at the current insertion point. */
    void
    insert(Operation *op)
    {
        eq_assert(_block, "builder has no insertion point");
        if (_atEnd) {
            _block->push_back(op);
        } else {
            _it = _block->insert(_it, op);
            ++_it;
        }
    }

    /** RAII save/restore of the insertion point. */
    class InsertionGuard {
      public:
        explicit InsertionGuard(OpBuilder &b)
            : _b(b), _block(b._block), _it(b._it), _atEnd(b._atEnd)
        {}
        ~InsertionGuard()
        {
            _b._block = _block;
            _b._it = _it;
            _b._atEnd = _atEnd;
        }

      private:
        OpBuilder &_b;
        Block *_block;
        Block::iterator _it;
        bool _atEnd;
    };

  private:
    Context *_ctx;
    Block *_block = nullptr;
    Block::iterator _it;
    bool _atEnd = true;
};

/** Create a fresh top-level `builtin.module` op with one empty block. */
OwningOpRef createModule(Context &ctx);

/** A thin typed view over an Operation*, base for dialect wrappers. */
class OpView {
  public:
    OpView() = default;
    explicit OpView(Operation *op) : _op(op) {}
    explicit operator bool() const { return _op != nullptr; }
    Operation *op() const { return _op; }
    Operation *operator->() const { return _op; }

  protected:
    Operation *_op = nullptr;
};

/**
 * Declares `static ir::OpId id(ir::Context&)` on a dialect op view
 * class, resolving the class's `opName` to its interned id through a
 * per-context cache slot: one interning on first use per context, a
 * plain vector index afterwards. Lets passes and the engine compare
 * `op->opId() == FooOp::id(ctx)` without ever touching strings.
 */
#define EQ_DECLARE_OP_ID()                                                  \
    static ::eq::ir::OpId                                                   \
    id(::eq::ir::Context &ctx)                                              \
    {                                                                       \
        static const ::eq::ir::OpIdCache cache{opName};                     \
        return cache.get(ctx);                                              \
    }

/** True when @p op is an instance of the dialect op class @p OpT. */
template <typename OpT>
inline bool
isa(const Operation *op)
{
    return op && op->opId() == OpT::id(op->context());
}

} // namespace ir
} // namespace eq

#endif // EQ_IR_BUILDER_HH
