/**
 * @file
 * Interned operation identity.
 *
 * Every distinct operation name ("equeue.launch", "arith.addi", ...) is
 * interned once per Context into a dense small-integer OpId. Hot code
 * (the simulation engine's dispatch table, pass pattern matching)
 * compares and indexes by OpId instead of comparing strings; the pooled
 * name string remains available for printing and diagnostics.
 *
 * OpIds are dense per Context: ids count up from 0 in interning order,
 * so a table indexed by OpId::raw() covers every op kind a module can
 * contain. Ids from different Contexts must not be mixed.
 */

#ifndef EQ_IR_OPID_HH
#define EQ_IR_OPID_HH

#include <cstdint>

namespace eq {
namespace ir {

class Context;

/** Dense per-context identifier for an operation name. */
class OpId {
  public:
    static constexpr uint32_t kInvalidRaw = 0xffffffffu;

    constexpr OpId() = default;
    constexpr explicit OpId(uint32_t raw) : _raw(raw) {}

    /** The dense integer; usable as a table index when valid(). */
    constexpr uint32_t raw() const { return _raw; }
    constexpr bool valid() const { return _raw != kInvalidRaw; }
    constexpr explicit operator bool() const { return valid(); }

    friend constexpr bool
    operator==(OpId a, OpId b)
    {
        return a._raw == b._raw;
    }
    friend constexpr bool
    operator!=(OpId a, OpId b)
    {
        return a._raw != b._raw;
    }
    friend constexpr bool
    operator<(OpId a, OpId b)
    {
        return a._raw < b._raw;
    }

  private:
    uint32_t _raw = kInvalidRaw;
};

/**
 * Per-op-class cache handle resolving an op name to its OpId in
 * amortised constant time (one interning on first use per Context,
 * a vector index afterwards — no hashing).
 *
 * Each OpIdCache instance claims a process-wide slot; every Context
 * keeps a slot-indexed vector of resolved ids. Dialect op classes
 * instantiate one cache each via EQ_DECLARE_OP_ID in their headers.
 */
class OpIdCache {
  public:
    explicit OpIdCache(const char *name);

    /** The id of this cache's op name in @p ctx. */
    OpId get(Context &ctx) const;

  private:
    unsigned _slot;
    const char *_name;
};

} // namespace ir
} // namespace eq

#endif // EQ_IR_OPID_HH
