#include "ir/context.hh"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "base/logging.hh"

namespace eq {
namespace ir {

Context::Context() = default;
Context::~Context() = default;

// ---------------------------------------------------------------------------
// Operation-name interning

OpId
Context::internOpName(std::string_view name)
{
    auto it = _opNameIds.find(name);
    if (it != _opNameIds.end())
        return OpId(it->second);
    uint32_t raw = static_cast<uint32_t>(_opNamePool.size());
    eq_assert(raw != OpId::kInvalidRaw, "op name pool exhausted");
    _opNamePool.push_back(std::make_unique<std::string>(name));
    _opInfos.emplace_back();
    _opNameIds.emplace(std::string_view(*_opNamePool.back()), raw);
    return OpId(raw);
}

OpId
Context::lookupOpId(std::string_view name) const
{
    auto it = _opNameIds.find(name);
    return it == _opNameIds.end() ? OpId() : OpId(it->second);
}

const std::string &
Context::opName(OpId id) const
{
    eq_assert(id.valid() && id.raw() < _opNamePool.size(),
              "opName of unknown OpId");
    return *_opNamePool[id.raw()];
}

OpId
Context::cachedOpId(unsigned slot, const char *name)
{
    if (slot >= _cachedOpIds.size())
        _cachedOpIds.resize(slot + 1);
    OpId &id = _cachedOpIds[slot];
    if (!id.valid())
        id = internOpName(name);
    return id;
}

// ---------------------------------------------------------------------------
// OpIdCache

namespace {
std::atomic<unsigned> g_nextOpIdCacheSlot{0};
} // namespace

OpIdCache::OpIdCache(const char *name)
    : _slot(g_nextOpIdCacheSlot++), _name(name)
{
}

OpId
OpIdCache::get(Context &ctx) const
{
    return ctx.cachedOpId(_slot, _name);
}

Type
Context::intern(TypeStorage st)
{
    for (const auto &existing : _typeStorage)
        if (*existing == st)
            return Type(existing.get());
    _typeStorage.push_back(std::make_unique<TypeStorage>(std::move(st)));
    return Type(_typeStorage.back().get());
}

Type
Context::noneType()
{
    TypeStorage st;
    st.kind = TypeKind::None;
    return intern(std::move(st));
}

Type
Context::indexType()
{
    TypeStorage st;
    st.kind = TypeKind::Index;
    return intern(std::move(st));
}

Type
Context::intType(unsigned width)
{
    TypeStorage st;
    st.kind = TypeKind::Integer;
    st.width = width;
    return intern(std::move(st));
}

Type
Context::floatType(unsigned width)
{
    TypeStorage st;
    st.kind = TypeKind::Float;
    st.width = width;
    return intern(std::move(st));
}

Type
Context::tensorType(std::vector<int64_t> shape, unsigned elem_bits)
{
    TypeStorage st;
    st.kind = TypeKind::Tensor;
    st.shape = std::move(shape);
    st.elemBits = elem_bits;
    return intern(std::move(st));
}

Type
Context::memrefType(std::vector<int64_t> shape, unsigned elem_bits)
{
    TypeStorage st;
    st.kind = TypeKind::MemRef;
    st.shape = std::move(shape);
    st.elemBits = elem_bits;
    return intern(std::move(st));
}

Type
Context::eventType()
{
    TypeStorage st;
    st.kind = TypeKind::Event;
    return intern(std::move(st));
}

Type
Context::procType()
{
    TypeStorage st;
    st.kind = TypeKind::Proc;
    return intern(std::move(st));
}

Type
Context::memType()
{
    TypeStorage st;
    st.kind = TypeKind::Mem;
    return intern(std::move(st));
}

Type
Context::dmaType()
{
    TypeStorage st;
    st.kind = TypeKind::Dma;
    return intern(std::move(st));
}

Type
Context::compType()
{
    TypeStorage st;
    st.kind = TypeKind::Comp;
    return intern(std::move(st));
}

Type
Context::connectionType()
{
    TypeStorage st;
    st.kind = TypeKind::Connection;
    return intern(std::move(st));
}

Type
Context::streamType()
{
    TypeStorage st;
    st.kind = TypeKind::Stream;
    return intern(std::move(st));
}

Type
Context::bufferType(std::vector<int64_t> shape, unsigned elem_bits)
{
    TypeStorage st;
    st.kind = TypeKind::Buffer;
    st.shape = std::move(shape);
    st.elemBits = elem_bits;
    return intern(std::move(st));
}

Type
Context::anyType()
{
    TypeStorage st;
    st.kind = TypeKind::Any;
    return intern(std::move(st));
}

void
Context::registerOp(OpInfo info)
{
    OpId id = internOpName(info.name);
    _opInfos[id.raw()] = std::move(info);
}

const OpInfo *
Context::lookupOp(std::string_view name) const
{
    return lookupOp(lookupOpId(name));
}

const OpInfo *
Context::lookupOp(OpId id) const
{
    if (!id.valid() || id.raw() >= _opInfos.size())
        return nullptr;
    const OpInfo &info = _opInfos[id.raw()];
    return info.name.empty() ? nullptr : &info;
}

std::vector<std::string>
Context::registeredOpNames() const
{
    std::vector<std::string> names;
    names.reserve(_opInfos.size());
    for (const OpInfo &info : _opInfos)
        if (!info.name.empty())
            names.push_back(info.name);
    std::sort(names.begin(), names.end());
    return names;
}

// ---------------------------------------------------------------------------
// Type member functions that need no Context access.

TypeKind
Type::kind() const
{
    eq_assert(_impl, "null type dereference");
    return _impl->kind;
}

bool
Type::isComponent() const
{
    switch (kind()) {
      case TypeKind::Proc:
      case TypeKind::Mem:
      case TypeKind::Dma:
      case TypeKind::Comp:
        return true;
      default:
        return false;
    }
}

unsigned
Type::width() const
{
    return _impl ? _impl->width : 0;
}

const std::vector<int64_t> &
Type::shape() const
{
    static const std::vector<int64_t> empty;
    return _impl ? _impl->shape : empty;
}

unsigned
Type::elemBits() const
{
    return _impl ? _impl->elemBits : 0;
}

int64_t
Type::numElements() const
{
    int64_t n = 1;
    for (int64_t d : shape())
        n *= d;
    return n;
}

int64_t
Type::sizeBytes() const
{
    return numElements() * ((elemBits() + 7) / 8);
}

std::string
Type::str() const
{
    if (!_impl)
        return "<<null-type>>";
    std::ostringstream os;
    auto printShaped = [&](const char *name) {
        os << name << '<';
        for (size_t i = 0; i < _impl->shape.size(); ++i) {
            if (i)
                os << 'x';
            os << _impl->shape[i];
        }
        if (!_impl->shape.empty())
            os << 'x';
        os << 'i' << _impl->elemBits << '>';
    };
    switch (_impl->kind) {
      case TypeKind::None:
        os << "none";
        break;
      case TypeKind::Index:
        os << "index";
        break;
      case TypeKind::Integer:
        os << 'i' << _impl->width;
        break;
      case TypeKind::Float:
        os << 'f' << _impl->width;
        break;
      case TypeKind::Tensor:
        printShaped("tensor");
        break;
      case TypeKind::MemRef:
        printShaped("memref");
        break;
      case TypeKind::Event:
        os << "!equeue.event";
        break;
      case TypeKind::Proc:
        os << "!equeue.proc";
        break;
      case TypeKind::Mem:
        os << "!equeue.mem";
        break;
      case TypeKind::Dma:
        os << "!equeue.dma";
        break;
      case TypeKind::Comp:
        os << "!equeue.comp";
        break;
      case TypeKind::Connection:
        os << "!equeue.conn";
        break;
      case TypeKind::Stream:
        os << "!equeue.stream";
        break;
      case TypeKind::Buffer:
        printShaped("!equeue.buffer");
        break;
      case TypeKind::Any:
        os << "!equeue.any";
        break;
    }
    return os.str();
}

} // namespace ir
} // namespace eq
