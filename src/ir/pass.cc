#include "ir/pass.hh"

namespace eq {
namespace ir {

std::string
PassManager::run(Operation *module)
{
    _timings.clear();
    for (auto &pass : _passes) {
        auto start = std::chrono::steady_clock::now();
        std::string err = pass->runOnModule(module);
        auto end = std::chrono::steady_clock::now();
        _timings.push_back(
            {pass->name(),
             std::chrono::duration<double>(end - start).count()});
        if (!err.empty())
            return pass->name() + ": " + err;
        if (_verifyEach) {
            std::string verr = module->verify();
            if (!verr.empty())
                return pass->name() + ": post-verify failed: " + verr;
        }
    }
    return "";
}

} // namespace ir
} // namespace eq
