/**
 * @file
 * Operation / Block / Region: the region-nested IR core.
 *
 * Ownership: a Region owns its Blocks; a Block owns its Operations; an
 * Operation owns its Regions. Deleting the top-level module op releases the
 * whole tree. Operations are created detached via Operation::create and
 * become owned when inserted into a block.
 */

#ifndef EQ_IR_OPERATION_HH
#define EQ_IR_OPERATION_HH

#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/attribute.hh"
#include "ir/context.hh"
#include "ir/value.hh"

namespace eq {
namespace ir {

class Region;
class Block;

/** A single IR operation with operands, results, attributes, regions. */
class Operation {
  public:
    /**
     * Create a detached operation.
     *
     * @param ctx owning context (used for ids and verification)
     * @param name full op name, e.g. "equeue.launch"
     * @param result_types one entry per result
     * @param operands SSA operands (use lists updated)
     * @param attrs attribute dictionary
     * @param num_regions number of (initially empty) regions
     */
    static Operation *create(Context &ctx, std::string_view name,
                             std::vector<Type> result_types,
                             std::vector<Value> operands,
                             AttrDict attrs = {},
                             unsigned num_regions = 0);

    ~Operation();

    Operation(const Operation &) = delete;
    Operation &operator=(const Operation &) = delete;

    Context &context() const { return *_ctx; }
    /** Full op name; aliases the context's interned pool. */
    const std::string &name() const { return *_name; }
    /** Interned identity of the op *kind* (see ir/opid.hh). Compare and
     *  table-index with this instead of comparing name() strings. */
    OpId opId() const { return _opId; }
    /** Dialect prefix of the name ("equeue" of "equeue.launch"). */
    std::string dialect() const;
    /** Name with the dialect prefix stripped. */
    std::string shortName() const;
    /** Per-instance monotonic id (deterministic ordering aid). */
    uint64_t id() const { return _id; }

    /// @name Operands
    /// @{
    size_t numOperands() const { return _operands.size(); }
    Value operand(unsigned i) const;
    void setOperand(unsigned i, Value v);
    std::vector<Value> operands() const;
    /** Append an operand (updates use lists). */
    void appendOperand(Value v);
    /** Remove operand @p i (shifts the rest down). */
    void eraseOperand(unsigned i);
    /// @}

    /// @name Results
    /// @{
    size_t numResults() const { return _results.size(); }
    Value result(unsigned i = 0);
    std::vector<Value> results();
    /// @}

    /// @name Attributes
    /// @{
    Attribute attr(const std::string &name) const
    {
        return _attrs.get(name);
    }
    void setAttr(const std::string &name, Attribute a)
    {
        _attrs.set(name, std::move(a));
    }
    void removeAttr(const std::string &name) { _attrs.erase(name); }
    const AttrDict &attrs() const { return _attrs; }
    /** Convenience accessors that fail loudly when missing. */
    int64_t intAttr(const std::string &name) const;
    int64_t intAttrOr(const std::string &name, int64_t dflt) const;
    const std::string &strAttr(const std::string &name) const;
    /// @}

    /// @name Regions
    /// @{
    size_t numRegions() const { return _regions.size(); }
    Region &region(unsigned i = 0);
    const Region &region(unsigned i = 0) const;
    /// @}

    /// @name Position in the IR
    /// @{
    Block *block() const { return _block; }
    /** The op owning the region containing this op (null at top level). */
    Operation *parentOp() const;
    /** Unlink from the containing block without destroying. */
    void remove();
    /** Unlink and destroy this op; operands' use lists are updated. */
    void erase();
    /** Move this op immediately before @p other (same or other block). */
    void moveBefore(Operation *other);
    /** Move this op to the end of @p target. */
    void moveToEnd(Block *target);
    /// @}

    /** Pre-order walk over this op and all nested ops. */
    void walk(const std::function<void(Operation *)> &fn);

    /**
     * Deep-copy this operation (attributes, regions, block args).
     * Operands are remapped through @p mapping when present, otherwise
     * reused as-is; the clone's results and block arguments are added to
     * @p mapping. The clone is detached (insert it yourself).
     */
    Operation *clone(std::map<ValueImpl *, Value> &mapping) const;

    /** Run the registered verifier hook plus structural checks.
     *  Returns an empty string on success. */
    std::string verify();

    /** Print in generic textual form. */
    void print(std::ostream &os) const;
    std::string str() const;

    /** Internal: called by Block when inserting/removing. */
    void setBlock(Block *b) { _block = b; }

  private:
    Operation(Context &ctx, std::string_view name);

    /** Drop all operand uses (called by erase/destructor). */
    void dropOperands();

    Context *_ctx;
    const std::string *_name; ///< pooled; owned by the Context
    OpId _opId;
    uint64_t _id;
    std::vector<ValueImpl *> _operands; ///< non-owning
    std::deque<ValueImpl> _results;     ///< owned, address-stable
    AttrDict _attrs;
    std::vector<std::unique_ptr<Region>> _regions;
    Block *_block = nullptr;
};

/** A straight-line sequence of operations with block arguments. */
class Block {
  public:
    Block() = default;
    ~Block();

    Block(const Block &) = delete;
    Block &operator=(const Block &) = delete;

    /// @name Arguments
    /// @{
    Value addArgument(Type t);
    size_t numArguments() const { return _args.size(); }
    Value argument(unsigned i);
    std::vector<Value> arguments();
    /// @}

    /// @name Operations (owned)
    /// @{
    using OpList = std::list<Operation *>;
    using iterator = OpList::iterator;

    bool empty() const { return _ops.empty(); }
    size_t size() const { return _ops.size(); }
    iterator begin() { return _ops.begin(); }
    iterator end() { return _ops.end(); }
    Operation *front() { return _ops.front(); }
    Operation *back() { return _ops.back(); }

    /** Append, taking ownership. */
    void push_back(Operation *op);
    /** Insert before @p where, taking ownership. */
    iterator insert(iterator where, Operation *op);
    /** Unlink @p op without destroying it. */
    void remove(Operation *op);
    /** Iterator to @p op; end() if absent. */
    iterator find(Operation *op);
    /// @}

    Region *parentRegion() const { return _parent; }
    Operation *parentOp() const;
    void setParentRegion(Region *r) { _parent = r; }

    /** The trailing terminator op, or nullptr when empty. */
    Operation *terminator();

  private:
    std::deque<ValueImpl> _args; ///< address-stable
    OpList _ops;
    Region *_parent = nullptr;
};

/** A list of blocks owned by an operation. */
class Region {
  public:
    explicit Region(Operation *parent) : _parent(parent) {}

    Region(const Region &) = delete;
    Region &operator=(const Region &) = delete;

    bool empty() const { return _blocks.empty(); }
    size_t numBlocks() const { return _blocks.size(); }
    Block &front() { return *_blocks.front(); }
    const Block &front() const { return *_blocks.front(); }
    Block *addBlock();
    auto begin() { return _blocks.begin(); }
    auto end() { return _blocks.end(); }

    Operation *parentOp() const { return _parent; }

    /** Make sure the region has at least one (possibly empty) block. */
    Block &ensureBlock();

  private:
    Operation *_parent;
    std::vector<std::unique_ptr<Block>> _blocks;
};

/** Owning handle for a detached op tree (usually the module). */
class OwningOpRef {
  public:
    OwningOpRef() = default;
    explicit OwningOpRef(Operation *op) : _op(op) {}
    OwningOpRef(OwningOpRef &&o) noexcept : _op(o._op) { o._op = nullptr; }
    OwningOpRef &
    operator=(OwningOpRef &&o) noexcept
    {
        reset();
        _op = o._op;
        o._op = nullptr;
        return *this;
    }
    ~OwningOpRef() { reset(); }

    Operation *get() const { return _op; }
    Operation *operator->() const { return _op; }
    explicit operator bool() const { return _op != nullptr; }
    Operation *
    release()
    {
        Operation *op = _op;
        _op = nullptr;
        return op;
    }
    void reset();

  private:
    Operation *_op = nullptr;
};

} // namespace ir
} // namespace eq

#endif // EQ_IR_OPERATION_HH
