/**
 * @file
 * Generic textual printer for operations.
 *
 * Output grammar (round-trips through parser.cc):
 *
 *   op        ::= [results `=`] `"` name `"` `(` operands `)`
 *                 region-list? attr-dict? `:` fn-type
 *   results   ::= `%` id (`:` num-results)?
 *   operands  ::= ssa-use (`,` ssa-use)*
 *   ssa-use   ::= `%` id (`#` result-index)?
 *   region    ::= `({` block `})`
 *   attr-dict ::= `{` (name `=` attr)* `}`
 */

#include <map>
#include <ostream>
#include <sstream>

#include "base/logging.hh"
#include "ir/builder.hh"
#include "ir/operation.hh"

namespace eq {
namespace ir {

namespace {

/** Assigns stable ids to values while printing a whole op tree. */
class PrintState {
  public:
    /** Identify a value as either "%N" or "%N#k" / "%argN". */
    std::string
    useName(Value v)
    {
        ValueImpl *impl = v.impl();
        auto it = _names.find(impl);
        if (it != _names.end())
            return it->second;
        // Unknown value (printing a detached fragment): synthesise.
        std::string name = "%u" + std::to_string(_nextUnknown++);
        _names[impl] = name;
        return name;
    }

    void
    defineOpResults(Operation *op)
    {
        if (op->numResults() == 0)
            return;
        unsigned base = _nextId++;
        for (unsigned i = 0; i < op->numResults(); ++i) {
            std::string name = "%" + std::to_string(base);
            if (op->numResults() > 1)
                name += "#" + std::to_string(i);
            _names[op->result(i).impl()] = name;
        }
        _opBase[op] = base;
    }

    unsigned
    opBase(Operation *op) const
    {
        auto it = _opBase.find(op);
        eq_assert(it != _opBase.end(), "printing op before defining ids");
        return it->second;
    }

    void
    defineBlockArg(Value v)
    {
        _names[v.impl()] = "%arg" + std::to_string(_nextArgId++);
    }

  private:
    std::map<ValueImpl *, std::string> _names;
    std::map<Operation *, unsigned> _opBase;
    unsigned _nextId = 0;
    unsigned _nextArgId = 0;
    unsigned _nextUnknown = 0;
};

void printOp(std::ostream &os, Operation *op, PrintState &st, int indent);

void
printBlock(std::ostream &os, Block &block, PrintState &st, int indent)
{
    std::string pad(indent, ' ');
    if (block.numArguments() > 0) {
        os << pad << "^bb(";
        for (unsigned i = 0; i < block.numArguments(); ++i) {
            if (i)
                os << ", ";
            Value arg = block.argument(i);
            st.defineBlockArg(arg);
            os << st.useName(arg) << ": " << arg.type().str();
        }
        os << "):\n";
    }
    for (Operation *inner : block)
        printOp(os, inner, st, indent);
}

void
printOp(std::ostream &os, Operation *op, PrintState &st, int indent)
{
    std::string pad(indent, ' ');
    os << pad;
    st.defineOpResults(op);
    if (op->numResults() > 0) {
        os << "%" << st.opBase(op);
        if (op->numResults() > 1)
            os << ":" << op->numResults();
        os << " = ";
    }
    os << '"' << op->name() << "\"(";
    auto operands = op->operands();
    for (size_t i = 0; i < operands.size(); ++i) {
        if (i)
            os << ", ";
        os << st.useName(operands[i]);
    }
    os << ")";

    if (op->numRegions() > 0) {
        os << " (";
        for (unsigned r = 0; r < op->numRegions(); ++r) {
            if (r)
                os << ", ";
            os << "{\n";
            Region &region = op->region(r);
            for (auto &block : region)
                printBlock(os, *block, st, indent + 2);
            os << pad << "}";
        }
        os << ")";
    }

    if (!op->attrs().empty()) {
        os << " {";
        bool first = true;
        for (const auto &[name, attr] : op->attrs()) {
            if (!first)
                os << ", ";
            first = false;
            os << name << " = " << attr.str();
        }
        os << "}";
    }

    os << " : (";
    for (size_t i = 0; i < operands.size(); ++i) {
        if (i)
            os << ", ";
        os << operands[i].type().str();
    }
    os << ") -> (";
    for (unsigned i = 0; i < op->numResults(); ++i) {
        if (i)
            os << ", ";
        os << op->result(i).type().str();
    }
    os << ")\n";
}

} // namespace

void
Operation::print(std::ostream &os) const
{
    PrintState st;
    printOp(os, const_cast<Operation *>(this), st, 0);
}

std::string
Operation::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

OwningOpRef
createModule(Context &ctx)
{
    Operation *mod = Operation::create(ctx, "builtin.module", {}, {}, {},
                                       /*num_regions=*/1);
    mod->region(0).ensureBlock();
    return OwningOpRef(mod);
}

} // namespace ir
} // namespace eq
