/**
 * @file
 * Immutable attributes attached to operations.
 *
 * Unlike types, attributes are not interned: they are value-semantic
 * handles onto shared immutable storage, compared structurally. This keeps
 * the Context simple while preserving MLIR-like ergonomics.
 */

#ifndef EQ_IR_ATTRIBUTE_HH
#define EQ_IR_ATTRIBUTE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.hh"

namespace eq {
namespace ir {

enum class AttrKind : uint8_t {
    Unit,
    Bool,
    Int,
    Float,
    String,
    TypeRef,
    Array,
    I64Array,
};

class Attribute;

/** Immutable payload shared between attribute handles. */
struct AttrStorage {
    AttrKind kind = AttrKind::Unit;
    bool b = false;
    int64_t i = 0;
    double f = 0.0;
    std::string s;
    Type t;
    std::vector<Attribute> arr;
    std::vector<int64_t> ints;
};

/** A structurally compared, immutable attribute handle. */
class Attribute {
  public:
    Attribute() = default;

    static Attribute unit();
    static Attribute boolean(bool v);
    static Attribute integer(int64_t v);
    static Attribute floating(double v);
    static Attribute string(std::string v);
    static Attribute typeRef(Type t);
    static Attribute array(std::vector<Attribute> elems);
    static Attribute i64Array(std::vector<int64_t> elems);

    explicit operator bool() const { return _impl != nullptr; }
    bool operator==(const Attribute &o) const;
    bool operator!=(const Attribute &o) const { return !(*this == o); }

    AttrKind kind() const;
    bool isInt() const { return kind() == AttrKind::Int; }
    bool isString() const { return kind() == AttrKind::String; }

    bool asBool() const;
    int64_t asInt() const;
    double asFloat() const;
    const std::string &asString() const;
    Type asType() const;
    const std::vector<Attribute> &asArray() const;
    const std::vector<int64_t> &asI64Array() const;

    /** Render in textual IR syntax. */
    std::string str() const;

  private:
    friend struct AttrFactory;
    explicit Attribute(std::shared_ptr<const AttrStorage> impl)
        : _impl(std::move(impl))
    {}
    std::shared_ptr<const AttrStorage> _impl;
};

/** An ordered (deterministically printed) name->attribute dictionary. */
class AttrDict {
  public:
    using Entry = std::pair<std::string, Attribute>;

    /** Look up an attribute; returns a null handle when absent. */
    Attribute get(const std::string &name) const;
    /** Insert or overwrite. */
    void set(const std::string &name, Attribute attr);
    /** Remove if present. */
    void erase(const std::string &name);
    bool contains(const std::string &name) const
    {
        return static_cast<bool>(get(name));
    }

    bool empty() const { return _entries.empty(); }
    size_t size() const { return _entries.size(); }
    auto begin() const { return _entries.begin(); }
    auto end() const { return _entries.end(); }

  private:
    std::vector<Entry> _entries;
};

} // namespace ir
} // namespace eq

#endif // EQ_IR_ATTRIBUTE_HH
