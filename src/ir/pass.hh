/**
 * @file
 * Pass and PassManager: sequential module-level transformations.
 *
 * Mirrors the MLIR pass driver at the granularity this project needs:
 * passes mutate the module in place; the manager optionally re-verifies
 * after each pass and records per-pass wall time for reporting.
 */

#ifndef EQ_IR_PASS_HH
#define EQ_IR_PASS_HH

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/operation.hh"

namespace eq {
namespace ir {

/** Base class for module transformations. */
class Pass {
  public:
    explicit Pass(std::string name) : _name(std::move(name)) {}
    virtual ~Pass() = default;

    const std::string &name() const { return _name; }

    /** Transform @p module in place. Returns "" or a diagnostic. */
    virtual std::string runOnModule(Operation *module) = 0;

  private:
    std::string _name;
};

/** A pass wrapping a plain function. */
class LambdaPass : public Pass {
  public:
    using Fn = std::function<std::string(Operation *)>;
    LambdaPass(std::string name, Fn fn)
        : Pass(std::move(name)), _fn(std::move(fn))
    {}
    std::string
    runOnModule(Operation *module) override
    {
        return _fn(module);
    }

  private:
    Fn _fn;
};

/** Timing record for one executed pass. */
struct PassTiming {
    std::string name;
    double seconds = 0.0;
};

/** Runs a pipeline of passes over a module. */
class PassManager {
  public:
    explicit PassManager(bool verify_each = true)
        : _verifyEach(verify_each)
    {}

    void
    addPass(std::unique_ptr<Pass> pass)
    {
        _passes.push_back(std::move(pass));
    }

    template <typename PassT, typename... Args>
    void
    add(Args &&...args)
    {
        _passes.push_back(
            std::make_unique<PassT>(std::forward<Args>(args)...));
    }

    /**
     * Run all passes in order.
     * @return empty string on success, else "pass-name: diagnostic".
     */
    std::string run(Operation *module);

    const std::vector<PassTiming> &timings() const { return _timings; }

  private:
    std::vector<std::unique_ptr<Pass>> _passes;
    std::vector<PassTiming> _timings;
    bool _verifyEach;
};

} // namespace ir
} // namespace eq

#endif // EQ_IR_PASS_HH
