/**
 * @file
 * Value-semantic, context-interned types for the IR kernel.
 *
 * Types are lightweight handles onto storage owned (and uniqued) by the
 * Context, mirroring MLIR's design: two structurally equal types compare
 * equal by pointer.
 */

#ifndef EQ_IR_TYPE_HH
#define EQ_IR_TYPE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eq {
namespace ir {

class Context;

/** Discriminator for every type the dialects in this project need. */
enum class TypeKind : uint8_t {
    None,       ///< absence of a value
    Index,      ///< loop induction variables, sizes
    Integer,    ///< iN
    Float,      ///< f32 / f64
    Tensor,     ///< host-level shaped data (Linalg/Affine stages)
    MemRef,     ///< host-level buffer handle (Affine stage)
    Event,      ///< an EQueue event / dependency token
    Proc,       ///< a processor component handle
    Mem,        ///< a memory component handle
    Dma,        ///< a DMA component handle
    Comp,       ///< a composite component handle
    Connection, ///< a bandwidth-constrained connection handle
    Stream,     ///< a FIFO stream endpoint handle
    Buffer,     ///< an allocation placed on a device memory
    Any,        ///< wildcard used by equeue.op results
};

/**
 * Uniqued payload of a Type. Width is the integer/float bit width; shape
 * and elemBits describe Tensor/MemRef/Buffer types.
 */
struct TypeStorage {
    TypeKind kind = TypeKind::None;
    unsigned width = 0;
    std::vector<int64_t> shape;
    unsigned elemBits = 0;

    bool operator==(const TypeStorage &o) const
    {
        return kind == o.kind && width == o.width && shape == o.shape &&
               elemBits == o.elemBits;
    }
};

/**
 * A handle to an interned TypeStorage. Null handles are allowed and
 * convert to false.
 */
class Type {
  public:
    Type() = default;
    explicit Type(const TypeStorage *impl) : _impl(impl) {}

    explicit operator bool() const { return _impl != nullptr; }
    bool operator==(const Type &o) const { return _impl == o._impl; }
    bool operator!=(const Type &o) const { return _impl != o._impl; }

    TypeKind kind() const;

    bool isNone() const { return kind() == TypeKind::None; }
    bool isIndex() const { return kind() == TypeKind::Index; }
    bool isInteger() const { return kind() == TypeKind::Integer; }
    bool isFloat() const { return kind() == TypeKind::Float; }
    bool isTensor() const { return kind() == TypeKind::Tensor; }
    bool isMemRef() const { return kind() == TypeKind::MemRef; }
    bool isEvent() const { return kind() == TypeKind::Event; }
    bool isBuffer() const { return kind() == TypeKind::Buffer; }
    bool isComponent() const;
    bool isShaped() const
    {
        return isTensor() || isMemRef() || isBuffer();
    }

    /** Integer / float bit width (0 for other kinds). */
    unsigned width() const;
    /** Shape of a shaped type (empty otherwise). */
    const std::vector<int64_t> &shape() const;
    /** Element width in bits for shaped types. */
    unsigned elemBits() const;
    /** Product of the shape dims (1 for rank-0). */
    int64_t numElements() const;
    /** Total byte footprint of a shaped type. */
    int64_t sizeBytes() const;

    /** Render in textual IR syntax (e.g. "i32", "!equeue.event"). */
    std::string str() const;

    const TypeStorage *impl() const { return _impl; }

  private:
    const TypeStorage *_impl = nullptr;
};

} // namespace ir
} // namespace eq

#endif // EQ_IR_TYPE_HH
