/**
 * @file
 * The Context owns all interned type storage and the operation registry.
 *
 * Every module and every operation belongs to exactly one Context. Dialects
 * register their operations (with verifier hooks) against it; the verifier
 * rejects unregistered operations unless allowUnregistered() is set.
 */

#ifndef EQ_IR_CONTEXT_HH
#define EQ_IR_CONTEXT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.hh"

namespace eq {
namespace ir {

class Operation;

/** Registry record for one operation kind. */
struct OpInfo {
    std::string name;
    /** Returns an empty string on success, else a diagnostic. */
    std::function<std::string(Operation *)> verify;
    bool isTerminator = false;
};

/** Owner of interned types, operation metadata, and unique op ids. */
class Context {
  public:
    Context();
    ~Context();

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    /// @name Type factories (interned)
    /// @{
    Type noneType();
    Type indexType();
    Type intType(unsigned width);
    Type i1Type() { return intType(1); }
    Type i32Type() { return intType(32); }
    Type i64Type() { return intType(64); }
    Type floatType(unsigned width = 32);
    Type tensorType(std::vector<int64_t> shape, unsigned elem_bits);
    Type memrefType(std::vector<int64_t> shape, unsigned elem_bits);
    Type eventType();
    Type procType();
    Type memType();
    Type dmaType();
    Type compType();
    Type connectionType();
    Type streamType();
    Type bufferType(std::vector<int64_t> shape, unsigned elem_bits);
    Type anyType();
    /// @}

    /** Register one operation kind; re-registration replaces. */
    void registerOp(OpInfo info);
    /** Look up registry info; nullptr when unregistered. */
    const OpInfo *lookupOp(const std::string &name) const;
    /** Names of every registered op, in sorted order. Lets tests and
     *  tooling enumerate the registry (e.g. exhaustive round-trip
     *  coverage that fails automatically when a new op is added). */
    std::vector<std::string> registeredOpNames() const;

    /** When true the verifier tolerates unregistered op names. */
    bool allowUnregistered() const { return _allowUnregistered; }
    void setAllowUnregistered(bool v) { _allowUnregistered = v; }

    /** Monotonic id source used for deterministic ordering. */
    uint64_t nextOpId() { return _nextOpId++; }

  private:
    Type intern(TypeStorage st);

    std::vector<std::unique_ptr<TypeStorage>> _typeStorage;
    std::map<std::string, OpInfo> _opRegistry;
    bool _allowUnregistered = false;
    uint64_t _nextOpId = 0;
};

/** Register every dialect this project defines onto @p ctx. */
void registerAllDialects(Context &ctx);

} // namespace ir
} // namespace eq

#endif // EQ_IR_CONTEXT_HH
