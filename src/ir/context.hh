/**
 * @file
 * The Context owns all interned type storage, the operation-name pool,
 * and the operation registry.
 *
 * Every module and every operation belongs to exactly one Context. Op
 * names are interned into dense OpIds (see ir/opid.hh) so that passes
 * and the simulation engine compare integers, never strings. Dialects
 * register their operations (with verifier hooks) against it; the
 * verifier rejects unregistered operations unless allowUnregistered()
 * is set.
 */

#ifndef EQ_IR_CONTEXT_HH
#define EQ_IR_CONTEXT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/opid.hh"
#include "ir/type.hh"

namespace eq {
namespace ir {

class Operation;

/** Registry record for one operation kind. */
struct OpInfo {
    std::string name;
    /** Returns an empty string on success, else a diagnostic. */
    std::function<std::string(Operation *)> verify;
    bool isTerminator = false;
};

/** Owner of interned types, operation metadata, and unique op ids. */
class Context {
  public:
    Context();
    ~Context();

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    /// @name Type factories (interned)
    /// @{
    Type noneType();
    Type indexType();
    Type intType(unsigned width);
    Type i1Type() { return intType(1); }
    Type i32Type() { return intType(32); }
    Type i64Type() { return intType(64); }
    Type floatType(unsigned width = 32);
    Type tensorType(std::vector<int64_t> shape, unsigned elem_bits);
    Type memrefType(std::vector<int64_t> shape, unsigned elem_bits);
    Type eventType();
    Type procType();
    Type memType();
    Type dmaType();
    Type compType();
    Type connectionType();
    Type streamType();
    Type bufferType(std::vector<int64_t> shape, unsigned elem_bits);
    Type anyType();
    /// @}

    /// @name Operation-name interning
    /// @{
    /** Intern @p name; returns its dense OpId (idempotent). */
    OpId internOpName(std::string_view name);
    /** The id of an already-interned name; invalid OpId otherwise. */
    OpId lookupOpId(std::string_view name) const;
    /** Pooled name for @p id; the reference lives as long as the
     *  Context (Operations alias it instead of owning a copy). */
    const std::string &opName(OpId id) const;
    /** Number of distinct interned names; ids are dense in
     *  [0, numInternedOpNames()). */
    size_t numInternedOpNames() const { return _opNamePool.size(); }
    /** Resolve a per-class OpIdCache slot (see ir/opid.hh). */
    OpId cachedOpId(unsigned slot, const char *name);
    /// @}

    /** Register one operation kind; re-registration replaces. */
    void registerOp(OpInfo info);
    /** Look up registry info; nullptr when unregistered. */
    const OpInfo *lookupOp(std::string_view name) const;
    const OpInfo *lookupOp(OpId id) const;
    /** Names of every registered op, in sorted order. Lets tests and
     *  tooling enumerate the registry (e.g. exhaustive round-trip
     *  coverage that fails automatically when a new op is added). */
    std::vector<std::string> registeredOpNames() const;

    /** When true the verifier tolerates unregistered op names. */
    bool allowUnregistered() const { return _allowUnregistered; }
    void setAllowUnregistered(bool v) { _allowUnregistered = v; }

    /** Monotonic per-Operation id source used for deterministic
     *  ordering (distinct from OpId, which identifies op *kinds*). */
    uint64_t nextOperationId() { return _nextOperationId++; }

  private:
    Type intern(TypeStorage st);

    std::vector<std::unique_ptr<TypeStorage>> _typeStorage;
    /** Interned op names; index == OpId::raw(). unique_ptr keeps the
     *  string addresses stable across pool growth. */
    std::vector<std::unique_ptr<std::string>> _opNamePool;
    /** Name -> dense id; keys view into _opNamePool. */
    std::unordered_map<std::string_view, uint32_t> _opNameIds;
    /** Registry info, dense by OpId; an empty name means the id is
     *  interned but the op kind is unregistered. */
    std::vector<OpInfo> _opInfos;
    /** OpIdCache slot -> resolved id for this context. */
    std::vector<OpId> _cachedOpIds;
    bool _allowUnregistered = false;
    uint64_t _nextOperationId = 0;
};

/** Register every dialect this project defines onto @p ctx. */
void registerAllDialects(Context &ctx);

} // namespace ir
} // namespace eq

#endif // EQ_IR_CONTEXT_HH
