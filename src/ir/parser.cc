#include "ir/parser.hh"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>

#include "base/logging.hh"

namespace eq {
namespace ir {

namespace {

/** Token kinds for the generic IR grammar. */
enum class Tok {
    Eof,
    Ident,     ///< bare identifier (attr names, type keywords)
    Number,    ///< integer or float literal
    String,    ///< double-quoted
    Percent,   ///< %name
    Bang,      ///< !dialect.type
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Less,
    Greater,
    Comma,
    Colon,
    Equal,
    Arrow,     ///< ->
    Hash,      ///< #
    Caret,     ///< ^
};

struct Token {
    Tok kind = Tok::Eof;
    std::string text;
    size_t pos = 0;
};

/** Hand-rolled lexer over the source buffer. */
class Lexer {
  public:
    explicit Lexer(const std::string &src) : _src(src) { advance(); }

    const Token &cur() const { return _cur; }

    void
    advance()
    {
        skipWhitespace();
        _cur.pos = _pos;
        if (_pos >= _src.size()) {
            _cur.kind = Tok::Eof;
            _cur.text.clear();
            return;
        }
        char c = _src[_pos];
        switch (c) {
          case '(':
            single(Tok::LParen);
            return;
          case ')':
            single(Tok::RParen);
            return;
          case '{':
            single(Tok::LBrace);
            return;
          case '}':
            single(Tok::RBrace);
            return;
          case '[':
            single(Tok::LBracket);
            return;
          case ']':
            single(Tok::RBracket);
            return;
          case '<':
            single(Tok::Less);
            return;
          case '>':
            single(Tok::Greater);
            return;
          case ',':
            single(Tok::Comma);
            return;
          case ':':
            single(Tok::Colon);
            return;
          case '=':
            single(Tok::Equal);
            return;
          case '#':
            single(Tok::Hash);
            return;
          case '^':
            single(Tok::Caret);
            return;
          default:
            break;
        }
        if (c == '-' && _pos + 1 < _src.size() && _src[_pos + 1] == '>') {
            _cur.kind = Tok::Arrow;
            _cur.text = "->";
            _pos += 2;
            return;
        }
        if (c == '%') {
            ++_pos;
            _cur.kind = Tok::Percent;
            _cur.text = lexWord();
            return;
        }
        if (c == '!') {
            ++_pos;
            _cur.kind = Tok::Bang;
            _cur.text = lexWord();
            return;
        }
        if (c == '"') {
            ++_pos;
            std::string text;
            while (_pos < _src.size() && _src[_pos] != '"') {
                if (_src[_pos] == '\\' && _pos + 1 < _src.size()) {
                    ++_pos;
                    char e = _src[_pos];
                    if (e == 'n')
                        text.push_back('\n');
                    else if (e == 't')
                        text.push_back('\t');
                    else
                        text.push_back(e);
                } else {
                    text.push_back(_src[_pos]);
                }
                ++_pos;
            }
            if (_pos < _src.size())
                ++_pos; // closing quote
            _cur.kind = Tok::String;
            _cur.text = std::move(text);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && _pos + 1 < _src.size() &&
             std::isdigit(static_cast<unsigned char>(_src[_pos + 1])))) {
            std::string text;
            if (c == '-') {
                text.push_back('-');
                ++_pos;
            }
            while (_pos < _src.size() &&
                   (std::isdigit(static_cast<unsigned char>(_src[_pos])) ||
                    _src[_pos] == '.' || _src[_pos] == 'e' ||
                    (_src[_pos] == '-' && _pos > 0 &&
                     _src[_pos - 1] == 'e'))) {
                text.push_back(_src[_pos]);
                ++_pos;
            }
            _cur.kind = Tok::Number;
            _cur.text = std::move(text);
            return;
        }
        // Bare identifier (letters, digits, '.', '_').
        _cur.kind = Tok::Ident;
        _cur.text = lexWord();
        if (_cur.text.empty()) {
            // Unknown character: consume it to guarantee progress.
            _cur.text.push_back(c);
            ++_pos;
        }
    }

  private:
    void
    single(Tok k)
    {
        _cur.kind = k;
        _cur.text = _src[_pos];
        ++_pos;
    }

    std::string
    lexWord()
    {
        std::string text;
        while (_pos < _src.size()) {
            char c = _src[_pos];
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '_') {
                text.push_back(c);
                ++_pos;
            } else {
                break;
            }
        }
        return text;
    }

    void
    skipWhitespace()
    {
        while (_pos < _src.size()) {
            char c = _src[_pos];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++_pos;
            } else if (c == '/' && _pos + 1 < _src.size() &&
                       _src[_pos + 1] == '/') {
                while (_pos < _src.size() && _src[_pos] != '\n')
                    ++_pos;
            } else {
                break;
            }
        }
    }

    const std::string &_src;
    size_t _pos = 0;
    Token _cur;
};

/** Recursive-descent parser for the generic format. */
class Parser {
  public:
    Parser(Context &ctx, const std::string &src) : _ctx(ctx), _lex(src) {}

    ParseResult
    parseTopLevel()
    {
        ParseResult result;
        Operation *op = parseOp(nullptr);
        if (!_error.empty()) {
            delete op;
            result.error = _error;
            return result;
        }
        if (_lex.cur().kind != Tok::Eof) {
            delete op;
            result.error = "trailing input after top-level op";
            return result;
        }
        result.op = OwningOpRef(op);
        return result;
    }

  private:
    /** Parse one operation; insert into @p block if non-null. */
    Operation *
    parseOp(Block *block)
    {
        // Optional results: %id[:count] =
        std::string result_name;
        unsigned num_results = 0;
        if (_lex.cur().kind == Tok::Percent) {
            result_name = _lex.cur().text;
            _lex.advance();
            num_results = 1;
            if (_lex.cur().kind == Tok::Colon) {
                _lex.advance();
                num_results = static_cast<unsigned>(parseInteger());
            }
            if (!expect(Tok::Equal, "'=' after result list"))
                return nullptr;
        }

        if (_lex.cur().kind != Tok::String) {
            error("expected quoted op name");
            return nullptr;
        }
        std::string op_name = _lex.cur().text;
        _lex.advance();

        // Operand list.
        if (!expect(Tok::LParen, "'(' before operand list"))
            return nullptr;
        std::vector<std::string> operand_names;
        while (_lex.cur().kind == Tok::Percent) {
            std::string name = _lex.cur().text;
            _lex.advance();
            if (_lex.cur().kind == Tok::Hash) {
                _lex.advance();
                name += "#" + _lex.cur().text;
                _lex.advance();
            }
            operand_names.push_back(std::move(name));
            if (_lex.cur().kind == Tok::Comma)
                _lex.advance();
        }
        if (!expect(Tok::RParen, "')' after operand list"))
            return nullptr;

        // Optional region list: ({ ... }, { ... })
        bool has_regions = false;
        std::vector<std::vector<std::unique_ptr<Block>>> region_blocks;
        if (_lex.cur().kind == Tok::LParen) {
            has_regions = true;
            _lex.advance();
            while (_lex.cur().kind == Tok::LBrace) {
                _lex.advance();
                auto blk = std::make_unique<Block>();
                parseBlockBody(blk.get());
                if (!_error.empty())
                    return nullptr;
                if (!expect(Tok::RBrace, "'}' closing region"))
                    return nullptr;
                std::vector<std::unique_ptr<Block>> blocks;
                blocks.push_back(std::move(blk));
                region_blocks.push_back(std::move(blocks));
                if (_lex.cur().kind == Tok::Comma)
                    _lex.advance();
            }
            if (!expect(Tok::RParen, "')' closing region list"))
                return nullptr;
        }

        // Optional attribute dict.
        AttrDict attrs;
        if (_lex.cur().kind == Tok::LBrace) {
            _lex.advance();
            while (_lex.cur().kind == Tok::Ident) {
                std::string attr_name = _lex.cur().text;
                _lex.advance();
                Attribute value = Attribute::unit();
                if (_lex.cur().kind == Tok::Equal) {
                    _lex.advance();
                    value = parseAttr();
                    if (!_error.empty())
                        return nullptr;
                }
                attrs.set(attr_name, value);
                if (_lex.cur().kind == Tok::Comma)
                    _lex.advance();
            }
            if (!expect(Tok::RBrace, "'}' closing attr dict"))
                return nullptr;
        }

        // Function type: : (types) -> (types)
        if (!expect(Tok::Colon, "':' before function type"))
            return nullptr;
        std::vector<Type> operand_types = parseTypeList();
        if (!_error.empty())
            return nullptr;
        if (!expect(Tok::Arrow, "'->' in function type"))
            return nullptr;
        std::vector<Type> result_types = parseTypeList();
        if (!_error.empty())
            return nullptr;

        if (operand_types.size() != operand_names.size()) {
            error("operand type count mismatch");
            return nullptr;
        }
        if (num_results != result_types.size() &&
            !(num_results == 1 && result_types.size() >= 1)) {
            error("result count mismatch for op '" + op_name + "'");
            return nullptr;
        }

        // Resolve operands.
        std::vector<Value> operands;
        for (size_t i = 0; i < operand_names.size(); ++i) {
            Value v = lookup(operand_names[i]);
            if (!v) {
                error("use of undefined value %" + operand_names[i]);
                return nullptr;
            }
            operands.push_back(v);
        }

        Operation *op = Operation::create(_ctx, op_name, result_types,
                                          operands, std::move(attrs),
                                          has_regions
                                              ? region_blocks.size()
                                              : 0);
        if (has_regions) {
            for (size_t r = 0; r < region_blocks.size(); ++r) {
                for (auto &blk : region_blocks[r]) {
                    blk->setParentRegion(&op->region(r));
                    // Transfer ownership into the region.
                    transferBlock(op->region(r), std::move(blk));
                }
            }
        }

        // Register results.
        if (!result_name.empty()) {
            if (op->numResults() == 1) {
                define(result_name, op->result(0));
            } else {
                for (unsigned i = 0; i < op->numResults(); ++i)
                    define(result_name + "#" + std::to_string(i),
                           op->result(i));
            }
        }

        if (block)
            block->push_back(op);
        return op;
    }

    /** Move a parsed block into @p region (helper for ownership xfer). */
    static void
    transferBlock(Region &region, std::unique_ptr<Block> blk)
    {
        Block *b = region.addBlock();
        // Move args.
        std::vector<Value> old_args;
        for (unsigned i = 0; i < blk->numArguments(); ++i)
            old_args.push_back(blk->argument(i));
        // The parser builds blocks directly in the region (see
        // parseBlockBody callers), so in practice blk is freshly parsed
        // and we only need to splice ops and re-home arguments. Block
        // arguments cannot be moved (address-stable deque), so instead we
        // re-create them and RAUW.
        std::vector<Value> new_args;
        for (Value a : old_args)
            new_args.push_back(b->addArgument(a.type()));
        for (size_t i = 0; i < old_args.size(); ++i)
            old_args[i].replaceAllUsesWith(new_args[i]);
        std::vector<Operation *> ops(blk->begin(), blk->end());
        for (Operation *op : ops) {
            blk->remove(op);
            b->push_back(op);
        }
    }

    /** Parse block arguments (optional header) and ops until '}'. */
    void
    parseBlockBody(Block *block)
    {
        if (_lex.cur().kind == Tok::Caret) {
            _lex.advance(); // ^
            if (_lex.cur().kind == Tok::Ident)
                _lex.advance(); // bb name
            if (!expect(Tok::LParen, "'(' after block label"))
                return;
            while (_lex.cur().kind == Tok::Percent) {
                std::string name = _lex.cur().text;
                _lex.advance();
                if (!expect(Tok::Colon, "':' after block arg name"))
                    return;
                Type t = parseType();
                if (!_error.empty())
                    return;
                Value arg = block->addArgument(t);
                define(name, arg);
                if (_lex.cur().kind == Tok::Comma)
                    _lex.advance();
            }
            if (!expect(Tok::RParen, "')' after block args"))
                return;
            if (!expect(Tok::Colon, "':' after block header"))
                return;
        }
        while (_lex.cur().kind == Tok::Percent ||
               _lex.cur().kind == Tok::String) {
            parseOp(block);
            if (!_error.empty())
                return;
        }
    }

    /** Parse `(type, type, ...)` or a single type. */
    std::vector<Type>
    parseTypeList()
    {
        std::vector<Type> types;
        if (_lex.cur().kind == Tok::LParen) {
            _lex.advance();
            while (_lex.cur().kind != Tok::RParen &&
                   _lex.cur().kind != Tok::Eof) {
                types.push_back(parseType());
                if (!_error.empty())
                    return types;
                if (_lex.cur().kind == Tok::Comma)
                    _lex.advance();
            }
            expect(Tok::RParen, "')' closing type list");
        } else {
            types.push_back(parseType());
        }
        return types;
    }

    Type
    parseType()
    {
        if (_lex.cur().kind == Tok::Bang) {
            std::string name = _lex.cur().text; // e.g. equeue.event
            _lex.advance();
            if (name == "equeue.event")
                return _ctx.eventType();
            if (name == "equeue.proc")
                return _ctx.procType();
            if (name == "equeue.mem")
                return _ctx.memType();
            if (name == "equeue.dma")
                return _ctx.dmaType();
            if (name == "equeue.comp")
                return _ctx.compType();
            if (name == "equeue.conn")
                return _ctx.connectionType();
            if (name == "equeue.stream")
                return _ctx.streamType();
            if (name == "equeue.any")
                return _ctx.anyType();
            if (name == "equeue.buffer")
                return parseShapedBody(TypeKind::Buffer);
            error("unknown dialect type !" + name);
            return Type();
        }
        if (_lex.cur().kind == Tok::Ident) {
            std::string name = _lex.cur().text;
            if (name == "index") {
                _lex.advance();
                return _ctx.indexType();
            }
            if (name == "none") {
                _lex.advance();
                return _ctx.noneType();
            }
            if (name == "tensor") {
                _lex.advance();
                return parseShapedBody(TypeKind::Tensor);
            }
            if (name == "memref") {
                _lex.advance();
                return parseShapedBody(TypeKind::MemRef);
            }
            if (name.size() >= 2 && (name[0] == 'i' || name[0] == 'f')) {
                bool all_digits = true;
                for (size_t i = 1; i < name.size(); ++i)
                    if (!std::isdigit(static_cast<unsigned char>(name[i])))
                        all_digits = false;
                if (all_digits) {
                    _lex.advance();
                    unsigned width =
                        static_cast<unsigned>(std::stoul(name.substr(1)));
                    return name[0] == 'i' ? _ctx.intType(width)
                                          : _ctx.floatType(width);
                }
            }
        }
        error("expected type, got '" + _lex.cur().text + "'");
        return Type();
    }

    /** Parse `<d1xd2x...xiW>` after a shaped-type keyword. */
    Type
    parseShapedBody(TypeKind kind)
    {
        if (!expect(Tok::Less, "'<' in shaped type"))
            return Type();
        std::vector<int64_t> dims;
        unsigned elem_bits = 32;
        // Dims and the trailing element type are separated by 'x', which
        // the lexer folds into identifier/number tokens; re-split here.
        std::string body;
        while (_lex.cur().kind != Tok::Greater &&
               _lex.cur().kind != Tok::Eof) {
            body += _lex.cur().text;
            _lex.advance();
        }
        expect(Tok::Greater, "'>' closing shaped type");
        // body looks like "4x4xi32" or "i32" (rank 0).
        size_t pos = 0;
        while (pos < body.size()) {
            if (body[pos] == 'i' || body[pos] == 'f') {
                elem_bits = static_cast<unsigned>(
                    std::stoul(body.substr(pos + 1)));
                break;
            }
            size_t x = body.find('x', pos);
            std::string dim = body.substr(pos, x - pos);
            dims.push_back(std::stoll(dim));
            if (x == std::string::npos)
                break;
            pos = x + 1;
        }
        switch (kind) {
          case TypeKind::Tensor:
            return _ctx.tensorType(std::move(dims), elem_bits);
          case TypeKind::MemRef:
            return _ctx.memrefType(std::move(dims), elem_bits);
          case TypeKind::Buffer:
            return _ctx.bufferType(std::move(dims), elem_bits);
          default:
            eq_panic("bad shaped kind");
        }
    }

    Attribute
    parseAttr()
    {
        const Token &t = _lex.cur();
        if (t.kind == Tok::String) {
            std::string s = t.text;
            _lex.advance();
            return Attribute::string(std::move(s));
        }
        if (t.kind == Tok::Number) {
            std::string text = t.text;
            _lex.advance();
            if (text.find('.') != std::string::npos ||
                text.find('e') != std::string::npos)
                return Attribute::floating(std::stod(text));
            return Attribute::integer(std::stoll(text));
        }
        if (t.kind == Tok::LBracket) {
            _lex.advance();
            std::vector<Attribute> elems;
            while (_lex.cur().kind != Tok::RBracket &&
                   _lex.cur().kind != Tok::Eof) {
                elems.push_back(parseAttr());
                if (!_error.empty())
                    return Attribute();
                if (_lex.cur().kind == Tok::Comma)
                    _lex.advance();
            }
            expect(Tok::RBracket, "']' closing array attr");
            return Attribute::array(std::move(elems));
        }
        if (t.kind == Tok::Ident) {
            if (t.text == "true") {
                _lex.advance();
                return Attribute::boolean(true);
            }
            if (t.text == "false") {
                _lex.advance();
                return Attribute::boolean(false);
            }
            if (t.text == "unit") {
                _lex.advance();
                return Attribute::unit();
            }
            if (t.text == "dense") {
                _lex.advance();
                if (!expect(Tok::LBracket, "'[' after dense"))
                    return Attribute();
                std::vector<int64_t> ints;
                while (_lex.cur().kind == Tok::Number) {
                    ints.push_back(std::stoll(_lex.cur().text));
                    _lex.advance();
                    if (_lex.cur().kind == Tok::Comma)
                        _lex.advance();
                }
                expect(Tok::RBracket, "']' closing dense array");
                return Attribute::i64Array(std::move(ints));
            }
            // Otherwise: a type attribute.
            Type ty = parseType();
            if (!_error.empty())
                return Attribute();
            return Attribute::typeRef(ty);
        }
        if (t.kind == Tok::Bang) {
            Type ty = parseType();
            if (!_error.empty())
                return Attribute();
            return Attribute::typeRef(ty);
        }
        error("expected attribute value");
        return Attribute();
    }

    int64_t
    parseInteger()
    {
        if (_lex.cur().kind != Tok::Number) {
            error("expected integer");
            return 0;
        }
        int64_t v = std::stoll(_lex.cur().text);
        _lex.advance();
        return v;
    }

    bool
    expect(Tok kind, const std::string &what)
    {
        if (_lex.cur().kind != kind) {
            error("expected " + what + ", got '" + _lex.cur().text + "'");
            return false;
        }
        _lex.advance();
        return true;
    }

    void
    error(const std::string &msg)
    {
        if (_error.empty()) {
            std::ostringstream os;
            os << msg << " (at byte " << _lex.cur().pos << ")";
            _error = os.str();
        }
    }

    Value
    lookup(const std::string &name) const
    {
        auto it = _values.find(name);
        return it == _values.end() ? Value() : it->second;
    }

    void
    define(const std::string &name, Value v)
    {
        _values[name] = v;
    }

    Context &_ctx;
    Lexer _lex;
    std::map<std::string, Value> _values;
    std::string _error;
};

} // namespace

ParseResult
parseSourceString(Context &ctx, const std::string &source)
{
    Parser parser(ctx, source);
    return parser.parseTopLevel();
}

} // namespace ir
} // namespace eq
