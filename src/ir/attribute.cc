#include "ir/attribute.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "base/stringutil.hh"

namespace eq {
namespace ir {

// The private constructor is only reachable from these factories, so the
// factories are defined via a small friend-free helper in this TU.
struct AttrFactory {
    static Attribute
    create(AttrStorage st)
    {
        return Attribute(std::make_shared<const AttrStorage>(std::move(st)));
    }
};

Attribute
Attribute::unit()
{
    AttrStorage st;
    st.kind = AttrKind::Unit;
    return AttrFactory::create(std::move(st));
}

Attribute
Attribute::boolean(bool v)
{
    AttrStorage st;
    st.kind = AttrKind::Bool;
    st.b = v;
    return AttrFactory::create(std::move(st));
}

Attribute
Attribute::integer(int64_t v)
{
    AttrStorage st;
    st.kind = AttrKind::Int;
    st.i = v;
    return AttrFactory::create(std::move(st));
}

Attribute
Attribute::floating(double v)
{
    AttrStorage st;
    st.kind = AttrKind::Float;
    st.f = v;
    return AttrFactory::create(std::move(st));
}

Attribute
Attribute::string(std::string v)
{
    AttrStorage st;
    st.kind = AttrKind::String;
    st.s = std::move(v);
    return AttrFactory::create(std::move(st));
}

Attribute
Attribute::typeRef(Type t)
{
    AttrStorage st;
    st.kind = AttrKind::TypeRef;
    st.t = t;
    return AttrFactory::create(std::move(st));
}

Attribute
Attribute::array(std::vector<Attribute> elems)
{
    AttrStorage st;
    st.kind = AttrKind::Array;
    st.arr = std::move(elems);
    return AttrFactory::create(std::move(st));
}

Attribute
Attribute::i64Array(std::vector<int64_t> elems)
{
    AttrStorage st;
    st.kind = AttrKind::I64Array;
    st.ints = std::move(elems);
    return AttrFactory::create(std::move(st));
}

bool
Attribute::operator==(const Attribute &o) const
{
    if (_impl == o._impl)
        return true;
    if (!_impl || !o._impl)
        return false;
    const AttrStorage &a = *_impl;
    const AttrStorage &b = *o._impl;
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case AttrKind::Unit:
        return true;
      case AttrKind::Bool:
        return a.b == b.b;
      case AttrKind::Int:
        return a.i == b.i;
      case AttrKind::Float:
        return a.f == b.f;
      case AttrKind::String:
        return a.s == b.s;
      case AttrKind::TypeRef:
        return a.t == b.t;
      case AttrKind::Array:
        return a.arr == b.arr;
      case AttrKind::I64Array:
        return a.ints == b.ints;
    }
    return false;
}

AttrKind
Attribute::kind() const
{
    eq_assert(_impl, "null attribute dereference");
    return _impl->kind;
}

bool
Attribute::asBool() const
{
    eq_assert(_impl && _impl->kind == AttrKind::Bool, "not a bool attr");
    return _impl->b;
}

int64_t
Attribute::asInt() const
{
    eq_assert(_impl && _impl->kind == AttrKind::Int, "not an int attr");
    return _impl->i;
}

double
Attribute::asFloat() const
{
    eq_assert(_impl && _impl->kind == AttrKind::Float, "not a float attr");
    return _impl->f;
}

const std::string &
Attribute::asString() const
{
    eq_assert(_impl && _impl->kind == AttrKind::String,
              "not a string attr");
    return _impl->s;
}

Type
Attribute::asType() const
{
    eq_assert(_impl && _impl->kind == AttrKind::TypeRef, "not a type attr");
    return _impl->t;
}

const std::vector<Attribute> &
Attribute::asArray() const
{
    eq_assert(_impl && _impl->kind == AttrKind::Array, "not an array attr");
    return _impl->arr;
}

const std::vector<int64_t> &
Attribute::asI64Array() const
{
    eq_assert(_impl && _impl->kind == AttrKind::I64Array,
              "not an i64 array attr");
    return _impl->ints;
}

std::string
Attribute::str() const
{
    if (!_impl)
        return "<<null>>";
    std::ostringstream os;
    switch (_impl->kind) {
      case AttrKind::Unit:
        os << "unit";
        break;
      case AttrKind::Bool:
        os << (_impl->b ? "true" : "false");
        break;
      case AttrKind::Int:
        os << _impl->i;
        break;
      case AttrKind::Float: {
        std::ostringstream f;
        f << _impl->f;
        std::string body = f.str();
        os << body;
        // Mark as float for the parser when it would read as an int.
        if (body.find_first_of(".e") == std::string::npos)
            os << ".0";
        break;
      }
      case AttrKind::String:
        os << '"' << jsonEscape(_impl->s) << '"';
        break;
      case AttrKind::TypeRef:
        os << _impl->t.str();
        break;
      case AttrKind::Array: {
        os << '[';
        for (size_t i = 0; i < _impl->arr.size(); ++i) {
            if (i)
                os << ", ";
            os << _impl->arr[i].str();
        }
        os << ']';
        break;
      }
      case AttrKind::I64Array: {
        os << "dense[";
        for (size_t i = 0; i < _impl->ints.size(); ++i) {
            if (i)
                os << ", ";
            os << _impl->ints[i];
        }
        os << ']';
        break;
      }
    }
    return os.str();
}

Attribute
AttrDict::get(const std::string &name) const
{
    for (const auto &e : _entries)
        if (e.first == name)
            return e.second;
    return Attribute();
}

void
AttrDict::set(const std::string &name, Attribute attr)
{
    for (auto &e : _entries) {
        if (e.first == name) {
            e.second = std::move(attr);
            return;
        }
    }
    _entries.emplace_back(name, std::move(attr));
}

void
AttrDict::erase(const std::string &name)
{
    _entries.erase(std::remove_if(_entries.begin(), _entries.end(),
                                  [&](const Entry &e) {
                                      return e.first == name;
                                  }),
                   _entries.end());
}

} // namespace ir
} // namespace eq
