#include "ir/operation.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace eq {
namespace ir {

// ---------------------------------------------------------------------------
// Value

void
Value::replaceAllUsesWith(Value other) const
{
    eq_assert(_impl, "RAUW on null value");
    eq_assert(other, "RAUW with null value");
    // Copy: setOperand mutates the use list we are iterating.
    auto uses = _impl->uses;
    for (auto &[op, idx] : uses)
        op->setOperand(idx, other);
}

// ---------------------------------------------------------------------------
// Operation

Operation::Operation(Context &ctx, std::string_view name)
    : _ctx(&ctx), _opId(ctx.internOpName(name)),
      _id(ctx.nextOperationId())
{
    _name = &ctx.opName(_opId);
}

Operation *
Operation::create(Context &ctx, std::string_view name,
                  std::vector<Type> result_types,
                  std::vector<Value> operands, AttrDict attrs,
                  unsigned num_regions)
{
    auto *op = new Operation(ctx, name);
    op->_attrs = std::move(attrs);
    for (size_t i = 0; i < result_types.size(); ++i) {
        ValueImpl impl;
        impl.type = result_types[i];
        impl.defOp = op;
        impl.index = static_cast<unsigned>(i);
        op->_results.push_back(std::move(impl));
    }
    for (Value v : operands)
        op->appendOperand(v);
    for (unsigned i = 0; i < num_regions; ++i)
        op->_regions.push_back(std::make_unique<Region>(op));
    return op;
}

Operation::~Operation()
{
    dropOperands();
    // Results must have no remaining uses; passes are responsible for
    // RAUW-ing before erasing. Dangling uses would corrupt the IR.
    for (auto &res : _results) {
        eq_assert(res.uses.empty(),
                  "destroying op '", name(), "' with live uses");
    }
    _regions.clear();
}

void
Operation::dropOperands()
{
    for (unsigned i = 0; i < _operands.size(); ++i) {
        ValueImpl *impl = _operands[i];
        if (!impl)
            continue;
        auto &uses = impl->uses;
        uses.erase(std::remove(uses.begin(), uses.end(),
                               std::make_pair(this, i)),
                   uses.end());
        _operands[i] = nullptr;
    }
}

std::string
Operation::dialect() const
{
    auto dot = name().find('.');
    return dot == std::string::npos ? std::string() : name().substr(0, dot);
}

std::string
Operation::shortName() const
{
    auto dot = name().find('.');
    return dot == std::string::npos ? name() : name().substr(dot + 1);
}

Value
Operation::operand(unsigned i) const
{
    eq_assert(i < _operands.size(), "operand index ", i, " out of range in ",
              name());
    return Value(_operands[i]);
}

void
Operation::setOperand(unsigned i, Value v)
{
    eq_assert(i < _operands.size(), "operand index out of range");
    eq_assert(v, "setting null operand");
    ValueImpl *old = _operands[i];
    if (old) {
        auto &uses = old->uses;
        uses.erase(std::remove(uses.begin(), uses.end(),
                               std::make_pair(this, i)),
                   uses.end());
    }
    _operands[i] = v.impl();
    v.impl()->uses.emplace_back(this, i);
}

std::vector<Value>
Operation::operands() const
{
    std::vector<Value> out;
    out.reserve(_operands.size());
    for (ValueImpl *impl : _operands)
        out.emplace_back(impl);
    return out;
}

void
Operation::appendOperand(Value v)
{
    eq_assert(v, "appending null operand to ", name());
    unsigned idx = static_cast<unsigned>(_operands.size());
    _operands.push_back(v.impl());
    v.impl()->uses.emplace_back(this, idx);
}

void
Operation::eraseOperand(unsigned i)
{
    eq_assert(i < _operands.size(), "operand index out of range");
    ValueImpl *old = _operands[i];
    if (old) {
        auto &uses = old->uses;
        uses.erase(std::remove(uses.begin(), uses.end(),
                               std::make_pair(this, i)),
                   uses.end());
    }
    // Shift the remaining operands down and re-index their uses.
    for (unsigned j = i + 1; j < _operands.size(); ++j) {
        ValueImpl *impl = _operands[j];
        for (auto &use : impl->uses) {
            if (use.first == this && use.second == j)
                use.second = j - 1;
        }
        _operands[j - 1] = impl;
    }
    _operands.pop_back();
}

Value
Operation::result(unsigned i)
{
    eq_assert(i < _results.size(), "result index ", i, " out of range in ",
              name());
    return Value(&_results[i]);
}

std::vector<Value>
Operation::results()
{
    std::vector<Value> out;
    out.reserve(_results.size());
    for (auto &impl : _results)
        out.emplace_back(&impl);
    return out;
}

int64_t
Operation::intAttr(const std::string &name) const
{
    Attribute a = attr(name);
    eq_assert(a && a.isInt(), "op '", this->name(), "' missing int attr '",
              name, "'");
    return a.asInt();
}

int64_t
Operation::intAttrOr(const std::string &name, int64_t dflt) const
{
    Attribute a = attr(name);
    return (a && a.isInt()) ? a.asInt() : dflt;
}

const std::string &
Operation::strAttr(const std::string &name) const
{
    Attribute a = attr(name);
    eq_assert(a && a.isString(), "op '", this->name(),
              "' missing string attr '", name, "'");
    return a.asString();
}

Region &
Operation::region(unsigned i)
{
    eq_assert(i < _regions.size(), "region index out of range in ", name());
    return *_regions[i];
}

const Region &
Operation::region(unsigned i) const
{
    eq_assert(i < _regions.size(), "region index out of range in ", name());
    return *_regions[i];
}

Operation *
Operation::parentOp() const
{
    return _block ? _block->parentOp() : nullptr;
}

void
Operation::remove()
{
    if (_block)
        _block->remove(this);
}

void
Operation::erase()
{
    remove();
    delete this;
}

void
Operation::moveBefore(Operation *other)
{
    eq_assert(other && other->block(), "moveBefore needs an attached op");
    if (other == this)
        return;
    Block *b = other->block();
    remove();
    b->insert(b->find(other), this);
}

void
Operation::moveToEnd(Block *target)
{
    remove();
    target->push_back(this);
}

Operation *
Operation::clone(std::map<ValueImpl *, Value> &mapping) const
{
    std::vector<Type> result_types;
    for (const auto &res : _results)
        result_types.push_back(res.type);
    std::vector<Value> operands;
    for (ValueImpl *impl : _operands) {
        auto it = mapping.find(impl);
        operands.push_back(it != mapping.end() ? it->second
                                               : Value(impl));
    }
    Operation *copy = Operation::create(*_ctx, name(), result_types,
                                        operands, _attrs,
                                        static_cast<unsigned>(
                                            _regions.size()));
    for (size_t i = 0; i < _results.size(); ++i)
        mapping[const_cast<ValueImpl *>(&_results[i])] = copy->result(
            static_cast<unsigned>(i));
    for (size_t r = 0; r < _regions.size(); ++r) {
        for (auto &block : *_regions[r]) {
            Block *new_block = copy->region(static_cast<unsigned>(r))
                                   .addBlock();
            for (unsigned a = 0; a < block->numArguments(); ++a) {
                Value new_arg =
                    new_block->addArgument(block->argument(a).type());
                mapping[block->argument(a).impl()] = new_arg;
            }
            for (Operation *inner : *block)
                new_block->push_back(inner->clone(mapping));
        }
    }
    return copy;
}

void
Operation::walk(const std::function<void(Operation *)> &fn)
{
    fn(this);
    for (auto &region : _regions) {
        for (auto &block : *region) {
            // Copy: fn may erase/move ops while we iterate.
            std::vector<Operation *> ops(block->begin(), block->end());
            for (Operation *op : ops)
                op->walk(fn);
        }
    }
}

std::string
Operation::verify()
{
    // Structural checks first.
    for (unsigned i = 0; i < _operands.size(); ++i) {
        if (!_operands[i])
            return "op '" + name() + "' has null operand";
    }
    const OpInfo *info = _ctx->lookupOp(_opId);
    if (!info) {
        if (!_ctx->allowUnregistered())
            return "unregistered operation '" + name() + "'";
    } else if (info->verify) {
        std::string err = info->verify(this);
        if (!err.empty())
            return "op '" + name() + "': " + err;
    }
    // Verify nested ops.
    for (auto &region : _regions) {
        for (auto &block : *region) {
            for (Operation *op : *block) {
                std::string err = op->verify();
                if (!err.empty())
                    return err;
            }
        }
    }
    return "";
}

// ---------------------------------------------------------------------------
// Block

Block::~Block()
{
    // Destroy in reverse so later uses die before their defs, keeping the
    // "no live uses at destruction" invariant cheap to check.
    while (!_ops.empty()) {
        Operation *op = _ops.back();
        _ops.pop_back();
        op->setBlock(nullptr);
        delete op;
    }
}

Value
Block::addArgument(Type t)
{
    ValueImpl impl;
    impl.type = t;
    impl.ownerBlock = this;
    impl.index = static_cast<unsigned>(_args.size());
    _args.push_back(std::move(impl));
    return Value(&_args.back());
}

Value
Block::argument(unsigned i)
{
    eq_assert(i < _args.size(), "block argument index out of range");
    return Value(&_args[i]);
}

std::vector<Value>
Block::arguments()
{
    std::vector<Value> out;
    out.reserve(_args.size());
    for (auto &impl : _args)
        out.emplace_back(&impl);
    return out;
}

void
Block::push_back(Operation *op)
{
    _ops.push_back(op);
    op->setBlock(this);
}

Block::iterator
Block::insert(iterator where, Operation *op)
{
    auto it = _ops.insert(where, op);
    op->setBlock(this);
    return it;
}

void
Block::remove(Operation *op)
{
    auto it = find(op);
    eq_assert(it != _ops.end(), "removing op not in block");
    _ops.erase(it);
    op->setBlock(nullptr);
}

Block::iterator
Block::find(Operation *op)
{
    return std::find(_ops.begin(), _ops.end(), op);
}

Operation *
Block::parentOp() const
{
    return _parent ? _parent->parentOp() : nullptr;
}

Operation *
Block::terminator()
{
    return _ops.empty() ? nullptr : _ops.back();
}

// ---------------------------------------------------------------------------
// Region

Block *
Region::addBlock()
{
    _blocks.push_back(std::make_unique<Block>());
    _blocks.back()->setParentRegion(this);
    return _blocks.back().get();
}

Block &
Region::ensureBlock()
{
    if (_blocks.empty())
        addBlock();
    return front();
}

// ---------------------------------------------------------------------------
// OwningOpRef

void
OwningOpRef::reset()
{
    if (_op) {
        delete _op;
        _op = nullptr;
    }
}

} // namespace ir
} // namespace eq
