/**
 * @file
 * The systolic-array generator of Section VI-B: C++ code that uses the
 * builder API to emit an EQueue program modeling an Ah x Aw systolic
 * convolution accelerator under the WS / IS / OS dataflows.
 *
 * The emitted program is a cycle/traffic model in the same spirit as
 * SCALE-Sim (which is also not a functional simulator): processing
 * elements are MAC processors with register files; the stationary tensor
 * preloads through a bandwidth-limited connection; moving operands enter
 * on the boundary rows/columns from SRAM; partial results pass to
 * neighbor registers each cycle and exit to SRAM. Simulated cycles and
 * SRAM byte counters come from the generic engine executing the emitted
 * ops, not from closed-form formulas — the agreement with the analytic
 * SCALE-Sim baseline (Fig. 9) is therefore a meaningful cross-check of
 * the event-queue machinery.
 *
 * The generator shares its configuration struct with the SCALE-Sim
 * baseline so experiments sweep both models from one description.
 */

#ifndef EQ_SYSTOLIC_GENERATOR_HH
#define EQ_SYSTOLIC_GENERATOR_HH

#include "ir/builder.hh"
#include "scalesim/scalesim.hh"

namespace eq {
namespace systolic {

using scalesim::Config;
using scalesim::Dataflow;

/** Names of the SRAM buffers the generator creates (for report lookup,
 *  matched against MemReport/Component names). */
struct SystolicNames {
    static constexpr const char *sram = "SRAM";
    static constexpr const char *stage = "StageRegs";
};

/** Emission variants (the pass-built pipeline of §VI-D produces the
 *  steady-state model without the final cool-down, explaining the small
 *  generator-vs-pipeline runtime gap the paper reports). */
struct EmitOptions {
    /** Model the fill/drain skew steps of every fold. */
    bool modelSkew = true;
    /** Skip the cool-down (drain) of the final fold. */
    bool skipFinalDrain = false;
};

/**
 * Emit the full EQueue module for @p cfg: structure declarations, fold
 * loop, stationary preload, streaming and drain loops with per-PE
 * launches.
 */
ir::OwningOpRef buildSystolicModule(ir::Context &ctx, const Config &cfg,
                                    const EmitOptions &opts = {});

/** Emit into an existing (empty) module — used by the systolic
 *  conversion step of the lowering pipeline. */
void emitSystolicInto(ir::Operation *module, const Config &cfg,
                      const EmitOptions &opts = {});

/** Analytic cycle count the emitted module is expected to simulate to
 *  (identical to the SCALE-Sim baseline by construction). */
uint64_t expectedCycles(const Config &cfg);

/** Fold count = ceil(D1/Ah) * ceil(D2/Aw) (paper Fig. 12c-e). */
uint64_t loopIterations(const Config &cfg);

} // namespace systolic
} // namespace eq

#endif // EQ_SYSTOLIC_GENERATOR_HH
