#include "systolic/generator.hh"

#include <map>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "dialects/affine.hh"
#include "dialects/equeue.hh"

namespace eq {
namespace systolic {

namespace {

using ir::OpBuilder;
using ir::Value;

/** Per-PE register buffers. */
struct PeRegs {
    Value inA;  ///< moving operand arriving from the left
    Value inB;  ///< second moving operand (OS: weight from above)
    Value acc;  ///< partial sum arriving from above / resident (OS)
    Value outA; ///< latched moving operand to pass right
    Value outB; ///< latched second operand to pass down (OS)
    Value outAcc; ///< latched partial sum to pass down
    Value stat; ///< stationary value (WS: weight, IS: ifmap)
};

/** Builder state shared by the emission helpers. */
struct Emitter {
    ir::Context &ctx;
    OpBuilder b;
    const Config &cfg;
    EmitOptions opts;

    Value sram;
    Value dma;
    Value stageMem;
    Value wconn;
    Value streamIn;   ///< SRAM head feeding the left boundary
    Value streamIn2;  ///< SRAM head feeding the top boundary (OS)
    Value ofOut;      ///< SRAM cell receiving outputs
    std::vector<std::vector<Value>> pe; ///< [h][w] processors
    std::vector<std::vector<PeRegs>> regs;
    /** Stationary staging buffers per distinct fold shape. */
    std::map<int64_t, std::pair<Value, Value>> stagePairs;

    Emitter(ir::Context &c, const Config &cf, const EmitOptions &o)
        : ctx(c), b(c), cfg(cf), opts(o)
    {}

    Value
    allocOn(Value mem, int64_t elems)
    {
        return b.create<equeue::AllocOp>(mem, std::vector<int64_t>{elems},
                                         32u)
            ->result(0);
    }

    void
    buildStructure(ir::Block *top)
    {
        b.setInsertionPointToEnd(top);
        // Bank count covers the worst per-cycle port demand (OS streams
        // ifmaps and weights while draining outputs: 2*(Ah+Aw) ports);
        // SCALE-Sim assumes SRAM bandwidth is never the bottleneck, and
        // with fewer banks the engine's contention model adds real
        // stalls (see the SramBankContention ablation bench).
        sram = b.create<equeue::CreateMemOp>(
                    std::string("SRAM"), std::vector<int64_t>{1 << 20},
                    32u, static_cast<unsigned>(2 * (cfg.ah + cfg.aw)))
                   ->result(0);
        dma = b.create<equeue::CreateDmaOp>()->result(0);
        stageMem = b.create<equeue::CreateMemOp>(
                        std::string("Register"),
                        std::vector<int64_t>{4096}, 32u,
                        static_cast<unsigned>(cfg.aw))
                       ->result(0);
        // The stationary tensor streams through an Aw-words/cycle port.
        wconn = b.create<equeue::CreateConnectionOp>(
                     std::string("Streaming"),
                     int64_t(cfg.aw) * cfg.elemBytes)
                    ->result(0);
        auto comp = b.create<equeue::CreateCompOp>(
            std::string("SRAM DMA StageRegs"),
            std::vector<Value>{sram, stageMem, dma});

        streamIn = allocOn(sram, 1);
        streamIn2 = allocOn(sram, 1);
        ofOut = allocOn(sram, 1);

        pe.assign(cfg.ah, std::vector<Value>(cfg.aw));
        regs.assign(cfg.ah, std::vector<PeRegs>(cfg.aw));
        for (int h = 0; h < cfg.ah; ++h) {
            for (int w = 0; w < cfg.aw; ++w) {
                pe[h][w] =
                    b.create<equeue::CreateProcOp>(std::string("MAC"))
                        ->result(0);
                Value rmem = b.create<equeue::CreateMemOp>(
                                  std::string("Register"),
                                  std::vector<int64_t>{16}, 32u, 8u)
                                 ->result(0);
                std::string suffix =
                    std::to_string(h) + "_" + std::to_string(w);
                b.create<equeue::AddCompOp>(
                    comp->result(0), "PE_" + suffix + " REG_" + suffix,
                    std::vector<Value>{pe[h][w], rmem});
                PeRegs &r = regs[h][w];
                r.inA = allocOn(rmem, 1);
                r.inB = allocOn(rmem, 1);
                r.acc = allocOn(rmem, 1);
                r.outA = allocOn(rmem, 1);
                r.outB = allocOn(rmem, 1);
                r.outAcc = allocOn(rmem, 1);
                r.stat = allocOn(rmem, 1);
            }
        }
    }

    /** Staging source/dest buffers for a fold loading @p words values. */
    std::pair<Value, Value>
    stagePair(int64_t words)
    {
        auto it = stagePairs.find(words);
        if (it != stagePairs.end())
            return it->second;
        Value src = allocOn(sram, words);
        Value dst = allocOn(stageMem, words);
        stagePairs[words] = {src, dst};
        return {src, dst};
    }

    /** Read the whole 1-element buffer (registers: free; SRAM: traffic). */
    Value
    readCell(Value buf)
    {
        return b
            .create<equeue::ReadOp>(buf, Value(), std::vector<Value>{})
            ->result(0);
    }

    void
    writeCell(Value data, Value buf)
    {
        b.create<equeue::WriteOp>(data, buf, Value(),
                                  std::vector<Value>{});
    }

    /**
     * Stage R for PE (h,w): read operands, MAC, latch outputs into the
     * PE's own out-registers.
     * @param boundary_sram when true, the left/top boundary operands are
     *        fetched from SRAM stream heads (streaming phase); otherwise
     *        from the local in-registers (drain phase).
     */
    Value
    emitStageR(Value dep, int h, int w, bool boundary_sram)
    {
        const PeRegs &r = regs[h][w];
        bool left_edge = w == 0;
        bool top_edge = h == 0;
        Value src_a = (left_edge && boundary_sram) ? streamIn : r.inA;
        Value src_b = r.inB;
        if (cfg.dataflow == Dataflow::OS && top_edge && boundary_sram)
            src_b = streamIn2;

        std::vector<Value> captured{src_a, src_b, r.acc, r.stat, r.outA,
                                    r.outB, r.outAcc};
        auto launch = b.create<equeue::LaunchOp>(
            std::vector<Value>{dep}, pe[h][w], captured,
            std::vector<ir::Type>{});
        {
            OpBuilder::InsertionGuard g(b);
            equeue::LaunchOp l(launch.op());
            b.setInsertionPointToEnd(&l.body());
            Value a_in = l.body().argument(0);
            Value b_in = l.body().argument(1);
            Value acc_in = l.body().argument(2);
            Value stat_in = l.body().argument(3);
            Value out_a = l.body().argument(4);
            Value out_b = l.body().argument(5);
            Value out_acc = l.body().argument(6);

            Value a = readCell(a_in);
            Value acc, mul_operand;
            if (cfg.dataflow == Dataflow::OS) {
                Value bv = readCell(b_in);
                acc = readCell(acc_in);
                mul_operand = bv;
                writeCell(bv, out_b);
            } else {
                Value st = readCell(stat_in);
                acc = readCell(acc_in);
                mul_operand = st;
            }
            auto res = b.create<equeue::ExternOp>(
                std::string("mac"),
                std::vector<Value>{a, mul_operand, acc},
                std::vector<ir::Type>{ctx.i32Type()});
            if (cfg.dataflow == Dataflow::OS)
                writeCell(res->result(0), acc_in); // resident accumulate
            else
                writeCell(res->result(0), out_acc);
            writeCell(a, out_a);
            b.create<equeue::ReturnOp>(std::vector<Value>{});
        }
        return launch->result(0);
    }

    /**
     * Stage W for PE (h,w): pass latched values to neighbor registers;
     * boundary PEs emit results to SRAM during the streaming phase.
     */
    Value
    emitStageW(Value dep, int h, int w, int r_eff, int c_eff,
               bool emit_sram)
    {
        const PeRegs &r = regs[h][w];
        bool right_edge = w == c_eff - 1;
        bool bottom_edge = h == r_eff - 1;

        std::vector<Value> captured{r.outA, r.outB, r.outAcc, r.acc};
        Value dst_a, dst_b, dst_acc;
        if (!right_edge)
            dst_a = regs[h][w + 1].inA;
        if (cfg.dataflow == Dataflow::OS) {
            if (!bottom_edge)
                dst_b = regs[h + 1][w].inB;
            if (right_edge && emit_sram)
                dst_acc = ofOut; // outputs exit the last column
        } else {
            if (!bottom_edge)
                dst_acc = regs[h + 1][w].acc;
            else if (emit_sram)
                dst_acc = ofOut; // outputs exit the bottom row
        }
        for (Value v : {dst_a, dst_b, dst_acc})
            if (v)
                captured.push_back(v);

        auto launch = b.create<equeue::LaunchOp>(
            std::vector<Value>{dep}, pe[h][w], captured,
            std::vector<ir::Type>{});
        {
            OpBuilder::InsertionGuard g(b);
            equeue::LaunchOp l(launch.op());
            b.setInsertionPointToEnd(&l.body());
            unsigned arg = 4;
            Value out_a = l.body().argument(0);
            Value out_b = l.body().argument(1);
            Value out_acc = l.body().argument(2);
            Value acc_res = l.body().argument(3);
            if (dst_a) {
                Value v = readCell(out_a);
                writeCell(v, l.body().argument(arg++));
            }
            if (dst_b) {
                Value v = readCell(out_b);
                writeCell(v, l.body().argument(arg++));
            }
            if (dst_acc) {
                Value v = readCell(
                    cfg.dataflow == Dataflow::OS ? acc_res : out_acc);
                writeCell(v, l.body().argument(arg++));
            }
            b.create<equeue::ReturnOp>(std::vector<Value>{});
        }
        return launch->result(0);
    }

    /** One systolic step: stage R on all active PEs, await, stage W,
     *  await. Emitted inside the current insertion point (a loop body). */
    void
    emitStep(int r_eff, int c_eff, bool streaming)
    {
        auto stage_start = b.create<equeue::ControlStartOp>();
        std::vector<Value> reads;
        for (int h = 0; h < r_eff; ++h)
            for (int w = 0; w < c_eff; ++w)
                reads.push_back(emitStageR(stage_start->result(0), h, w,
                                           streaming));
        b.create<equeue::AwaitOp>(reads);
        auto pass_start = b.create<equeue::ControlStartOp>();
        std::vector<Value> writes;
        for (int h = 0; h < r_eff; ++h)
            for (int w = 0; w < c_eff; ++w)
                writes.push_back(emitStageW(pass_start->result(0), h, w,
                                            r_eff, c_eff, streaming));
        b.create<equeue::AwaitOp>(writes);
    }

    /** Emit a counted loop whose body is filled by @p body_fn. */
    void
    emitLoop(int64_t trip, const std::function<void()> &body_fn)
    {
        if (trip <= 0)
            return;
        auto loop = b.create<affine::ForOp>(int64_t{0}, trip, int64_t{1});
        OpBuilder::InsertionGuard g(b);
        b.setInsertionPointToEnd(&affine::ForOp(loop.op()).body());
        body_fn();
        b.create<affine::YieldOp>(std::vector<Value>{});
    }

    void
    buildControl()
    {
        const int64_t d1 = cfg.d1();
        const int64_t d2 = cfg.d2();
        const int64_t t = cfg.streamLength();
        const int64_t skew = cfg.ah + cfg.aw - 2;
        const int64_t folds_r = (d1 + cfg.ah - 1) / cfg.ah;
        const int64_t folds_c = (d2 + cfg.aw - 1) / cfg.aw;
        const bool preloads = cfg.dataflow != Dataflow::OS;

        // Fold shapes repeat; emit one loop per distinct (r_eff, c_eff)
        // combination with the repeat count, preserving total work.
        struct FoldShape {
            int64_t r_eff, c_eff, count;
        };
        std::vector<FoldShape> shapes;
        for (int64_t fr = 0; fr < folds_r; ++fr) {
            int64_t r_eff = std::min<int64_t>(cfg.ah, d1 - fr * cfg.ah);
            for (int64_t fc = 0; fc < folds_c; ++fc) {
                int64_t c_eff =
                    std::min<int64_t>(cfg.aw, d2 - fc * cfg.aw);
                bool merged = false;
                for (auto &s : shapes) {
                    if (s.r_eff == r_eff && s.c_eff == c_eff) {
                        ++s.count;
                        merged = true;
                        break;
                    }
                }
                if (!merged)
                    shapes.push_back({r_eff, c_eff, 1});
            }
        }

        for (size_t si = 0; si < shapes.size(); ++si) {
            const auto &shape = shapes[si];
            int r_eff = static_cast<int>(shape.r_eff);
            int c_eff = static_cast<int>(shape.c_eff);
            bool last_shape = si + 1 == shapes.size();
            auto emit_fold = [&](bool with_drain) {
                if (preloads) {
                    auto [src, dst] =
                        stagePair(shape.r_eff * shape.c_eff);
                    auto dep = b.create<equeue::ControlStartOp>();
                    auto cp = b.create<equeue::MemcpyOp>(
                        dep->result(0), src, dst, dma, wconn);
                    b.create<equeue::AwaitOp>(
                        std::vector<Value>{cp->result(0)});
                }
                emitLoop(t, [&] { emitStep(r_eff, c_eff, true); });
                if (opts.modelSkew && with_drain)
                    emitLoop(skew,
                             [&] { emitStep(r_eff, c_eff, false); });
            };
            bool split_last = last_shape && opts.skipFinalDrain &&
                              opts.modelSkew;
            int64_t counted = split_last ? shape.count - 1 : shape.count;
            emitLoop(counted, [&] { emit_fold(true); });
            if (split_last)
                emit_fold(false); // final fold: no cool-down modeled
        }
    }
};

} // namespace

ir::OwningOpRef
buildSystolicModule(ir::Context &ctx, const Config &cfg,
                    const EmitOptions &opts)
{
    ir::OwningOpRef module = ir::createModule(ctx);
    emitSystolicInto(module.get(), cfg, opts);
    return module;
}

void
emitSystolicInto(ir::Operation *module, const Config &cfg,
                 const EmitOptions &opts)
{
    eq_assert(cfg.h >= cfg.fh && cfg.w >= cfg.fw,
              "filter larger than ifmap");
    Emitter em(module->context(), cfg, opts);
    em.buildStructure(&module->region(0).ensureBlock());
    em.buildControl();
}

uint64_t
expectedCycles(const Config &cfg)
{
    return scalesim::simulate(cfg).cycles;
}

uint64_t
loopIterations(const Config &cfg)
{
    return scalesim::simulate(cfg).folds;
}

} // namespace systolic
} // namespace eq
