/**
 * @file
 * Small string helpers shared across the project.
 */

#ifndef EQ_BASE_STRINGUTIL_HH
#define EQ_BASE_STRINGUTIL_HH

#include <string>
#include <vector>

namespace eq {

/** Split @p s on @p sep, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** True iff @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &s);

} // namespace eq

#endif // EQ_BASE_STRINGUTIL_HH
