/**
 * @file
 * Small filesystem durability helpers shared by the sweep journal,
 * shard manifests/heartbeats, and the daemon's --port-file: an
 * atomic whole-file write (temp file + fsync + rename, so a racing
 * reader can never observe a partial file) and the IEEE CRC32 the
 * journal uses to detect torn or bit-flipped records.
 */

#ifndef EQ_BASE_FSUTIL_HH
#define EQ_BASE_FSUTIL_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace eq {
namespace fs {

/** IEEE CRC32 (the zlib polynomial) over @p len bytes, continuing
 *  from @p seed (pass a previous return value to chain buffers). */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/**
 * Write @p data to @p path atomically: the bytes land in a temp file
 * in the same directory, are fsync'd, and the temp file is rename(2)d
 * over @p path (then the directory is fsync'd best-effort). Readers
 * therefore see either the old file or the complete new one — never a
 * prefix. Returns false (with @p err) on any failure; the temp file
 * is cleaned up.
 */
bool writeFileAtomic(const std::string &path, const std::string &data,
                     std::string *err = nullptr);

/** Slurp @p path into @p out. Returns false (with @p err) on error. */
bool readFile(const std::string &path, std::string *out,
              std::string *err = nullptr);

/** True when @p path exists (any file type). */
bool fileExists(const std::string &path);

} // namespace fs
} // namespace eq

#endif // EQ_BASE_FSUTIL_HH
