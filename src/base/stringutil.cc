#include "base/stringutil.hh"

#include <sstream>

namespace eq {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

} // namespace eq
