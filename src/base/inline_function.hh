/**
 * @file
 * InlineFunction: a move-only std::function replacement with a
 * small-buffer-optimized inline store sized for the engine's event
 * callbacks (a this-pointer plus a few cycle counters). Callables that
 * fit the buffer are stored inline — scheduling a suspended op performs
 * no heap allocation; larger callables spill to the heap transparently.
 *
 * Motivation (ROADMAP "Event-core allocation pressure"): the event heap
 * and every Event's completion list used to hold std::function, whose
 * 16-byte libstdc++ inline store is too small for the engine's
 * 24-32 byte capture lists, so every suspended op allocated. The
 * default 48-byte buffer covers every callback the engine creates.
 */

#ifndef EQ_BASE_INLINE_FUNCTION_HH
#define EQ_BASE_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "base/logging.hh"

namespace eq {

template <typename Sig, size_t Cap = 48>
class InlineFunction;

template <typename R, typename... Args, size_t Cap>
class InlineFunction<R(Args...), Cap> {
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&o) noexcept { moveFrom(o); }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            destroy();
            moveFrom(o);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { destroy(); }

    explicit operator bool() const { return _ops != nullptr; }

    R
    operator()(Args... args) const
    {
        eq_assert(_ops, "invoking an empty InlineFunction");
        return _ops->invoke(storage(), std::forward<Args>(args)...);
    }

  private:
    /** Per-callable-type vtable: one static instance per F. */
    struct Ops {
        R (*invoke)(void *, Args &&...);
        /** Move the callable from @p src into @p dst's store. */
        void (*relocate)(void *src, InlineFunction *dst);
        void (*destroy)(void *);
    };

    template <typename F, bool Inline>
    struct OpsFor {
        static R
        invoke(void *p, Args &&...args)
        {
            return (*static_cast<F *>(p))(std::forward<Args>(args)...);
        }
        static void
        relocate(void *src, InlineFunction *dst)
        {
            if constexpr (Inline) {
                ::new (static_cast<void *>(dst->_buf))
                    F(std::move(*static_cast<F *>(src)));
                static_cast<F *>(src)->~F();
            } else {
                dst->_heap = src; // steal the allocation
            }
        }
        static void
        destroy(void *p)
        {
            if constexpr (Inline)
                static_cast<F *>(p)->~F();
            else
                delete static_cast<F *>(p);
        }
        static constexpr Ops ops = {invoke, relocate, destroy};
    };

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        constexpr bool fits =
            sizeof(Fn) <= Cap && alignof(Fn) <= alignof(std::max_align_t);
        if constexpr (fits) {
            ::new (static_cast<void *>(_buf)) Fn(std::forward<F>(f));
            _ops = &OpsFor<Fn, true>::ops;
            _inline = true;
        } else {
            _heap = new Fn(std::forward<F>(f));
            _ops = &OpsFor<Fn, false>::ops;
            _inline = false;
        }
    }

    void *
    storage() const
    {
        return _inline ? const_cast<unsigned char *>(_buf) : _heap;
    }

    void
    moveFrom(InlineFunction &o) noexcept
    {
        _ops = o._ops;
        _inline = o._inline;
        if (_ops)
            _ops->relocate(o.storage(), this);
        o._ops = nullptr;
    }

    void
    destroy()
    {
        if (_ops) {
            _ops->destroy(storage());
            _ops = nullptr;
        }
    }

    union {
        alignas(std::max_align_t) unsigned char _buf[Cap];
        void *_heap;
    };
    const Ops *_ops = nullptr;
    bool _inline = true;
};

} // namespace eq

#endif // EQ_BASE_INLINE_FUNCTION_HH
