/**
 * @file
 * Diagnostic helpers following the gem5 logging idiom.
 *
 * panic()  -- a simulator bug: a condition that should never happen
 *             regardless of user input. Aborts (may dump core).
 * fatal()  -- a user error: the simulation cannot continue because of a
 *             bad configuration or invalid arguments. Exits cleanly.
 * warn()   -- functionality that may not behave exactly as intended.
 * inform() -- status messages without any connotation of misbehaviour.
 */

#ifndef EQ_BASE_LOGGING_HH
#define EQ_BASE_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace eq {

namespace detail {

/** Render a printf-free message from streamable pieces. */
template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: use for internal invariant violations. */
#define eq_panic(...)                                                       \
    ::eq::detail::panicImpl(__FILE__, __LINE__,                             \
                            ::eq::detail::formatMessage(__VA_ARGS__))

/** Exit with a message: use for user-caused, unrecoverable errors. */
#define eq_fatal(...)                                                       \
    ::eq::detail::fatalImpl(__FILE__, __LINE__,                             \
                            ::eq::detail::formatMessage(__VA_ARGS__))

/** Warn about questionable-but-survivable conditions. */
#define eq_warn(...)                                                        \
    ::eq::detail::warnImpl(::eq::detail::formatMessage(__VA_ARGS__))

/** Plain status output. */
#define eq_inform(...)                                                      \
    ::eq::detail::informImpl(::eq::detail::formatMessage(__VA_ARGS__))

/** Assert that is active in all build types (simulator invariants). */
#define eq_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::eq::detail::panicImpl(                                        \
                __FILE__, __LINE__,                                         \
                ::eq::detail::formatMessage("assertion failed: " #cond " ", \
                                            ##__VA_ARGS__));                \
        }                                                                   \
    } while (0)

} // namespace eq

#endif // EQ_BASE_LOGGING_HH
