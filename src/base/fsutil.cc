#include "base/fsutil.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace eq {
namespace fs {

namespace {

void
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what + ": " + std::strerror(errno);
}

/** Directory part of @p path ("." when there is none). */
std::string
dirOf(const std::string &path)
{
    auto slash = path.rfind('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    // Table-driven IEEE CRC32, table built on first use.
    static uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    uint32_t crc = seed ^ 0xffffffffu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

bool
writeFileAtomic(const std::string &path, const std::string &data,
                std::string *err)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(long(::getpid()));
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setErr(err, "open " + tmp);
        return false;
    }
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setErr(err, "write " + tmp);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += size_t(n);
    }
    if (::fsync(fd) != 0) {
        setErr(err, "fsync " + tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setErr(err, "close " + tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setErr(err, "rename " + tmp + " -> " + path);
        ::unlink(tmp.c_str());
        return false;
    }
    // Persist the rename itself; failure here is not observable
    // non-atomicity, so best-effort only.
    int dfd = ::open(dirOf(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

bool
readFile(const std::string &path, std::string *out, std::string *err)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setErr(err, "open " + path);
        return false;
    }
    out->clear();
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setErr(err, "read " + path);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out->append(buf, size_t(n));
    }
    ::close(fd);
    return true;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

} // namespace fs
} // namespace eq
