#!/usr/bin/env python3
"""Benchmark trend gate: fail when tracked benchmarks regress.

Compares two google-benchmark JSON outputs (the uploaded
BENCH_engine.json baseline vs the current run) and exits nonzero when
any tracked benchmark's cpu_time regressed by more than the threshold
(ROADMAP "Perf trajectory tracking").

Usage:
    check_bench_trend.py BASELINE.json CURRENT.json \
        [--threshold 0.20] [--track PREFIX ...]

Benchmarks are matched by exact name ("BM_SimulateSystolic/8"); the
--track prefixes select which families gate the build (default:
BM_SimulateSystolic, BM_EventDispatch, BM_CompiledVsInterp,
BM_FusedVsCompiled, BM_SoCContention, the serving layer's
BM_ServeWarmVsCold cache legs, and the sweep durability layer's
BM_SweepResume warm/cold legs). Untracked benchmarks are
reported informationally. Stdlib only.

Build-type guard: timings from a debug build are meaningless to gate
on (and a debug baseline would make every release run look like a
huge win), so when either file was recorded from a non-release build
the gate loudly warns and skips the comparison. The binary's own
eqsim_build_type context stamp is authoritative; library_build_type
(which records how the *benchmark library* was compiled, typically
"debug" for distro packages) is only a fallback for old files.

First-run friendliness: a missing/unreadable/invalid baseline file
exits 0 with a clear "no baseline yet" message (new branches and
expired artifacts must not fail CI), and benchmarks absent from the
baseline — e.g. ones introduced by the current change — are reported
as "new" rather than gating anything. Tracked benchmarks present in
the baseline but absent from the current run are loudly warned about
(a rename must not silently drop trend coverage), without failing the
build.
"""

import argparse
import json
import sys


def load_benchmarks(path, metric):
    """Return (rows-by-name, library_build_type) for one JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions) and
        # malformed rows without a name or the compared metric.
        if b.get("run_type") == "aggregate":
            continue
        if "name" not in b or metric not in b:
            continue
        out[b["name"]] = b
    # Prefer the binary's own stamp (microbench_engine's
    # eqsim_build_type custom context); library_build_type describes
    # the installed benchmark library and is only a fallback.
    ctxt = data.get("context", {})
    build_type = ctxt.get("eqsim_build_type",
                          ctxt.get("library_build_type"))
    return out, build_type


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max tolerated fractional regression (0.20 = +20%%)")
    ap.add_argument("--track", nargs="*",
                    default=["BM_SimulateSystolic", "BM_EventDispatch",
                             "BM_CompiledVsInterp", "BM_FusedVsCompiled",
                             "BM_SoCContention", "BM_ServeWarmVsCold",
                             "BM_SweepResume"],
                    help="benchmark-name prefixes that gate the build")
    ap.add_argument("--metric", default="cpu_time",
                    choices=["cpu_time", "real_time"])
    args = ap.parse_args()

    # A baseline that is absent or unparseable is not a regression: the
    # branch simply has nothing to compare against yet (first run on a
    # branch, expired CI artifact, truncated download).
    try:
        base, base_build = load_benchmarks(args.baseline, args.metric)
    except (OSError, ValueError) as e:
        print(f"no baseline yet ({args.baseline}: {e}); "
              f"nothing to compare against -- skipping trend check")
        return 0

    try:
        curr, curr_build = load_benchmarks(args.current, args.metric)
    except (OSError, ValueError) as e:
        # The current results come from this very run; not having them
        # is a real CI failure, reported readably instead of a
        # traceback.
        print(f"error: cannot read current results {args.current}: {e}",
              file=sys.stderr)
        return 2

    if not base:
        print(f"baseline {args.baseline} contains no benchmark rows; "
              f"nothing to compare against -- skipping trend check")
        return 0

    # Gate only release-vs-release: debug timings are dominated by
    # unoptimized library code and assertion overhead, so any delta
    # against (or from) them is noise. Warn loudly rather than fail --
    # a developer running this locally against a debug build should see
    # why nothing was gated, not a red build.
    wrong = [(label, bt)
             for label, bt in [("baseline", base_build),
                               ("current", curr_build)]
             if bt != "release"]
    if wrong:
        for label, bt in wrong:
            print(f"WARNING: {label} results were recorded from a "
                  f"{bt!r} build (need 'release')", file=sys.stderr)
        print("WARNING: refusing to gate on non-release timings -- "
              "skipping trend check", file=sys.stderr)
        return 0

    failures = []
    rows = []
    for name in sorted(curr):
        if name not in base:
            rows.append((name, None, curr[name][args.metric], None, "new"))
            continue
        b = base[name][args.metric]
        c = curr[name][args.metric]
        delta = (c - b) / b if b else 0.0
        tracked = any(name.startswith(p) for p in args.track)
        status = "ok"
        if tracked and delta > args.threshold:
            status = "REGRESSION"
            failures.append((name, delta))
        elif not tracked:
            status = "untracked"
        rows.append((name, b, c, delta, status))

    # A tracked benchmark that was in the baseline but vanished from
    # the current run means the gate lost coverage (most likely a
    # rename). Don't fail — the successor is gated as "new" next run —
    # but never let it pass silently either.
    missing = [name for name in sorted(base)
               if name not in curr
               and any(name.startswith(p) for p in args.track)]
    for name in missing:
        rows.append((name, base[name][args.metric], None, None, "MISSING"))

    namew = max((len(r[0]) for r in rows), default=4)
    print(f"{'benchmark':<{namew}} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}  status")
    for name, b, c, delta, status in rows:
        bs = f"{b:12.1f}" if b is not None else f"{'-':>12}"
        cs = f"{c:12.1f}" if c is not None else f"{'-':>12}"
        ds = f"{delta:+7.1%}" if delta is not None else f"{'-':>8}"
        print(f"{name:<{namew}} {bs} {cs} {ds}  {status}")

    if missing:
        print(f"\nWARNING: {len(missing)} tracked benchmark(s) from the "
              f"baseline are missing from the current run (renamed or "
              f"removed?):", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)

    if failures:
        print(f"\nFAIL: {len(failures)} tracked benchmark(s) regressed "
              f"more than {args.threshold:.0%}:", file=sys.stderr)
        for name, delta in failures:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nOK: no tracked benchmark regressed more than "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
