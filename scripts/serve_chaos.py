#!/usr/bin/env python3
"""Chaos test of the simulation service (eqserved) under deterministic
fault injection.

The daemon is started with --faults, which arms the serving layer's
seeded FaultInjector (torn response writes, dropped connections,
worker-side exceptions, forced program-build failures), and then
hammered by a retrying client. Three guarantees are asserted, per
seed, across several seeds:

  zero hangs     every socket carries a hard timeout; a recv that
                 blocks past it fails the run (the daemon must always
                 answer, drop the connection, or shed — never wedge);
  zero crashes   after a clean shutdown request the daemon process
                 must exit 0, every round, no matter what was injected;
  determinism    every request that eventually succeeds must byte-match
                 the fault-free reference (reports modulo wall_s, sweep
                 CSV exactly) — retries are safe because served results
                 are deterministic, which is the idempotence the whole
                 retry design rests on.

Failed requests must carry a structured error code from the taxonomy
(never free text), and the fault budget (max=N) guarantees the
injector eventually goes quiescent, so a bounded-retry client always
converges.  A dedicated round checks deadline_ms end-to-end: with
every request stalled past its deadline, the answer must be
deadline_exceeded.  Sweep recovery is driven through the C++ client
(serve_client --retries), which must deliver the byte-identical merged
table through the same fault storm.

Inherits EQ_SIM_BACKEND / EQ_SIM_FUSE, so CI runs it per backend mode.

Usage: serve_chaos.py [BUILD_DIR] [ROUNDS]   (default: build, 5)
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time

SOCKET_TIMEOUT = 30  # seconds; hitting it means the daemon hung
RETRYABLE = {"backpressure", "build_failed", "internal"}
TAXONOMY = {"malformed_request", "frame_too_large", "bad_request",
            "backpressure", "deadline_exceeded", "cancelled",
            "build_failed", "internal", "shutting_down"}

CONFIGS = [{"ah": 2, "aw": 2}, {"ah": 4, "aw": 4}, {"ah": 2, "aw": 8}]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Transport(Exception):
    """Connection died mid-conversation (torn/dropped by a fault)."""


class Daemon:
    """eqserved on an ephemeral port; __exit__ asserts exit code 0."""

    def __init__(self, build_dir, workers, faults=None):
        self.binary = os.path.join(build_dir, "src", "eqserved")
        self.argv = [self.binary, "--workers", str(workers),
                     "--cache-entries", "8"]
        if faults:
            self.argv += ["--faults", faults]
        self.proc = None
        self.port = None

    def __enter__(self):
        fd, self.port_file = tempfile.mkstemp(prefix="eqserved-port-")
        os.close(fd)
        os.unlink(self.port_file)
        self.proc = subprocess.Popen(
            self.argv + ["--port-file", self.port_file],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        deadline = time.time() + 20
        while time.time() < deadline:
            if os.path.exists(self.port_file):
                with open(self.port_file) as f:
                    text = f.read().strip()
                if text:
                    self.port = int(text)
                    return self
            if self.proc.poll() is not None:
                out = self.proc.stdout.read().decode()
                fail(f"eqserved exited early ({self.proc.returncode}):"
                     f" {out}")
            time.sleep(0.05)
        fail("eqserved did not write its port file in time")

    def __exit__(self, *exc):
        if any(exc):
            # A check already failed; don't mask it with shutdown
            # diagnostics — just reap the process.
            self.proc.kill()
            self.proc.wait()
            return False
        try:
            code = self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("eqserved did not exit after shutdown (hang)")
        if os.path.exists(self.port_file):
            os.unlink(self.port_file)
        if code != 0:
            out = self.proc.stdout.read().decode()
            fail(f"eqserved exited {code} (crash): {out}")
        return False


class Lines:
    """Newline-framed JSON with a hard timeout; raises Transport on a
    killed connection, fails the whole run on a hang."""

    def __init__(self, port):
        try:
            self.sock = socket.create_connection(
                ("127.0.0.1", port), timeout=SOCKET_TIMEOUT)
        except OSError as e:
            raise Transport(f"connect: {e}")
        self.buf = b""

    def request(self, obj):
        try:
            self.sock.sendall(json.dumps(obj).encode() + b"\n")
        except OSError as e:
            raise Transport(f"send: {e}")
        return self.next()

    def next(self):
        while b"\n" not in self.buf:
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                fail("recv timed out: the daemon hung")
            except OSError as e:
                raise Transport(f"recv: {e}")
            if not chunk:
                raise Transport("connection closed mid-conversation")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            # A torn write is a fault, not a protocol bug: the frame is
            # half a line followed by EOF/close, never a full bad line.
            raise Transport(f"torn frame: {line[:80]!r}")

    def close(self):
        self.sock.close()


def without_wall(report):
    return {k: v for k, v in report.items() if k != "wall_s"}


def simulate_with_retry(port, config, deadline_ms=None, attempts=20):
    # attempts must exceed the round's fault budget (max=18): every
    # failed attempt is caused by at least one injected fault, so the
    # injector is quiescent before the attempts run out.
    """One logical simulate through the fault storm: (report, None) on
    success, (None, code) on a structured non-retryable refusal."""
    delay = 0.01
    last = "no attempt"
    for _ in range(attempts):
        req = {"op": "simulate", "id": 1, "model": "systolic",
               "config": config}
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        try:
            conn = Lines(port)
            resp = conn.request(req)
            conn.close()
        except Transport as e:
            last = str(e)
            time.sleep(delay)
            delay = min(delay * 2, 0.2)
            continue
        if resp.get("ok"):
            return resp, None
        err = resp.get("error") or {}
        code = err.get("code")
        if code not in TAXONOMY:
            fail(f"error outside the taxonomy: {resp}")
        if code in RETRYABLE:
            last = code
            time.sleep(max(delay, err.get("retry_after_ms", 0) / 1000))
            delay = min(delay * 2, 0.2)
            continue
        return None, code
    fail(f"request did not converge in {attempts} attempts ({last})")


def request_shutdown(port):
    """Ask the daemon to stop. The ack itself may be torn or the
    connection refused once it is already stopping — both fine; the
    real assertion is the exit code in Daemon.__exit__."""
    try:
        conn = Lines(port)
        bye = conn.request({"op": "shutdown", "id": 99})
        conn.close()
        if not bye.get("ok"):
            code = (bye.get("error") or {}).get("code")
            if code != "shutting_down":
                fail(f"shutdown refused oddly: {bye}")
    except Transport:
        pass


def sweep_args():
    return ["--model", "systolic", "--axis", "ah=2,4",
            "--axis", "aw=2,4,8"]


def reference_phase(build_dir):
    """Fault-free reference: per-config reports and the local CSV."""
    client = os.path.join(build_dir, "examples", "serve_client")
    local_csv = subprocess.run([client, "--local"] + sweep_args(),
                               check=True,
                               stdout=subprocess.PIPE).stdout
    if not local_csv:
        fail("local reference sweep produced no CSV")
    reports = {}
    with Daemon(build_dir, workers=2) as daemon:
        for config in CONFIGS:
            resp, code = simulate_with_retry(daemon.port, config)
            if code is not None:
                fail(f"fault-free simulate refused: {code}")
            reports[json.dumps(config)] = without_wall(resp["report"])
        request_shutdown(daemon.port)
    print("  reference phase ok")
    return reports, local_csv


def deadline_round(build_dir):
    """Every request stalls 80 ms; a 10 ms deadline must be exceeded,
    and the same request without a deadline must still succeed."""
    with Daemon(build_dir, workers=1,
                faults="stall=1,stall_ms=80") as daemon:
        resp, code = simulate_with_retry(daemon.port, CONFIGS[0],
                                         deadline_ms=10)
        if code != "deadline_exceeded":
            fail(f"expected deadline_exceeded, got {code or resp}")
        resp, code = simulate_with_retry(daemon.port, CONFIGS[0])
        if code is not None:
            fail(f"stalled-but-deadline-free simulate refused: {code}")
        request_shutdown(daemon.port)
    print("  deadline round ok (deadline_exceeded end-to-end)")


def chaos_round(build_dir, seed, reports, local_csv):
    spec = f"torn=0.12,drop=0.08,werr=0.25,build=0.25,max=18:{seed}"
    client = os.path.join(build_dir, "examples", "serve_client")
    with Daemon(build_dir, workers=2, faults=spec) as daemon:
        successes = 0
        for i in range(12):
            config = CONFIGS[i % len(CONFIGS)]
            resp, code = simulate_with_retry(daemon.port, config)
            if code is not None:
                fail(f"non-retryable refusal under chaos: {code}")
            if without_wall(resp["report"]) != \
                    reports[json.dumps(config)]:
                fail(f"seed {seed}: report differs from fault-free "
                     f"reference for {config}")
            successes += 1

        # Sweep recovery through the C++ client's retry/backoff: the
        # merged table must come out byte-identical to the local CSV
        # even though rows, connections, and builds keep failing.
        served = subprocess.run(
            [client, "--connect", f"127.0.0.1:{daemon.port}",
             "--retries", "20"] + sweep_args(),
            stdout=subprocess.PIPE, timeout=120)
        if served.returncode != 0:
            fail(f"seed {seed}: retrying sweep client exited "
                 f"{served.returncode}")
        if served.stdout != local_csv:
            fail(f"seed {seed}: recovered sweep differs from local CSV")

        stats, code = None, None
        try:
            conn = Lines(daemon.port)
            stats = conn.request({"op": "stats", "id": 7})
            conn.close()
        except Transport:
            pass  # stats reply itself may be torn; not the assertion
        injected = (stats or {}).get("faults", {}).get("injected", "?")
        request_shutdown(daemon.port)
    print(f"  seed {seed}: {successes} simulates byte-identical, "
          f"sweep recovered, {injected} faults injected, exit 0")


def main():
    build_dir = sys.argv[1] if len(sys.argv) > 1 else "build"
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    reports, local_csv = reference_phase(build_dir)
    deadline_round(build_dir)
    for seed in range(1, rounds + 1):
        chaos_round(build_dir, seed, reports, local_csv)
    print(f"serve chaos: {rounds} seeded rounds passed "
          "(zero hangs, zero crashes, byte-identical results)")


if __name__ == "__main__":
    main()
