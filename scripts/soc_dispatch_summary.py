#!/usr/bin/env python3
"""Emit a markdown table of fused-vs-unfused SoC dispatch counts.

Reads two google-benchmark JSON outputs of the BM_SoCContention legs —
one recorded with EQ_SIM_FUSE=0, one with EQ_SIM_FUSE=1, both on the
compiled backend — and prints a GitHub-flavored markdown table of the
per-leg dispatchCount delta, for the CI job summary. Cycles and ops
must be identical between the legs (fusion may only change how many
dispatches execute the same work); a mismatch exits nonzero, because
it means the fused backend diverged behaviourally.

Usage:
    soc_dispatch_summary.py UNFUSED.json FUSED.json
"""

import json
import sys


def load_counters(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate" or "name" not in b:
            continue
        out[b["name"]] = b
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    unfused = load_counters(sys.argv[1])
    fused = load_counters(sys.argv[2])

    names = sorted(set(unfused) & set(fused))
    if not names:
        print("error: no common benchmark rows between the two files",
              file=sys.stderr)
        return 2

    print("### SoC shared-bus dispatch counts (compiled backend)\n")
    print("| benchmark | cycles | ops | unfused dispatches "
          "| fused dispatches | reduction |")
    print("|---|---|---|---|---|---|")
    divergent = []
    for name in names:
        u, f = unfused[name], fused[name]
        if (u.get("cycles") != f.get("cycles")
                or u.get("ops") != f.get("ops")):
            divergent.append(name)
        ud, fd = u.get("dispatches", 0), f.get("dispatches", 0)
        ratio = f"{ud / fd:.2f}x" if fd else "-"
        print(f"| {name} | {u.get('cycles', 0):.0f} "
              f"| {u.get('ops', 0):.0f} | {ud:.0f} | {fd:.0f} "
              f"| {ratio} |")

    if divergent:
        print(f"\nerror: cycles/ops differ between fused and unfused "
              f"legs for: {', '.join(divergent)} -- fusion changed "
              f"observable behaviour", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
