#!/usr/bin/env python3
"""Chaos test of crash-safe sweeps: SIGKILL shards mid-run, corrupt
journal tails, and swap specs out from under manifests — then assert
the sweep still converges to the byte-identical fault-free answer.

Three rounds, each against a single-process reference CSV:

  kill-resume-merge   shards are dispatched as separate processes and
                      SIGKILLed mid-flight (seeded, several per
                      round); the dispatcher relaunches them with
                      --resume, the journal replays what survived the
                      kill, and the merged CSV must equal the
                      reference byte for byte — a killed-and-resumed
                      sweep is indistinguishable from an undisturbed
                      one;
  corrupted tail      a completed shard journal gets its final record
                      torn (truncated mid-record) or bit-flipped; the
                      relaunched shard must truncate the bad tail,
                      recompute only the lost points (visible in its
                      "# resume:" stats), and the merge must still be
                      byte-identical;
  header mismatch     spec.json is swapped after the manifests were
                      emitted; the shard must refuse with exit 3 and
                      a structured {"code":"journal_header_mismatch"}
                      error line — never silently journal under the
                      old identity.

The byte-identity assertions all lean on the determinism guarantee:
results do not depend on worker count, process count, kill timing, or
how many times a point was recomputed — which is exactly what makes
resume/retry/merge sound.

Inherits EQ_SIM_BACKEND / EQ_SIM_FUSE, so CI runs it per backend mode
(the emitted manifests pin the resolved mode; every relaunch obeys
the manifest, not its own environment).

Usage: sweep_chaos.py [BUILD_DIR] [ROUNDS]   (default: build, 3)
"""

import json
import os
import random
import re
import shutil
import subprocess
import sys
import tempfile

from sweep_dispatch import (DispatchError, Dispatcher,
                            EXIT_HEADER_MISMATCH, emit_shards)

SPEC_ARGS = ["--model", "systolic",
             "--axis", "ah=2,4,8", "--axis", "aw=2,4,8"]
NUM_SHARDS = 3


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def log(msg):
    print(f"  {msg}", file=sys.stderr)


def reference_csv(eqsweep):
    """The fault-free single-process answer every round must match."""
    proc = subprocess.run([eqsweep] + SPEC_ARGS,
                          stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, timeout=600)
    if proc.returncode != 0:
        fail(f"reference sweep exited {proc.returncode}: "
             f"{proc.stderr.decode()}")
    if not proc.stdout:
        fail("reference sweep produced no CSV")
    return proc.stdout


class ChaosKiller:
    """SIGKILLs running shards at seeded moments. Budgeted so the
    dispatch always converges within the retry bound."""

    def __init__(self, seed, kills=4):
        self.rng = random.Random(seed)
        self.remaining = kills
        self.killed = 0
        self.first = True

    def _kill(self, dispatcher, shard):
        dispatcher.kill(shard)
        self.remaining -= 1
        self.killed += 1
        log(f"chaos: SIGKILL shard {shard.index} "
            f"(launch #{shard.launches})")

    def __call__(self, dispatcher):
        if self.remaining <= 0:
            return
        running = [s for s in dispatcher.shards if s.running()]
        if self.first and running:
            # Guarantee the round exercises kill-resume even when the
            # shards would otherwise outrun the probabilistic kills.
            self.first = False
            self._kill(dispatcher, self.rng.choice(running))
            return
        for shard in running:
            if self.remaining <= 0:
                break
            # ~20% per tick per shard: later kills land at different
            # points of different launches across seeds.
            if self.rng.random() < 0.20:
                self._kill(dispatcher, shard)


def run_dispatch(eqsweep, manifests, chaos_kill=None, max_retries=8):
    # run() always terminates: a wedged shard trips the stall timeout
    # and is killed; a shard that keeps dying exhausts max_retries and
    # raises DispatchError.
    d = Dispatcher(eqsweep, manifests, threads=1,
                   max_retries=max_retries, stall_timeout=120.0,
                   chaos_kill=chaos_kill)
    d.run()
    return d


def kill_resume_merge_round(eqsweep, seed):
    shard_dir = tempfile.mkdtemp(prefix="eqsweep-chaos-kill-")
    try:
        manifests = emit_shards(eqsweep, SPEC_ARGS, NUM_SHARDS,
                                shard_dir)
        killer = ChaosKiller(seed)
        d = run_dispatch(eqsweep, manifests, chaos_kill=killer)
        merged = d.merge(shard_dir)
        if merged != REFERENCE:
            fail(f"seed {seed}: merged CSV differs from the "
             f"single-process reference after {killer.killed} kills")
        log(f"seed {seed}: {killer.killed} kills, "
            f"{d.relaunches} relaunches, merge byte-identical")
    finally:
        shutil.rmtree(shard_dir, ignore_errors=True)


def resume_stats(stderr_text):
    """Parse eqsweep's '# resume: computed=X journal=Y cache=Z
    truncated_bytes=B' line."""
    m = re.search(r"# resume: computed=(\d+) journal=(\d+) "
                  r"cache=(\d+) truncated_bytes=(\d+)", stderr_text)
    if not m:
        fail(f"no resume stats in shard stderr: {stderr_text!r}")
    return tuple(int(g) for g in m.groups())


def corrupt_tail_round(eqsweep, flavor):
    """Complete shard 0, damage its journal tail (torn or bit-flip),
    relaunch: the tail must be truncated and recomputed, and the merge
    must still match the reference."""
    shard_dir = tempfile.mkdtemp(prefix="eqsweep-chaos-tail-")
    try:
        manifests = emit_shards(eqsweep, SPEC_ARGS, NUM_SHARDS,
                                shard_dir)
        d = run_dispatch(eqsweep, manifests)

        journal = d.shards[0].journal_path
        with open(journal, "rb") as f:
            data = f.read()
        if flavor == "torn":
            damaged = data[:-9]  # mid-record: no trailing newline
        else:
            damaged = data[:-10] + bytes([data[-10] ^ 0x20]) + \
                data[-9:]
        with open(journal, "wb") as f:
            f.write(damaged)

        proc = subprocess.run(
            [eqsweep, "--shard", d.shards[0].manifest_path,
             "--threads", "1"],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            timeout=600)
        if proc.returncode != 0:
            fail(f"{flavor}-tail relaunch exited {proc.returncode}: "
                 f"{proc.stderr.decode()}")
        computed, journaled, _, truncated = \
            resume_stats(proc.stderr.decode())
        if truncated == 0:
            fail(f"{flavor} tail: nothing truncated — the damaged "
                 f"record was served as a result")
        if computed == 0:
            fail(f"{flavor} tail: nothing recomputed")
        merged = d.merge(shard_dir)
        if merged != REFERENCE:
            fail(f"{flavor} tail: merged CSV differs from reference")
        log(f"{flavor} tail: truncated {truncated} bytes, replayed "
            f"{journaled}, recomputed {computed}, merge "
            f"byte-identical")
    finally:
        shutil.rmtree(shard_dir, ignore_errors=True)


def header_mismatch_round(eqsweep):
    """Swap spec.json out from under the manifests: the shard must
    refuse with exit 3 and a structured journal_header_mismatch error,
    never silently journal the new grid under the old identity."""
    shard_dir = tempfile.mkdtemp(prefix="eqsweep-chaos-hdr-")
    other_dir = tempfile.mkdtemp(prefix="eqsweep-chaos-hdr2-")
    try:
        manifests = emit_shards(eqsweep, SPEC_ARGS, NUM_SHARDS,
                                shard_dir)
        # A different sweep's spec, dropped where the manifests expect
        # theirs (emitting into other_dir leaves the manifests alone).
        emit_shards(eqsweep,
                    ["--model", "systolic",
                     "--axis", "ah=2,4", "--axis", "aw=2,4"],
                    1, other_dir)
        shutil.copyfile(os.path.join(other_dir, "spec.json"),
                        os.path.join(shard_dir, "spec.json"))
        proc = subprocess.run(
            [eqsweep, "--shard", manifests[0], "--threads", "1"],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            timeout=600)
        if proc.returncode == 0:
            fail("stale manifest ran against a swapped spec")
        if proc.returncode != EXIT_HEADER_MISMATCH:
            fail(f"expected exit {EXIT_HEADER_MISMATCH}, got "
                 f"{proc.returncode}: {proc.stderr.decode()}")
        line = next((l for l in proc.stderr.decode().splitlines()
                     if l.startswith("eqsweep: error: ")), None)
        if line is None:
            fail(f"no structured error line: {proc.stderr.decode()!r}")
        err = json.loads(line[len("eqsweep: error: "):])
        if err.get("code") != "journal_header_mismatch":
            fail(f"wrong error code: {err}")
        log(f"header mismatch: exit 3, code={err['code']!r}")
    finally:
        shutil.rmtree(shard_dir, ignore_errors=True)
        shutil.rmtree(other_dir, ignore_errors=True)


def main():
    global REFERENCE
    build_dir = sys.argv[1] if len(sys.argv) > 1 else "build"
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    eqsweep = os.path.join(build_dir, "src", "eqsweep")

    REFERENCE = reference_csv(eqsweep)
    log("reference CSV captured "
        f"({len(REFERENCE.splitlines()) - 1} rows)")
    for seed in range(1, rounds + 1):
        kill_resume_merge_round(eqsweep, seed)
    corrupt_tail_round(eqsweep, "torn")
    corrupt_tail_round(eqsweep, "bitflip")
    header_mismatch_round(eqsweep)
    print(f"sweep chaos: {rounds} kill rounds + 2 tail-corruption "
          "rounds + header refusal passed (merges byte-identical)")


if __name__ == "__main__":
    main()
