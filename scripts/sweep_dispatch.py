#!/usr/bin/env python3
"""Fault-tolerant cross-process sweep dispatch over eqsweep shards.

The unit of dispatch is the shard manifest: eqsweep --emit-shards
partitions the grid into dense point-index ranges and writes one
manifest per shard (plus the spec the manifests were derived from).
This driver launches each manifest as its own `eqsweep --shard`
process and babysits the fleet:

  liveness    every shard heartbeats after each computed point by
              atomically rewriting a one-line JSON file; the monitor
              treats a live process whose beat counter has not moved
              within --stall-timeout as a straggler and kills it;
  retry       a dead shard (crashed, killed, stuck) is relaunched up
              to --max-retries times; relaunch is always safe because
              shards journal every completed point and resume by
              replaying their journal — a relaunched shard recomputes
              only what its journal does not already hold;
  refusal     exit codes 3 (header mismatch) and 4 (corrupt journal)
              are structured refusals, not transient faults, and are
              never retried — they mean the on-disk state does not
              describe this sweep and a human has to look;
  merge       once every shard has finished, `eqsweep --merge` folds
              the shard journals into one table, byte-identical to a
              single-process run (the determinism guarantee is what
              makes kill/relaunch invisible in the output).

Importable: sweep_chaos.py drives the same Dispatcher with a
chaos_kill hook to SIGKILL shards mid-flight and then asserts the
merged CSV anyway matches the fault-free reference.

Usage: sweep_dispatch.py [--build DIR] [--shards N] [--out CSV]
                         [--stall-timeout S] [--max-retries N]
                         [eqsweep spec args: --model/--config/--axis
                          or --spec FILE]
"""

import json
import os
import signal
import subprocess
import sys
import time

# eqsweep's exit-code vocabulary (see src/sweep/eqsweep_main.cc).
EXIT_OK = 0
EXIT_IO = 1
EXIT_USAGE = 2
EXIT_HEADER_MISMATCH = 3
EXIT_CORRUPT = 4
EXIT_INCOMPLETE = 5
NON_RETRYABLE = {EXIT_USAGE, EXIT_HEADER_MISMATCH, EXIT_CORRUPT}


class DispatchError(RuntimeError):
    """The dispatch cannot make progress; carries the shard's exit
    code when a structured refusal stopped it."""

    def __init__(self, message, exit_code=None):
        super().__init__(message)
        self.exit_code = exit_code


def emit_shards(eqsweep, spec_args, num_shards, shard_dir):
    """Partition the sweep: returns the manifest paths eqsweep wrote."""
    os.makedirs(shard_dir, exist_ok=True)
    proc = subprocess.run(
        [eqsweep, "--emit-shards", str(num_shards),
         "--shard-dir", shard_dir] + list(spec_args),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    if proc.returncode != 0:
        raise DispatchError(
            f"--emit-shards exited {proc.returncode}: "
            f"{proc.stderr.decode().strip()}", proc.returncode)
    paths = [l for l in proc.stdout.decode().splitlines() if l]
    if not paths:
        raise DispatchError("--emit-shards produced no manifests")
    return paths


def load_manifest(path):
    with open(path) as f:
        m = json.load(f)
    if m.get("manifest") != "eqsweep-shard":
        raise DispatchError(f"{path}: not a shard manifest")
    return m


def read_heartbeat(path):
    """Beat counter from a shard's heartbeat file, or None before the
    first beat. Torn reads are impossible (writes are atomic renames),
    but a missing file is normal until the shard starts."""
    try:
        with open(path) as f:
            return json.load(f).get("beat")
    except (OSError, json.JSONDecodeError):
        return None


class Shard:
    """One manifest's lifecycle across launches."""

    def __init__(self, manifest_path):
        self.manifest_path = manifest_path
        manifest = load_manifest(manifest_path)
        self.index = manifest["shard"]
        self.heartbeat_path = manifest["heartbeat"]
        self.journal_path = manifest["journal"]
        self.proc = None
        self.launches = 0
        self.done = False
        self.last_beat = None
        self.last_progress = None  # wall time the beat last moved

    def running(self):
        return self.proc is not None and self.proc.poll() is None


class Dispatcher:
    """Launch every shard, keep the fleet alive, then merge."""

    def __init__(self, eqsweep, manifest_paths, threads=1,
                 max_retries=3, stall_timeout=60.0, poll=0.05,
                 chaos_kill=None, log=None):
        self.eqsweep = eqsweep
        self.shards = [Shard(p) for p in manifest_paths]
        self.threads = threads
        self.max_retries = max_retries
        self.stall_timeout = stall_timeout
        self.poll = poll
        # chaos_kill(dispatcher) runs once per monitor tick; the chaos
        # harness uses it to SIGKILL shards mid-flight.
        self.chaos_kill = chaos_kill
        self.log = log or (lambda msg: None)
        self.relaunches = 0

    def launch(self, shard):
        shard.launches += 1
        shard.proc = subprocess.Popen(
            [self.eqsweep, "--shard", shard.manifest_path,
             "--threads", str(self.threads)],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        shard.last_progress = time.time()
        self.log(f"shard {shard.index}: launch #{shard.launches} "
                 f"(pid {shard.proc.pid})")

    def kill(self, shard):
        if shard.running():
            shard.proc.send_signal(signal.SIGKILL)
            shard.proc.wait()

    def _reap(self, shard):
        """Shard process exited: finished, refused, or died."""
        code = shard.proc.returncode
        stderr = shard.proc.stderr.read().decode()
        if code == EXIT_OK:
            shard.done = True
            self.log(f"shard {shard.index}: done "
                     f"(launch #{shard.launches})")
            return
        if code in NON_RETRYABLE:
            raise DispatchError(
                f"shard {shard.index} refused (exit {code}): "
                f"{stderr.strip()}", code)
        if shard.launches > self.max_retries:
            raise DispatchError(
                f"shard {shard.index} failed {shard.launches} times "
                f"(last exit {code}): {stderr.strip()}", code)
        self.relaunches += 1
        self.log(f"shard {shard.index}: exit {code}, relaunching "
                 f"with resume")
        self.launch(shard)

    def _check_stall(self, shard, now):
        """A live process whose heartbeat stopped moving is a
        straggler: kill it and let the reap path relaunch it."""
        beat = read_heartbeat(shard.heartbeat_path)
        if beat is not None and beat != shard.last_beat:
            shard.last_beat = beat
            shard.last_progress = now
            return
        if now - shard.last_progress > self.stall_timeout:
            self.log(f"shard {shard.index}: heartbeat stalled "
                     f"{self.stall_timeout:.0f}s, killing straggler")
            self.kill(shard)

    def run(self):
        """Drive every shard to completion. Raises DispatchError when
        a shard refuses or exhausts its retries."""
        try:
            for shard in self.shards:
                self.launch(shard)
            while not all(s.done for s in self.shards):
                if self.chaos_kill:
                    self.chaos_kill(self)
                now = time.time()
                for shard in self.shards:
                    if shard.done:
                        continue
                    if shard.running():
                        self._check_stall(shard, now)
                    else:
                        self._reap(shard)
                time.sleep(self.poll)
        finally:
            for shard in self.shards:
                self.kill(shard)

    def merge(self, shard_dir, csv_path=None):
        """Fold the shard journals into the final table."""
        argv = [self.eqsweep, "--merge", shard_dir]
        if csv_path:
            argv += ["--csv", csv_path]
        proc = subprocess.run(argv, stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE)
        if proc.returncode != 0:
            raise DispatchError(
                f"--merge exited {proc.returncode}: "
                f"{proc.stderr.decode().strip()}", proc.returncode)
        return proc.stdout


def dispatch_sweep(eqsweep, spec_args, shard_dir, num_shards,
                   csv_path=None, threads=1, max_retries=3,
                   stall_timeout=60.0, chaos_kill=None, log=None):
    """emit-shards -> dispatch -> merge; returns the merged CSV bytes
    (empty when csv_path routed the table to a file)."""
    manifests = emit_shards(eqsweep, spec_args, num_shards, shard_dir)
    d = Dispatcher(eqsweep, manifests, threads=threads,
                   max_retries=max_retries, stall_timeout=stall_timeout,
                   chaos_kill=chaos_kill, log=log)
    d.run()
    return d.merge(shard_dir, csv_path)


def main():
    argv = sys.argv[1:]
    build_dir, shards, out_csv = "build", 4, None
    stall_timeout, max_retries = 60.0, 3
    spec_args = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--build":
            build_dir = argv[i + 1]; i += 2
        elif arg == "--shards":
            shards = int(argv[i + 1]); i += 2
        elif arg == "--out":
            out_csv = argv[i + 1]; i += 2
        elif arg == "--stall-timeout":
            stall_timeout = float(argv[i + 1]); i += 2
        elif arg == "--max-retries":
            max_retries = int(argv[i + 1]); i += 2
        else:
            spec_args.append(arg); i += 1
    if not spec_args:
        spec_args = ["--model", "systolic",
                     "--axis", "ah=2,4,8", "--axis", "aw=2,4,8"]
    eqsweep = os.path.join(build_dir, "src", "eqsweep")
    import tempfile
    shard_dir = tempfile.mkdtemp(prefix="eqsweep-dispatch-")
    try:
        csv = dispatch_sweep(
            eqsweep, spec_args, shard_dir, shards, csv_path=out_csv,
            max_retries=max_retries, stall_timeout=stall_timeout,
            log=lambda m: print(f"# {m}", file=sys.stderr))
        if not out_csv:
            sys.stdout.write(csv.decode())
    except DispatchError as e:
        print(f"sweep_dispatch: {e}", file=sys.stderr)
        sys.exit(e.exit_code or 1)
    finally:
        import shutil
        shutil.rmtree(shard_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
