#!/usr/bin/env python3
"""End-to-end smoke test of the simulation service (eqserved).

Starts the daemon on an ephemeral port (via --port-file), then drives
the NDJSON protocol over a raw socket with no client-library help:

  1. simulate twice — the first answer must be cold ("cached": false),
     the second warm, and both reports identical apart from wall_s;
  2. malformed and unknown requests — answered with "ok": false on a
     connection that stays usable;
  3. stats — cache counters must show the cross-request reuse;
  4. a sweep request — the streamed rows, re-merged by their dense
     point index, must byte-match the in-process SweepRunner CSV
     (serve_client --local), and must do so at every daemon worker
     count tried (1 and 3);
  5. shutdown — acknowledged with "bye", after which the daemon
     process must exit 0 by itself.

Inherits EQ_SIM_BACKEND / EQ_SIM_FUSE, so CI runs it once per backend
mode and the byte-identical guarantee is checked in all three.

Usage: serve_smoke.py [BUILD_DIR]   (default: build)
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Daemon:
    """eqserved on an ephemeral port, shut down on context exit."""

    def __init__(self, build_dir, workers):
        self.binary = os.path.join(build_dir, "src", "eqserved")
        self.workers = workers
        self.proc = None
        self.port = None

    def __enter__(self):
        fd, self.port_file = tempfile.mkstemp(prefix="eqserved-port-")
        os.close(fd)
        os.unlink(self.port_file)
        self.proc = subprocess.Popen(
            [self.binary, "--port-file", self.port_file,
             "--workers", str(self.workers), "--cache-entries", "8"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        deadline = time.time() + 20
        while time.time() < deadline:
            if os.path.exists(self.port_file):
                with open(self.port_file) as f:
                    text = f.read().strip()
                if text:
                    self.port = int(text)
                    return self
            if self.proc.poll() is not None:
                out = self.proc.stdout.read().decode()
                fail(f"eqserved exited early ({self.proc.returncode}): "
                     f"{out}")
            time.sleep(0.05)
        fail("eqserved did not write its port file in time")

    def __exit__(self, *exc):
        if self.proc.poll() is None:
            self.proc.terminate()
        code = self.proc.wait(timeout=20)
        if os.path.exists(self.port_file):
            os.unlink(self.port_file)
        if not any(exc) and code != 0:
            fail(f"eqserved exited {code}")
        return False


class Lines:
    """Newline-framed JSON over a client socket."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=30)
        self.buf = b""

    def request(self, obj):
        self.sock.sendall(json.dumps(obj).encode() + b"\n")
        return self.next()

    def next(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                fail("server closed the connection mid-conversation")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def close(self):
        self.sock.close()


def without_wall(report):
    return {k: v for k, v in report.items() if k != "wall_s"}


def check_simulate_and_stats(port):
    conn = Lines(port)
    req = {"op": "simulate", "id": 1, "model": "systolic",
           "config": {"ah": 4, "aw": 4}}
    cold = conn.request(req)
    if not cold.get("ok") or cold.get("cached") is not False:
        fail(f"cold simulate wrong: {cold}")
    if cold["report"]["cycles"] <= 0:
        fail(f"implausible report: {cold}")

    warm = conn.request(dict(req, id=2))
    if not warm.get("ok") or warm.get("cached") is not True:
        fail(f"warm simulate wrong: {warm}")
    if without_wall(warm["report"]) != without_wall(cold["report"]):
        fail("warm report differs from cold report")

    # Protocol errors answer with the structured taxonomy and keep the
    # connection alive.
    bad = conn.request({"op": "simulate", "model": "systolic",
                        "config": {"ahh": 4}})
    bad_err = bad.get("error") or {}
    if bad.get("ok") or bad_err.get("code") != "bad_request" \
            or "ahh" not in bad_err.get("message", ""):
        fail(f"typo config not rejected: {bad}")
    unknown = conn.request({"op": "frobnicate", "id": 9})
    unknown_err = unknown.get("error") or {}
    if unknown.get("ok") or unknown.get("id") != 9 \
            or unknown_err.get("code") != "bad_request":
        fail(f"unknown op mishandled: {unknown}")

    stats = conn.request({"op": "stats", "id": 3})
    cache = stats.get("cache", {})
    if cache.get("misses") != 1 or cache.get("hits") != 1 \
            or cache.get("runs") != 2:
        fail(f"stats counters wrong: {stats}")
    conn.close()
    print(f"  simulate/stats ok (port {port})")


def sweep_args():
    return ["--model", "systolic", "--axis", "ah=2,4",
            "--axis", "aw=2,4,8"]


def check_sweep_matches_local(build_dir, port, local_csv):
    client = os.path.join(build_dir, "examples", "serve_client")
    served = subprocess.run(
        [client, "--connect", f"127.0.0.1:{port}"] + sweep_args(),
        check=True, stdout=subprocess.PIPE).stdout
    if served != local_csv:
        sys.stderr.write("--- served ---\n" + served.decode())
        sys.stderr.write("--- local ---\n" + local_csv.decode())
        fail("served sweep differs from in-process SweepRunner CSV")
    print(f"  sweep byte-identical to local (port {port})")


def check_shutdown(port):
    conn = Lines(port)
    bye = conn.request({"op": "shutdown", "id": 99})
    if not bye.get("ok") or bye.get("type") != "bye":
        fail(f"shutdown not acknowledged: {bye}")
    conn.close()


def main():
    build_dir = sys.argv[1] if len(sys.argv) > 1 else "build"
    client = os.path.join(build_dir, "examples", "serve_client")
    local_csv = subprocess.run(
        [client, "--local"] + sweep_args(),
        check=True, stdout=subprocess.PIPE).stdout
    if not local_csv:
        fail("local reference sweep produced no CSV")

    for workers in (1, 3):
        with Daemon(build_dir, workers) as daemon:
            if workers == 1:
                check_simulate_and_stats(daemon.port)
            check_sweep_matches_local(build_dir, daemon.port,
                                      local_csv)
            check_shutdown(daemon.port)
    print("serve smoke: all checks passed")


if __name__ == "__main__":
    main()
