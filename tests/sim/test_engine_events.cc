/**
 * @file
 * Event semantics tests: queue FIFO order, dependency gating,
 * control_and/or combinators, concurrency across processors, awaits.
 */

#include <gtest/gtest.h>

#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "ir/builder.hh"
#include "sim/engine.hh"

namespace {

using namespace eq;

class EngineEventTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        ir::registerAllDialects(ctx);
        module = ir::createModule(ctx);
        b = std::make_unique<ir::OpBuilder>(ctx);
        b->setInsertionPointToEnd(&module->region(0).front());
    }

    /** Launch a block of @p busy_cycles 1-cycle ops on @p proc. */
    ir::Operation *
    busyLaunch(ir::Value dep, ir::Value proc, int busy_cycles)
    {
        auto launch = b->create<equeue::LaunchOp>(
            std::vector<ir::Value>{dep}, proc, std::vector<ir::Value>{},
            std::vector<ir::Type>{});
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(launch.op());
        b->setInsertionPointToEnd(&l.body());
        auto c = b->create<arith::ConstantOp>(int64_t{1}, ctx.i32Type());
        ir::Value acc = c->result(0);
        for (int i = 0; i < busy_cycles; ++i)
            acc = b->create<arith::AddIOp>(acc, c->result(0))->result(0);
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
        return launch.op();
    }

    ir::Context ctx;
    ir::OwningOpRef module;
    std::unique_ptr<ir::OpBuilder> b;
};

TEST_F(EngineEventTest, IndependentProcessorsRunConcurrently)
{
    auto p0 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto p1 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto *l0 = busyLaunch(start->result(0), p0->result(0), 10);
    auto *l1 = busyLaunch(start->result(0), p1->result(0), 10);
    b->create<equeue::AwaitOp>(
        std::vector<ir::Value>{l0->result(0), l1->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    EXPECT_EQ(rep.cycles, 10u); // parallel, not 20
}

TEST_F(EngineEventTest, SameProcessorSerializesFifo)
{
    auto p0 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto *l0 = busyLaunch(start->result(0), p0->result(0), 10);
    auto *l1 = busyLaunch(start->result(0), p0->result(0), 10);
    b->create<equeue::AwaitOp>(
        std::vector<ir::Value>{l0->result(0), l1->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    EXPECT_EQ(rep.cycles, 20u); // one event at a time per processor
}

TEST_F(EngineEventTest, DependencyChainsSequence)
{
    auto p0 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto p1 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto *l0 = busyLaunch(start->result(0), p0->result(0), 7);
    // l1 runs on a different processor but must wait for l0.
    auto *l1 = busyLaunch(l0->result(0), p1->result(0), 5);
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{l1->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    EXPECT_EQ(rep.cycles, 12u);
}

TEST_F(EngineEventTest, ControlAndWaitsForAll)
{
    auto p0 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto p1 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto p2 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto *l0 = busyLaunch(start->result(0), p0->result(0), 3);
    auto *l1 = busyLaunch(start->result(0), p1->result(0), 9);
    auto both = b->create<equeue::ControlAndOp>(
        std::vector<ir::Value>{l0->result(0), l1->result(0)});
    auto *l2 = busyLaunch(both->result(0), p2->result(0), 1);
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{l2->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    EXPECT_EQ(rep.cycles, 10u); // max(3,9) + 1
}

TEST_F(EngineEventTest, ControlOrFiresOnFirst)
{
    auto p0 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto p1 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto p2 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto *l0 = busyLaunch(start->result(0), p0->result(0), 3);
    auto *l1 = busyLaunch(start->result(0), p1->result(0), 9);
    auto any = b->create<equeue::ControlOrOp>(
        std::vector<ir::Value>{l0->result(0), l1->result(0)});
    auto *l2 = busyLaunch(any->result(0), p2->result(0), 1);
    b->create<equeue::AwaitOp>(
        std::vector<ir::Value>{l2->result(0), l1->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // l2 starts at min(3,9)=3, ends at 4; overall end = max(4, 9) = 9.
    EXPECT_EQ(rep.cycles, 9u);
}

TEST_F(EngineEventTest, NestedLaunchesSpawnFromInnerBlocks)
{
    auto host = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto pe = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto outer = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, host->result(0),
        std::vector<ir::Value>{pe->result(0)}, std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(outer.op());
        b->setInsertionPointToEnd(&l.body());
        auto inner_start = b->create<equeue::ControlStartOp>();
        auto inner = b->create<equeue::LaunchOp>(
            std::vector<ir::Value>{inner_start->result(0)},
            l.body().argument(0), std::vector<ir::Value>{},
            std::vector<ir::Type>{});
        {
            ir::OpBuilder::InsertionGuard g2(*b);
            equeue::LaunchOp li(inner.op());
            b->setInsertionPointToEnd(&li.body());
            auto c =
                b->create<arith::ConstantOp>(int64_t{1}, ctx.i32Type());
            b->create<arith::AddIOp>(c->result(0), c->result(0));
            b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
        }
        b->create<equeue::AwaitOp>(
            std::vector<ir::Value>{inner->result(0)});
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{outer->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    EXPECT_EQ(rep.cycles, 1u);
    EXPECT_EQ(rep.eventsExecuted, 4u);
}

TEST_F(EngineEventTest, AwaitWithNoOperandsWaitsForAllSpawned)
{
    auto host = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto p0 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto p1 = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto outer = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, host->result(0),
        std::vector<ir::Value>{p0->result(0), p1->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(outer.op());
        b->setInsertionPointToEnd(&l.body());
        auto s0 = b->create<equeue::ControlStartOp>();
        // Two child launches with different latencies; bare await() must
        // wait for both.
        for (int k = 0; k < 2; ++k) {
            auto lp = b->create<equeue::LaunchOp>(
                std::vector<ir::Value>{s0->result(0)},
                l.body().argument(k), std::vector<ir::Value>{},
                std::vector<ir::Type>{});
            ir::OpBuilder::InsertionGuard g2(*b);
            equeue::LaunchOp li(lp.op());
            b->setInsertionPointToEnd(&li.body());
            auto c =
                b->create<arith::ConstantOp>(int64_t{1}, ctx.i32Type());
            ir::Value acc = c->result(0);
            for (int i = 0; i < (k + 1) * 4; ++i)
                acc = b->create<arith::AddIOp>(acc, c->result(0))
                          ->result(0);
            b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
        }
        b->create<equeue::AwaitOp>(std::vector<ir::Value>{});
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{outer->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    EXPECT_EQ(rep.cycles, 8u); // the slower child (8 addi)
}

TEST_F(EngineEventTest, HeadOfLineBlockingHoldsQueue)
{
    // Queue two launches on the same proc; the first has a slow dep, the
    // second is ready immediately but must wait behind the head (Fig 5).
    auto slow = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto target = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto *gate = busyLaunch(start->result(0), slow->result(0), 6);
    auto *first = busyLaunch(gate->result(0), target->result(0), 1);
    auto *second = busyLaunch(start->result(0), target->result(0), 1);
    b->create<equeue::AwaitOp>(
        std::vector<ir::Value>{first->result(0), second->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // head waits for gate (6), runs 1 cycle, then second runs: 8 total.
    EXPECT_EQ(rep.cycles, 8u);
}

} // namespace
