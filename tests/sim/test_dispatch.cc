/**
 * @file
 * The table-driven dispatch layer and dense value environment:
 *  - equeue.op signatures unknown to the engine route through the
 *    OpFunctionRegistry (extensibility, §III-E) via the OpId table;
 *  - dense value-numbered slots handle nested inline regions and reuse
 *    slots across loop iterations;
 *  - Component::addChild rejects duplicate child names instead of
 *    silently overwriting (regression).
 */

#include <gtest/gtest.h>

#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "ir/builder.hh"
#include "sim/engine.hh"

namespace {

using namespace eq;

class DispatchTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        ir::registerAllDialects(ctx);
        module = ir::createModule(ctx);
        b = std::make_unique<ir::OpBuilder>(ctx);
        b->setInsertionPointToEnd(&module->region(0).front());
    }

    /** Wrap ops built by @p fill into a launch on a fresh ARMr5 core. */
    template <typename Fn>
    void
    buildLaunch(Fn fill)
    {
        auto proc = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
        auto start = b->create<equeue::ControlStartOp>();
        auto launch = b->create<equeue::LaunchOp>(
            std::vector<ir::Value>{start->result(0)}, proc->result(0),
            std::vector<ir::Value>{}, std::vector<ir::Type>{});
        {
            ir::OpBuilder::InsertionGuard g(*b);
            equeue::LaunchOp l(launch.op());
            b->setInsertionPointToEnd(&l.body());
            fill();
            b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
        }
        b->create<equeue::AwaitOp>(
            std::vector<ir::Value>{launch->result(0)});
    }

    ir::Context ctx;
    ir::OwningOpRef module;
    std::unique_ptr<ir::OpBuilder> b;
};

TEST_F(DispatchTest, UnknownEqueueOpRoutesToOpFunctionRegistry)
{
    // An equeue.op whose signature no dialect knows: the engine must
    // hand it to the user-registered operation function.
    buildLaunch([&] {
        auto c = b->create<arith::ConstantOp>(int64_t{21}, ctx.i32Type());
        auto ext = b->create<equeue::ExternOp>(
            std::string("double_it"),
            std::vector<ir::Value>{c->result(0)},
            std::vector<ir::Type>{ctx.i32Type()});
        b->create<equeue::ExternOp>(std::string("probe"),
                                    std::vector<ir::Value>{ext->result(0)},
                                    std::vector<ir::Type>{});
    });

    sim::Simulator s;
    std::vector<int64_t> probed;
    s.opFunctions().registerOp("double_it",
                               [](const sim::OpCall &call) {
                                   sim::OpFnResult r;
                                   r.cycles = 3;
                                   r.results.push_back(sim::SimValue::ofInt(
                                       call.args[0].asInt() * 2));
                                   return r;
                               });
    s.opFunctions().registerOp("probe", [&](const sim::OpCall &call) {
        probed.push_back(call.args[0].asInt());
        return sim::OpFnResult{};
    });
    auto rep = s.simulate(module.get());
    ASSERT_EQ(probed.size(), 1u);
    EXPECT_EQ(probed[0], 42);
    // The op function's cycle count occupies the processor.
    EXPECT_GE(rep.cycles, 3u);
}

TEST_F(DispatchTest, DenseEnvHandlesNestedRegionsAndLoopReuse)
{
    // A 2-deep loop nest: every iteration rebinds the same dense slots
    // (induction vars, constants, arith results); the probe observes
    // each iteration's freshly computed value in order.
    buildLaunch([&] {
        auto outer =
            b->create<affine::ForOp>(int64_t{0}, int64_t{4}, int64_t{1});
        ir::OpBuilder::InsertionGuard g(*b);
        affine::ForOp of(outer.op());
        b->setInsertionPointToEnd(&of.body());
        auto inner =
            b->create<affine::ForOp>(int64_t{0}, int64_t{4}, int64_t{1});
        {
            ir::OpBuilder::InsertionGuard g2(*b);
            affine::ForOp inf(inner.op());
            b->setInsertionPointToEnd(&inf.body());
            auto ten =
                b->create<arith::ConstantOp>(int64_t{10}, ctx.i32Type());
            auto scaled = b->create<arith::MulIOp>(of.inductionVar(),
                                                   ten->result(0));
            auto val = b->create<arith::AddIOp>(scaled->result(0),
                                                inf.inductionVar());
            b->create<equeue::ExternOp>(
                std::string("probe"),
                std::vector<ir::Value>{val->result(0)},
                std::vector<ir::Type>{});
            b->create<affine::YieldOp>(std::vector<ir::Value>{});
        }
        b->create<affine::YieldOp>(std::vector<ir::Value>{});
    });

    sim::Simulator s;
    std::vector<int64_t> probed;
    s.opFunctions().registerOp("probe", [&](const sim::OpCall &call) {
        probed.push_back(call.args[0].asInt());
        return sim::OpFnResult{};
    });
    s.simulate(module.get());
    ASSERT_EQ(probed.size(), 16u);
    for (int64_t i = 0; i < 4; ++i)
        for (int64_t j = 0; j < 4; ++j)
            EXPECT_EQ(probed[static_cast<size_t>(i * 4 + j)], i * 10 + j);
}

TEST_F(DispatchTest, DenseEnvSlotsAreStableAcrossRepeatedRuns)
{
    // The same Simulator re-numbers the module on every run; results
    // must not depend on stale numbering from the previous run.
    buildLaunch([&] {
        auto c = b->create<arith::ConstantOp>(int64_t{7}, ctx.i32Type());
        auto sq = b->create<arith::MulIOp>(c->result(0), c->result(0));
        b->create<equeue::ExternOp>(std::string("probe"),
                                    std::vector<ir::Value>{sq->result(0)},
                                    std::vector<ir::Type>{});
    });
    sim::Simulator s;
    std::vector<int64_t> probed;
    s.opFunctions().registerOp("probe", [&](const sim::OpCall &call) {
        probed.push_back(call.args[0].asInt());
        return sim::OpFnResult{};
    });
    s.simulate(module.get());
    s.simulate(module.get());
    ASSERT_EQ(probed.size(), 2u);
    EXPECT_EQ(probed[0], 49);
    EXPECT_EQ(probed[1], 49);
}

TEST(ComponentChildTest, AddChildRejectsDuplicateNames)
{
    sim::Component root("top");
    sim::Component a("a"), bchild("b");
    root.addChild("pe", &a);
    EXPECT_EQ(root.child("pe"), &a);
    EXPECT_EQ(a.parent(), &root);
    // Re-adding the same name used to silently overwrite, leaving the
    // old child's parent pointer dangling; it must now fail loudly.
    EXPECT_DEATH(root.addChild("pe", &bchild), "already has a child");
}

TEST(ComponentChildTest, DistinctNamesCoexist)
{
    sim::Component root("top");
    sim::Component a("a"), c("c");
    root.addChild("pe0", &a);
    root.addChild("pe1", &c);
    EXPECT_EQ(root.children().size(), 2u);
    EXPECT_EQ(root.child("pe0"), &a);
    EXPECT_EQ(root.child("pe1"), &c);
}

} // namespace
