/**
 * @file
 * Cross-subsystem property tests: simulation determinism, byte
 * conservation between producers and consumers, and utilization bounds,
 * swept over systolic and FIR configurations.
 */

#include <gtest/gtest.h>

#include "aie/fir.hh"
#include "sim/engine.hh"
#include "soc/soc.hh"
#include "systolic/generator.hh"

namespace {

using namespace eq;

class SystolicPropertySweep
    : public ::testing::TestWithParam<std::tuple<int, scalesim::Dataflow>> {
};

TEST_P(SystolicPropertySweep, DeterministicAndConservative)
{
    auto [hw, df] = GetParam();
    scalesim::Config cfg;
    cfg.ah = 2;
    cfg.aw = 4;
    cfg.c = 2;
    cfg.h = cfg.w = hw;
    cfg.n = 3;
    cfg.fh = cfg.fw = 2;
    cfg.dataflow = df;

    auto run = [&] {
        ir::Context ctx;
        ir::registerAllDialects(ctx);
        auto module = systolic::buildSystolicModule(ctx, cfg);
        sim::Simulator s;
        return s.simulate(module.get());
    };
    auto r1 = run();
    auto r2 = run();

    // Determinism: identical reports from identical programs.
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.eventsExecuted, r2.eventsExecuted);
    EXPECT_EQ(r1.opsExecuted, r2.opsExecuted);

    // Utilization bounds: no processor exceeds 100%.
    for (const auto &p : r1.processors) {
        EXPECT_LE(p.utilization, 1.0 + 1e-9) << p.name;
        EXPECT_GE(p.utilization, 0.0) << p.name;
    }

    // Byte conservation: total MAC work (1 mac per PE per step) never
    // exceeds active-PE-count x cycles.
    uint64_t mac_busy = 0;
    for (const auto &p : r1.processors)
        if (p.kind == "MAC")
            mac_busy += p.busyCycles;
    EXPECT_LE(mac_busy, uint64_t(cfg.ah) * cfg.aw * r1.cycles);

    // SRAM traffic is element-aligned.
    for (const auto &m : r1.memories) {
        EXPECT_EQ(m.bytesRead % 4, 0) << m.name;
        EXPECT_EQ(m.bytesWritten % 4, 0) << m.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystolicPropertySweep,
    ::testing::Combine(::testing::Values(3, 4, 6),
                       ::testing::Values(scalesim::Dataflow::WS,
                                         scalesim::Dataflow::IS,
                                         scalesim::Dataflow::OS)));

class FirPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(FirPropertySweep, StreamsConserveSamples)
{
    int cores = GetParam();
    aie::FirConfig cfg;
    cfg.cores = cores;
    cfg.streamBandwidth = 4;
    cfg.samples = 128;
    if (cfg.totalOpsPerGroup() % cores != 0)
        GTEST_SKIP();

    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = aie::buildFirModule(ctx, cfg);
    sim::Simulator s;
    auto rep = s.simulate(module.get());

    // Every link carries exactly the full series once:
    // groups x 16 bytes on each inter-core connection.
    int64_t series_bytes = int64_t(cfg.samples) * 4;
    for (const auto &c : rep.connections)
        EXPECT_EQ(c.writeBytes, series_bytes) << c.name;

    // Monotonicity: more cores -> fewer or equal cycles under the same
    // bandwidth (pipeline depth only helps).
    EXPECT_EQ(rep.cycles, aie::expectedFirCycles(cfg));
}

INSTANTIATE_TEST_SUITE_P(Cores, FirPropertySweep,
                         ::testing::Values(1, 2, 4, 8, 16));

/** SoC scenarios swept over the shipped families plus contention
 *  variants: exact shared-bus byte conservation, per-array utilization
 *  bounds under contention, and arbitration determinism across both
 *  repeated fresh runs and BatchSession reuse. */
class SocPropertySweep : public ::testing::TestWithParam<int> {
  protected:
    static soc::SocConfig
    config(int variant)
    {
        switch (variant) {
        case 0:
            return soc::SocConfig::dualSharedBus();
        case 1:
            return soc::SocConfig::heteroStarved();
        case 2: { // bus squeezed to a single byte per cycle
            soc::SocConfig cfg = soc::SocConfig::dualSharedBus();
            cfg.busBytesPerCycle = 1;
            return cfg;
        }
        default: { // three tiles racing one DMA engine
            soc::SocConfig cfg = soc::SocConfig::dualSharedBus();
            cfg.accels.push_back(
                soc::TileSpec{2, 2, scalesim::Dataflow::OS, 4});
            return cfg;
        }
        }
    }
};

TEST_P(SocPropertySweep, SharedBusConservesBytes)
{
    soc::SocConfig cfg = config(GetParam());
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = soc::buildSocModule(ctx, cfg);
    sim::Simulator s;
    auto rep = s.simulate(module.get());

    auto want = soc::expectedSocTraffic(cfg);
    ASSERT_EQ(rep.connections.size(), 1 + cfg.accels.size());
    EXPECT_EQ(rep.connections[0].readBytes, want.busReadBytes);
    EXPECT_EQ(rep.connections[0].writeBytes, want.busWriteBytes);
    for (size_t a = 0; a < cfg.accels.size(); ++a) {
        EXPECT_EQ(rep.connections[1 + a].readBytes,
                  want.linkReadBytes[a])
            << "accel " << a;
        EXPECT_EQ(rep.connections[1 + a].writeBytes,
                  want.linkWriteBytes[a])
            << "accel " << a;
    }
    // Everything the staging memcpys push across the bus lands in the
    // per-tile L1s (element-aligned, no bytes invented or lost).
    int64_t l1_written = 0;
    for (const auto &m : rep.memories)
        if (m.name.find("_L1") != std::string::npos)
            l1_written += m.bytesWritten;
    int64_t staged = 0;
    for (const auto &t : cfg.accels)
        staged += int64_t(cfg.rounds) * t.ah * t.aw * cfg.elemBytes;
    EXPECT_EQ(l1_written, staged);
}

TEST_P(SocPropertySweep, UtilizationBoundedUnderContention)
{
    soc::SocConfig cfg = config(GetParam());
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = soc::buildSocModule(ctx, cfg);
    sim::Simulator s;
    auto rep = s.simulate(module.get());

    uint64_t mac_busy = 0;
    int64_t pes = 0;
    for (const auto &p : rep.processors) {
        EXPECT_GE(p.utilization, 0.0) << p.name;
        EXPECT_LE(p.utilization, 1.0 + 1e-9) << p.name;
        if (p.kind == "MAC") {
            mac_busy += p.busyCycles;
            ++pes;
        }
    }
    // Aggregate MAC occupancy can never exceed PEs x wall-clock.
    EXPECT_LE(mac_busy, uint64_t(pes) * rep.cycles);
}

TEST_P(SocPropertySweep, ArbitrationDeterministicAcrossRunsAndSessions)
{
    soc::SocConfig cfg = config(GetParam());
    auto fresh = [&] {
        ir::Context ctx;
        ir::registerAllDialects(ctx);
        auto module = soc::buildSocModule(ctx, cfg);
        sim::Simulator s;
        return s.simulate(module.get());
    };
    auto r1 = fresh();
    auto r2 = fresh();
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.eventsExecuted, r2.eventsExecuted);
    EXPECT_EQ(r1.opsExecuted, r2.opsExecuted);

    // BatchSession reuse must replay the same arbitration decisions:
    // identical cycles, traffic, and per-processor busy time on every
    // rerun of the pinned module.
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = soc::buildSocModule(ctx, cfg);
    sim::Simulator s;
    sim::BatchSession session(s, module.get());
    for (int run = 0; run < 3; ++run) {
        auto rep = session.run();
        EXPECT_EQ(rep.cycles, r1.cycles) << "run " << run;
        ASSERT_EQ(rep.connections.size(), r1.connections.size());
        for (size_t i = 0; i < rep.connections.size(); ++i) {
            EXPECT_EQ(rep.connections[i].readBytes,
                      r1.connections[i].readBytes);
            EXPECT_EQ(rep.connections[i].writeBytes,
                      r1.connections[i].writeBytes);
        }
        ASSERT_EQ(rep.processors.size(), r1.processors.size());
        for (size_t i = 0; i < rep.processors.size(); ++i)
            EXPECT_EQ(rep.processors[i].busyCycles,
                      r1.processors[i].busyCycles)
                << rep.processors[i].name;
    }
    EXPECT_EQ(session.runsCompleted(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Variants, SocPropertySweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(FirMonotonicity, MoreBandwidthNeverSlows)
{
    uint64_t prev = ~0ull;
    for (int64_t bw : {2, 4, 8, 16}) {
        aie::FirConfig cfg;
        cfg.cores = 4;
        cfg.streamBandwidth = bw;
        cfg.samples = 128;
        ir::Context ctx;
        ir::registerAllDialects(ctx);
        auto module = aie::buildFirModule(ctx, cfg);
        sim::Simulator s;
        uint64_t cycles = s.simulate(module.get()).cycles;
        EXPECT_LE(cycles, prev) << "bw=" << bw;
        prev = cycles;
    }
}

} // namespace
