/**
 * @file
 * Cross-subsystem property tests: simulation determinism, byte
 * conservation between producers and consumers, and utilization bounds,
 * swept over systolic and FIR configurations.
 */

#include <gtest/gtest.h>

#include "aie/fir.hh"
#include "sim/engine.hh"
#include "systolic/generator.hh"

namespace {

using namespace eq;

class SystolicPropertySweep
    : public ::testing::TestWithParam<std::tuple<int, scalesim::Dataflow>> {
};

TEST_P(SystolicPropertySweep, DeterministicAndConservative)
{
    auto [hw, df] = GetParam();
    scalesim::Config cfg;
    cfg.ah = 2;
    cfg.aw = 4;
    cfg.c = 2;
    cfg.h = cfg.w = hw;
    cfg.n = 3;
    cfg.fh = cfg.fw = 2;
    cfg.dataflow = df;

    auto run = [&] {
        ir::Context ctx;
        ir::registerAllDialects(ctx);
        auto module = systolic::buildSystolicModule(ctx, cfg);
        sim::Simulator s;
        return s.simulate(module.get());
    };
    auto r1 = run();
    auto r2 = run();

    // Determinism: identical reports from identical programs.
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.eventsExecuted, r2.eventsExecuted);
    EXPECT_EQ(r1.opsExecuted, r2.opsExecuted);

    // Utilization bounds: no processor exceeds 100%.
    for (const auto &p : r1.processors) {
        EXPECT_LE(p.utilization, 1.0 + 1e-9) << p.name;
        EXPECT_GE(p.utilization, 0.0) << p.name;
    }

    // Byte conservation: total MAC work (1 mac per PE per step) never
    // exceeds active-PE-count x cycles.
    uint64_t mac_busy = 0;
    for (const auto &p : r1.processors)
        if (p.kind == "MAC")
            mac_busy += p.busyCycles;
    EXPECT_LE(mac_busy, uint64_t(cfg.ah) * cfg.aw * r1.cycles);

    // SRAM traffic is element-aligned.
    for (const auto &m : r1.memories) {
        EXPECT_EQ(m.bytesRead % 4, 0) << m.name;
        EXPECT_EQ(m.bytesWritten % 4, 0) << m.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystolicPropertySweep,
    ::testing::Combine(::testing::Values(3, 4, 6),
                       ::testing::Values(scalesim::Dataflow::WS,
                                         scalesim::Dataflow::IS,
                                         scalesim::Dataflow::OS)));

class FirPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(FirPropertySweep, StreamsConserveSamples)
{
    int cores = GetParam();
    aie::FirConfig cfg;
    cfg.cores = cores;
    cfg.streamBandwidth = 4;
    cfg.samples = 128;
    if (cfg.totalOpsPerGroup() % cores != 0)
        GTEST_SKIP();

    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = aie::buildFirModule(ctx, cfg);
    sim::Simulator s;
    auto rep = s.simulate(module.get());

    // Every link carries exactly the full series once:
    // groups x 16 bytes on each inter-core connection.
    int64_t series_bytes = int64_t(cfg.samples) * 4;
    for (const auto &c : rep.connections)
        EXPECT_EQ(c.writeBytes, series_bytes) << c.name;

    // Monotonicity: more cores -> fewer or equal cycles under the same
    // bandwidth (pipeline depth only helps).
    EXPECT_EQ(rep.cycles, aie::expectedFirCycles(cfg));
}

INSTANTIATE_TEST_SUITE_P(Cores, FirPropertySweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(FirMonotonicity, MoreBandwidthNeverSlows)
{
    uint64_t prev = ~0ull;
    for (int64_t bw : {2, 4, 8, 16}) {
        aie::FirConfig cfg;
        cfg.cores = 4;
        cfg.streamBandwidth = bw;
        cfg.samples = 128;
        ir::Context ctx;
        ir::registerAllDialects(ctx);
        auto module = aie::buildFirModule(ctx, cfg);
        sim::Simulator s;
        uint64_t cycles = s.simulate(module.get()).cycles;
        EXPECT_LE(cycles, prev) << "bw=" << bw;
        prev = cycles;
    }
}

} // namespace
