/**
 * @file
 * Trace output tests: slice recording, JSON schema, file writing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "ir/builder.hh"
#include "sim/engine.hh"
#include "sim/trace.hh"

namespace {

using namespace eq;

TEST(TraceTest, DisabledTraceRecordsNothing)
{
    sim::Trace t;
    t.record({"x", "operation", "p", "t", 0, 1});
    EXPECT_TRUE(t.events().empty());
    t.setEnabled(true);
    t.record({"x", "operation", "p", "t", 0, 1});
    EXPECT_EQ(t.events().size(), 1u);
}

TEST(TraceTest, JsonSchemaMatchesTraceEventFormat)
{
    sim::Trace t;
    t.setEnabled(true);
    t.record({"equeue.read", "operation", "Processor", "ARMr5", 3, 2});
    std::string json = t.toJson();
    EXPECT_NE(json.find("\"name\": \"equeue.read\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"operation\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"pid\": \"Processor\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\": \"ARMr5\""), std::string::npos);
    EXPECT_EQ(json.front(), '[');
}

TEST(TraceTest, EngineEmitsSlicesForTimedOps)
{
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = ir::createModule(ctx);
    ir::OpBuilder b(ctx);
    b.setInsertionPointToEnd(&module->region(0).front());
    auto proc = b.create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b.create<equeue::ControlStartOp>();
    auto launch = b.create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, proc->result(0),
        std::vector<ir::Value>{}, std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(b);
        equeue::LaunchOp l(launch.op());
        b.setInsertionPointToEnd(&l.body());
        auto c = b.create<arith::ConstantOp>(int64_t{1}, ctx.i32Type());
        b.create<arith::AddIOp>(c->result(0), c->result(0));
        b.create<arith::MulIOp>(c->result(0), c->result(0));
        b.create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b.create<equeue::AwaitOp>(std::vector<ir::Value>{launch->result(0)});

    sim::EngineOptions opts;
    opts.enableTrace = true;
    sim::Simulator s(opts);
    s.simulate(module.get());
    ASSERT_EQ(s.trace().events().size(), 2u);
    EXPECT_EQ(s.trace().events()[0].name, "arith.addi");
    EXPECT_EQ(s.trace().events()[0].ts, 0u);
    EXPECT_EQ(s.trace().events()[1].name, "arith.muli");
    EXPECT_EQ(s.trace().events()[1].ts, 1u);
}

TEST(TraceTest, WriteFileProducesReadableJson)
{
    sim::Trace t;
    t.setEnabled(true);
    t.record({"op", "operation", "p", "q", 0, 4});
    std::string path = ::testing::TempDir() + "eq_trace_test.json";
    t.writeFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("\"dur\": 4"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
