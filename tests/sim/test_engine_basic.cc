/**
 * @file
 * Basic engine tests: structure elaboration, scalar compute on launch
 * blocks, affine loops, linalg analytic costs, the Fig. 2 toy example.
 */

#include <gtest/gtest.h>

#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "dialects/linalg.hh"
#include "dialects/memref.hh"
#include "ir/builder.hh"
#include "sim/engine.hh"

namespace {

using namespace eq;

class EngineBasicTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        ir::registerAllDialects(ctx);
        module = ir::createModule(ctx);
        b = std::make_unique<ir::OpBuilder>(ctx);
        b->setInsertionPointToEnd(&module->region(0).front());
    }

    ir::Context ctx;
    ir::OwningOpRef module;
    std::unique_ptr<ir::OpBuilder> b;
};

TEST_F(EngineBasicTest, EmptyModuleSimulatesToZeroCycles)
{
    sim::Simulator s;
    auto rep = s.simulate(module.get());
    EXPECT_EQ(rep.cycles, 0u);
    EXPECT_EQ(rep.eventsExecuted, 0u);
}

TEST_F(EngineBasicTest, LaunchOnScalarCoreCostsPerOp)
{
    auto proc = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto launch = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, proc->result(0),
        std::vector<ir::Value>{}, std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        b->setInsertionPointToEnd(&equeue::LaunchOp(launch.op()).body());
        auto c1 = b->create<arith::ConstantOp>(int64_t{2}, ctx.i32Type());
        auto c2 = b->create<arith::ConstantOp>(int64_t{3}, ctx.i32Type());
        auto add = b->create<arith::AddIOp>(c1->result(0), c2->result(0));
        auto mul = b->create<arith::MulIOp>(add->result(0), c2->result(0));
        (void)mul;
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{launch->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // Two constants are free; addi + muli cost 1 cycle each on ARM.
    EXPECT_EQ(rep.cycles, 2u);
    EXPECT_EQ(rep.eventsExecuted, 2u); // control_start + launch
    ASSERT_EQ(rep.processors.size(), 1u);
    EXPECT_EQ(rep.processors[0].busyCycles, 2u);
}

TEST_F(EngineBasicTest, LaunchReturnsValuesToCreator)
{
    auto proc = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto launch = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, proc->result(0),
        std::vector<ir::Value>{}, std::vector<ir::Type>{ctx.i32Type()});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        b->setInsertionPointToEnd(&equeue::LaunchOp(launch.op()).body());
        auto c = b->create<arith::ConstantOp>(int64_t{5}, ctx.i32Type());
        auto sq = b->create<arith::MulIOp>(c->result(0), c->result(0));
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{sq->result(0)});
    }
    // Second launch consumes the first one's return value (dep-ordered).
    auto launch2 = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{launch->result(0)}, proc->result(0),
        std::vector<ir::Value>{launch->result(1)},
        std::vector<ir::Type>{ctx.i32Type()});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l2(launch2.op());
        b->setInsertionPointToEnd(&l2.body());
        auto c = b->create<arith::ConstantOp>(int64_t{1}, ctx.i32Type());
        auto inc =
            b->create<arith::AddIOp>(l2.body().argument(0), c->result(0));
        b->create<equeue::ReturnOp>(
            std::vector<ir::Value>{inc->result(0)});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{launch2->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // 5*5=25 computed in launch1 (1 cycle), 25+1 in launch2 (1 cycle).
    EXPECT_EQ(rep.cycles, 2u);
}

TEST_F(EngineBasicTest, AffineLoopOnHostExecutesAllIterations)
{
    auto proc = b->create<equeue::CreateProcOp>(std::string("ARMr6"));
    auto mem = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{64}, 32u, 4u);
    auto buf = b->create<equeue::AllocOp>(mem->result(0),
                                          std::vector<int64_t>{16}, 32u);
    auto start = b->create<equeue::ControlStartOp>();
    auto launch = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, proc->result(0),
        std::vector<ir::Value>{buf->result(0)}, std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(launch.op());
        b->setInsertionPointToEnd(&l.body());
        auto loop =
            b->create<affine::ForOp>(int64_t{0}, int64_t{16}, int64_t{1});
        {
            ir::OpBuilder::InsertionGuard g2(*b);
            affine::ForOp f(loop.op());
            b->setInsertionPointToEnd(&f.body());
            auto two =
                b->create<arith::ConstantOp>(int64_t{2}, ctx.i32Type());
            auto val =
                b->create<arith::MulIOp>(f.inductionVar(), two->result(0));
            b->create<equeue::WriteOp>(
                val->result(0), l.body().argument(0), ir::Value(),
                std::vector<ir::Value>{f.inductionVar()});
            b->create<affine::YieldOp>(std::vector<ir::Value>{});
        }
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{launch->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // Per iteration on a scalar core: muli(1) + write(1) + yield(1) = 3.
    EXPECT_EQ(rep.cycles, 16u * 3u);
    // SRAM saw 16 element writes of 4 bytes.
    ASSERT_EQ(rep.memories.size(), 1u);
    EXPECT_EQ(rep.memories[0].bytesWritten, 64);
    EXPECT_EQ(rep.memories[0].bytesRead, 0);
}

TEST_F(EngineBasicTest, LinalgConvFunctionalAndAnalyticCost)
{
    // host-level conv on memrefs: C=1,H=W=4, N=1,Fh=Fw=2 -> Eh=Ew=3.
    auto proc = b->create<equeue::CreateProcOp>(std::string("Generic"));
    auto ifm = b->create<memref::AllocOp>(std::vector<int64_t>{1, 4, 4},
                                          32u);
    auto wgt = b->create<memref::AllocOp>(
        std::vector<int64_t>{1, 1, 2, 2}, 32u);
    auto ofm = b->create<memref::AllocOp>(std::vector<int64_t>{1, 3, 3},
                                          32u);
    b->create<linalg::FillOp>(ifm->result(0), int64_t{1});
    b->create<linalg::FillOp>(wgt->result(0), int64_t{2});
    auto start = b->create<equeue::ControlStartOp>();
    auto launch = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, proc->result(0),
        std::vector<ir::Value>{ifm->result(0), wgt->result(0),
                               ofm->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(launch.op());
        b->setInsertionPointToEnd(&l.body());
        b->create<linalg::ConvOp>(l.body().argument(0),
                                  l.body().argument(1),
                                  l.body().argument(2));
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{launch->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // macs = 1*3*3*1*2*2 = 36; analytic model charges 10 cycles per MAC.
    EXPECT_EQ(rep.cycles, 36u * 10u);
}

TEST_F(EngineBasicTest, Fig2ToyAcceleratorRuns)
{
    // Fig. 2: Kernel + SRAM + DMA, two MAC PEs with register files.
    auto kernel = b->create<equeue::CreateProcOp>(std::string("ARMr6"));
    auto sram = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{64}, 32u, 4u);
    auto dma = b->create<equeue::CreateDmaOp>();
    auto accel = b->create<equeue::CreateCompOp>(
        std::string("Kernel SRAM DMA"),
        std::vector<ir::Value>{kernel->result(0), sram->result(0),
                               dma->result(0)});
    auto pe0 = b->create<equeue::CreateProcOp>(std::string("MAC"));
    auto reg0 = b->create<equeue::CreateMemOp>(
        std::string("Register"), std::vector<int64_t>{4}, 32u, 1u);
    auto pe1 = b->create<equeue::CreateProcOp>(std::string("MAC"));
    auto reg1 = b->create<equeue::CreateMemOp>(
        std::string("Register"), std::vector<int64_t>{4}, 32u, 1u);
    b->create<equeue::AddCompOp>(
        accel->result(0), std::string("PE0 Reg0 PE1 Reg1"),
        std::vector<ir::Value>{pe0->result(0), reg0->result(0),
                               pe1->result(0), reg1->result(0)});

    auto sbuf = b->create<equeue::AllocOp>(sram->result(0),
                                           std::vector<int64_t>{8}, 32u);
    auto rbuf0 = b->create<equeue::AllocOp>(reg0->result(0),
                                            std::vector<int64_t>{4}, 32u);
    auto rbuf1 = b->create<equeue::AllocOp>(reg1->result(0),
                                            std::vector<int64_t>{4}, 32u);

    auto start = b->create<equeue::ControlStartOp>();
    auto outer = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, kernel->result(0),
        std::vector<ir::Value>{sbuf->result(0), rbuf0->result(0),
                               rbuf1->result(0), dma->result(0),
                               pe0->result(0), pe1->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(outer.op());
        b->setInsertionPointToEnd(&l.body());
        ir::Value a_sbuf = l.body().argument(0);
        ir::Value a_r0 = l.body().argument(1);
        ir::Value a_r1 = l.body().argument(2);
        ir::Value a_dma = l.body().argument(3);
        ir::Value a_pe0 = l.body().argument(4);
        ir::Value a_pe1 = l.body().argument(5);

        auto copy_dep = b->create<equeue::ControlStartOp>();
        auto cp0 = b->create<equeue::MemcpyOp>(
            copy_dep->result(0), a_sbuf, a_r0, a_dma, ir::Value());
        auto cp1 = b->create<equeue::MemcpyOp>(
            cp0->result(0), a_sbuf, a_r1, a_dma, ir::Value());

        auto mk_pe = [&](ir::Value pe, ir::Value reg, ir::Value dep) {
            auto lp = b->create<equeue::LaunchOp>(
                std::vector<ir::Value>{dep}, pe,
                std::vector<ir::Value>{reg}, std::vector<ir::Type>{});
            ir::OpBuilder::InsertionGuard g2(*b);
            equeue::LaunchOp inner(lp.op());
            b->setInsertionPointToEnd(&inner.body());
            auto ifmap = b->create<equeue::ReadOp>(
                inner.body().argument(0), ir::Value(),
                std::vector<ir::Value>{});
            b->create<equeue::WriteOp>(ifmap->result(0),
                                       inner.body().argument(0),
                                       ir::Value(),
                                       std::vector<ir::Value>{});
            b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
            return lp->result(0);
        };
        ir::Value d0 = mk_pe(a_pe0, a_r0, cp0->result(0));
        ir::Value d1 = mk_pe(a_pe1, a_r1, cp1->result(0));
        b->create<equeue::AwaitOp>(std::vector<ir::Value>{d0, d1});
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{outer->result(0)});

    ASSERT_EQ(module->verify(), "");
    sim::Simulator s;
    auto rep = s.simulate(module.get());
    EXPECT_GT(rep.cycles, 0u);
    // DMA copied 2x (4 words from an 8-word SRAM buffer into 4-word regs).
    const sim::MemReport *sram_rep = nullptr;
    for (const auto &m : rep.memories)
        if (m.kind == "SRAM")
            sram_rep = &m;
    ASSERT_NE(sram_rep, nullptr);
    EXPECT_EQ(sram_rep->bytesRead, 2 * 4 * 4);
    // 5 events: control_start x2, memcpy x2... plus 3 launches.
    EXPECT_GE(rep.eventsExecuted, 7u);
}

TEST_F(EngineBasicTest, ParallelOpIteratesFullDomain)
{
    auto proc = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto mem = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{64}, 32u, 4u);
    auto buf = b->create<equeue::AllocOp>(
        mem->result(0), std::vector<int64_t>{4, 4}, 32u);
    auto start = b->create<equeue::ControlStartOp>();
    auto launch = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, proc->result(0),
        std::vector<ir::Value>{buf->result(0)}, std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(launch.op());
        b->setInsertionPointToEnd(&l.body());
        auto par = b->create<affine::ParallelOp>(
            std::vector<int64_t>{0, 0}, std::vector<int64_t>{4, 4},
            std::vector<int64_t>{});
        {
            ir::OpBuilder::InsertionGuard g2(*b);
            affine::ParallelOp p(par.op());
            b->setInsertionPointToEnd(&p.body());
            auto sum = b->create<arith::AddIOp>(p.body().argument(0),
                                                p.body().argument(1));
            b->create<equeue::WriteOp>(
                sum->result(0), l.body().argument(0), ir::Value(),
                std::vector<ir::Value>{p.body().argument(0),
                                       p.body().argument(1)});
            b->create<affine::YieldOp>(std::vector<ir::Value>{});
        }
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{launch->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // 16 iterations x (addi + write + yield) = 48 cycles sequentialized.
    EXPECT_EQ(rep.cycles, 48u);
    EXPECT_EQ(rep.memories[0].bytesWritten, 16 * 4);
}

} // namespace
