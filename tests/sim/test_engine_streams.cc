/**
 * @file
 * Stream FIFO tests: blocking reads, producer-shaped arrival under
 * bandwidth constraints, pipeline initiation intervals, custom op
 * functions (mul4/mac4 semantics).
 */

#include <gtest/gtest.h>

#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "ir/builder.hh"
#include "sim/engine.hh"

namespace {

using namespace eq;

class EngineStreamTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        ir::registerAllDialects(ctx);
        module = ir::createModule(ctx);
        b = std::make_unique<ir::OpBuilder>(ctx);
        b->setInsertionPointToEnd(&module->region(0).front());
    }

    ir::Context ctx;
    ir::OwningOpRef module;
    std::unique_ptr<ir::OpBuilder> b;
};

TEST_F(EngineStreamTest, TwoStagePipelineThroughStream)
{
    // Producer pushes 8 scalars (1 cycle of compute each); the consumer
    // blocks on the stream and adds 1 to each.
    auto stream = b->create<equeue::CreateStreamOp>(32u);
    auto prod = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto cons = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();

    auto pl = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, prod->result(0),
        std::vector<ir::Value>{stream->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(pl.op());
        b->setInsertionPointToEnd(&l.body());
        auto one = b->create<arith::ConstantOp>(int64_t{1}, ctx.i32Type());
        ir::Value acc = one->result(0);
        for (int i = 0; i < 8; ++i) {
            acc = b->create<arith::AddIOp>(acc, one->result(0))
                      ->result(0); // 1 cycle of "work"
            b->create<equeue::StreamWriteOp>(acc, l.body().argument(0),
                                             ir::Value());
        }
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }

    auto cl = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, cons->result(0),
        std::vector<ir::Value>{stream->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(cl.op());
        b->setInsertionPointToEnd(&l.body());
        for (int i = 0; i < 8; ++i) {
            auto v = b->create<equeue::StreamReadOp>(
                l.body().argument(0), int64_t{1}, 32u, ir::Value());
            (void)v;
        }
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(
        std::vector<ir::Value>{pl->result(0), cl->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // Producer: addi (1) + stream_write (1) per element on a scalar core
    // = 16 cycles for 8 elements. The consumer's blocking reads chase the
    // producer and finish within a cycle of the last push.
    EXPECT_GE(rep.cycles, 16u);
    EXPECT_LE(rep.cycles, 17u);
}

TEST_F(EngineStreamTest, ConnectionShapesArrivalRate)
{
    // Writer pushes a 4-element tensor (16 B) through a 4 B/cyc
    // connection: elements become visible 4 cycles later.
    auto stream = b->create<equeue::CreateStreamOp>(32u);
    auto conn = b->create<equeue::CreateConnectionOp>(
        std::string("Streaming"), int64_t{4});
    auto mem = b->create<equeue::CreateMemOp>(
        std::string("Register"), std::vector<int64_t>{4}, 32u, 1u);
    auto buf = b->create<equeue::AllocOp>(mem->result(0),
                                          std::vector<int64_t>{4}, 32u);
    auto prod = b->create<equeue::CreateProcOp>(std::string("AIEngine"));
    auto cons = b->create<equeue::CreateProcOp>(std::string("AIEngine"));
    auto start = b->create<equeue::ControlStartOp>();

    auto pl = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, prod->result(0),
        std::vector<ir::Value>{stream->result(0), buf->result(0),
                               conn->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(pl.op());
        b->setInsertionPointToEnd(&l.body());
        auto data = b->create<equeue::ReadOp>(
            l.body().argument(1), ir::Value(), std::vector<ir::Value>{});
        b->create<equeue::StreamWriteOp>(data->result(0),
                                         l.body().argument(0),
                                         l.body().argument(2));
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }

    auto cl = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, cons->result(0),
        std::vector<ir::Value>{stream->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(cl.op());
        b->setInsertionPointToEnd(&l.body());
        b->create<equeue::StreamReadOp>(l.body().argument(0), int64_t{4},
                                        32u, ir::Value());
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(
        std::vector<ir::Value>{pl->result(0), cl->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // 16 bytes at 4 B/cyc = available at cycle 4.
    EXPECT_EQ(rep.cycles, 4u);
    ASSERT_EQ(rep.connections.size(), 1u);
    EXPECT_EQ(rep.connections[0].writeBytes, 16);
}

TEST_F(EngineStreamTest, BackToBackWritesSerializeOnChannel)
{
    // Two 16-byte stream writes through one 4 B/cyc connection: the
    // second transfer starts only when the channel frees (II = 4).
    auto stream = b->create<equeue::CreateStreamOp>(32u);
    auto conn = b->create<equeue::CreateConnectionOp>(
        std::string("Streaming"), int64_t{4});
    auto mem = b->create<equeue::CreateMemOp>(
        std::string("Register"), std::vector<int64_t>{4}, 32u, 1u);
    auto buf = b->create<equeue::AllocOp>(mem->result(0),
                                          std::vector<int64_t>{4}, 32u);
    auto prod = b->create<equeue::CreateProcOp>(std::string("AIEngine"));
    auto start = b->create<equeue::ControlStartOp>();

    auto pl = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, prod->result(0),
        std::vector<ir::Value>{stream->result(0), buf->result(0),
                               conn->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(pl.op());
        b->setInsertionPointToEnd(&l.body());
        auto data = b->create<equeue::ReadOp>(
            l.body().argument(1), ir::Value(), std::vector<ir::Value>{});
        b->create<equeue::StreamWriteOp>(data->result(0),
                                         l.body().argument(0),
                                         l.body().argument(2));
        b->create<equeue::StreamWriteOp>(data->result(0),
                                         l.body().argument(0),
                                         l.body().argument(2));
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{pl->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // Second transfer occupies [4,8): all data visible at 8.
    EXPECT_EQ(rep.cycles, 8u);
}

TEST_F(EngineStreamTest, Mul4Mac4OpFunctionsComputeFir)
{
    // One AI Engine core computes 4 FIR outputs over 4 taps using
    // mul4 + mac4 with tap offsets (functional check of the op library).
    auto reg = b->create<equeue::CreateMemOp>(
        std::string("Register"), std::vector<int64_t>{16}, 32u, 1u);
    auto ifm = b->create<equeue::AllocOp>(reg->result(0),
                                          std::vector<int64_t>{8}, 32u);
    auto flt = b->create<equeue::AllocOp>(reg->result(0),
                                          std::vector<int64_t>{4}, 32u);
    auto ofm = b->create<equeue::AllocOp>(reg->result(0),
                                          std::vector<int64_t>{4}, 32u);
    auto core = b->create<equeue::CreateProcOp>(std::string("AIEngine"));
    auto start = b->create<equeue::ControlStartOp>();

    auto lp = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, core->result(0),
        std::vector<ir::Value>{ofm->result(0), ifm->result(0),
                               flt->result(0)},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(lp.op());
        b->setInsertionPointToEnd(&l.body());
        // Seed the input window and filter via indexed writes.
        for (int i = 0; i < 8; ++i) {
            auto idx =
                b->create<arith::ConstantOp>(int64_t{i}, ctx.indexType());
            auto val = b->create<arith::ConstantOp>(int64_t{i + 1},
                                                    ctx.i32Type());
            b->create<equeue::WriteOp>(
                val->result(0), l.body().argument(1), ir::Value(),
                std::vector<ir::Value>{idx->result(0)});
        }
        for (int i = 0; i < 4; ++i) {
            auto idx =
                b->create<arith::ConstantOp>(int64_t{i}, ctx.indexType());
            auto val = b->create<arith::ConstantOp>(int64_t{i + 1},
                                                    ctx.i32Type());
            b->create<equeue::WriteOp>(
                val->result(0), l.body().argument(2), ir::Value(),
                std::vector<ir::Value>{idx->result(0)});
        }
        auto mul = b->create<equeue::ExternOp>(
            std::string("mul4"),
            std::vector<ir::Value>{l.body().argument(0),
                                   l.body().argument(1),
                                   l.body().argument(2)},
            std::vector<ir::Type>{});
        mul->setAttr("offset", ir::Attribute::integer(0));
        auto mac = b->create<equeue::ExternOp>(
            std::string("mac4"),
            std::vector<ir::Value>{l.body().argument(0),
                                   l.body().argument(1),
                                   l.body().argument(2)},
            std::vector<ir::Type>{});
        mac->setAttr("offset", ir::Attribute::integer(2));
        auto out = b->create<equeue::ReadOp>(
            l.body().argument(0), ir::Value(), std::vector<ir::Value>{});
        b->create<equeue::ReturnOp>(
            std::vector<ir::Value>{out->result(0)});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{lp->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // Compute cost: mul4 + mac4 = 2 cycles (reads/writes free on AIE).
    EXPECT_EQ(rep.cycles, 2u);
    // Reference: y[l] = sum_k x[l+k]*c[k], x = 1..8, c = 1..4.
    // y[0] = 1+4+9+16 = 30; y[1] = 2+6+12+20 = 40; y[2] = 50; y[3] = 60.
    // (Checked through the return value in the FIR integration tests;
    // here we validate cycle accounting.)
    EXPECT_EQ(rep.eventsExecuted, 2u);
}

} // namespace
