/**
 * @file
 * Unit tests for the component library: devices, memories, connections,
 * stream FIFOs, and the extensible factory.
 */

#include <gtest/gtest.h>

#include "sim/component.hh"

namespace {

using namespace eq::sim;

TEST(DeviceTest, AcquirePicksEarliestFreeQueue)
{
    Device d("dev", 2);
    EXPECT_EQ(d.acquire(0, 4), 0u); // queue 0: free at 4
    EXPECT_EQ(d.acquire(0, 4), 0u); // queue 1: free at 4
    EXPECT_EQ(d.acquire(0, 4), 4u); // both busy: stall until 4
    EXPECT_EQ(d.acquire(10, 1), 10u); // later request, all free again
}

TEST(DeviceTest, SingleQueueSerializes)
{
    Device d("dev", 1);
    EXPECT_EQ(d.acquire(0, 3), 0u);
    EXPECT_EQ(d.acquire(1, 3), 3u);
    EXPECT_EQ(d.acquire(2, 3), 6u);
}

TEST(MemoryTest, OccupancyScalesWithWords)
{
    Memory m("m", "SRAM", {1024}, 32, 4, /*cycles_per_word=*/1);
    EXPECT_EQ(m.getReadOrWriteCycles(false, 1), 1u);
    EXPECT_EQ(m.getReadOrWriteCycles(true, 16), 16u);
    m.recordAccess(false, 64);
    m.recordAccess(true, 32);
    m.recordAccess(false, 1);
    EXPECT_EQ(m.bytesRead(), 65);
    EXPECT_EQ(m.bytesWritten(), 32);
}

TEST(ComponentTest, HierarchyAndPaths)
{
    Component root("accel");
    Memory m("m", "SRAM", {64}, 32, 1, 1);
    Component pe("pe_old_name");
    root.addChild("SRAM", &m);
    root.addChild("PE0", &pe);
    EXPECT_EQ(root.child("SRAM"), &m);
    EXPECT_EQ(root.child("nope"), nullptr);
    EXPECT_EQ(m.name(), "SRAM"); // addChild renames
    EXPECT_EQ(m.path(), "accel.SRAM");
    EXPECT_EQ(pe.parent(), &root);
}

TEST(ConnectionTest, TransferCyclesFromBandwidth)
{
    Connection c("c", "Streaming", 32);
    EXPECT_EQ(c.transferCycles(32), 1u);
    EXPECT_EQ(c.transferCycles(33), 2u);
    EXPECT_EQ(c.transferCycles(1), 1u);
    Connection unlimited("u", "Streaming", 0);
    EXPECT_TRUE(unlimited.unlimited());
    EXPECT_EQ(unlimited.transferCycles(1 << 20), 0u);
}

TEST(ConnectionTest, StreamingHasIndependentChannels)
{
    Connection c("c", "Streaming", 4);
    EXPECT_EQ(c.acquireChannel(true, 0, 4), 0u);
    // Write channel is independent: also starts at 0.
    EXPECT_EQ(c.acquireChannel(false, 0, 4), 0u);
    // Second read serializes behind the first.
    EXPECT_EQ(c.acquireChannel(true, 0, 4), 4u);
}

TEST(ConnectionTest, WindowLocksExclusively)
{
    Connection c("c", "Window", 4);
    EXPECT_EQ(c.acquireChannel(true, 0, 4), 0u);
    // Window: the write is blocked by the in-flight read.
    EXPECT_EQ(c.acquireChannel(false, 0, 4), 4u);
    EXPECT_EQ(c.acquireChannel(true, 0, 4), 8u);
}

TEST(ConnectionTest, TransferAccounting)
{
    Connection c("c", "Streaming", 8);
    c.recordTransfer(true, 0, 2, 16);
    c.recordTransfer(false, 2, 4, 16);
    EXPECT_EQ(c.readBytes(), 16);
    EXPECT_EQ(c.writeBytes(), 16);
    EXPECT_EQ(c.intervals().size(), 2u);
}

TEST(StreamFifoTest, AvailabilityRespectsReadyTimes)
{
    StreamFifo f("s", 32);
    f.push(1, 4);
    f.push(2, 4);
    f.push(3, 8);
    EXPECT_EQ(f.available(0), 0u);
    EXPECT_EQ(f.available(4), 2u);
    EXPECT_EQ(f.available(8), 3u);
    EXPECT_EQ(f.readyTime(2), 4u);
    EXPECT_EQ(f.readyTime(3), 8u);
    EXPECT_EQ(f.readyTime(4), StreamFifo::kNoReadyTime);
    auto vals = f.pop(2);
    EXPECT_EQ(vals, (std::vector<int64_t>{1, 2}));
    EXPECT_EQ(f.depth(), 1u);
    EXPECT_EQ(f.totalPushed(), 3u);
    EXPECT_EQ(f.totalPopped(), 2u);
}

TEST(ComponentFactoryTest, BuiltinsAndCustomKinds)
{
    ComponentFactory factory;
    EXPECT_TRUE(factory.hasMemoryKind("SRAM"));
    EXPECT_TRUE(factory.hasMemoryKind("Register"));
    EXPECT_TRUE(factory.hasMemoryKind("DRAM"));
    EXPECT_FALSE(factory.hasMemoryKind("Cache"));

    auto sram = factory.makeMemory("SRAM", "s", {64}, 32, 4);
    EXPECT_EQ(sram->kind(), "SRAM");
    EXPECT_EQ(sram->numQueues(), 4u);
    EXPECT_EQ(sram->getReadOrWriteCycles(false, 2), 2u);

    auto reg = factory.makeMemory("Register", "r", {4}, 32, 1);
    EXPECT_EQ(reg->getReadOrWriteCycles(false, 100), 0u);

    auto dram = factory.makeMemory("DRAM", "d", {1 << 20}, 32, 1);
    EXPECT_EQ(dram->getReadOrWriteCycles(true, 2), 8u);

    // Extend the library with a Cache kind (the paper's §IV-D example).
    class CacheMem : public Memory {
      public:
        CacheMem(std::string name, std::vector<int64_t> shape,
                 unsigned bits, unsigned banks)
            : Memory(std::move(name), "Cache", std::move(shape), bits,
                     banks, 1)
        {}
        Cycles
        getReadOrWriteCycles(bool, int64_t words) override
        {
            // Toy model: every 4th access misses (10-cycle penalty).
            Cycles total = 0;
            for (int64_t i = 0; i < words; ++i)
                total += (++_accesses % 4 == 0) ? 10 : 1;
            return total;
        }

      private:
        uint64_t _accesses = 0;
    };
    factory.registerMemoryKind(
        "Cache", [](const std::string &name, std::vector<int64_t> shape,
                    unsigned bits, unsigned banks) {
            return std::make_unique<CacheMem>(name, std::move(shape), bits,
                                              banks);
        });
    EXPECT_TRUE(factory.hasMemoryKind("Cache"));
    auto cache = factory.makeMemory("Cache", "c", {256}, 32, 1);
    EXPECT_EQ(cache->getReadOrWriteCycles(false, 4), 1u + 1u + 1u + 10u);
}

} // namespace
