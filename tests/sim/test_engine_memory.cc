/**
 * @file
 * Memory-system tests: bank contention, memcpy timing over connections,
 * window-vs-streaming semantics, byte accounting, custom Cache kind.
 */

#include <gtest/gtest.h>

#include "dialects/arith.hh"
#include "dialects/equeue.hh"
#include "ir/builder.hh"
#include "sim/engine.hh"

namespace {

using namespace eq;

class EngineMemoryTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        ir::registerAllDialects(ctx);
        module = ir::createModule(ctx);
        b = std::make_unique<ir::OpBuilder>(ctx);
        b->setInsertionPointToEnd(&module->region(0).front());
    }

    ir::Context ctx;
    ir::OwningOpRef module;
    std::unique_ptr<ir::OpBuilder> b;
};

TEST_F(EngineMemoryTest, MemcpyUnlimitedTakesBulkCycles)
{
    auto m0 = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{4096}, 32u, 4u);
    auto m1 = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{4096}, 32u, 4u);
    auto b0 = b->create<equeue::AllocOp>(m0->result(0),
                                         std::vector<int64_t>{64}, 32u);
    auto b1 = b->create<equeue::AllocOp>(m1->result(0),
                                         std::vector<int64_t>{64}, 32u);
    auto dma = b->create<equeue::CreateDmaOp>();
    auto start = b->create<equeue::ControlStartOp>();
    auto mc = b->create<equeue::MemcpyOp>(start->result(0), b0->result(0),
                                          b1->result(0), dma->result(0),
                                          ir::Value());
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{mc->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // 64 words over 4 banks at 1 cycle/word = 16 cycles.
    EXPECT_EQ(rep.cycles, 16u);
    EXPECT_EQ(rep.memories[0].bytesRead, 256);
    EXPECT_EQ(rep.memories[1].bytesWritten, 256);
}

TEST_F(EngineMemoryTest, MemcpyOverConnectionIsBandwidthBound)
{
    auto m0 = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{4096}, 32u, 64u);
    auto m1 = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{4096}, 32u, 64u);
    auto b0 = b->create<equeue::AllocOp>(m0->result(0),
                                         std::vector<int64_t>{64}, 32u);
    auto b1 = b->create<equeue::AllocOp>(m1->result(0),
                                         std::vector<int64_t>{64}, 32u);
    auto dma = b->create<equeue::CreateDmaOp>();
    auto conn = b->create<equeue::CreateConnectionOp>(
        std::string("Streaming"), int64_t{8});
    auto start = b->create<equeue::ControlStartOp>();
    auto mc = b->create<equeue::MemcpyOp>(start->result(0), b0->result(0),
                                          b1->result(0), dma->result(0),
                                          conn->result(0));
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{mc->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // 256 bytes at 8 B/cyc = 32 cycles (slower than the 1-cycle banks).
    EXPECT_EQ(rep.cycles, 32u);
    ASSERT_EQ(rep.connections.size(), 1u);
    EXPECT_EQ(rep.connections[0].writeBytes, 256);
    EXPECT_NEAR(rep.connections[0].maxBw, 8.0, 0.01);
}

TEST_F(EngineMemoryTest, TwoMemcpysSerializeOnWindowConnection)
{
    auto m0 = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{4096}, 32u, 64u);
    auto m1 = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{4096}, 32u, 64u);
    auto b0 = b->create<equeue::AllocOp>(m0->result(0),
                                         std::vector<int64_t>{64}, 32u);
    auto b1 = b->create<equeue::AllocOp>(m1->result(0),
                                         std::vector<int64_t>{64}, 32u);
    auto b2 = b->create<equeue::AllocOp>(m0->result(0),
                                         std::vector<int64_t>{64}, 32u);
    auto b3 = b->create<equeue::AllocOp>(m1->result(0),
                                         std::vector<int64_t>{64}, 32u);
    auto dma0 = b->create<equeue::CreateDmaOp>();
    auto dma1 = b->create<equeue::CreateDmaOp>();
    auto conn = b->create<equeue::CreateConnectionOp>(
        std::string("Window"), int64_t{8});
    auto start = b->create<equeue::ControlStartOp>();
    auto mc0 = b->create<equeue::MemcpyOp>(start->result(0), b0->result(0),
                                           b1->result(0), dma0->result(0),
                                           conn->result(0));
    auto mc1 = b->create<equeue::MemcpyOp>(start->result(0), b2->result(0),
                                           b3->result(0), dma1->result(0),
                                           conn->result(0));
    b->create<equeue::AwaitOp>(
        std::vector<ir::Value>{mc0->result(0), mc1->result(0)});

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // Each copy: 32 cycles; Window conn serializes: 64 total.
    EXPECT_EQ(rep.cycles, 64u);
}

TEST_F(EngineMemoryTest, SramBankContentionStallsExtraReaders)
{
    // One SRAM with a single bank; two MAC PEs each read it every
    // "cycle". With one bank, reads serialize: 2 reads -> 2 cycles.
    auto sram = b->create<equeue::CreateMemOp>(
        std::string("SRAM"), std::vector<int64_t>{64}, 32u, 1u);
    auto buf = b->create<equeue::AllocOp>(sram->result(0),
                                          std::vector<int64_t>{1}, 32u);
    auto start = b->create<equeue::ControlStartOp>();
    std::vector<ir::Value> dones;
    for (int k = 0; k < 2; ++k) {
        auto pe = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
        auto lp = b->create<equeue::LaunchOp>(
            std::vector<ir::Value>{start->result(0)}, pe->result(0),
            std::vector<ir::Value>{buf->result(0)},
            std::vector<ir::Type>{});
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(lp.op());
        b->setInsertionPointToEnd(&l.body());
        b->create<equeue::ReadOp>(l.body().argument(0), ir::Value(),
                                  std::vector<ir::Value>{});
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
        dones.push_back(lp->result(0));
    }
    b->create<equeue::AwaitOp>(dones);

    sim::Simulator s;
    auto rep = s.simulate(module.get());
    // Reader 1: bank busy [0,1) + 1 cycle read cost -> done at 1.
    // Reader 2: bank granted at 1, read cost 1 -> done at 2.
    EXPECT_EQ(rep.cycles, 2u);
}

TEST_F(EngineMemoryTest, CustomCacheKindPluggedIntoEngine)
{
    // Register a "Cache" memory kind (the worked example of §IV-D), then
    // create it from an EQueue program and observe its latency model.
    class CacheMem : public sim::Memory {
      public:
        CacheMem(std::string name, std::vector<int64_t> shape,
                 unsigned bits, unsigned banks)
            : Memory(std::move(name), "Cache", std::move(shape), bits,
                     banks, 1)
        {}
        sim::Cycles
        getReadOrWriteCycles(bool, int64_t words) override
        {
            // First touch misses (20 cycles), later touches hit (1).
            sim::Cycles total = 0;
            for (int64_t i = 0; i < words; ++i)
                total += _warm ? 1 : 20;
            _warm = true;
            return total;
        }

      private:
        bool _warm = false;
    };

    auto cache = b->create<equeue::CreateMemOp>(
        std::string("Cache"), std::vector<int64_t>{256}, 32u, 1u);
    auto buf = b->create<equeue::AllocOp>(cache->result(0),
                                          std::vector<int64_t>{1}, 32u);
    auto proc = b->create<equeue::CreateProcOp>(std::string("ARMr5"));
    auto start = b->create<equeue::ControlStartOp>();
    auto lp = b->create<equeue::LaunchOp>(
        std::vector<ir::Value>{start->result(0)}, proc->result(0),
        std::vector<ir::Value>{buf->result(0)}, std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(lp.op());
        b->setInsertionPointToEnd(&l.body());
        // Two reads: the first misses, the second hits.
        b->create<equeue::ReadOp>(l.body().argument(0), ir::Value(),
                                  std::vector<ir::Value>{});
        b->create<equeue::ReadOp>(l.body().argument(0), ir::Value(),
                                  std::vector<ir::Value>{});
        b->create<equeue::ReturnOp>(std::vector<ir::Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<ir::Value>{lp->result(0)});

    sim::Simulator s;
    s.componentFactory().registerMemoryKind(
        "Cache", [](const std::string &name, std::vector<int64_t> shape,
                    unsigned bits, unsigned banks) {
            return std::make_unique<CacheMem>(name, std::move(shape), bits,
                                              banks);
        });
    auto rep = s.simulate(module.get());
    // Miss: bank busy until 20, read op costs 1 more -> 21? The second
    // read acquires at 20, costs 1 -> ends 21; the exact composition:
    // read1 start=0 (bank occ 20), proc cost 1 -> proc at 1;
    // read2 acquire at >=20 -> starts 20, proc cost 1 -> 21.
    EXPECT_EQ(rep.cycles, 21u);
}

} // namespace
