/**
 * @file
 * Superinstruction fusion (sim/fuse.cc) unit tests: known PE-body
 * sequences must actually fuse (dispatchCount strictly below the
 * unfused compiled backend's, which equals opsExecuted), while every
 * observable outcome — cycles, per-processor busy/ops, per-memory
 * traffic, trace streams — stays byte-identical across interp /
 * compiled / compiled+fused. Also covers the escape analysis (a cell
 * read whose value leaves the launch body keeps its materialized
 * tensor), the affine load/store + scalar-arith fusion with constant
 * index folding, and fused-program caching under BatchSession.
 */

#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

#include "dialects/affine.hh"
#include "dialects/arith.hh"
#include "passes/pipeline.hh"
#include "scalesim/scalesim.hh"
#include "sim/engine.hh"
#include "systolic/generator.hh"
#include "testutil.hh"

namespace {

using namespace eq;
using ir::Value;

struct Outcome {
    sim::SimReport report;
    std::vector<std::string> trace;
};

std::vector<std::string>
renderTrace(const sim::Trace &trace)
{
    std::vector<std::string> lines;
    lines.reserve(trace.events().size());
    for (const auto &ev : trace.events()) {
        std::ostringstream os;
        os << ev.ts << " " << ev.dur << " " << ev.cat << " " << ev.pid
           << " " << ev.tid << " " << ev.name;
        lines.push_back(os.str());
    }
    return lines;
}

void
expectIdentical(const Outcome &a, const Outcome &b)
{
    EXPECT_EQ(a.report.cycles, b.report.cycles);
    EXPECT_EQ(a.report.eventsExecuted, b.report.eventsExecuted);
    EXPECT_EQ(a.report.opsExecuted, b.report.opsExecuted);
    ASSERT_EQ(a.report.processors.size(), b.report.processors.size());
    for (size_t i = 0; i < a.report.processors.size(); ++i) {
        EXPECT_EQ(a.report.processors[i].busyCycles,
                  b.report.processors[i].busyCycles);
        EXPECT_EQ(a.report.processors[i].opsExecuted,
                  b.report.processors[i].opsExecuted);
    }
    ASSERT_EQ(a.report.memories.size(), b.report.memories.size());
    for (size_t i = 0; i < a.report.memories.size(); ++i) {
        EXPECT_EQ(a.report.memories[i].bytesRead,
                  b.report.memories[i].bytesRead);
        EXPECT_EQ(a.report.memories[i].bytesWritten,
                  b.report.memories[i].bytesWritten);
    }
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i)
        ASSERT_EQ(a.trace[i], b.trace[i])
            << "first trace divergence at event " << i;
}

Outcome
simulate(ir::Operation *module, sim::Backend backend, sim::Fusion fuse)
{
    sim::EngineOptions opts;
    opts.enableTrace = true;
    opts.backend = backend;
    opts.fuse = fuse;
    sim::Simulator s(opts);
    Outcome out;
    out.report = s.simulate(module);
    out.trace = renderTrace(s.trace());
    return out;
}

class FuseTest : public test::RegisteredModuleTest {
  protected:
    Value
    allocCell(Value mem)
    {
        return b
            ->create<equeue::AllocOp>(mem, std::vector<int64_t>{1}, 32u)
            ->result(0);
    }

    /** Run the module on all three modes and assert the outcomes are
     *  identical; returns {unfused, fused} dispatch counts. */
    std::pair<uint64_t, uint64_t>
    expectMatrixIdentical()
    {
        Outcome interp =
            simulate(module.get(), sim::Backend::Interp, sim::Fusion::Off);
        Outcome unfused = simulate(module.get(), sim::Backend::Compiled,
                                   sim::Fusion::Off);
        Outcome fused = simulate(module.get(), sim::Backend::Compiled,
                                 sim::Fusion::On);
        expectIdentical(interp, unfused);
        expectIdentical(interp, fused);
        EXPECT_EQ(interp.report.dispatchCount,
                  interp.report.opsExecuted);
        EXPECT_EQ(unfused.report.dispatchCount,
                  unfused.report.opsExecuted);
        return {unfused.report.dispatchCount,
                fused.report.dispatchCount};
    }
};

/** The systolic stage-R shape: Read a, Read stat, Read acc, mac,
 *  Write res, Write a — one launch per PE step. The six-record body
 *  run must collapse to a single superinstruction: per launch the
 *  fused stream dispatches Fused + Return = 2 counted units instead
 *  of 7. */
TEST_F(FuseTest, PeBodyReadMacWriteFuses)
{
    auto mem = b->create<equeue::CreateMemOp>(
        std::string("Register"), std::vector<int64_t>{64}, 32u, 8u);
    auto proc = b->create<equeue::CreateProcOp>(std::string("MAC"));
    Value a_in = allocCell(mem->result(0));
    Value stat = allocCell(mem->result(0));
    Value acc = allocCell(mem->result(0));
    Value out_acc = allocCell(mem->result(0));
    Value out_a = allocCell(mem->result(0));

    auto start = b->create<equeue::ControlStartOp>();
    const int kLaunches = 3;
    Value dep = start->result(0);
    for (int i = 0; i < kLaunches; ++i) {
        auto launch = b->create<equeue::LaunchOp>(
            std::vector<Value>{dep}, proc->result(0),
            std::vector<Value>{a_in, stat, acc, out_acc, out_a},
            std::vector<ir::Type>{});
        {
            ir::OpBuilder::InsertionGuard g(*b);
            equeue::LaunchOp l(launch.op());
            b->setInsertionPointToEnd(&l.body());
            Value ra = b->create<equeue::ReadOp>(l.body().argument(0),
                                                 Value(),
                                                 std::vector<Value>{})
                           ->result(0);
            Value rs = b->create<equeue::ReadOp>(l.body().argument(1),
                                                 Value(),
                                                 std::vector<Value>{})
                           ->result(0);
            Value rc = b->create<equeue::ReadOp>(l.body().argument(2),
                                                 Value(),
                                                 std::vector<Value>{})
                           ->result(0);
            auto res = b->create<equeue::ExternOp>(
                std::string("mac"), std::vector<Value>{ra, rs, rc},
                std::vector<ir::Type>{ctx.i32Type()});
            b->create<equeue::WriteOp>(res->result(0),
                                       l.body().argument(3), Value(),
                                       std::vector<Value>{});
            b->create<equeue::WriteOp>(ra, l.body().argument(4), Value(),
                                       std::vector<Value>{});
            b->create<equeue::ReturnOp>(std::vector<Value>{});
        }
        dep = launch->result(0);
    }
    b->create<equeue::AwaitOp>(std::vector<Value>{dep});

    auto [unfused, fused] = expectMatrixIdentical();
    EXPECT_LT(fused, unfused);
    // Each launch body (read, read, read, mac, write, write, return)
    // collapses from 7 counted dispatches to 1; the top-level
    // control_start + 3 launches + await run collapses from 5 to 1.
    EXPECT_EQ(unfused - fused, uint64_t(kLaunches) * 6 + 4);
}

/** Read→Write copy pairs (the systolic stage-W shape) fuse too. */
TEST_F(FuseTest, CellCopyPairsFuse)
{
    auto mem = b->create<equeue::CreateMemOp>(
        std::string("Register"), std::vector<int64_t>{64}, 32u, 8u);
    auto proc = b->create<equeue::CreateProcOp>(std::string("MAC"));
    Value src = allocCell(mem->result(0));
    Value dst = allocCell(mem->result(0));
    Value src2 = allocCell(mem->result(0));
    Value dst2 = allocCell(mem->result(0));

    auto start = b->create<equeue::ControlStartOp>();
    auto launch = b->create<equeue::LaunchOp>(
        std::vector<Value>{start->result(0)}, proc->result(0),
        std::vector<Value>{src, dst, src2, dst2},
        std::vector<ir::Type>{});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(launch.op());
        b->setInsertionPointToEnd(&l.body());
        Value v = b->create<equeue::ReadOp>(l.body().argument(0), Value(),
                                            std::vector<Value>{})
                      ->result(0);
        b->create<equeue::WriteOp>(v, l.body().argument(1), Value(),
                                   std::vector<Value>{});
        Value v2 = b->create<equeue::ReadOp>(l.body().argument(2),
                                             Value(),
                                             std::vector<Value>{})
                       ->result(0);
        b->create<equeue::WriteOp>(v2, l.body().argument(3), Value(),
                                   std::vector<Value>{});
        b->create<equeue::ReturnOp>(std::vector<Value>{});
    }
    b->create<equeue::AwaitOp>(std::vector<Value>{launch->result(0)});

    auto [unfused, fused] = expectMatrixIdentical();
    // Body read/write/read/write/return: 5 dispatches -> 1; top-level
    // control_start + launch + await: 3 -> 1.
    EXPECT_EQ(unfused - fused, uint64_t(4 + 2));
}

/** A cell read whose value escapes the launch body (returned to the
 *  creator) must keep its materialized tensor; outcomes still match
 *  the interpreter exactly and the remaining body records still
 *  fuse. */
TEST_F(FuseTest, EscapingReadStaysEquivalent)
{
    auto mem = b->create<equeue::CreateMemOp>(
        std::string("Register"), std::vector<int64_t>{64}, 32u, 8u);
    auto proc = b->create<equeue::CreateProcOp>(std::string("MAC"));
    Value src = allocCell(mem->result(0));
    Value other = allocCell(mem->result(0));
    Value sink = allocCell(mem->result(0));

    auto start = b->create<equeue::ControlStartOp>();
    auto launch = b->create<equeue::LaunchOp>(
        std::vector<Value>{start->result(0)}, proc->result(0),
        std::vector<Value>{src, other},
        std::vector<ir::Type>{ctx.i32Type()});
    {
        ir::OpBuilder::InsertionGuard g(*b);
        equeue::LaunchOp l(launch.op());
        b->setInsertionPointToEnd(&l.body());
        Value v = b->create<equeue::ReadOp>(l.body().argument(0), Value(),
                                            std::vector<Value>{})
                      ->result(0);
        b->create<equeue::WriteOp>(v, l.body().argument(1), Value(),
                                   std::vector<Value>{});
        b->create<equeue::ReturnOp>(std::vector<Value>{v});
    }
    b->create<equeue::AwaitOp>(std::vector<Value>{launch->result(0)});
    // The creator consumes the escaped value: identical bytes/cycles
    // on every mode proves the fused body did not change its type
    // semantics.
    b->create<equeue::WriteOp>(launch->result(1), sink, Value(),
                               std::vector<Value>{});

    auto [unfused, fused] = expectMatrixIdentical();
    EXPECT_LT(fused, unfused);
}

/** Affine-stage lowering: scalar-arith + load/store bodies (with
 *  constant index operands where the lowering produced them) fuse and
 *  stay equivalent through the whole matrix. */
TEST_F(FuseTest, AffineLoweredConvFusesAndMatches)
{
    scalesim::Config cfg;
    cfg.ah = cfg.aw = 2;
    cfg.c = 1;
    cfg.h = cfg.w = 4;
    cfg.n = 1;
    cfg.fh = cfg.fw = 2;
    auto conv = passes::buildConvModule(ctx, cfg);
    std::string diag =
        passes::lowerConvModule(conv.get(), passes::Stage::Affine, cfg);
    ASSERT_TRUE(diag.empty()) << diag;

    Outcome interp =
        simulate(conv.get(), sim::Backend::Interp, sim::Fusion::Off);
    Outcome unfused =
        simulate(conv.get(), sim::Backend::Compiled, sim::Fusion::Off);
    Outcome fused =
        simulate(conv.get(), sim::Backend::Compiled, sim::Fusion::On);
    expectIdentical(interp, unfused);
    expectIdentical(interp, fused);
    EXPECT_LT(fused.report.dispatchCount, unfused.report.dispatchCount);
}

/** BatchSession caches the fused programs like everything else:
 *  repeated runs are identical, including the dispatch count. */
TEST_F(FuseTest, BatchSessionReusesFusedPrograms)
{
    scalesim::Config cfg;
    cfg.ah = cfg.aw = 2;
    cfg.c = 1;
    cfg.h = cfg.w = 4;
    cfg.n = 2;
    cfg.fh = cfg.fw = 2;
    auto module = systolic::buildSystolicModule(ctx, cfg);

    sim::EngineOptions opts;
    opts.backend = sim::Backend::Compiled;
    opts.fuse = sim::Fusion::On;
    sim::Simulator s(opts);
    sim::BatchSession session(s, module.get());
    auto first = session.run();
    auto second = session.run();
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.opsExecuted, second.opsExecuted);
    EXPECT_EQ(first.dispatchCount, second.dispatchCount);
    EXPECT_LT(first.dispatchCount, first.opsExecuted);
}

/** The report text surfaces the dispatch count exactly when it
 *  differs from opsExecuted — fused runs show it, unfused stay
 *  unchanged. */
TEST_F(FuseTest, ReportPrintsDispatchesOnlyWhenFused)
{
    scalesim::Config cfg;
    cfg.ah = cfg.aw = 2;
    cfg.c = 1;
    cfg.h = cfg.w = 4;
    cfg.n = 1;
    cfg.fh = cfg.fw = 2;
    auto module = systolic::buildSystolicModule(ctx, cfg);

    auto render = [&](sim::Fusion fuse) {
        sim::EngineOptions opts;
        opts.backend = sim::Backend::Compiled;
        opts.fuse = fuse;
        sim::Simulator s(opts);
        auto rep = s.simulate(module.get());
        std::ostringstream os;
        rep.print(os);
        return os.str();
    };
    EXPECT_EQ(render(sim::Fusion::Off).find("dispatches:"),
              std::string::npos);
    EXPECT_NE(render(sim::Fusion::On).find("dispatches:"),
              std::string::npos);
}

} // namespace
