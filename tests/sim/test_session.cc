/**
 * @file
 * sim::Session contract: one Context + Simulator + pinned module
 * behind a rebuild()/run() facade. ready() flips on the first rebuild,
 * repeated runs of the same pinned module report identical
 * deterministic fields (BatchSession reuse), rebuild() swaps the
 * pinned program (reports track the new config), and run counters /
 * build timing behave as documented.
 */

#include <gtest/gtest.h>

#include "scalesim/scalesim.hh"
#include "sim/session.hh"
#include "systolic/generator.hh"

namespace {

using namespace eq;

sim::Session::BuildFn
systolicBuilder(const scalesim::Config &cfg)
{
    return [cfg](ir::Context &ctx) {
        return systolic::buildSystolicModule(ctx, cfg);
    };
}

TEST(SimSession, StartsNotReady)
{
    sim::Session session;
    EXPECT_FALSE(session.ready());
    EXPECT_EQ(session.module(), nullptr);
    EXPECT_EQ(session.runsCompleted(), 0u);
}

TEST(SimSession, RebuildThenRun)
{
    sim::Session session;
    scalesim::Config cfg;
    cfg.ah = cfg.aw = 2;
    session.rebuild(systolicBuilder(cfg));
    ASSERT_TRUE(session.ready());
    ASSERT_NE(session.module(), nullptr);
    EXPECT_GT(session.lastBuildSeconds(), 0.0);

    sim::SimReport report = session.run();
    EXPECT_GT(report.cycles, 0u);
    EXPECT_GT(report.opsExecuted, 0u);
    EXPECT_EQ(session.runsCompleted(), 1u);
}

TEST(SimSession, RepeatRunsAreDeterministic)
{
    sim::Session session;
    scalesim::Config cfg;
    cfg.ah = cfg.aw = 2;
    session.rebuild(systolicBuilder(cfg));

    sim::SimReport first = session.run();
    sim::SimReport second = session.run();
    sim::SimReport third = session.run();
    for (const sim::SimReport *r : {&second, &third}) {
        EXPECT_EQ(r->cycles, first.cycles);
        EXPECT_EQ(r->eventsExecuted, first.eventsExecuted);
        EXPECT_EQ(r->opsExecuted, first.opsExecuted);
        EXPECT_EQ(r->dispatchCount, first.dispatchCount);
        ASSERT_EQ(r->memories.size(), first.memories.size());
        for (size_t i = 0; i < r->memories.size(); ++i) {
            EXPECT_EQ(r->memories[i].bytesRead,
                      first.memories[i].bytesRead);
            EXPECT_EQ(r->memories[i].bytesWritten,
                      first.memories[i].bytesWritten);
        }
    }
    EXPECT_EQ(session.runsCompleted(), 3u);
}

TEST(SimSession, RebuildSwapsProgram)
{
    sim::Session session;
    scalesim::Config small;
    small.ah = small.aw = 2;
    session.rebuild(systolicBuilder(small));
    sim::SimReport smallReport = session.run();

    scalesim::Config big;
    big.ah = big.aw = 4;
    session.rebuild(systolicBuilder(big));
    sim::SimReport bigReport = session.run();
    // More PEs simulate more ops for the same conv problem.
    EXPECT_NE(bigReport.opsExecuted, smallReport.opsExecuted);

    // Rebuilding back reproduces the original report exactly.
    session.rebuild(systolicBuilder(small));
    sim::SimReport again = session.run();
    EXPECT_EQ(again.cycles, smallReport.cycles);
    EXPECT_EQ(again.opsExecuted, smallReport.opsExecuted);
    // The counter tracks the currently pinned module, so each rebuild
    // resets it.
    EXPECT_EQ(session.runsCompleted(), 1u);
}

TEST(SimSession, MatchesFreshSimulator)
{
    scalesim::Config cfg;
    cfg.ah = cfg.aw = 2;

    sim::Session session;
    session.rebuild(systolicBuilder(cfg));
    sim::SimReport sessionReport = session.run();

    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = systolic::buildSystolicModule(ctx, cfg);
    sim::Simulator sim;
    sim::SimReport fresh = sim.simulate(module.get());
    EXPECT_EQ(sessionReport.cycles, fresh.cycles);
    EXPECT_EQ(sessionReport.opsExecuted, fresh.opsExecuted);
    EXPECT_EQ(sessionReport.eventsExecuted, fresh.eventsExecuted);
}

} // namespace
