/**
 * @file
 * Unit coverage for Connection::acquireChannel, the link-arbitration
 * primitive every bus, DMA hop, and accelerator port transfer sits on.
 * Focus: the zero-occupancy watermark short-circuit (the Connection
 * twin of Device::acquire's _maxNextFree fast path) — a zero-cost
 * reservation may only return `now` while *both* channel watermarks are
 * at or below `now`; with either direction busy it must fall through to
 * the full accounting, or Window exclusivity and per-direction
 * serialization silently evaporate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "sim/component.hh"

namespace {

using namespace eq;
using sim::Connection;
using sim::Cycles;

/** Connection::acquireChannel semantics without the watermark fast
 *  path: the observable-behaviour reference the optimized path must
 *  match, for both channel disciplines. */
class RefConnection {
  public:
    explicit RefConnection(bool window) : _window(window) {}

    Cycles
    acquireChannel(bool is_read, Cycles now, Cycles cycles)
    {
        Cycles &free = (_window || is_read) ? _readFree : _writeFree;
        Cycles start = std::max(now, free);
        free = start + cycles;
        if (_window)
            _writeFree = _readFree; // exclusive: both directions lock
        return start;
    }

  private:
    bool _window;
    Cycles _readFree = 0;
    Cycles _writeFree = 0;
};

TEST(ConnAcquire, ZeroCostIsImmediateWhenIdle)
{
    Connection w("win", "Window", 8);
    EXPECT_EQ(w.acquireChannel(true, 0, 0), 0u);
    EXPECT_EQ(w.acquireChannel(false, 5, 0), 5u);
    EXPECT_EQ(w.acquireChannel(true, 5, 0), 5u); // nothing was occupied

    Connection s("str", "Streaming", 8);
    EXPECT_EQ(s.acquireChannel(true, 0, 0), 0u);
    EXPECT_EQ(s.acquireChannel(false, 5, 0), 5u);
    EXPECT_EQ(s.acquireChannel(true, 5, 0), 5u);
}

TEST(ConnAcquire, FastPathNeverFiresWhileWindowBusy)
{
    // Window links share one channel: a busy read must block a
    // zero-cost write (and vice versa). If the fast path fired on a
    // half-checked watermark, the exclusive lock would stop excluding.
    Connection w("win", "Window", 8);
    EXPECT_EQ(w.acquireChannel(true, 0, 10), 0u);
    EXPECT_EQ(w.acquireChannel(false, 5, 0), 10u);
    EXPECT_EQ(w.acquireChannel(true, 5, 0), 10u);

    Connection w2("win2", "Window", 8);
    EXPECT_EQ(w2.acquireChannel(false, 0, 10), 0u);
    EXPECT_EQ(w2.acquireChannel(true, 5, 0), 10u);
}

TEST(ConnAcquire, StreamingChannelsStayIndependent)
{
    // Streaming links have two channels: a busy read never delays a
    // write. The fast path falls through here (read watermark ahead of
    // now) but the full accounting still starts the write at `now`.
    Connection s("str", "Streaming", 8);
    EXPECT_EQ(s.acquireChannel(true, 0, 10), 0u);
    EXPECT_EQ(s.acquireChannel(false, 5, 0), 5u);
    EXPECT_EQ(s.acquireChannel(false, 5, 3), 5u);
    // Same-direction traffic still serializes.
    EXPECT_EQ(s.acquireChannel(true, 5, 0), 10u);
    EXPECT_EQ(s.acquireChannel(false, 6, 0), 8u);
}

TEST(ConnAcquire, WindowExclusiveLockSerializesBothDirections)
{
    Connection w("win", "Window", 8);
    EXPECT_EQ(w.acquireChannel(true, 0, 4), 0u);
    EXPECT_EQ(w.acquireChannel(false, 0, 4), 4u);
    EXPECT_EQ(w.acquireChannel(true, 2, 4), 8u);
}

TEST(ConnAcquire, WatermarkClearsOnceTimePasses)
{
    Connection w("clears", "Window", 8);
    EXPECT_EQ(w.acquireChannel(true, 0, 4), 0u);
    // Busy until 4; at 4 and beyond both watermarks are at or below
    // now and zero-cost reservations are immediate again.
    EXPECT_EQ(w.acquireChannel(false, 4, 0), 4u);
    EXPECT_EQ(w.acquireChannel(true, 1000, 0), 1000u);
}

TEST(ConnAcquire, NonZeroCostAlwaysTakesFullAccounting)
{
    // Costed reservations must update watermarks even on an idle link:
    // a later zero-cost access has to observe the occupancy.
    Connection s("str", "Streaming", 8);
    EXPECT_EQ(s.acquireChannel(true, 0, 3), 0u);
    EXPECT_EQ(s.acquireChannel(true, 0, 3), 3u);
    EXPECT_EQ(s.acquireChannel(true, 2, 0), 6u);
}

TEST(ConnAcquire, MatchesReferenceModelOnMixedSequence)
{
    // Deterministic mixed workload with monotone `now` (the engine
    // never moves time backwards): the optimized connection must be
    // cycle-identical to the fast-path-free reference at every step,
    // including interleaved zero-cost reservations while a channel is
    // busy, for both channel disciplines and both directions.
    for (bool window : {true, false}) {
        Connection c("mixed", window ? "Window" : "Streaming", 8);
        RefConnection ref(window);
        Cycles now = 0;
        uint32_t rng = 0x2545f491u;
        for (int step = 0; step < 2000; ++step) {
            rng ^= rng << 13;
            rng ^= rng >> 17;
            rng ^= rng << 5;
            bool is_read = (rng >> 2) & 1;
            Cycles cost = (rng >> 3) % 4; // 0..3, zero-cost common
            ASSERT_EQ(c.acquireChannel(is_read, now, cost),
                      ref.acquireChannel(is_read, now, cost))
                << (window ? "Window" : "Streaming") << " step " << step
                << " now=" << now << " read=" << is_read
                << " cost=" << cost;
            now += rng % 3; // 0..2: time idles, creeps, or jumps
        }
    }
}

} // namespace
