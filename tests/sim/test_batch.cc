/**
 * @file
 * BatchSession semantics: batched re-runs of a pinned module must be
 * observationally identical to a fresh Simulator per run — same cycles,
 * same event/op counts, same memory traffic, same processor busy time —
 * while actually reusing the dispatch tables and value numbering. Also
 * covers the hazard cases: sessions across module rebuilds in one
 * context, interleaved plain simulate() calls, and multiple live
 * sessions on one Simulator.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "sim/engine.hh"
#include "systolic/generator.hh"

namespace {

using namespace eq;

scalesim::Config
smallConfig(int hw, scalesim::Dataflow df)
{
    scalesim::Config cfg;
    cfg.ah = cfg.aw = 2;
    cfg.c = 1;
    cfg.h = cfg.w = hw;
    cfg.n = 2;
    cfg.fh = cfg.fw = 2;
    cfg.dataflow = df;
    return cfg;
}

/** Compare every deterministic field of two reports. */
void
expectReportsIdentical(const sim::SimReport &a, const sim::SimReport &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.opsExecuted, b.opsExecuted);
    ASSERT_EQ(a.memories.size(), b.memories.size());
    for (size_t i = 0; i < a.memories.size(); ++i) {
        EXPECT_EQ(a.memories[i].name, b.memories[i].name);
        EXPECT_EQ(a.memories[i].bytesRead, b.memories[i].bytesRead);
        EXPECT_EQ(a.memories[i].bytesWritten, b.memories[i].bytesWritten);
    }
    ASSERT_EQ(a.processors.size(), b.processors.size());
    for (size_t i = 0; i < a.processors.size(); ++i) {
        EXPECT_EQ(a.processors[i].name, b.processors[i].name);
        EXPECT_EQ(a.processors[i].busyCycles, b.processors[i].busyCycles);
        EXPECT_EQ(a.processors[i].opsExecuted,
                  b.processors[i].opsExecuted);
    }
    ASSERT_EQ(a.connections.size(), b.connections.size());
    for (size_t i = 0; i < a.connections.size(); ++i) {
        EXPECT_EQ(a.connections[i].readBytes, b.connections[i].readBytes);
        EXPECT_EQ(a.connections[i].writeBytes,
                  b.connections[i].writeBytes);
    }
}

/** One fresh-everything run, the pre-batch baseline. */
sim::SimReport
freshRun(const scalesim::Config &cfg)
{
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = systolic::buildSystolicModule(ctx, cfg);
    sim::Simulator s;
    return s.simulate(module.get());
}

TEST(BatchSessionTest, RepeatedRunsAreCycleIdentical)
{
    auto cfg = smallConfig(4, scalesim::Dataflow::WS);
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = systolic::buildSystolicModule(ctx, cfg);
    sim::Simulator s;
    sim::BatchSession session(s, module.get());

    auto first = session.run();
    expectReportsIdentical(first, freshRun(cfg));
    for (int i = 0; i < 3; ++i)
        expectReportsIdentical(session.run(), first);
    EXPECT_EQ(session.runsCompleted(), 4u);
}

TEST(BatchSessionTest, MatchesFreshSimulatorAcrossConfigs)
{
    // The sweep-worker pattern: one context + simulator, module and
    // session rebuilt per structural point.
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    sim::Simulator s;
    for (int hw : {2, 3, 4}) {
        for (auto df : {scalesim::Dataflow::WS, scalesim::Dataflow::OS}) {
            auto cfg = smallConfig(hw, df);
            auto module = systolic::buildSystolicModule(ctx, cfg);
            sim::BatchSession session(s, module.get());
            auto batched = session.run();
            expectReportsIdentical(batched, freshRun(cfg));
            // Second batched run exercises the numbering-reuse path.
            expectReportsIdentical(session.run(), batched);
        }
    }
}

TEST(BatchSessionTest, SurvivesInterleavedPlainSimulate)
{
    auto cfg_a = smallConfig(4, scalesim::Dataflow::WS);
    auto cfg_b = smallConfig(3, scalesim::Dataflow::OS);
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto mod_a = systolic::buildSystolicModule(ctx, cfg_a);
    auto mod_b = systolic::buildSystolicModule(ctx, cfg_b);
    sim::Simulator s;
    sim::BatchSession session(s, mod_a.get());

    auto baseline = session.run();
    // A plain simulate() of another module fully resets numbering...
    auto other = s.simulate(mod_b.get());
    expectReportsIdentical(other, freshRun(cfg_b));
    // ...and the session recovers (renumbering lazily) on its next run.
    expectReportsIdentical(session.run(), baseline);
}

TEST(BatchSessionTest, TwoLiveSessionsAlternate)
{
    auto cfg_a = smallConfig(4, scalesim::Dataflow::WS);
    auto cfg_b = smallConfig(2, scalesim::Dataflow::OS);
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto mod_a = systolic::buildSystolicModule(ctx, cfg_a);
    auto mod_b = systolic::buildSystolicModule(ctx, cfg_b);
    sim::Simulator s;
    sim::BatchSession sa(s, mod_a.get());
    sim::BatchSession sb(s, mod_b.get());

    auto ra = sa.run();
    auto rb = sb.run();
    expectReportsIdentical(ra, freshRun(cfg_a));
    expectReportsIdentical(rb, freshRun(cfg_b));
    // Alternating keeps both correct (numbering for both modules can
    // coexist; both stay alive for the session lifetimes).
    expectReportsIdentical(sa.run(), ra);
    expectReportsIdentical(sb.run(), rb);
    expectReportsIdentical(sa.run(), ra);
}

TEST(BatchSessionTest, CompiledBackendBatchesAreCycleIdentical)
{
    // The compiled backend caches the lowered micro-op programs across
    // batched re-runs (sweeps pay compilation once per structural
    // config); every run must still match a fresh-Simulator run.
    auto cfg = smallConfig(4, scalesim::Dataflow::WS);
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = systolic::buildSystolicModule(ctx, cfg);
    sim::EngineOptions opts;
    opts.backend = sim::Backend::Compiled;
    sim::Simulator s(opts);
    sim::BatchSession session(s, module.get());

    auto first = session.run();
    expectReportsIdentical(first, freshRun(cfg));
    for (int i = 0; i < 3; ++i)
        expectReportsIdentical(session.run(), first);
}

TEST(BatchSessionTest, CompiledBackendSurvivesInterleavedPlainSimulate)
{
    // A plain simulate() of another module clears numbering *and* the
    // compiled program cache; the session must recover (relower) on
    // its next run.
    auto cfg_a = smallConfig(4, scalesim::Dataflow::WS);
    auto cfg_b = smallConfig(3, scalesim::Dataflow::OS);
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto mod_a = systolic::buildSystolicModule(ctx, cfg_a);
    auto mod_b = systolic::buildSystolicModule(ctx, cfg_b);
    sim::EngineOptions opts;
    opts.backend = sim::Backend::Compiled;
    sim::Simulator s(opts);
    sim::BatchSession session(s, mod_a.get());

    auto baseline = session.run();
    auto other = s.simulate(mod_b.get());
    expectReportsIdentical(other, freshRun(cfg_b));
    expectReportsIdentical(session.run(), baseline);
}

TEST(BatchSessionTest, CompiledBackendSessionAfterModuleRebuild)
{
    // The sweep-worker rebuild path under the compiled backend: a new
    // module may reuse the old one's block addresses; the new
    // session's first run must renumber and relower from scratch.
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    sim::EngineOptions opts;
    opts.backend = sim::Backend::Compiled;
    sim::Simulator s(opts);
    auto cfg1 = smallConfig(4, scalesim::Dataflow::WS);
    auto cfg2 = smallConfig(3, scalesim::Dataflow::IS);

    ir::OwningOpRef module = systolic::buildSystolicModule(ctx, cfg1);
    auto report1 = [&] {
        sim::BatchSession session(s, module.get());
        return session.run();
    }();
    expectReportsIdentical(report1, freshRun(cfg1));

    module = systolic::buildSystolicModule(ctx, cfg2);
    sim::BatchSession session(s, module.get());
    expectReportsIdentical(session.run(), freshRun(cfg2));
}

TEST(BatchSessionTest, SessionAfterModuleRebuildAtSameAddressIsSafe)
{
    // The sweep-worker rebuild path: destroy the old module, build a
    // new one (allocator may reuse addresses), open a new session. The
    // first run of the new session must renumber from scratch.
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    sim::Simulator s;
    auto cfg1 = smallConfig(4, scalesim::Dataflow::WS);
    auto cfg2 = smallConfig(3, scalesim::Dataflow::IS);

    ir::OwningOpRef module = systolic::buildSystolicModule(ctx, cfg1);
    auto report1 = [&] {
        sim::BatchSession session(s, module.get());
        return session.run();
    }();
    expectReportsIdentical(report1, freshRun(cfg1));

    module = systolic::buildSystolicModule(ctx, cfg2);
    sim::BatchSession session(s, module.get());
    expectReportsIdentical(session.run(), freshRun(cfg2));
}

} // namespace
