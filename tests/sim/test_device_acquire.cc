/**
 * @file
 * Unit coverage for Device::acquire, the queue-arbitration primitive
 * every memory bank, processor FIFO, and connection channel sits on.
 * Focus: the zero-occupancy watermark fast path (_maxNextFree) — a
 * zero-cost acquire may only short-circuit while *every* queue is free
 * by `now`; on a shared device with any busy queue it must fall through
 * to the earliest-free scan, or contention silently evaporates.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/component.hh"

namespace {

using namespace eq;
using sim::Cycles;
using sim::Device;

/** Device::acquire semantics without the watermark fast path: the
 *  observable-behaviour reference the optimized path must match. */
class RefDevice {
  public:
    explicit RefDevice(unsigned num_queues) : _nextFree(num_queues, 0) {}

    Cycles
    acquire(Cycles now, Cycles cycles)
    {
        size_t best = 0;
        for (size_t i = 1; i < _nextFree.size(); ++i)
            if (_nextFree[i] < _nextFree[best])
                best = i;
        Cycles start = std::max(now, _nextFree[best]);
        _nextFree[best] = start + cycles;
        return start;
    }

  private:
    std::vector<Cycles> _nextFree;
};

TEST(DeviceAcquire, ZeroCostIsImmediateWhenIdle)
{
    Device d("idle", 2);
    EXPECT_EQ(d.acquire(0, 0), 0u);
    EXPECT_EQ(d.acquire(5, 0), 5u);
    EXPECT_EQ(d.acquire(5, 0), 5u); // repeatable: nothing was occupied
}

TEST(DeviceAcquire, FastPathNeverFiresWhileAnyQueueBusy)
{
    Device d("shared", 2);
    // Occupy both queues until cycle 10.
    EXPECT_EQ(d.acquire(0, 10), 0u);
    EXPECT_EQ(d.acquire(0, 10), 0u);
    // A zero-cost access at cycle 5 must wait for a free queue: if the
    // watermark fast path fired here it would return 5 and the shared
    // device would stop contending.
    EXPECT_EQ(d.acquire(5, 0), 10u);
    EXPECT_EQ(d.acquire(10, 0), 10u);
}

TEST(DeviceAcquire, FastPathFiresOnlyWithOneQueueStillPending)
{
    Device d("skewed", 3);
    // One long reservation; the other two queues stay free.
    EXPECT_EQ(d.acquire(0, 100), 0u);
    // Any queue busy => scan, not short-circuit; but two queues are
    // free so the access still starts at `now` through the scan.
    EXPECT_EQ(d.acquire(7, 0), 7u);
    EXPECT_EQ(d.acquire(8, 0), 8u);
    // Fill the remaining queues; now zero-cost accesses must stall.
    EXPECT_EQ(d.acquire(8, 50), 8u);
    EXPECT_EQ(d.acquire(8, 50), 8u);
    EXPECT_EQ(d.acquire(9, 0), 58u);
}

TEST(DeviceAcquire, WatermarkClearsOnceTimePasses)
{
    Device d("clears", 2);
    EXPECT_EQ(d.acquire(0, 4), 0u);
    EXPECT_EQ(d.acquire(0, 4), 0u);
    // Busy until 4; at 4 and beyond the watermark is at or below now
    // and zero-cost accesses are immediate again.
    EXPECT_EQ(d.acquire(4, 0), 4u);
    EXPECT_EQ(d.acquire(1000, 0), 1000u);
}

TEST(DeviceAcquire, NonZeroCostAlwaysScans)
{
    Device d("scans", 2);
    // Costed acquires at the same cycle land on distinct queues.
    EXPECT_EQ(d.acquire(0, 3), 0u);
    EXPECT_EQ(d.acquire(0, 3), 0u);
    // Both queues busy until 3: the next costed acquire queues up.
    EXPECT_EQ(d.acquire(0, 3), 3u);
    EXPECT_EQ(d.acquire(2, 1), 3u);
}

TEST(DeviceAcquire, MatchesReferenceModelOnMixedSequence)
{
    // Deterministic mixed workload over a shared 3-queue device with
    // monotone `now` (the engine never moves time backwards): the
    // optimized device must be cycle-identical to the fast-path-free
    // reference at every step, including interleaved zero-cost
    // accesses while queues are busy.
    Device d("mixed", 3);
    RefDevice ref(3);
    Cycles now = 0;
    uint32_t rng = 0x2545f491u;
    for (int step = 0; step < 2000; ++step) {
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        Cycles cost = (rng >> 3) % 4; // 0..3, zero-cost common
        ASSERT_EQ(d.acquire(now, cost), ref.acquire(now, cost))
            << "step " << step << " now=" << now << " cost=" << cost;
        now += rng % 3; // 0..2: time idles, creeps, or jumps
    }
}

TEST(DeviceAcquire, SingleQueueSerializesStrictly)
{
    Device d("serial", 1);
    EXPECT_EQ(d.acquire(0, 2), 0u);
    EXPECT_EQ(d.acquire(0, 2), 2u);
    EXPECT_EQ(d.acquire(1, 0), 4u); // zero-cost still waits in line
    EXPECT_EQ(d.acquire(4, 0), 4u);
}

} // namespace
