/**
 * @file
 * Backend equivalence: the compiled backend — with superinstruction
 * fusion off *and* on — must be *observationally byte-identical* to
 * the interpreter: same cycles, same event/op counts, same per-memory
 * traffic, per-connection bandwidth statistics, per-processor
 * utilization, and the same operation-level trace stream (times,
 * durations, labels, and record order) — across the six golden-trace
 * scenarios (FIR on AI Engines, conv lowered through the full pass
 * pipeline onto 4x4/8x8 WS/OS systolic arrays). The only sanctioned
 * difference is SimReport::dispatchCount: equal to opsExecuted on the
 * interpreter and the unfused compiled backend, strictly lower with
 * fusion on (the fusion win).
 *
 * Also pins the backend-selection seam: EngineOptions::backend wins,
 * EQ_SIM_BACKEND resolves Backend::Auto, and the default is the
 * interpreter (ditto EngineOptions::fuse / EQ_SIM_FUSE, default on).
 */

#include <cstdlib>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

#include "aie/fir.hh"
#include "ir/builder.hh"
#include "passes/pipeline.hh"
#include "scalesim/scalesim.hh"
#include "sim/engine.hh"
#include "soc/soc.hh"
#include "systolic/generator.hh"

namespace {

using namespace eq;

struct RunOutcome {
    sim::SimReport report;
    std::vector<std::string> trace; ///< one rendered line per event
};

/** The three execution modes of the equivalence matrix. */
struct Mode {
    sim::Backend backend;
    sim::Fusion fuse;
};

constexpr Mode kInterp{sim::Backend::Interp, sim::Fusion::Off};
constexpr Mode kCompiled{sim::Backend::Compiled, sim::Fusion::Off};
constexpr Mode kFused{sim::Backend::Compiled, sim::Fusion::On};

std::vector<std::string>
renderTrace(const sim::Trace &trace)
{
    std::vector<std::string> lines;
    lines.reserve(trace.events().size());
    for (const auto &ev : trace.events()) {
        std::ostringstream os;
        os << ev.ts << " " << ev.dur << " " << ev.cat << " " << ev.pid
           << " " << ev.tid << " " << ev.name;
        lines.push_back(os.str());
    }
    return lines;
}

void
expectOutcomesIdentical(const RunOutcome &interp,
                        const RunOutcome &compiled)
{
    const sim::SimReport &a = interp.report;
    const sim::SimReport &b = compiled.report;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.opsExecuted, b.opsExecuted);
    // dispatchCount is deliberately NOT compared here: it is the one
    // backend-dependent report field (see the matrix tests below).

    ASSERT_EQ(a.memories.size(), b.memories.size());
    for (size_t i = 0; i < a.memories.size(); ++i) {
        EXPECT_EQ(a.memories[i].name, b.memories[i].name);
        EXPECT_EQ(a.memories[i].kind, b.memories[i].kind);
        EXPECT_EQ(a.memories[i].bytesRead, b.memories[i].bytesRead);
        EXPECT_EQ(a.memories[i].bytesWritten,
                  b.memories[i].bytesWritten);
    }
    ASSERT_EQ(a.connections.size(), b.connections.size());
    for (size_t i = 0; i < a.connections.size(); ++i) {
        EXPECT_EQ(a.connections[i].name, b.connections[i].name);
        EXPECT_EQ(a.connections[i].readBytes,
                  b.connections[i].readBytes);
        EXPECT_EQ(a.connections[i].writeBytes,
                  b.connections[i].writeBytes);
        EXPECT_DOUBLE_EQ(a.connections[i].maxBw,
                         b.connections[i].maxBw);
        EXPECT_DOUBLE_EQ(a.connections[i].maxBwPortionRead,
                         b.connections[i].maxBwPortionRead);
        EXPECT_DOUBLE_EQ(a.connections[i].maxBwPortionWrite,
                         b.connections[i].maxBwPortionWrite);
    }
    ASSERT_EQ(a.processors.size(), b.processors.size());
    for (size_t i = 0; i < a.processors.size(); ++i) {
        EXPECT_EQ(a.processors[i].name, b.processors[i].name);
        EXPECT_EQ(a.processors[i].busyCycles,
                  b.processors[i].busyCycles);
        EXPECT_EQ(a.processors[i].opsExecuted,
                  b.processors[i].opsExecuted);
    }

    // The trace must match line for line, in recording order (a
    // stronger condition than the golden harness's ts-normalized
    // stream).
    ASSERT_EQ(interp.trace.size(), compiled.trace.size());
    for (size_t i = 0; i < interp.trace.size(); ++i)
        ASSERT_EQ(interp.trace[i], compiled.trace[i])
            << "first trace divergence at event " << i;
}

/** Assert the whole three-way matrix for one scenario: interp vs
 *  compiled vs compiled+fused outcomes line-identical, opsExecuted
 *  dispatch parity off fusion, and a strict dispatch-count drop with
 *  fusion on (the systolic PE bodies must actually fuse). */
void
expectMatrix(const RunOutcome &interp, const RunOutcome &compiled,
             const RunOutcome &fused, bool expect_fusion_win)
{
    expectOutcomesIdentical(interp, compiled);
    expectOutcomesIdentical(interp, fused);
    expectOutcomesIdentical(compiled, fused);
    EXPECT_EQ(interp.report.dispatchCount, interp.report.opsExecuted);
    EXPECT_EQ(compiled.report.dispatchCount,
              compiled.report.opsExecuted);
    if (expect_fusion_win)
        EXPECT_LT(fused.report.dispatchCount,
                  compiled.report.dispatchCount);
    else
        EXPECT_LE(fused.report.dispatchCount,
                  compiled.report.dispatchCount);
}

RunOutcome
runFir(Mode mode, const aie::FirConfig &cfg)
{
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = aie::buildFirModule(ctx, cfg);
    sim::EngineOptions opts;
    opts.enableTrace = true;
    opts.backend = mode.backend;
    opts.fuse = mode.fuse;
    sim::Simulator s(opts);
    RunOutcome out;
    out.report = s.simulate(module.get());
    out.trace = renderTrace(s.trace());
    return out;
}

RunOutcome
runSystolic(Mode mode, int array, scalesim::Dataflow df)
{
    scalesim::Config cfg;
    cfg.ah = cfg.aw = array;
    cfg.dataflow = df;
    cfg.c = 2;
    cfg.h = cfg.w = 8;
    cfg.n = 8;
    cfg.fh = cfg.fw = 3;
    cfg.elemBytes = 4;

    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = passes::buildConvModule(ctx, cfg);
    std::string diag = passes::lowerConvModule(
        module.get(), passes::Stage::Systolic, cfg);
    EXPECT_TRUE(diag.empty()) << diag;

    sim::EngineOptions opts;
    opts.enableTrace = true;
    opts.backend = mode.backend;
    opts.fuse = mode.fuse;
    sim::Simulator s(opts);
    RunOutcome out;
    out.report = s.simulate(module.get());
    out.trace = renderTrace(s.trace());
    return out;
}

RunOutcome
runSoc(Mode mode, const soc::SocConfig &cfg)
{
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = soc::buildSocModule(ctx, cfg);
    sim::EngineOptions opts;
    opts.enableTrace = true;
    opts.backend = mode.backend;
    opts.fuse = mode.fuse;
    sim::Simulator s(opts);
    RunOutcome out;
    out.report = s.simulate(module.get());
    out.trace = renderTrace(s.trace());
    return out;
}

RunOutcome
runSocPipeline(Mode mode, const soc::PipelineConfig &cfg)
{
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = soc::buildPipelineModule(ctx, cfg);
    sim::EngineOptions opts;
    opts.enableTrace = true;
    opts.backend = mode.backend;
    opts.fuse = mode.fuse;
    sim::Simulator s(opts);
    RunOutcome out;
    out.report = s.simulate(module.get());
    out.trace = renderTrace(s.trace());
    return out;
}

TEST(BackendEquivTest, FirAieCase3)
{
    expectMatrix(runFir(kInterp, aie::FirConfig::case3()),
                 runFir(kCompiled, aie::FirConfig::case3()),
                 runFir(kFused, aie::FirConfig::case3()),
                 /*expect_fusion_win=*/true);
}

TEST(BackendEquivTest, FirAieCase4)
{
    expectMatrix(runFir(kInterp, aie::FirConfig::case4()),
                 runFir(kCompiled, aie::FirConfig::case4()),
                 runFir(kFused, aie::FirConfig::case4()),
                 /*expect_fusion_win=*/true);
}

TEST(BackendEquivTest, Systolic4x4Ws)
{
    expectMatrix(runSystolic(kInterp, 4, scalesim::Dataflow::WS),
                 runSystolic(kCompiled, 4, scalesim::Dataflow::WS),
                 runSystolic(kFused, 4, scalesim::Dataflow::WS),
                 /*expect_fusion_win=*/true);
}

TEST(BackendEquivTest, Systolic4x4Os)
{
    expectMatrix(runSystolic(kInterp, 4, scalesim::Dataflow::OS),
                 runSystolic(kCompiled, 4, scalesim::Dataflow::OS),
                 runSystolic(kFused, 4, scalesim::Dataflow::OS),
                 /*expect_fusion_win=*/true);
}

TEST(BackendEquivTest, Systolic8x8Ws)
{
    expectMatrix(runSystolic(kInterp, 8, scalesim::Dataflow::WS),
                 runSystolic(kCompiled, 8, scalesim::Dataflow::WS),
                 runSystolic(kFused, 8, scalesim::Dataflow::WS),
                 /*expect_fusion_win=*/true);
}

TEST(BackendEquivTest, Systolic8x8Os)
{
    expectMatrix(runSystolic(kInterp, 8, scalesim::Dataflow::OS),
                 runSystolic(kCompiled, 8, scalesim::Dataflow::OS),
                 runSystolic(kFused, 8, scalesim::Dataflow::OS),
                 /*expect_fusion_win=*/true);
}

/** Shared-bus SoC: the PE bodies mix fusable register traffic with
 *  connection-carrying boundary reads/writes that now fuse too (the
 *  fused executor does the acquire/transfer accounting in-group) —
 *  contention arbitration has to land identically on every backend. */
TEST(BackendEquivTest, SocSharedBusContention)
{
    soc::SocConfig cfg = soc::SocConfig::heteroStarved();
    expectMatrix(runSoc(kInterp, cfg), runSoc(kCompiled, cfg),
                 runSoc(kFused, cfg),
                 /*expect_fusion_win=*/true);
}

/** Boundary-op fusion on the dual-tile shared-bus scenario: beyond the
 *  usual three-way identity, assert the fused dispatch count drops far
 *  enough that conn-carrying bus reads/writes must themselves be inside
 *  fused groups. Interior-only fusion (MACs, address math) reaches
 *  roughly dispatchCount ≈ opsExecuted/2.7 on this workload; with the
 *  boundary ops fused it is ≈ opsExecuted/4. The 3x threshold sits
 *  between the two, so it fails if conn-carrying Read/Write ever
 *  silently drops back out of fusion. */
TEST(BackendEquivTest, SocDualSharedBusBoundaryFusion)
{
    soc::SocConfig cfg = soc::SocConfig::dualSharedBus();
    RunOutcome interp = runSoc(kInterp, cfg);
    RunOutcome compiled = runSoc(kCompiled, cfg);
    RunOutcome fused = runSoc(kFused, cfg);
    expectMatrix(interp, compiled, fused, /*expect_fusion_win=*/true);
    EXPECT_LT(fused.report.dispatchCount * 3,
              fused.report.opsExecuted);
}

/** Buffered layer pipeline: overlapping items queue on stage
 *  processors and DMA FIFOs; hop writes ride bandwidth-limited
 *  connections. */
TEST(BackendEquivTest, SocPipelineBuffered)
{
    soc::PipelineConfig cfg = soc::PipelineConfig::small();
    expectMatrix(runSocPipeline(kInterp, cfg),
                 runSocPipeline(kCompiled, cfg),
                 runSocPipeline(kFused, cfg),
                 /*expect_fusion_win=*/true);
}

/** Save/restore one environment variable so the selection-seam tests
 *  are env-neutral even under the compiled/fused CI legs. */
class EnvGuard {
  public:
    explicit EnvGuard(const char *name) : _name(name)
    {
        const char *v = std::getenv(name);
        if (v) {
            _had = true;
            _old = v;
        }
    }
    ~EnvGuard()
    {
        if (_had)
            setenv(_name, _old.c_str(), 1);
        else
            unsetenv(_name);
    }

  private:
    const char *_name;
    bool _had = false;
    std::string _old;
};

TEST(BackendEquivTest, SelectionSeam)
{
    EnvGuard guard("EQ_SIM_BACKEND");

    unsetenv("EQ_SIM_BACKEND");
    EXPECT_EQ(sim::Simulator().backend(), sim::Backend::Interp);

    setenv("EQ_SIM_BACKEND", "compiled", 1);
    EXPECT_EQ(sim::Simulator().backend(), sim::Backend::Compiled);

    setenv("EQ_SIM_BACKEND", "interp", 1);
    EXPECT_EQ(sim::Simulator().backend(), sim::Backend::Interp);

    // An explicit option always beats the environment.
    sim::EngineOptions opts;
    opts.backend = sim::Backend::Compiled;
    setenv("EQ_SIM_BACKEND", "interp", 1);
    EXPECT_EQ(sim::Simulator(opts).backend(), sim::Backend::Compiled);
}

TEST(BackendEquivTest, FusionSelectionSeam)
{
    EnvGuard guard("EQ_SIM_FUSE");

    // Default on.
    unsetenv("EQ_SIM_FUSE");
    EXPECT_TRUE(sim::Simulator().fusionEnabled());

    setenv("EQ_SIM_FUSE", "0", 1);
    EXPECT_FALSE(sim::Simulator().fusionEnabled());
    setenv("EQ_SIM_FUSE", "off", 1);
    EXPECT_FALSE(sim::Simulator().fusionEnabled());
    setenv("EQ_SIM_FUSE", "1", 1);
    EXPECT_TRUE(sim::Simulator().fusionEnabled());
    setenv("EQ_SIM_FUSE", "on", 1);
    EXPECT_TRUE(sim::Simulator().fusionEnabled());

    // An explicit option always beats the environment.
    sim::EngineOptions opts;
    opts.fuse = sim::Fusion::On;
    setenv("EQ_SIM_FUSE", "0", 1);
    EXPECT_TRUE(sim::Simulator(opts).fusionEnabled());
    opts.fuse = sim::Fusion::Off;
    unsetenv("EQ_SIM_FUSE");
    EXPECT_FALSE(sim::Simulator(opts).fusionEnabled());
}

TEST(BackendEquivTest, EnvPoolSelectionSeam)
{
    EnvGuard guard("EQ_SIM_ENV_POOL");

    // Default on.
    unsetenv("EQ_SIM_ENV_POOL");
    EXPECT_TRUE(sim::Simulator().envPoolEnabled());

    setenv("EQ_SIM_ENV_POOL", "0", 1);
    EXPECT_FALSE(sim::Simulator().envPoolEnabled());
    setenv("EQ_SIM_ENV_POOL", "off", 1);
    EXPECT_FALSE(sim::Simulator().envPoolEnabled());
    setenv("EQ_SIM_ENV_POOL", "1", 1);
    EXPECT_TRUE(sim::Simulator().envPoolEnabled());
    setenv("EQ_SIM_ENV_POOL", "on", 1);
    EXPECT_TRUE(sim::Simulator().envPoolEnabled());
}

/** Env pooling is a pure allocation optimization: with the pool
 *  disabled the whole outcome (report and trace) must stay
 *  line-identical on a launch-heavy scenario. */
TEST(BackendEquivTest, EnvPoolOutcomeNeutral)
{
    EnvGuard guard("EQ_SIM_ENV_POOL");
    soc::SocConfig cfg = soc::SocConfig::dualSharedBus();

    setenv("EQ_SIM_ENV_POOL", "1", 1);
    RunOutcome pooled = runSoc(kInterp, cfg);
    setenv("EQ_SIM_ENV_POOL", "0", 1);
    RunOutcome unpooled = runSoc(kInterp, cfg);
    expectOutcomesIdentical(pooled, unpooled);
}

TEST(BackendEquivTest, PrecompileCountsMicroOps)
{
    scalesim::Config cfg;
    cfg.ah = cfg.aw = 2;
    cfg.c = 1;
    cfg.h = cfg.w = 4;
    cfg.n = 2;
    cfg.fh = cfg.fw = 2;
    ir::Context ctx;
    ir::registerAllDialects(ctx);
    auto module = systolic::buildSystolicModule(ctx, cfg);

    sim::EngineOptions opts;
    opts.backend = sim::Backend::Compiled;
    sim::Simulator s(opts);
    size_t n1 = s.precompile(module.get());
    EXPECT_GT(n1, 0u);
    // Deterministic: recompiling from scratch yields the same stream.
    EXPECT_EQ(n1, s.precompile(module.get()));
    // And a subsequent simulation is unaffected by the measurement.
    auto rep = s.simulate(module.get());
    EXPECT_GT(rep.cycles, 0u);
}

} // namespace
